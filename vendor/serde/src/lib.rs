//! Vendored, dependency-free stub of the `serde` API surface this
//! workspace uses, for fully offline builds.
//!
//! The workspace only *declares* `#[derive(Serialize, Deserialize)]` on
//! a handful of plain-data types (addresses, counters, configs, stats);
//! all JSON actually written or read at runtime is hand-rolled (see
//! `bench_report.rs`: "everything here is hand-rolled (no serde) so the
//! workspace stays dependency-free on an offline toolchain"). The stub
//! therefore provides marker traits and no-op derive macros: enough for
//! the derives to compile, with no runtime serialization machinery.

/// Marker stand-in for `serde::Serialize`. No workspace code takes a
/// `T: Serialize` bound, so no methods are needed.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
