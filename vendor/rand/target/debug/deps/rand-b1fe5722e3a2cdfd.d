/root/repo/vendor/rand/target/debug/deps/rand-b1fe5722e3a2cdfd.d: src/lib.rs

/root/repo/vendor/rand/target/debug/deps/librand-b1fe5722e3a2cdfd.rlib: src/lib.rs

/root/repo/vendor/rand/target/debug/deps/librand-b1fe5722e3a2cdfd.rmeta: src/lib.rs

src/lib.rs:
