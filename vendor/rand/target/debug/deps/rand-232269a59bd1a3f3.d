/root/repo/vendor/rand/target/debug/deps/rand-232269a59bd1a3f3.d: src/lib.rs

/root/repo/vendor/rand/target/debug/deps/rand-232269a59bd1a3f3: src/lib.rs

src/lib.rs:
