//! Vendored, dependency-free reimplementation of the subset of the
//! `rand` 0.8 API this workspace uses, for fully offline builds.
//!
//! The workspace's determinism contract (DESIGN.md §8) requires that
//! every workload generator derive from `SmallRng::seed_from_u64` and
//! produce the exact byte streams pinned by
//! `tests/golden/paper_all_quick.txt`. This crate therefore reproduces
//! the *bit-exact* algorithms of rand 0.8.5 for everything the
//! workspace calls:
//!
//! - `SmallRng` = xoshiro256++ (rand 0.8.5 vendors the reference
//!   implementation; `next_u32` is the high half of `next_u64`),
//! - `SeedableRng::seed_from_u64` = SplitMix64 expansion (the
//!   xoshiro-specific override, not the rand_core PCG32 default),
//! - `Rng::gen_range` = Lemire widening-multiply rejection sampling
//!   (`UniformInt::sample_single{,_inclusive}`),
//! - `Rng::gen_bool` = 64-bit integer Bernoulli,
//! - `Rng::gen::<f64>()` = 53-bit multiply-based `[0, 1)` sampling.
//!
//! The golden-output CI gate byte-compares a full `paper all --quick`
//! reproduction, so any stream divergence from upstream rand 0.8.5 is
//! caught immediately. Anything the workspace does not call is omitted.

/// The core RNG interface (mirrors `rand_core::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable RNG constructors (mirrors `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Default expansion used by rand_core (PCG32). `SmallRng`
    /// overrides this with SplitMix64, matching upstream.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6_364_136_223_846_793_005;
            const INC: u64 = 11_634_580_027_462_260_723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let x = pcg32(&mut state);
            chunk.copy_from_slice(&x[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, exactly as vendored by rand 0.8.5 for `SmallRng`
    /// on 64-bit targets.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            // Upstream takes the *high* bits: the lowest bits of
            // xoshiro256++ have slightly lower linear complexity.
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u64().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let last = self.next_u64().to_le_bytes();
                rem.copy_from_slice(&last[..rem.len()]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            if seed.iter().all(|&b| b == 0) {
                return Self::seed_from_u64(0);
            }
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                let mut buf = [0u8; 8];
                buf.copy_from_slice(chunk);
                *word = u64::from_le_bytes(buf);
            }
            SmallRng { s }
        }

        /// SplitMix64 seed expansion, exactly as in rand 0.8.5's
        /// vendored xoshiro256++ (`seed_from_u64` override).
        fn seed_from_u64(mut state: u64) -> Self {
            const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_mut(8) {
                state = state.wrapping_add(PHI);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                chunk.copy_from_slice(&z.to_le_bytes());
            }
            Self::from_seed(seed)
        }
    }
}

/// Types that `Rng::gen` can produce (mirrors the `Standard`
/// distribution for the types the workspace samples).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand treats usize as u64 on 64-bit targets.
        rng.next_u64() as usize
    }
}

impl StandardSample for f64 {
    /// Multiply-based `[0, 1)` sampling with 53 random bits, exactly
    /// `impl Distribution<f64> for Standard` in rand 0.8.5.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let scale = 1.0 / ((1u64 << 53) as f64);
        let value = rng.next_u64() >> 11;
        scale * (value as f64)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand: one u32, lowest bit.
        (rng.next_u32() & 1) == 1
    }
}

/// Uniform integer sampling per rand 0.8.5 `UniformInt` (Lemire's
/// widening-multiply method with rejection zone).
pub trait SampleUniform: Sized {
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_u64_like {
    ($ty:ty) => {
        impl SampleUniform for $ty {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range");
                Self::sample_single_inclusive(low, high - 1, rng)
            }

            #[inline]
            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let range = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                if range == 0 {
                    // The whole type domain: every u64 is acceptable.
                    return rng.next_u64() as $ty;
                }
                // Rejection zone exactly as `UniformInt::new_inclusive`
                // computes it (the golden-output gate pins this choice:
                // upstream's `gen_range` streams match the modulo zone,
                // not the power-of-two approximation).
                let ints_to_reject = (u64::MAX - range + 1) % range;
                let zone = u64::MAX - ints_to_reject;
                loop {
                    let v = rng.next_u64();
                    let m = u128::from(v) * u128::from(range);
                    let (hi, lo) = ((m >> 64) as u64, m as u64);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_u64_like!(u64);
uniform_u64_like!(usize);
uniform_u64_like!(i64);

impl SampleUniform for u32 {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low < high, "cannot sample empty range");
        Self::sample_single_inclusive(low, high - 1, rng)
    }

    #[inline]
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low <= high, "cannot sample empty range");
        // rand's $u_large for u32 is u32: one next_u32 per attempt.
        let range = high.wrapping_sub(low).wrapping_add(1);
        if range == 0 {
            return rng.next_u32();
        }
        // Same modulo rejection zone as the u64 path (see above), in
        // 32-bit arithmetic.
        let ints_to_reject = (u32::MAX - range + 1) % range;
        let zone = u32::MAX - ints_to_reject;
        loop {
            let v = rng.next_u32();
            let m = u64::from(v) * u64::from(range);
            let (hi, lo) = ((m >> 32) as u32, m as u32);
            if lo <= zone {
                return low.wrapping_add(hi);
            }
        }
    }
}

/// Ranges accepted by [`Rng::gen_range`] (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single_inclusive(*self.start(), *self.end(), rng)
    }
}

/// User-facing sampling methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Integer Bernoulli, exactly rand 0.8.5: `p_int = (p * 2^64) as
    /// u64`, sample true iff `next_u64() < p_int` (p == 1.0 is always
    /// true).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        if p == 1.0 {
            return true;
        }
        let scale = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * scale) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn xoshiro256plusplus_reference_vector() {
        // Test vector from the xoshiro256++ reference implementation
        // (the same vector rand 0.8.5 pins), state = [1, 2, 3, 4].
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = SmallRng::from_seed(seed);
        let expected = [
            41_943_041,
            58_720_359,
            3_588_806_011_781_223,
            3_591_011_842_654_386,
            9_228_616_714_210_784_205,
            9_973_669_472_204_895_162,
            14_011_001_112_246_962_877,
            12_406_186_145_184_390_807,
            15_849_039_046_786_891_736,
            10_450_023_813_501_588_000,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(rng.next_u64(), e, "output {i}");
        }
    }

    #[test]
    fn seed_from_u64_zero_matches_splitmix64_reference() {
        // SplitMix64 seeded with 0 famously outputs
        // 0xE220A8397B1DCDAF first (reference vector from the
        // published splitmix64.c); the four state words below are the
        // first four reference outputs. The first xoshiro256++ output
        // must then follow from that state.
        let s: [u64; 4] = [
            0xE220_A839_7B1D_CDAF,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
        ];
        let mut rng = SmallRng::seed_from_u64(0);
        let first = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        assert_eq!(rng.next_u64(), first);
    }

    #[test]
    fn seed_from_u64_is_splitmix64() {
        // SplitMix64(0) produces these four state words; the first
        // output must then follow the xoshiro256++ output function.
        let mut rng = SmallRng::seed_from_u64(0);
        let splitmix = |state: &mut u64| {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut state = 0u64;
        let s: [u64; 4] = core::array::from_fn(|_| splitmix(&mut state));
        let first = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        assert_eq!(rng.next_u64(), first);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = a.gen_range(0..97);
            assert!(x < 97);
            assert_eq!(x, b.gen_range(0..97));
        }
        let mut rng = SmallRng::seed_from_u64(9);
        for i in 1usize..200 {
            let x = rng.gen_range(0..=i);
            assert!(x <= i);
        }
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(0..10);
            assert!(x < 10);
        }
    }

    #[test]
    fn f64_standard_is_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_half_is_top_bit() {
        // p = 0.5 → p_int = 2^63: true iff the top bit of next_u64 is 0.
        let mut a = SmallRng::seed_from_u64(21);
        let mut b = SmallRng::seed_from_u64(21);
        for _ in 0..256 {
            assert_eq!(a.gen_bool(0.5), b.next_u64() < (1u64 << 63));
        }
    }
}
