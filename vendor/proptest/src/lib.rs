//! Vendored, dependency-free mini property-testing engine exposing the
//! subset of the `proptest` 1.x API this workspace uses, for fully
//! offline builds.
//!
//! Covered surface: the `proptest!` macro (with per-test `#[...]`
//! attributes and `pat in strategy` bindings), `any::<T>()` for the
//! primitive types the tests sample, integer range and range-inclusive
//! strategies, tuple strategies, `Just`, `prop_oneof!`,
//! `prop_map`, `proptest::collection::vec`, and the `prop_assert*!`
//! macros. Case count defaults to 256 and honors the `PROPTEST_CASES`
//! environment variable (CI's Miri job sets it to 8).
//!
//! Deliberate simplifications versus real proptest: no shrinking (a
//! failing case reports its case number and seed instead of a minimal
//! counterexample) and no persistence of failing seeds
//! (`.proptest-regressions` files are ignored). Generation is seeded
//! deterministically per test from the test's module path, so failures
//! reproduce exactly across runs.

pub mod test_runner {
    /// Deterministic generator driving all strategies (SplitMix64).
    /// Not related to the simulator's own RNG contract — this only
    /// feeds test-input generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a stable string (the test's `module_path!()` +
        /// name), so each test sees its own reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            let mut state = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                state ^= u64::from(byte);
                state = state.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)` (multiply-shift reduction; the
        /// tiny modulo bias is irrelevant for test-input generation).
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty bound");
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }

    /// Number of cases per property: `PROPTEST_CASES` or 256.
    pub fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256)
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test inputs. Unlike real proptest there is no
    /// value tree / shrinking: a strategy just produces values.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { gen: Box::new(move |rng| self.generate(rng)) }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased strategy (the arms of `prop_oneof!`).
    pub struct BoxedStrategy<V> {
        gen: Box<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (self.gen)(rng)
        }
    }

    /// Uniform choice between strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($ty:ty),*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $ty)
                }
            }

            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        // Whole u64 domain.
                        return rng.next_u64() as $ty;
                    }
                    start.wrapping_add(rng.below(span) as $ty)
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategies {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_ints {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary_value(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-block configuration, settable via
/// `#![proptest_config(ProptestConfig::with_cases(n))]` inside
/// [`proptest!`]. An explicit `with_cases` overrides the
/// `PROPTEST_CASES` environment default, matching upstream.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: crate::test_runner::case_count() as u32 }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `pat in strategy` binding is generated
/// per case and the body runs `PROPTEST_CASES` (default 256) times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = ($cfg).cases as usize;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..cases {
                let result: ::core::result::Result<(), ::std::string::String> = (|| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                    Ok(())
                })();
                if let Err(message) = result {
                    panic!("{} failed at case {case}/{cases}: {message}", stringify!($name));
                }
            }
        }
    )*};
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::test_runner::case_count();
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..cases {
                let result: ::core::result::Result<(), ::std::string::String> = (|| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                    Ok(())
                })();
                if let Err(message) = result {
                    panic!("{} failed at case {case}/{cases}: {message}", stringify!($name));
                }
            }
        }
    )*};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts inside a `proptest!` body (early-returns the case error).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: {} == {} (left: {l:?}, right: {r:?})",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "{} (left: {l:?}, right: {r:?})",
                format!($($fmt)+)
            ));
        }
    }};
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: {} != {} (both: {l:?})",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!("{} (both: {l:?})", format!($($fmt)+)));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let x = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let y = (1u32..=8).generate(&mut rng);
            assert!((1..=8).contains(&y));
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..200 {
            let v = crate::collection::vec(any::<u8>(), 2..9).generate(&mut rng);
            assert!((2..9).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![(0u8..4).prop_map(|x| u32::from(x)), Just(99u32),];
        let mut rng = TestRng::deterministic("oneof");
        let mut saw_just = false;
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v < 4 || v == 99);
            saw_just |= v == 99;
        }
        assert!(saw_just, "union never picked the second arm");
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0u64..100, flips in crate::collection::vec(any::<bool>(), 0..8)) {
            prop_assert!(x < 100);
            prop_assert_eq!(flips.len(), flips.len());
            prop_assert_ne!(x, 100, "x must stay below 100, got {}", x);
        }
    }
}
