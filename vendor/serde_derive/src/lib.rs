//! No-op `Serialize` / `Deserialize` derives for the vendored serde
//! stub: the workspace declares the derives on plain-data types but
//! never serializes through them (all JSON output is hand-rolled), so
//! expanding to nothing is sufficient and keeps the build offline.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
