//! Vendored, dependency-free micro-benchmark runner exposing the subset
//! of the `criterion` 0.5 API this workspace uses, for fully offline
//! builds.
//!
//! Output contract: for every `<group>/<bench>` the runner writes
//! `target/criterion/<group>/<bench>/new/estimates.json` containing
//! `mean`/`median`/`std_dev` objects with `point_estimate` fields in
//! nanoseconds — the exact shape `cargo xtask bench-report` parses for
//! the >15% regression gate.
//!
//! Measurement model: per sample the routine runs in a calibrated batch
//! (total batch time ≥ ~2 ms, at least 9 iterations) and the sample
//! value is the *minimum* per-iteration time across 9 timed sub-batches
//! — min-of-9 rejects scheduler-steal noise on shared CI runners, which
//! matters more here than criterion's full bootstrap analysis. The
//! reported median is the median over `sample_size` such samples.
//!
//! CLI: `--test` (from `cargo bench -- --test`) runs every routine once
//! as a smoke check without timing or writing estimates; the `--bench`
//! flag cargo always appends is accepted and ignored, as are filter
//! substrings (benches not matching a filter are skipped).

use std::hint;
use std::path::PathBuf;
use std::time::Instant;

/// Re-export point for `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// How `iter_batched` amortizes setup; the stub times each iteration
/// individually, so all variants behave like `PerIteration`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation; accepted and ignored (the regression gate
/// compares raw medians).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level benchmark driver, constructed by `criterion_group!`.
pub struct Criterion {
    test_mode: bool,
    filters: Vec<String>,
    criterion_dir: PathBuf,
}

impl Criterion {
    /// Builds a driver from the process arguments cargo passes to a
    /// `harness = false` bench binary.
    #[must_use]
    pub fn from_args() -> Self {
        let mut test_mode = false;
        let mut filters = Vec::new();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" | "-t" => test_mode = true,
                // Cargo always appends `--bench`; other flags that real
                // criterion accepts are irrelevant to the stub.
                s if s.starts_with('-') => {}
                s => filters.push(s.to_owned()),
            }
        }
        Criterion { test_mode, filters, criterion_dir: criterion_dir() }
    }

    /// Starts a named benchmark group (the only entry point the
    /// workspace benches use).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, group: name.to_owned(), sample_size: 100 }
    }

    /// Ungrouped bench; stored under a group named after the bench id,
    /// mirroring criterion's directory layout. Generic over the id like
    /// real criterion's `impl Into<BenchmarkId>` (benches pass both
    /// `&str` and `format!` strings).
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        let id = id.as_ref();
        let mut group = self.benchmark_group(id);
        group.bench_function(id, f);
        group.finish();
        self
    }

    fn matches_filter(&self, group: &str, id: &str) -> bool {
        if self.filters.is_empty() {
            return true;
        }
        let full = format!("{group}/{id}");
        self.filters.iter().any(|f| full.contains(f.as_str()))
    }
}

/// Locates `target/criterion` like real criterion: `CARGO_TARGET_DIR`
/// if set, else the nearest ancestor `target` directory of the bench
/// crate's manifest.
fn criterion_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(dir).join("criterion");
    }
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".to_owned());
    let mut dir = PathBuf::from(manifest);
    loop {
        let candidate = dir.join("target");
        if candidate.is_dir() {
            return candidate.join("criterion");
        }
        if !dir.pop() {
            return PathBuf::from("target").join("criterion");
        }
    }
}

/// A named group of benches sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Generic over the id like real criterion's `impl Into<BenchmarkId>`
    /// (benches pass both `&str` and `format!` strings).
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let id = id.as_ref();
        if !self.criterion.matches_filter(&self.group, id) {
            return self;
        }
        if self.criterion.test_mode {
            // Smoke mode: run the routine once, no timing, no report.
            let mut bencher = Bencher { mode: Mode::Smoke, samples: Vec::new() };
            f(&mut bencher);
            println!("Testing {}/{id} ... ok", self.group);
            return self;
        }
        let mut bencher =
            Bencher { mode: Mode::Measure { sample_size: self.sample_size }, samples: Vec::new() };
        f(&mut bencher);
        let report = Estimates::from_samples(&bencher.samples);
        println!(
            "{}/{id}: median {:.1} ns/iter (mean {:.1} ns, {} samples)",
            self.group,
            report.median,
            report.mean,
            bencher.samples.len()
        );
        report.write(&self.criterion.criterion_dir, &self.group, id);
        self
    }

    pub fn finish(&mut self) {}
}

#[derive(Clone, Copy)]
enum Mode {
    Smoke,
    Measure { sample_size: usize },
}

/// Per-bench measurement state handed to the closure.
pub struct Bencher {
    mode: Mode,
    /// ns-per-iteration samples.
    samples: Vec<f64>,
}

/// Number of timed sub-batches per sample; the sample keeps the
/// minimum, rejecting scheduler-steal outliers.
const SUB_BATCHES: u32 = 9;
/// Calibration floor per timed sub-batch.
const MIN_BATCH_NANOS: u128 = 2_000_000;

impl Bencher {
    /// Times `routine` with no per-iteration setup.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let sample_size = match self.mode {
            Mode::Smoke => {
                black_box(routine());
                return;
            }
            Mode::Measure { sample_size } => sample_size,
        };
        // Calibrate how many iterations a sub-batch needs to cross the
        // timing floor (quantization noise dominates below it).
        let mut iters_per_batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos();
            if elapsed >= MIN_BATCH_NANOS || iters_per_batch >= 1 << 20 {
                break;
            }
            iters_per_batch *= 2;
        }
        for _ in 0..sample_size {
            let mut best = f64::INFINITY;
            for _ in 0..SUB_BATCHES {
                let start = Instant::now();
                for _ in 0..iters_per_batch {
                    black_box(routine());
                }
                let ns = start.elapsed().as_nanos() as f64 / iters_per_batch as f64;
                best = best.min(ns);
            }
            self.samples.push(best);
        }
    }

    /// Times `routine` with a fresh untimed `setup` product per call.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let sample_size = match self.mode {
            Mode::Smoke => {
                black_box(routine(setup()));
                return;
            }
            Mode::Measure { sample_size } => sample_size,
        };
        for _ in 0..sample_size {
            let mut best = f64::INFINITY;
            for _ in 0..SUB_BATCHES {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                best = best.min(start.elapsed().as_nanos() as f64);
            }
            self.samples.push(best);
        }
    }

    /// Like [`Bencher::iter_batched`], passing the input by `&mut`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let sample_size = match self.mode {
            Mode::Smoke => {
                black_box(routine(&mut setup()));
                return;
            }
            Mode::Measure { sample_size } => sample_size,
        };
        for _ in 0..sample_size {
            let mut best = f64::INFINITY;
            for _ in 0..SUB_BATCHES {
                let mut input = setup();
                let start = Instant::now();
                black_box(routine(&mut input));
                best = best.min(start.elapsed().as_nanos() as f64);
            }
            self.samples.push(best);
        }
    }
}

struct Estimates {
    mean: f64,
    median: f64,
    std_dev: f64,
}

impl Estimates {
    fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Estimates { mean: 0.0, median: 0.0, std_dev: 0.0 };
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mid = sorted.len() / 2;
        let median = if sorted.len() % 2 == 0 {
            f64::midpoint(sorted[mid - 1], sorted[mid])
        } else {
            sorted[mid]
        };
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
        Estimates { mean, median, std_dev: var.sqrt() }
    }

    /// Writes `new/estimates.json` in the layout `bench-report` parses.
    fn write(&self, criterion_dir: &std::path::Path, group: &str, id: &str) {
        let dir = criterion_dir.join(sanitize(group)).join(sanitize(id)).join("new");
        if let Err(err) = std::fs::create_dir_all(&dir) {
            eprintln!("criterion stub: cannot create {}: {err}", dir.display());
            return;
        }
        let json = format!(
            "{{\"mean\":{{\"point_estimate\":{:.1}}},\
             \"median\":{{\"point_estimate\":{:.1}}},\
             \"std_dev\":{{\"point_estimate\":{:.1}}}}}\n",
            self.mean, self.median, self.std_dev
        );
        let path = dir.join("estimates.json");
        if let Err(err) = std::fs::write(&path, json) {
            eprintln!("criterion stub: cannot write {}: {err}", path.display());
        }
    }
}

/// Criterion's directory-name sanitization for bench ids.
fn sanitize(id: &str) -> String {
    id.chars().map(|c| if c == '/' || c == ' ' || c == '\\' { '_' } else { c }).collect()
}

/// Declares a bench group entry point running each target function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_median_is_robust() {
        let est = Estimates::from_samples(&[1.0, 2.0, 100.0]);
        assert_eq!(est.median, 2.0);
        let est = Estimates::from_samples(&[1.0, 2.0, 3.0, 100.0]);
        assert_eq!(est.median, 2.5);
    }

    #[test]
    fn written_estimates_parse_like_bench_report() {
        // Reimplements bench_report::extract_median's string scan to
        // pin the output shape without a crate dependency cycle.
        let est = Estimates { mean: 4.0, median: 3.5, std_dev: 0.5 };
        let dir = std::env::temp_dir().join(format!("dpc-criterion-stub-{}", std::process::id()));
        est.write(&dir, "simulator", "demo");
        let text = std::fs::read_to_string(
            dir.join("simulator").join("demo").join("new").join("estimates.json"),
        )
        .unwrap();
        let median_at = text.find("\"median\"").unwrap();
        let tail = &text[median_at..];
        let key_at = tail.find("\"point_estimate\"").unwrap();
        let after = &tail[key_at + "\"point_estimate\"".len()..];
        let colon = after.find(':').unwrap();
        let value = after[colon + 1..].trim_start().split([',', '}']).next().unwrap().trim();
        assert_eq!(value.parse::<f64>().unwrap(), 3.5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sanitize_replaces_separators() {
        assert_eq!(sanitize("a/b c"), "a_b_c");
    }
}
