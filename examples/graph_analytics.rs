//! Compare every TLB/LLC policy pairing across the graph-analytics
//! workloads — the class the paper's introduction motivates (GAPBS,
//! Ligra, Graph500 all appear in its Table II).
//!
//! ```text
//! cargo run --release -p dpc --example graph_analytics [mem_ops]
//! ```

use dpc::prelude::*;

const GRAPH_WORKLOADS: [&str; 6] = ["bfs", "pr", "cc", "sssp", "bc", "graph500"];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mem_ops: u64 = std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(500_000);

    let policies: [(&str, TlbPolicySel, LlcPolicySel); 5] = [
        ("baseline", TlbPolicySel::Baseline, LlcPolicySel::Baseline),
        ("dpPred", TlbPolicySel::DpPred, LlcPolicySel::Baseline),
        ("dpPred+cbPred", TlbPolicySel::DpPred, LlcPolicySel::CbPred),
        ("SHiP both", TlbPolicySel::ShipTlb, LlcPolicySel::ShipLlc),
        ("AIP both", TlbPolicySel::AipTlb, LlcPolicySel::AipLlc),
    ];

    let factory = WorkloadFactory::new(Scale::Small, 42);
    let base = RunConfig::baseline(mem_ops / 5, mem_ops);

    println!("IPC by policy ({} memory operations per run)\n", mem_ops);
    print!("{:<12}", "workload");
    for (name, _, _) in &policies {
        print!("{name:>15}");
    }
    println!();
    for workload in GRAPH_WORKLOADS {
        print!("{workload:<12}");
        for &(_, tlb, llc) in &policies {
            let result = run_workload(&factory, workload, &base.with_policies(tlb, llc));
            print!("{:>15.3}", result.stats.ipc());
        }
        println!();
    }

    println!("\nLLT MPKI by policy\n");
    print!("{:<12}", "workload");
    for (name, _, _) in &policies {
        print!("{name:>15}");
    }
    println!();
    for workload in GRAPH_WORKLOADS {
        print!("{workload:<12}");
        for &(_, tlb, llc) in &policies {
            let result = run_workload(&factory, workload, &base.with_policies(tlb, llc));
            print!("{:>15.2}", result.stats.llt_mpki());
        }
        println!();
    }
    Ok(())
}
