//! Quickstart: build the paper's machine with dpPred + cbPred attached,
//! run one workload, and compare against the unmanaged baseline.
//!
//! ```text
//! cargo run --release -p dpc --example quickstart [workload] [mem_ops]
//! ```

use dpc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload_name = args.first().map_or("bfs", String::as_str);
    let mem_ops: u64 = args.get(1).map(|s| s.parse()).transpose()?.unwrap_or(500_000);

    let config = SystemConfig::paper_baseline();
    let factory = WorkloadFactory::new(Scale::Small, 42);

    // --- Baseline: plain LRU everywhere. ---
    let mut baseline_system = System::new(config)?;
    let mut workload = factory.build(workload_name)?;
    let baseline = baseline_system.run_until(workload.as_mut(), mem_ops);

    // --- The paper's configuration: dpPred on the L2 TLB, cbPred on the
    //     LLC, coupled through the PFN filter queue. ---
    let mut predicted_system = System::with_policies(
        config,
        Box::new(DpPred::paper_default()),
        Box::new(CbPred::paper_default(&config.llc)),
    )?;
    let mut workload = factory.build(workload_name)?;
    let predicted = predicted_system.run_until(workload.as_mut(), mem_ops);

    println!("workload: {workload_name} ({mem_ops} memory operations)\n");
    println!("{:<22}{:>12}{:>14}", "", "baseline", "dpPred+cbPred");
    let rows: [(&str, f64, f64); 5] = [
        ("IPC", baseline.ipc(), predicted.ipc()),
        ("LLT MPKI", baseline.llt_mpki(), predicted.llt_mpki()),
        ("LLC MPKI", baseline.llc_mpki(), predicted.llc_mpki()),
        ("LLT hit rate %", baseline.llt.hit_rate() * 100.0, predicted.llt.hit_rate() * 100.0),
        ("page walks", baseline.walks as f64, predicted.walks as f64),
    ];
    for (name, base, pred) in rows {
        println!("{name:<22}{base:>12.3}{pred:>14.3}");
    }
    println!(
        "\nLLT fills bypassed: {}  (shadow-table saves: {})",
        predicted.llt.bypasses, predicted.llt.shadow_hits
    );
    println!("LLC fills bypassed: {}", predicted.llc.bypasses);
    if let Some(report) = predicted_system.llt_policy().accuracy_report() {
        println!(
            "dpPred accuracy {:.1}%, coverage {:.1}%",
            report.accuracy() * 100.0,
            report.coverage() * 100.0
        );
    }
    if let Some(report) = predicted_system.llc_policy().accuracy_report() {
        println!(
            "cbPred accuracy {:.1}%, coverage {:.1}%",
            report.accuracy() * 100.0,
            report.coverage() * 100.0
        );
    }
    println!("\nIPC change: {:+.2}%", (predicted.ipc() / baseline.ipc() - 1.0) * 100.0);
    Ok(())
}
