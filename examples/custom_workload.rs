//! Bring your own workload: implement [`Workload`] for a custom access
//! pattern and run it through the full simulator.
//!
//! The example models a hash-join probe phase: a sequential scan of a
//! probe relation, a hash computation, and a random lookup into a large
//! hash table — a classic mixed hot/cold page pattern where a dead-page
//! predictor protects the hot bucket-header pages from the cold probe
//! stream.
//!
//! ```text
//! cargo run --release -p dpc --example custom_workload
//! ```

use dpc::prelude::*;

/// A synthetic hash-join probe: stream the outer relation, probe a hash
/// table, follow one chain link.
struct HashJoinProbe {
    /// Next probe-relation row.
    row: u64,
    rows: u64,
    /// Base of the probe relation (32-byte tuples).
    relation_base: u64,
    /// Base of the bucket-header array (hot: 1 MB).
    headers_base: u64,
    header_entries: u64,
    /// Base of the overflow-chain node pool (cold: 128 MB).
    nodes_base: u64,
    node_entries: u64,
    emitted: std::collections::VecDeque<Event>,
}

impl HashJoinProbe {
    fn new() -> Self {
        HashJoinProbe {
            row: 0,
            rows: u64::MAX,
            relation_base: 0x1000_0000,
            headers_base: 0x3000_0000,
            header_entries: 1 << 17, // 128K × 8 B = 1 MB of headers
            nodes_base: 0x5000_0000,
            node_entries: 1 << 22, // 4M × 32 B = 128 MB of chain nodes
            emitted: std::collections::VecDeque::new(),
        }
    }

    fn mix(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 31)
    }
}

impl Workload for HashJoinProbe {
    fn name(&self) -> &str {
        "hash-join-probe"
    }

    fn next_event(&mut self) -> Option<Event> {
        if let Some(event) = self.emitted.pop_front() {
            return Some(event);
        }
        if self.row >= self.rows {
            return None;
        }
        let row = self.row;
        self.row += 1;
        // 1. Stream the probe tuple (sequential, one-touch pages).
        let tuple = VirtAddr::new(self.relation_base + (row % (1 << 22)) * 32);
        self.emitted.push_back(Event::load(Pc::new(0x40_1000), tuple));
        // 2. Hash → bucket header (hot 1 MB region, heavily reused).
        let bucket = Self::mix(row) % self.header_entries;
        let header = VirtAddr::new(self.headers_base + bucket * 8);
        self.emitted.push_back(Event::load(Pc::new(0x40_1004), header));
        // 3. Follow one chain node (cold 128 MB pool, effectively random).
        let node = Self::mix(row ^ 0xABCD) % self.node_entries;
        let chain = VirtAddr::new(self.nodes_base + node * 32);
        self.emitted.push_back(Event::load(Pc::new(0x40_1008), chain));
        // A little compute between probes.
        self.emitted.push_back(Event::Compute { ops: 4 });
        self.emitted.pop_front()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SystemConfig::paper_baseline();
    let mem_ops = 600_000;

    let mut baseline_system = System::new(config)?;
    let baseline = baseline_system.run_until(&mut HashJoinProbe::new(), mem_ops);

    let mut predicted_system = System::with_policies(
        config,
        Box::new(DpPred::paper_default()),
        Box::new(CbPred::paper_default(&config.llc)),
    )?;
    let predicted = predicted_system.run_until(&mut HashJoinProbe::new(), mem_ops);

    println!("hash-join probe, {} memory operations\n", mem_ops);
    println!("{:<16}{:>12}{:>16}", "", "baseline", "dpPred+cbPred");
    println!("{:<16}{:>12.3}{:>16.3}", "IPC", baseline.ipc(), predicted.ipc());
    println!("{:<16}{:>12.2}{:>16.2}", "LLT MPKI", baseline.llt_mpki(), predicted.llt_mpki());
    println!("{:<16}{:>12.2}{:>16.2}", "LLC MPKI", baseline.llc_mpki(), predicted.llc_mpki());
    println!(
        "\nThe cold chain-node pages are bypassed ({} LLT bypasses), keeping the\n\
         hot bucket-header pages resident in the L2 TLB.",
        predicted.llt.bypasses
    );
    Ok(())
}
