//! Sweep dpPred's design parameters on one workload: pHIST geometry,
//! prediction threshold, and shadow-table depth — an extended version of
//! the paper's Fig. 11b/11c studies.
//!
//! ```text
//! cargo run --release -p dpc --example sensitivity_sweep [workload]
//! ```

use dpc::prelude::*;
use dpc_predictors::DpPredConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = std::env::args().nth(1).unwrap_or_else(|| "canneal".to_owned());
    let mem_ops = 500_000;
    let factory = WorkloadFactory::new(Scale::Small, 42);
    let base = RunConfig::baseline(mem_ops / 5, mem_ops);

    let baseline_ipc = run_workload(&factory, &workload, &base).stats.ipc();
    println!("workload {workload}: baseline IPC {baseline_ipc:.3}\n");
    println!(
        "{:<34}{:>10}{:>10}{:>10}{:>10}",
        "dpPred variant", "norm IPC", "bypass%", "acc%", "cov%"
    );

    let variants: Vec<(String, DpPredConfig)> = vec![
        ("paper default (6b PC × 4b VPN)".into(), DpPredConfig::paper_default()),
        (
            "wider table (6b PC × 5b VPN)".into(),
            DpPredConfig { vpn_bits: 5, ..DpPredConfig::paper_default() },
        ),
        (
            "PC-only (10b PC)".into(),
            DpPredConfig { pc_bits: 10, vpn_bits: 0, ..DpPredConfig::paper_default() },
        ),
        (
            "low threshold (3)".into(),
            DpPredConfig { threshold: 3, ..DpPredConfig::paper_default() },
        ),
        (
            "no shadow table".into(),
            DpPredConfig { shadow_entries: 0, ..DpPredConfig::paper_default() },
        ),
        (
            "4-entry shadow".into(),
            DpPredConfig { shadow_entries: 4, ..DpPredConfig::paper_default() },
        ),
    ];

    for (name, config) in variants {
        let run = base.with_policies(TlbPolicySel::DpPredCustom(config), LlcPolicySel::Baseline);
        let result = run_workload(&factory, &workload, &run);
        let stats = &result.stats;
        let bypass_pct = if stats.llt.misses == 0 {
            0.0
        } else {
            stats.llt.bypasses as f64 * 100.0 / stats.llt.misses as f64
        };
        let report = result.llt_accuracy.unwrap_or_default();
        println!(
            "{name:<34}{:>10.3}{:>10.1}{:>10.1}{:>10.1}",
            stats.ipc() / baseline_ipc,
            bypass_pct,
            report.accuracy() * 100.0,
            report.coverage() * 100.0,
        );
    }
    Ok(())
}
