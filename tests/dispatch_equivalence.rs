//! Equivalence proof for the policy-dispatch refactor (parallel to
//! `soa_equivalence.rs` for the SoA refactor): the monomorphized
//! [`dpc::run_workload`] path and the boxed `dyn`-fallback
//! [`dpc::run_workload_dyn`] path must produce **identical** simulator
//! statistics and predictor accuracy reports — the typed dispatcher may
//! only change how fast the answer is computed, never the answer.
//!
//! Coverage: every `TlbPolicySel` and every `LlcPolicySel` variant
//! appears in at least one of the selector pairs below, and each pair
//! runs over all 14 paper workload generators with a warm-up/measure
//! split, so the comparison exercises TLB and LLC hook sites, bypass
//! paths, shadow/PFQ probes, and `reset_stats` under both dispatchers.

use dpc::{run_workload, run_workload_dyn, LlcPolicySel, RunConfig, TlbPolicySel};
use dpc_predictors::DpPredConfig;
use dpc_types::SystemConfig;
use dpc_workloads::{Scale, WorkloadFactory, WORKLOAD_NAMES};

/// Small budgets keep the full matrix (9 pairs × 14 workloads × 2
/// dispatchers) in test-suite time while still crossing several
/// `EVENT_CHUNK` boundaries and landing the warm-up split mid-chunk.
const WARMUP: u64 = 200;
const MEASURE: u64 = 2000;

fn selector_pairs() -> Vec<(TlbPolicySel, LlcPolicySel)> {
    let system = SystemConfig::paper_baseline();
    vec![
        // The paper matrix's corners and headline configuration…
        (TlbPolicySel::Baseline, LlcPolicySel::Baseline),
        (TlbPolicySel::DpPred, LlcPolicySel::CbPred),
        // …its ablations…
        (TlbPolicySel::DpPredNoShadow, LlcPolicySel::CbPredNoPfq),
        (
            TlbPolicySel::DpPredCustom(DpPredConfig::for_tlb(&system.l2_tlb)),
            LlcPolicySel::CbPredPfq(32),
        ),
        (TlbPolicySel::DuelingDpPred, LlcPolicySel::CbPred),
        // …the related-work comparison points…
        (TlbPolicySel::ShipTlb, LlcPolicySel::ShipLlc),
        (TlbPolicySel::AipTlb, LlcPolicySel::AipLlc),
        // …and one-sided configurations (only one hook side active).
        (TlbPolicySel::DpPred, LlcPolicySel::Baseline),
        (TlbPolicySel::Baseline, LlcPolicySel::CbPred),
    ]
}

#[test]
fn monomorphized_dispatch_matches_dyn_fallback_everywhere() {
    let factory = WorkloadFactory::new(Scale::Tiny, 42);
    for (tlb, llc) in selector_pairs() {
        let config = RunConfig::baseline(WARMUP, MEASURE).with_policies(tlb, llc);
        for workload in WORKLOAD_NAMES {
            let typed = run_workload(&factory, workload, &config);
            let fallback = run_workload_dyn(&factory, workload, &config);
            assert_eq!(
                typed.stats, fallback.stats,
                "SimStats diverged for {workload} under {tlb:?}+{llc:?}"
            );
            assert_eq!(
                typed.llt_accuracy, fallback.llt_accuracy,
                "LLT accuracy diverged for {workload} under {tlb:?}+{llc:?}"
            );
            assert_eq!(
                typed.llc_accuracy, fallback.llc_accuracy,
                "LLC accuracy diverged for {workload} under {tlb:?}+{llc:?}"
            );
        }
    }
}
