//! End-to-end integration tests: run real workloads through the full
//! system under every policy combination and check global invariants.

use dpc::prelude::*;

fn run(workload: &str, tlb: TlbPolicySel, llc: LlcPolicySel, mem_ops: u64) -> dpc::RunResult {
    let factory = WorkloadFactory::new(Scale::Tiny, 42);
    let config = RunConfig::baseline(1_000, mem_ops).with_policies(tlb, llc);
    dpc::run_workload(&factory, workload, &config)
}

#[test]
fn every_workload_runs_under_every_policy_pair() {
    let tlb_policies = [TlbPolicySel::Baseline, TlbPolicySel::DpPred, TlbPolicySel::ShipTlb];
    let llc_policies = [LlcPolicySel::Baseline, LlcPolicySel::CbPred, LlcPolicySel::AipLlc];
    for workload in WORKLOAD_NAMES {
        for &tlb in &tlb_policies {
            for &llc in &llc_policies {
                let result = run(workload, tlb, llc, 5_000);
                let s = &result.stats;
                assert_eq!(s.mem_ops, 5_000, "{workload} under {tlb:?}/{llc:?}");
                assert!(s.cycles > 0);
                assert!(s.instructions >= s.mem_ops);
            }
        }
    }
}

#[test]
fn conservation_laws_hold_everywhere() {
    for workload in ["bfs", "canneal", "lbm", "mcf"] {
        let result = run(workload, TlbPolicySel::DpPred, LlcPolicySel::CbPred, 30_000);
        let s = &result.stats;
        for (name, st) in [
            ("l1i_tlb", &s.l1i_tlb),
            ("l1d_tlb", &s.l1d_tlb),
            ("llt", &s.llt),
            ("l1d", &s.l1d),
            ("l2", &s.l2),
            ("llc", &s.llc),
        ] {
            assert_eq!(st.hits + st.misses, st.lookups, "{workload}/{name}");
        }
        // Every true LLT miss (not saved by the shadow) triggers a walk.
        assert_eq!(s.walks, s.llt.misses - s.llt.shadow_hits, "{workload} walks");
        // Fills + bypasses ≤ misses (shadow hits re-fill without a miss...
        // so fills can exceed; but bypasses never exceed misses).
        assert!(s.llt.bypasses <= s.llt.misses, "{workload} bypass bound");
        // Walker issues 1-4 PTE loads per walk.
        assert!(s.walk_pte_loads >= s.walks, "{workload} at least one PTE load per walk");
        assert!(s.walk_pte_loads <= 4 * s.walks, "{workload} at most four PTE loads per walk");
    }
}

#[test]
fn ipc_is_bounded_by_core_width() {
    for workload in WORKLOAD_NAMES {
        let result = run(workload, TlbPolicySel::Baseline, LlcPolicySel::Baseline, 10_000);
        let ipc = result.stats.ipc();
        assert!(ipc > 0.0 && ipc <= 4.0, "{workload}: IPC {ipc} outside (0, width]");
    }
}

#[test]
fn bypasses_only_happen_with_predictors() {
    let baseline = run("canneal", TlbPolicySel::Baseline, LlcPolicySel::Baseline, 20_000);
    assert_eq!(baseline.stats.llt.bypasses, 0);
    assert_eq!(baseline.stats.llc.bypasses, 0);
    assert!(baseline.llt_accuracy.is_none());
    assert!(baseline.llc_accuracy.is_none());
}

#[test]
fn accuracy_reports_are_internally_consistent() {
    for workload in ["canneal", "bfs", "mcf"] {
        let result = run(workload, TlbPolicySel::DpPred, LlcPolicySel::CbPred, 50_000);
        for report in [result.llt_accuracy, result.llc_accuracy].into_iter().flatten() {
            assert!(report.correct + report.mispredictions <= report.predictions + report.correct);
            assert!(report.accuracy() >= 0.0 && report.accuracy() <= 1.0);
            assert!(report.coverage() >= 0.0 && report.coverage() <= 1.0);
            assert!(report.correct <= report.true_doas || report.true_doas == 0);
        }
    }
}

#[test]
fn deadness_fractions_are_sane() {
    for workload in ["canneal", "cg.B"] {
        let result = run(workload, TlbPolicySel::Baseline, LlcPolicySel::Baseline, 50_000);
        for deadness in [result.stats.llt_deadness, result.stats.llc_deadness] {
            assert!(deadness.dead_fraction() >= deadness.doa_fraction());
            assert!(deadness.dead_fraction() <= 1.0);
            assert!(deadness.present >= deadness.dead);
        }
        let evictions = result.stats.llt_evictions;
        assert_eq!(
            evictions.doa + evictions.mostly_dead + evictions.live,
            evictions.total,
            "{workload}: eviction classes must partition evictions"
        );
    }
}

#[test]
fn oracle_never_loses_to_baseline_on_mpki() {
    let factory = WorkloadFactory::new(Scale::Tiny, 42);
    // Shrink the LLT so Tiny-scale footprints actually stress it.
    let mut config = RunConfig::baseline(0, 60_000);
    config.system = config.system.with_l2_tlb_entries(64);
    for workload in ["canneal", "mcf", "bfs"] {
        let baseline = dpc::run_workload(&factory, workload, &config);
        let oracle = dpc::run_oracle(&factory, workload, &config);
        assert!(
            oracle.stats.llt.misses <= baseline.stats.llt.misses * 101 / 100,
            "{workload}: Belady oracle must not lose ({} vs {})",
            oracle.stats.llt.misses,
            baseline.stats.llt.misses
        );
    }
}

#[test]
fn srrip_replacement_runs_end_to_end() {
    let factory = WorkloadFactory::new(Scale::Tiny, 42);
    let mut config = RunConfig::baseline(1_000, 20_000);
    config.system = config
        .system
        .with_l2_tlb_replacement(dpc_types::ReplacementKind::Srrip)
        .with_llc_replacement(dpc_types::ReplacementKind::Srrip);
    let result = dpc::run_workload(&factory, "bfs", &config);
    assert_eq!(result.stats.mem_ops, 20_000);
    let with_pred = dpc::run_workload(
        &factory,
        "bfs",
        &config.with_policies(TlbPolicySel::DpPred, LlcPolicySel::CbPred),
    );
    assert_eq!(with_pred.stats.mem_ops, 20_000);
}

#[test]
fn non_power_of_two_llc_runs() {
    let factory = WorkloadFactory::new(Scale::Tiny, 42);
    let mut config = RunConfig::baseline(1_000, 20_000);
    config.system = config.system.with_llc_bytes(3 << 20);
    let result = dpc::run_workload(
        &factory,
        "canneal",
        &config.with_policies(TlbPolicySel::DpPred, LlcPolicySel::CbPred),
    );
    assert_eq!(result.stats.mem_ops, 20_000);
}
