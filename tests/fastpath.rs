//! Fast-path ≡ slow-path differential suite (DESIGN.md §15).
//!
//! Replayed runs go through `System::run_stream`, where the batched
//! L1-hit fast path retires trivially-hitting events; live runs go
//! through `System::run_until`, which steps every event through the full
//! machinery. The two must be architecturally indistinguishable — same
//! `SimStats` (whose equality deliberately excludes the engine's
//! fast/slow telemetry split) and same predictor accuracy — for every
//! workload, across policy mixes and page sizes.

use dpc::prelude::*;

fn config(tlb: TlbPolicySel, llc: LlcPolicySel, page: AllocPolicy) -> RunConfig {
    RunConfig {
        system: SystemConfig::paper_baseline().with_page_policy(page),
        tlb_policy: tlb,
        llc_policy: llc,
        warmup_mem_ops: 500,
        measure_mem_ops: 6_000,
    }
}

/// Every workload × {baseline, dpPred+cbPred, AIP} × {4 KB, 2 MB}:
/// replayed (fast-path) statistics must equal live (slow-path) ones, and
/// the fast path must actually engage on the replay side.
#[test]
fn fast_path_is_architecturally_invisible_across_the_suite() {
    let fastpath_on = dpc_types::simd::fastpath_enabled();
    let replay = WorkloadFactory::new(Scale::Tiny, 21).with_trace_store(true);
    let live = WorkloadFactory::new(Scale::Tiny, 21).with_trace_store(false);
    let combos = [
        (TlbPolicySel::Baseline, LlcPolicySel::Baseline),
        (TlbPolicySel::DpPred, LlcPolicySel::CbPred),
        (TlbPolicySel::AipTlb, LlcPolicySel::AipLlc),
    ];
    let pages = [AllocPolicy::Base4K, AllocPolicy::Uniform(PageSize::Size2M)];
    let mut fast_hits_total = 0u64;
    let mut fast_l2_total = 0u64;
    for page in pages {
        for (tlb, llc) in combos {
            for workload in WORKLOAD_NAMES {
                let cfg = config(tlb, llc, page);
                let r = dpc::run_workload(&replay, workload, &cfg);
                let l = dpc::run_workload(&live, workload, &cfg);
                let label = format!("{workload} {tlb:?}/{llc:?} {page:?}");
                assert_eq!(r.stats, l.stats, "{label}: fast path must be invisible");
                assert_eq!(r.llt_accuracy, l.llt_accuracy, "{label}: TLB accuracy");
                assert_eq!(r.llc_accuracy, l.llc_accuracy, "{label}: LLC accuracy");
                // Live generation never enters `run_stream`, so it never
                // takes the fast path; the slow path accounts for every
                // event either way.
                assert_eq!(l.stats.fast_hits, 0, "{label}: live runs are all slow-path");
                assert_eq!(l.stats.fast_l2_hits, 0, "{label}: live runs are all slow-path");
                if fastpath_on {
                    assert!(r.stats.fast_hits > 0, "{label}: the fast path must engage on replay");
                } else {
                    assert_eq!(r.stats.fast_hits, 0, "{label}: DPC_FASTPATH=off must disable");
                    assert_eq!(r.stats.fast_l2_hits, 0, "{label}: DPC_FASTPATH=off must disable");
                }
                fast_hits_total += r.stats.fast_hits;
                fast_l2_total += r.stats.fast_l2_hits;
            }
        }
    }
    assert_eq!(fast_hits_total > 0, fastpath_on, "telemetry must reflect the gate");
    // The second tier (L2 TLB / L2 cache hits absorbed without slow-
    // stepping) must also engage somewhere in the suite — the stats
    // equality above already proved every such retire bit-identical.
    assert_eq!(fast_l2_total > 0, fastpath_on, "the second tier must engage on replay");
}
