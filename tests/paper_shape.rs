//! Paper-shape assertions: qualitative properties the reproduction must
//! exhibit, mirroring the paper's headline claims. These run at Small
//! scale with reduced event budgets, so thresholds are deliberately
//! conservative versions of the paper's numbers.
//!
//! These tests are the slowest in the suite (a few real workload
//! simulations each); they stay minutes-not-hours by sharing a single
//! lazily-built factory per test.

use dpc::prelude::*;

const WARMUP: u64 = 100_000;
const MEASURE: u64 = 400_000;

fn factory() -> WorkloadFactory {
    WorkloadFactory::new(Scale::Small, 42)
}

fn base() -> RunConfig {
    RunConfig::baseline(WARMUP, MEASURE)
}

/// Paper Fig. 1: most LLT entries are dead at any instant, and DOA
/// entries dominate the dead population on average.
#[test]
fn llt_entries_are_mostly_dead() {
    let f = factory();
    let mut dead_sum = 0.0;
    let mut doa_sum = 0.0;
    let workloads = ["canneal", "mcf", "bfs", "sssp", "cactusADM"];
    for w in workloads {
        let stats = dpc::run_workload(&f, w, &base()).stats;
        dead_sum += stats.llt_deadness.dead_fraction();
        doa_sum += stats.llt_deadness.doa_fraction();
    }
    let n = workloads.len() as f64;
    assert!(dead_sum / n > 0.6, "mean LLT dead fraction {:.2} too low", dead_sum / n);
    assert!(doa_sum / n > 0.4, "mean LLT DOA fraction {:.2} too low", doa_sum / n);
}

/// Paper Fig. 2: of the dead LLT entries at eviction, the overwhelming
/// majority are dead-on-arrival (≈86% in the paper).
#[test]
fn doa_dominates_dead_llt_evictions() {
    let f = factory();
    let stats = dpc::run_workload(&f, "canneal", &base()).stats;
    let e = stats.llt_evictions;
    assert!(e.total > 1000, "need a populated eviction sample");
    assert!(
        e.doa as f64 / (e.doa + e.mostly_dead) as f64 > 0.7,
        "DOA must dominate dead evictions ({} DOA vs {} mostly-dead)",
        e.doa,
        e.mostly_dead
    );
}

/// Paper Table III: DOA LLC blocks fall predominantly on DOA pages
/// (72.7% on average in the paper).
#[test]
fn doa_blocks_concentrate_on_doa_pages() {
    let f = factory();
    let mut sum = 0.0;
    let workloads = ["canneal", "mcf", "bfs"];
    for w in workloads {
        let stats = dpc::run_workload(&f, w, &base()).stats;
        assert!(stats.doa_blocks_classified > 100, "{w}: need classified blocks");
        sum += stats.doa_block_page_correlation();
    }
    let mean = sum / workloads.len() as f64;
    assert!(mean > 0.5, "mean block↔page DOA correlation {mean:.2} too low");
}

/// Paper Table IV / Fig. 9: dpPred reduces LLT MPKI on the TLB-bound
/// workloads and never increases it meaningfully.
#[test]
fn dppred_reduces_llt_mpki_without_regressions() {
    let f = factory();
    let mut improved = 0;
    let workloads = ["cactusADM", "sssp", "bfs", "graph500", "canneal", "mcf"];
    for w in workloads {
        let baseline = dpc::run_workload(&f, w, &base()).stats.llt_mpki();
        let dppred = dpc::run_workload(
            &f,
            w,
            &base().with_policies(TlbPolicySel::DpPred, LlcPolicySel::Baseline),
        )
        .stats
        .llt_mpki();
        assert!(
            dppred <= baseline * 1.02,
            "{w}: dpPred must not increase LLT MPKI ({dppred:.2} vs {baseline:.2})"
        );
        if dppred < baseline * 0.97 {
            improved += 1;
        }
    }
    assert!(improved >= 3, "dpPred must clearly improve several workloads (got {improved})");
}

/// Paper Fig. 10: dpPred+cbPred never hurts IPC; the baselines do hurt
/// somewhere (SHiP-LLC's distant insertions lose badly on scramble-heavy
/// workloads like canneal/mcf).
#[test]
fn combined_predictors_are_consistent_where_baselines_are_not() {
    let f = factory();
    let workloads = ["canneal", "mcf", "bfs", "cactusADM", "cg.B"];
    let mut ship_hurt_somewhere = false;
    for w in workloads {
        let baseline = dpc::run_workload(&f, w, &base()).stats;
        let ours = dpc::run_workload(
            &f,
            w,
            &base().with_policies(TlbPolicySel::DpPred, LlcPolicySel::CbPred),
        )
        .stats;
        assert!(
            ours.ipc() >= baseline.ipc() * 0.995,
            "{w}: dpPred+cbPred must not lose IPC ({:.3} vs {:.3})",
            ours.ipc(),
            baseline.ipc()
        );
        let ship = dpc::run_workload(
            &f,
            w,
            &base().with_policies(TlbPolicySel::ShipTlb, LlcPolicySel::ShipLlc),
        )
        .stats;
        // Distant insertion mispredictions show up as extra LLC misses.
        if ship.llc_mpki() > baseline.llc_mpki() * 1.05 {
            ship_hurt_somewhere = true;
        }
    }
    assert!(ship_hurt_somewhere, "SHiP-LLC should regress at least one scramble workload");
}

/// Paper Table IV: the oracle upper-bounds every practical predictor.
#[test]
fn oracle_dominates_dppred() {
    let f = factory();
    for w in ["canneal", "bfs"] {
        let baseline = dpc::run_workload(&f, w, &base()).stats.llt_mpki();
        let dppred = dpc::run_workload(
            &f,
            w,
            &base().with_policies(TlbPolicySel::DpPred, LlcPolicySel::Baseline),
        )
        .stats
        .llt_mpki();
        let oracle = dpc::run_oracle(&f, w, &base()).stats.llt_mpki();
        assert!(
            oracle <= dppred * 1.01,
            "{w}: oracle ({oracle:.2}) must be at least as good as dpPred ({dppred:.2})"
        );
        assert!(oracle < baseline, "{w}: oracle must beat the baseline");
    }
}

/// Paper Table VII: PFQ pre-filtering buys cbPred its accuracy edge over
/// the unfiltered variant.
#[test]
fn pfq_filtering_raises_cbpred_accuracy() {
    let f = factory();
    let mut filtered_sum = 0.0;
    let mut unfiltered_sum = 0.0;
    let mut counted = 0;
    for w in ["canneal", "mcf", "bc"] {
        let with_pfq = dpc::run_workload(
            &f,
            w,
            &base().with_policies(TlbPolicySel::DpPred, LlcPolicySel::CbPred),
        );
        let without = dpc::run_workload(
            &f,
            w,
            &base().with_policies(TlbPolicySel::DpPred, LlcPolicySel::CbPredNoPfq),
        );
        let (Some(a), Some(b)) = (with_pfq.llc_accuracy, without.llc_accuracy) else {
            continue;
        };
        if a.predictions > 50 && b.predictions > 50 {
            filtered_sum += a.accuracy();
            unfiltered_sum += b.accuracy();
            counted += 1;
        }
    }
    assert!(counted >= 2, "need at least two workloads with predictions");
    assert!(
        filtered_sum >= unfiltered_sum,
        "PFQ filtering must not lower mean accuracy ({filtered_sum:.2} vs {unfiltered_sum:.2})"
    );
}

/// Paper Fig. 11a: cactusADM thrashes LLTs up to 1536 entries (its
/// cyclic working set is larger), and a sufficiently large LLT finally
/// absorbs it.
#[test]
fn cactus_thrash_recovers_with_a_big_enough_llt() {
    let f = factory();
    let small = dpc::run_workload(&f, "cactusADM", &base()).stats;
    let mut big_config = base();
    big_config.system = big_config.system.with_l2_tlb_entries(4096);
    let big = dpc::run_workload(&f, "cactusADM", &big_config).stats;
    assert!(
        big.llt.hit_rate() > small.llt.hit_rate() + 0.2,
        "4096 entries must largely absorb the cyclic working set ({:.2} vs {:.2})",
        big.llt.hit_rate(),
        small.llt.hit_rate()
    );
    // And dpPred keeps helping at the thrashing sizes.
    let dp = dpc::run_workload(
        &f,
        "cactusADM",
        &base().with_policies(TlbPolicySel::DpPred, LlcPolicySel::Baseline),
    )
    .stats;
    assert!(
        dp.llt_mpki() < small.llt_mpki() * 0.95,
        "dpPred must cut cactus LLT MPKI under thrash ({:.1} vs {:.1})",
        dp.llt_mpki(),
        small.llt_mpki()
    );
}

/// Paper Section V-C: the predictors must not add latency — bypassing
/// plus shadow serving should never slow the TLB path down.
#[test]
fn predictors_never_slow_the_machine_dramatically() {
    let f = factory();
    for w in ["lbm", "Triangle", "KCore"] {
        let baseline = dpc::run_workload(&f, w, &base()).stats.ipc();
        let ours = dpc::run_workload(
            &f,
            w,
            &base().with_policies(TlbPolicySel::DpPred, LlcPolicySel::CbPred),
        )
        .stats
        .ipc();
        assert!(
            (ours / baseline - 1.0).abs() < 0.05,
            "{w}: low-opportunity workloads must be near-neutral ({ours:.3} vs {baseline:.3})"
        );
    }
}
