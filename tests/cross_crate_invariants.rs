//! Property-based invariants across the crate boundary: arbitrary access
//! streams through the full system must never violate structural
//! invariants, regardless of policy.

use dpc::prelude::*;
use proptest::prelude::*;

/// A compact description of a synthetic access stream.
#[derive(Clone, Debug)]
struct StreamSpec {
    /// (pc site, page id, offset) triples.
    accesses: Vec<(u8, u16, u16)>,
}

struct SpecWorkload {
    accesses: Vec<(u8, u16, u16)>,
    pos: usize,
}

impl Workload for SpecWorkload {
    fn name(&self) -> &str {
        "proptest-stream"
    }

    fn next_event(&mut self) -> Option<Event> {
        let &(site, page, offset) = self.accesses.get(self.pos)?;
        self.pos += 1;
        let pc = Pc::new(0x40_0000 + u64::from(site) * 4);
        let va = VirtAddr::new(0x5000_0000 + u64::from(page) * 4096 + u64::from(offset % 4096));
        Some(if site % 3 == 0 { Event::store(pc, va) } else { Event::load(pc, va) })
    }
}

fn spec_strategy() -> impl Strategy<Value = StreamSpec> {
    proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 1..400)
        .prop_map(|accesses| StreamSpec { accesses })
}

fn check_invariants(stats: &SimStats, n: usize) {
    assert_eq!(stats.mem_ops, n as u64);
    for st in [&stats.l1i_tlb, &stats.l1d_tlb, &stats.llt, &stats.l1d, &stats.l2, &stats.llc] {
        assert_eq!(st.hits + st.misses, st.lookups);
        assert!(st.bypasses <= st.misses);
    }
    assert_eq!(stats.walks, stats.llt.misses - stats.llt.shadow_hits);
    assert!(stats.walk_pte_loads <= 4 * stats.walks);
    assert!(stats.cycles >= (stats.instructions / 4));
    assert!(stats.llt_deadness.dead >= stats.llt_deadness.doa);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_streams_respect_invariants_baseline(spec in spec_strategy()) {
        let n = spec.accesses.len();
        let mut system = System::new(SystemConfig::paper_baseline()).unwrap();
        let stats = system.run(&mut SpecWorkload { accesses: spec.accesses, pos: 0 });
        check_invariants(&stats, n);
    }

    #[test]
    fn arbitrary_streams_respect_invariants_with_predictors(spec in spec_strategy()) {
        let n = spec.accesses.len();
        let config = SystemConfig::paper_baseline();
        let mut system = System::with_policies(
            config,
            Box::new(DpPred::paper_default()),
            Box::new(CbPred::paper_default(&config.llc)),
        )
        .unwrap();
        let stats = system.run(&mut SpecWorkload { accesses: spec.accesses, pos: 0 });
        check_invariants(&stats, n);
    }

    #[test]
    fn arbitrary_streams_respect_invariants_with_baseline_predictors(spec in spec_strategy()) {
        let n = spec.accesses.len();
        let config = SystemConfig::paper_baseline();
        let mut system = System::with_policies(
            config,
            Box::new(ShipTlb::paper_default()),
            Box::new(AipLlc::paper_default()),
        )
        .unwrap();
        let stats = system.run(&mut SpecWorkload { accesses: spec.accesses, pos: 0 });
        check_invariants(&stats, n);
    }

    /// Translation is a function: the same virtual page always maps to the
    /// same frame, across policies.
    #[test]
    fn translations_are_stable(pages in proptest::collection::vec(any::<u16>(), 1..100)) {
        let accesses: Vec<(u8, u16, u16)> =
            pages.iter().chain(pages.iter()).map(|&p| (1, p, 0)).collect();
        let mut system = System::new(SystemConfig::paper_baseline()).unwrap();
        let stats = system.run(&mut SpecWorkload { accesses, pos: 0 });
        // Second touch of every page cannot demand-map again: the number
        // of walks is bounded by distinct pages (+ code page).
        let distinct: std::collections::HashSet<_> = pages.iter().collect();
        prop_assert!(stats.walks <= distinct.len() as u64 + 1);
    }
}
