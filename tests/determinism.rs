//! Determinism: identical configurations must produce bit-identical
//! statistics, and different seeds must actually change the workloads.

use dpc::prelude::*;

fn run_once(seed: u64, workload: &str, tlb: TlbPolicySel, llc: LlcPolicySel) -> SimStats {
    let factory = WorkloadFactory::new(Scale::Tiny, seed);
    let config = RunConfig::baseline(2_000, 30_000).with_policies(tlb, llc);
    dpc::run_workload(&factory, workload, &config).stats
}

#[test]
fn baseline_runs_are_reproducible() {
    for workload in ["bfs", "canneal", "mcf", "cactusADM", "cg.B"] {
        let a = run_once(7, workload, TlbPolicySel::Baseline, LlcPolicySel::Baseline);
        let b = run_once(7, workload, TlbPolicySel::Baseline, LlcPolicySel::Baseline);
        assert_eq!(a.cycles, b.cycles, "{workload} cycles must be deterministic");
        assert_eq!(a.llt, b.llt, "{workload} LLT counters must be deterministic");
        assert_eq!(a.llc, b.llc, "{workload} LLC counters must be deterministic");
        assert_eq!(a.walks, b.walks);
        assert_eq!(a.llt_deadness, b.llt_deadness);
    }
}

#[test]
fn predictor_runs_are_reproducible() {
    for workload in ["canneal", "sssp"] {
        let a = run_once(3, workload, TlbPolicySel::DpPred, LlcPolicySel::CbPred);
        let b = run_once(3, workload, TlbPolicySel::DpPred, LlcPolicySel::CbPred);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.llt.bypasses, b.llt.bypasses, "{workload} bypass stream");
        assert_eq!(a.llc.bypasses, b.llc.bypasses);
    }
}

#[test]
fn seeds_matter() {
    let a = run_once(1, "canneal", TlbPolicySel::Baseline, LlcPolicySel::Baseline);
    let b = run_once(2, "canneal", TlbPolicySel::Baseline, LlcPolicySel::Baseline);
    assert_ne!(
        (a.cycles, a.llt.misses),
        (b.cycles, b.llt.misses),
        "different seeds must produce different executions"
    );
}

/// The campaign engine's core guarantee: a parallel campaign is
/// bit-identical to a serial one. Renders fig1, fig9 and table4 (plain,
/// oracle, and memo-sharing paths) from a 1-worker and a 4-worker
/// execution of the same plan and compares the rendered bytes.
#[test]
fn parallel_campaign_is_byte_identical_to_serial() {
    use dpc::campaign;
    use dpc::experiments;

    let options = ExperimentOptions {
        scale: Scale::Tiny,
        seed: 42,
        warmup_mem_ops: 500,
        measure_mem_ops: 5_000,
        page_policy: dpc_types::AllocPolicy::Base4K,
    };
    let render_all = |ctx: &mut ExperimentContext| {
        let mut out = String::new();
        out.push_str(&experiments::fig1_llt_deadness(ctx).render());
        out.push_str(&experiments::fig9_tlb_predictor_ipc(ctx).render());
        out.push_str(&experiments::table4_llt_mpki(ctx).render());
        out
    };

    let mut planner = ExperimentContext::planner(options);
    render_all(&mut planner);
    let plan = planner.into_plan();
    assert!(!plan.oracle.is_empty(), "table4 must plan oracle runs");

    let (mut serial, serial_stats) = campaign::execute(options, &plan, 1, false);
    let (mut parallel, parallel_stats) = campaign::execute(options, &plan, 4, false);
    assert_eq!(
        render_all(&mut serial),
        render_all(&mut parallel),
        "4-worker campaign must render byte-identically to 1 worker"
    );
    assert_eq!(serial.runs_performed(), parallel.runs_performed());
    assert_eq!(serial_stats.distinct_runs, parallel_stats.distinct_runs);
    assert_eq!(serial_stats.simulations(), parallel_stats.simulations());
}

/// The executed campaign must also match immediate-mode (memoizing,
/// serial, no planner) execution — the pre-engine code path.
#[test]
fn campaign_matches_immediate_mode_oracle_runs() {
    use dpc::campaign;
    use dpc::experiments;

    let options = ExperimentOptions {
        scale: Scale::Tiny,
        seed: 7,
        warmup_mem_ops: 500,
        measure_mem_ops: 5_000,
        page_policy: dpc_types::AllocPolicy::Base4K,
    };
    let mut planner = ExperimentContext::planner(options);
    experiments::table4_llt_mpki(&mut planner);
    let plan = planner.into_plan();

    let (mut executed, _) = campaign::execute(options, &plan, 3, false);
    let mut immediate = ExperimentContext::new(options);
    assert_eq!(
        experiments::table4_llt_mpki(&mut executed).render(),
        experiments::table4_llt_mpki(&mut immediate).render(),
    );
    assert_eq!(executed.runs_performed(), immediate.runs_performed());
}

/// Regression guard for hash-iteration-order leaks in the oracle tables.
///
/// `DoaRecord`, `LookupRecord` and the replay `cursors` are all backed by
/// `std::collections::HashMap`, whose per-instance `RandomState` makes
/// iteration order differ between two maps holding identical entries. The
/// oracle code only ever accesses those maps by key (audited; see
/// `predictors/src/oracle.rs`), so two completely fresh contexts — each
/// building its own maps with its own hasher seeds — must render the
/// oracle-backed table4 byte-identically. If anyone introduces an
/// order-dependent iteration, the render diverges and this test fails.
#[test]
fn oracle_table_render_is_identical_across_fresh_contexts() {
    use dpc::experiments;

    let options = ExperimentOptions {
        scale: Scale::Tiny,
        seed: 11,
        warmup_mem_ops: 500,
        measure_mem_ops: 5_000,
        page_policy: dpc_types::AllocPolicy::Base4K,
    };
    let render = || {
        let mut ctx = ExperimentContext::new(options);
        experiments::table4_llt_mpki(&mut ctx).render()
    };
    assert_eq!(
        render(),
        render(),
        "oracle table rendering must not depend on HashMap iteration order"
    );
}

/// The trace store's core guarantee: replaying a captured stream is
/// bit-identical to generating the events live, all the way through the
/// simulator and both predictors. Runs several workloads twice per
/// factory so the second run exercises the store-hit path too.
#[test]
fn trace_store_replay_is_byte_identical_to_live_generation() {
    for workload in ["bfs", "canneal", "mcf"] {
        let replay = WorkloadFactory::new(Scale::Tiny, 13).with_trace_store(true);
        let live = WorkloadFactory::new(Scale::Tiny, 13).with_trace_store(false);
        let config = RunConfig::baseline(1_000, 20_000)
            .with_policies(TlbPolicySel::DpPred, LlcPolicySel::CbPred);
        for pass in 0..2 {
            let r = dpc::run_workload(&replay, workload, &config);
            let l = dpc::run_workload(&live, workload, &config);
            assert_eq!(
                r.stats, l.stats,
                "{workload} pass {pass}: replayed stats must match live generation"
            );
            assert_eq!(r.llt_accuracy, l.llt_accuracy, "{workload} pass {pass}");
            assert_eq!(r.llc_accuracy, l.llc_accuracy, "{workload} pass {pass}");
            assert!(l.gen_wall.is_zero(), "live runs never charge capture time");
            if pass == 1 {
                assert!(r.gen_wall.is_zero(), "store hits never charge capture time");
            }
        }
        assert_eq!(replay.trace_store().entries(), 1, "{workload} captured exactly once");
        assert_eq!(live.trace_store().entries(), 0, "disabled store must stay empty");
    }
}

#[test]
fn oracle_passes_align() {
    // The Belady oracle's premise: the LLT lookup stream is identical
    // across passes. Verify by running the recorder pass twice.
    let f1 = WorkloadFactory::new(Scale::Tiny, 9);
    let f2 = WorkloadFactory::new(Scale::Tiny, 9);
    let config = RunConfig::baseline(0, 40_000);
    let a = dpc::run_workload(&f1, "mcf", &config).stats;
    let b = dpc::run_oracle(&f2, "mcf", &config).stats;
    // Lookup streams identical → identical LLT lookup counts even though
    // the oracle changes hits/misses.
    assert_eq!(a.llt.lookups, b.llt.lookups, "L1-filtered lookup stream is policy-independent");
}
