//! Determinism: identical configurations must produce bit-identical
//! statistics, and different seeds must actually change the workloads.

use dpc::prelude::*;

fn run_once(seed: u64, workload: &str, tlb: TlbPolicySel, llc: LlcPolicySel) -> SimStats {
    let mut factory = WorkloadFactory::new(Scale::Tiny, seed);
    let config = RunConfig::baseline(2_000, 30_000).with_policies(tlb, llc);
    dpc::run_workload(&mut factory, workload, &config).stats
}

#[test]
fn baseline_runs_are_reproducible() {
    for workload in ["bfs", "canneal", "mcf", "cactusADM", "cg.B"] {
        let a = run_once(7, workload, TlbPolicySel::Baseline, LlcPolicySel::Baseline);
        let b = run_once(7, workload, TlbPolicySel::Baseline, LlcPolicySel::Baseline);
        assert_eq!(a.cycles, b.cycles, "{workload} cycles must be deterministic");
        assert_eq!(a.llt, b.llt, "{workload} LLT counters must be deterministic");
        assert_eq!(a.llc, b.llc, "{workload} LLC counters must be deterministic");
        assert_eq!(a.walks, b.walks);
        assert_eq!(a.llt_deadness, b.llt_deadness);
    }
}

#[test]
fn predictor_runs_are_reproducible() {
    for workload in ["canneal", "sssp"] {
        let a = run_once(3, workload, TlbPolicySel::DpPred, LlcPolicySel::CbPred);
        let b = run_once(3, workload, TlbPolicySel::DpPred, LlcPolicySel::CbPred);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.llt.bypasses, b.llt.bypasses, "{workload} bypass stream");
        assert_eq!(a.llc.bypasses, b.llc.bypasses);
    }
}

#[test]
fn seeds_matter() {
    let a = run_once(1, "canneal", TlbPolicySel::Baseline, LlcPolicySel::Baseline);
    let b = run_once(2, "canneal", TlbPolicySel::Baseline, LlcPolicySel::Baseline);
    assert_ne!(
        (a.cycles, a.llt.misses),
        (b.cycles, b.llt.misses),
        "different seeds must produce different executions"
    );
}

#[test]
fn oracle_passes_align() {
    // The Belady oracle's premise: the LLT lookup stream is identical
    // across passes. Verify by running the recorder pass twice.
    let mut f1 = WorkloadFactory::new(Scale::Tiny, 9);
    let mut f2 = WorkloadFactory::new(Scale::Tiny, 9);
    let config = RunConfig::baseline(0, 40_000);
    let a = dpc::run_workload(&mut f1, "mcf", &config).stats;
    let b = dpc::run_oracle(&mut f2, "mcf", &config).stats;
    // Lookup streams identical → identical LLT lookup counts even though
    // the oracle changes hits/misses.
    assert_eq!(a.llt.lookups, b.llt.lookups, "L1-filtered lookup stream is policy-independent");
}
