//! Golden-file fixtures for `dpc-lint`.
//!
//! Each directory under `tests/fixtures/<case>/` holds one miniature
//! workspace: `.rs` files whose first line is a `//@ rel: <path>`
//! directive assigning their workspace-relative identity, plus an
//! `expected.json` golden listing every diagnostic the case must
//! produce as `{rule, level, file, line}` tuples. The harness runs the
//! full pipeline (item parse → call graph → rules → severity collect →
//! JSON render → JSON parse) so a golden mismatch in any layer fails.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use xtask::json::{self, Value};
use xtask::source::SourceFile;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// `(rule, level, file, line)` — the comparable identity of a diagnostic.
type Key = (String, String, String, usize);

fn keys_of(doc: &Value) -> Vec<Key> {
    let mut keys: Vec<Key> = doc
        .get("diagnostics")
        .and_then(Value::as_arr)
        .expect("diagnostics array")
        .iter()
        .map(|d| {
            (
                d.get("rule").and_then(Value::as_str).expect("rule").to_owned(),
                d.get("level").and_then(Value::as_str).expect("level").to_owned(),
                d.get("file").and_then(Value::as_str).expect("file").to_owned(),
                d.get("line").and_then(Value::as_num).expect("line") as usize,
            )
        })
        .collect();
    keys.sort();
    keys
}

fn run_case(case_dir: &Path) {
    let case = case_dir.file_name().unwrap_or_default().to_string_lossy().into_owned();
    let expected_text = std::fs::read_to_string(case_dir.join("expected.json"))
        .unwrap_or_else(|e| panic!("{case}: expected.json: {e}"));
    let expected =
        json::parse(&expected_text).unwrap_or_else(|e| panic!("{case}: bad expected.json: {e}"));
    let strict = expected.get("strict") == Some(&Value::Bool(true));

    let mut files = Vec::new();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(case_dir)
        .expect("case dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    entries.sort();
    for path in entries {
        let raw = std::fs::read_to_string(&path).expect("fixture source");
        let rel = raw
            .lines()
            .next()
            .and_then(|l| l.strip_prefix("//@ rel:"))
            .unwrap_or_else(|| {
                panic!("{case}: {} must start with `//@ rel: <path>`", path.display())
            })
            .trim()
            .to_owned();
        files.push(SourceFile::from_str(&rel, &raw));
    }
    assert!(!files.is_empty(), "{case}: no fixture .rs files");

    let report = xtask::lint_files(&files);
    let set = xtask::output::collect(&report, strict, &BTreeSet::new());
    let rendered = xtask::output::render_json(&set);
    let actual = json::parse(&rendered).unwrap_or_else(|e| panic!("{case}: bad JSON output: {e}"));

    assert_eq!(
        keys_of(&actual),
        keys_of(&expected),
        "{case}: diagnostics diverge from expected.json\n--- actual output ---\n{rendered}"
    );
}

#[test]
fn every_fixture_matches_its_golden() {
    let mut cases: Vec<PathBuf> = std::fs::read_dir(fixtures_dir())
        .expect("tests/fixtures must exist")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.is_dir())
        .collect();
    cases.sort();
    assert!(cases.len() >= 5, "expected the full fixture suite, found {}", cases.len());
    for case in cases {
        run_case(&case);
    }
}

/// The acceptance criterion spelled out end to end: a panic two call
/// hops below a hot-path root, in a different crate, is flagged — and
/// the diagnostic names the full call chain.
#[test]
fn panic_two_hops_below_root_is_flagged_with_chain() {
    let case = fixtures_dir().join("reachable_panic_two_hops");
    let mut files = Vec::new();
    for name in ["entry.rs", "mid.rs", "leaf.rs"] {
        let raw = std::fs::read_to_string(case.join(name)).expect("fixture");
        let rel = raw.lines().next().and_then(|l| l.strip_prefix("//@ rel:")).expect("rel").trim();
        files.push(SourceFile::from_str(rel, &raw));
    }
    let report = xtask::lint_files(&files);
    assert_eq!(report.violations.len(), 1, "{report:?}");
    let v = &report.violations[0];
    assert_eq!(v.rule, "hot-path::panic");
    assert_eq!(v.rel, "crates/workloads/src/leaf.rs");
    assert!(
        v.message.contains("System::step → helper_mid → helper_leaf"),
        "diagnostic must carry the call chain: {}",
        v.message
    );
}
