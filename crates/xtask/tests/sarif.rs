//! Structural validation of the SARIF 2.1.0 output against the schema's
//! required shape: the toolchain is offline, so instead of fetching the
//! JSON Schema this asserts every constraint GitHub code scanning and
//! the 2.1.0 spec require of a minimal log — top-level `$schema` /
//! `version` / `runs`, a tool driver with a rule catalog, and results
//! whose `ruleId`/`ruleIndex` agree with that catalog and whose
//! locations use `%SRCROOT%`-relative artifact URIs.

use std::collections::BTreeSet;
use xtask::json::{self, Value};
use xtask::source::SourceFile;

fn sarif_for(files: &[SourceFile]) -> Value {
    let report = xtask::lint_files(files);
    let set = xtask::output::collect(&report, false, &BTreeSet::new());
    let text = xtask::output::render_sarif(&set);
    json::parse(&text).expect("SARIF output must be valid JSON")
}

fn str_of<'v>(v: &'v Value, key: &str) -> &'v str {
    v.get(key).and_then(Value::as_str).unwrap_or_else(|| panic!("`{key}` string required"))
}

#[test]
fn sarif_log_satisfies_the_2_1_0_required_shape() {
    let files = [
        SourceFile::from_str(
            "crates/memsim/src/system.rs",
            "impl<L, C> System<L, C> { pub fn step(&mut self) { helper(); } }\n",
        ),
        SourceFile::from_str(
            "crates/core/src/helper.rs",
            "pub fn helper() { let s = format!(\"x\"); let _ = s; }\n\
             // dpc-lint: allow(budget::counter-width) -- stale, to exercise warnings\n\
             pub fn quiet() {}\n",
        ),
    ];
    let doc = sarif_for(&files);

    // §3.13: sarifLog requires `version`; `$schema` must point at 2.1.0.
    assert_eq!(str_of(&doc, "version"), "2.1.0");
    assert!(str_of(&doc, "$schema").contains("sarif-schema-2.1.0.json"));

    let runs = doc.get("runs").and_then(Value::as_arr).expect("runs array");
    assert_eq!(runs.len(), 1, "one run per invocation");
    let run = &runs[0];

    // §3.14: run requires `tool`; §3.18/§3.19: driver requires `name`.
    let driver = run.get("tool").and_then(|t| t.get("driver")).expect("tool.driver");
    assert_eq!(str_of(driver, "name"), "dpc-lint");
    let rules = driver.get("rules").and_then(Value::as_arr).expect("driver.rules");
    assert!(rules.len() >= 13, "11 lint rules + 2 synthetic ids, got {}", rules.len());
    let rule_ids: Vec<&str> = rules.iter().map(|r| str_of(r, "id")).collect();
    for rule in rules {
        assert!(
            rule.get("shortDescription").and_then(|d| d.get("text")).is_some(),
            "each reportingDescriptor needs shortDescription.text"
        );
    }

    // §3.27: every result's ruleId/ruleIndex must agree with the catalog.
    let results = run.get("results").and_then(Value::as_arr).expect("results array");
    assert!(!results.is_empty(), "the fixture produces diagnostics");
    for result in results {
        let rule_id = str_of(result, "ruleId");
        let rule_index =
            result.get("ruleIndex").and_then(Value::as_num).expect("ruleIndex") as usize;
        assert_eq!(
            rule_ids.get(rule_index).copied(),
            Some(rule_id),
            "ruleIndex must point at the catalog entry for ruleId"
        );
        let level = str_of(result, "level");
        assert!(["error", "warning", "note"].contains(&level), "bad level {level}");
        assert!(
            result.get("message").and_then(|m| m.get("text")).and_then(Value::as_str).is_some(),
            "result.message.text required"
        );
        if let Some(locations) = result.get("locations").and_then(Value::as_arr) {
            for loc in locations {
                let phys = loc.get("physicalLocation").expect("physicalLocation");
                let artifact = phys.get("artifactLocation").expect("artifactLocation");
                let uri = str_of(artifact, "uri");
                assert!(!uri.starts_with('/'), "uri must be relative: {uri}");
                assert_eq!(str_of(artifact, "uriBaseId"), "%SRCROOT%");
                let line = phys
                    .get("region")
                    .and_then(|r| r.get("startLine"))
                    .and_then(Value::as_num)
                    .expect("region.startLine");
                assert!(line >= 1.0, "startLine is 1-based");
            }
        }
        if let Some(fps) = result.get("partialFingerprints") {
            match fps {
                Value::Obj(members) => {
                    assert!(!members.is_empty());
                    for (k, v) in members {
                        assert!(k.ends_with("/v1"), "fingerprint keys are versioned: {k}");
                        assert!(v.as_str().is_some_and(|s| !s.is_empty()));
                    }
                }
                other => panic!("partialFingerprints must be an object, got {other:?}"),
            }
        }
    }

    // The fixture's known findings made it through: one alloc error and
    // one stale-marker warning.
    let ids: Vec<&str> = results.iter().map(|r| str_of(r, "ruleId")).collect();
    assert!(ids.contains(&"hot-path::alloc"), "{ids:?}");
    assert!(ids.contains(&"allow-marker"), "{ids:?}");
}

/// The real workspace's SARIF (what CI uploads) must parse and keep the
/// same required shape even when the results array is empty.
#[test]
fn workspace_sarif_parses_and_is_well_formed() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let report = xtask::lint_workspace(&root).expect("workspace scan");
    let set = xtask::output::collect(&report, true, &BTreeSet::new());
    let doc = json::parse(&xtask::output::render_sarif(&set)).expect("valid JSON");
    assert_eq!(doc.get("version").and_then(Value::as_str), Some("2.1.0"));
    let runs = doc.get("runs").and_then(Value::as_arr).expect("runs");
    assert!(runs[0].get("results").and_then(Value::as_arr).is_some(), "results present");
}
