//@ rel: crates/predictors/src/mypolicy.rs
pub struct MyPolicy {
    table: Vec<u8>,
}

impl LltPolicy for MyPolicy {
    fn on_fill(&mut self, set: usize) {
        shared_update(set);
    }
}
