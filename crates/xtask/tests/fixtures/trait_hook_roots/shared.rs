//@ rel: crates/core/src/shared.rs
pub fn shared_update(set: usize) {
    let v: Option<usize> = checked(set);
    v.unwrap();
}

fn checked(set: usize) -> Option<usize> {
    Some(set)
}
