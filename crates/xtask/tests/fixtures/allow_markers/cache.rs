//@ rel: crates/memsim/src/cache.rs
pub fn suppressed(x: Option<u32>) -> u32 {
    // dpc-lint: allow(hot-path::unwrap) -- exercised exhaustively by the fuzz harness
    x.unwrap()
}

pub fn reasonless(y: Option<u32>) -> u32 {
    // dpc-lint: allow(hot-path::unwrap)
    y.unwrap()
}

// dpc-lint: allow(determinism::wall-clock) -- stale marker, suppresses nothing
pub fn quiet() {}
