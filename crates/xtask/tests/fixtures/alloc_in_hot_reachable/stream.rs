//@ rel: crates/types/src/stream.rs
impl EventStream {
    pub fn decode_chunk(&self) {
        scratch();
    }
}

fn scratch() {
    let v: Vec<u8> = Vec::new();
    let _ = v;
}

pub fn builder() -> Vec<u8> {
    // Construction-time allocation off the hot path: not flagged.
    Vec::with_capacity(64)
}
