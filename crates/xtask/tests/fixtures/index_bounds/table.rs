//@ rel: crates/predictors/src/table.rs
pub struct Table {
    slots: Vec<u8>,
}

impl Table {
    pub fn unproven(&self, n: usize) -> u8 {
        self.slots[n]
    }

    pub fn proven(&self, n: usize) -> u8 {
        debug_assert!(n < self.slots.len());
        self.slots[n]
    }

    pub fn masked(&self, n: usize) -> u8 {
        self.slots[n % self.slots.len()]
    }
}
