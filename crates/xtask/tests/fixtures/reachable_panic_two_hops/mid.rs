//@ rel: crates/core/src/mid.rs
pub fn helper_mid(x: u32) {
    helper_leaf(x);
}
