//@ rel: crates/memsim/src/system.rs
impl<L: LltPolicy, C: LlcPolicy> System<L, C> {
    pub fn step(&mut self) {
        helper_mid(self.counter);
    }
}
