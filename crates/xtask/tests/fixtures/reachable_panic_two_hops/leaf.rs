//@ rel: crates/workloads/src/leaf.rs
pub fn helper_leaf(x: u32) {
    if x > 3 {
        panic!("boom");
    }
}

pub fn unreachable_sibling(x: u32) -> u32 {
    // Not on any hot path: the same macro here must NOT be flagged.
    if x > 9 { unreachable!() } else { x }
}
