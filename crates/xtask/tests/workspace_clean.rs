//! The acceptance gate for `dpc-lint`: the workspace itself must come
//! clean under the pass. Running this as a plain `cargo test` keeps the
//! lint enforced even where CI isn't (e.g. local pre-push).

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(std::path::Path::parent).expect("crates/xtask sits two deep").into()
}

#[test]
fn workspace_is_lint_clean() {
    let report = xtask::lint_workspace(&workspace_root()).expect("workspace scan");
    assert!(report.files_scanned > 40, "scan must cover the workspace");
    let rendered: Vec<String> = report
        .violations
        .iter()
        .map(|v| format!("{} {}:{} {}", v.rule, v.path.display(), v.line, v.message))
        .collect();
    assert!(rendered.is_empty(), "dpc-lint violations:\n{}", rendered.join("\n"));
    assert!(
        report.missing_reasons.is_empty(),
        "allow markers without reasons: {:?}",
        report.missing_reasons
    );
}

#[test]
fn no_stale_allow_markers() {
    let report = xtask::lint_workspace(&workspace_root()).expect("workspace scan");
    assert!(
        report.unused_allows.is_empty(),
        "allow markers that suppress nothing: {:?}",
        report.unused_allows
    );
}
