//! The acceptance gate for `dpc-lint`: the workspace itself must come
//! clean under the pass — including the call-graph hot-path reachability
//! sweep — and the whole analysis must stay inside its wall-clock
//! budget. Running this as a plain `cargo test` keeps the lint enforced
//! even where CI isn't (e.g. local pre-push).

use std::path::PathBuf;
use std::time::Instant;

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(std::path::Path::parent).expect("crates/xtask sits two deep").into()
}

#[test]
fn workspace_is_lint_clean_under_strict() {
    let report = xtask::lint_workspace(&workspace_root()).expect("workspace scan");
    assert!(report.files_scanned > 40, "scan must cover the workspace");
    let rendered: Vec<String> = report
        .violations
        .iter()
        .map(|v| format!("{} {}:{} {}", v.rule, v.rel, v.line, v.message))
        .collect();
    assert!(rendered.is_empty(), "dpc-lint violations:\n{}", rendered.join("\n"));
    assert!(
        report.missing_reasons.is_empty(),
        "allow markers without reasons: {:?}",
        report.missing_reasons
    );
    assert!(
        report.unused_allows.is_empty(),
        "stale allow markers that suppress nothing (delete them): {:?}",
        report.unused_allows
    );
    assert!(report.is_strict_clean(), "the merged tree must pass `lint --strict`");
}

#[test]
fn call_graph_reaches_the_replay_core() {
    let report = xtask::lint_workspace(&workspace_root()).expect("workspace scan");
    assert!(report.total_fns > 200, "item parser must see the workspace ({})", report.total_fns);
    assert!(
        report.reachable_fns > 50,
        "hot roots must reach the replay core ({} of {})",
        report.reachable_fns,
        report.total_fns
    );
    assert!(
        report.reachable_fns < report.total_fns,
        "reachability must not degenerate to everything ({} of {})",
        report.reachable_fns,
        report.total_fns
    );
}

/// The full workspace analysis (I/O + parse + call graph + every rule)
/// must finish well under the 5 s CI budget; 10 back-to-back runs keep
/// the bound honest against one lucky measurement.
#[test]
fn analysis_fits_the_wall_clock_budget() {
    let root = workspace_root();
    let start = Instant::now();
    for _ in 0..10 {
        let report = xtask::lint_workspace(&root).expect("workspace scan");
        assert!(report.files_scanned > 0);
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_secs_f64() < 5.0,
        "10 full analyses took {elapsed:?}; one must stay far below the 5 s CI budget"
    );
}
