//! `cargo xtask bench-report` — benchmark-regression tracking.
//!
//! Collects the `median.point_estimate` from every
//! `target/criterion/<group>/*/new/estimates.json` left behind by
//! `cargo bench --bench simulator` and `cargo bench --bench
//! predictor_phases`, and writes them, together with the commit sha and
//! commit date, to `BENCH_simulator.json` at the workspace root. The
//! checked-in copy of that file is the regression baseline:
//! `bench-report --check` re-collects the current estimates and fails
//! if any bench shared with the baseline got more than 15% slower
//! (median vs median).
//!
//! Five groups gate: `simulator` (end-to-end throughput of the
//! monomorphized event loop), `predictor_phases` (pHIST/bHIST lookup,
//! shadow-table hit, and PFQ probe micro-phases, which localise a
//! simulator regression to the predictor structure that caused it),
//! `simd_phases` (the vectorized kernels and their scalar twins, so a
//! regression in either the AVX2 or the `DPC_SIMD=off` path trips CI),
//! `fastpath_phases` (the batched L1-hit retire and its `step`
//! fallback), and `misspath_phases` (tier-2 classification, L2-hit
//! retire, and the lazy replacement-metadata apply — the stages of
//! DESIGN.md §16). The `structures` micro-benches stay ungated: their
//! one-shot samples are too noisy to act as a tripwire. Like the lint
//! pass, everything here is hand-rolled (no serde) so the workspace
//! stays dependency-free on an offline toolchain.
//!
//! Besides the medians, each report records the commit it was measured
//! at and the runtime-gate fingerprint (`DPC_SIMD` / `DPC_FASTPATH` /
//! `DPC_PREFETCH`) active during the run: medians taken with a gate
//! flipped are not comparable to the checked-in baseline, and `--check`
//! warns when the baseline's commit is no longer an ancestor of `HEAD`
//! (i.e. the baseline predates a rebase or was never regenerated).

use std::collections::BTreeMap;
use std::path::Path;
use std::process::Command;

/// Gate threshold: a bench fails `--check` when its median exceeds the
/// baseline median by more than this fraction.
pub const REGRESSION_TOLERANCE: f64 = 0.15;

/// The criterion groups whose estimates are reported and gated, with
/// the bench invocation that produces each one.
pub const GROUPS: &[(&str, &str)] = &[
    ("simulator", "cargo bench --bench simulator"),
    ("predictor_phases", "cargo bench --bench predictor_phases"),
    ("simd_phases", "cargo bench --bench simd_phases"),
    ("fastpath_phases", "cargo bench --bench fastpath_phases"),
    ("misspath_phases", "cargo bench --bench misspath_phases"),
];

/// Report file name at the workspace root.
pub const REPORT_FILE: &str = "BENCH_simulator.json";

/// Collected medians, bench id → nanoseconds.
pub type Medians = BTreeMap<String, f64>;

/// The runtime gates active while the benches ran, recorded in the
/// report as a fingerprint: baseline medians are only comparable to a
/// current run taken under the same gate settings.
///
/// The parse rules mirror `dpc_types::simd` exactly (xtask is
/// deliberately dependency-free, so it cannot call them): `DPC_SIMD`
/// and `DPC_FASTPATH` are on unless set to `off`/`0`/`false`;
/// `DPC_PREFETCH` is off unless set to `on`/`1`/`true` *and* the SIMD
/// gate is on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Gates {
    /// `DPC_SIMD` — vector kernels (also gates prefetch).
    pub simd: bool,
    /// `DPC_FASTPATH` — the replay engine's batched fast tiers.
    pub fastpath: bool,
    /// `DPC_PREFETCH` — software prefetch hints (opt-in).
    pub prefetch: bool,
}

impl Gates {
    /// Reads the gate environment the same way the simulator does.
    pub fn from_env() -> Self {
        fn disabled(var: &str) -> bool {
            std::env::var(var).is_ok_and(|v| matches!(v.as_str(), "off" | "0" | "false"))
        }
        fn opted_in(var: &str) -> bool {
            std::env::var(var).is_ok_and(|v| matches!(v.as_str(), "on" | "1" | "true"))
        }
        let simd = !disabled("DPC_SIMD");
        Gates { simd, fastpath: !disabled("DPC_FASTPATH"), prefetch: simd && opted_in("DPC_PREFETCH") }
    }
}

impl std::fmt::Display for Gates {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn s(on: bool) -> &'static str {
            if on {
                "on"
            } else {
                "off"
            }
        }
        write!(
            f,
            "simd={} fastpath={} prefetch={}",
            s(self.simd),
            s(self.fastpath),
            s(self.prefetch)
        )
    }
}

/// Walk `target/criterion/<group>/*/new/estimates.json` under `root`
/// for every gated group and return the median point estimate for each
/// bench id. Every group must be present: a missing directory means its
/// bench never ran, and silently skipping it would let the CI gate pass
/// without comparing that group at all.
pub fn collect_medians(root: &Path) -> Result<Medians, String> {
    let mut medians = Medians::new();
    for &(group, bench_cmd) in GROUPS {
        let group_dir = root.join("target").join("criterion").join(group);
        let entries = std::fs::read_dir(&group_dir).map_err(|err| {
            format!("cannot read {}: {err}\n(run `{bench_cmd}` first)", group_dir.display())
        })?;
        let before = medians.len();
        for entry in entries {
            let entry = entry.map_err(|err| err.to_string())?;
            let estimates = entry.path().join("new").join("estimates.json");
            let Ok(text) = std::fs::read_to_string(&estimates) else { continue };
            let median = extract_median(&text)
                .ok_or_else(|| format!("no median.point_estimate in {}", estimates.display()))?;
            let bench = entry.file_name().to_string_lossy().into_owned();
            medians.insert(format!("{group}/{bench}"), median);
        }
        if medians.len() == before {
            return Err(format!(
                "no estimates under {} — run `{bench_cmd}` first",
                group_dir.display()
            ));
        }
    }
    Ok(medians)
}

/// Pull `median.point_estimate` out of a criterion `estimates.json`
/// without a JSON parser: find the `"median"` object, then the first
/// `"point_estimate"` number inside it.
pub fn extract_median(text: &str) -> Option<f64> {
    let median_at = text.find("\"median\"")?;
    let tail = &text[median_at..];
    let key_at = tail.find("\"point_estimate\"")?;
    let after_key = &tail[key_at + "\"point_estimate\"".len()..];
    let colon = after_key.find(':')?;
    let value = after_key[colon + 1..].trim_start().split([',', '}']).next()?.trim();
    value.parse().ok()
}

/// Render the report JSON: stable key order, one bench per line so the
/// baseline parser (and humans diffing the file) stay simple.
pub fn render(medians: &Medians, git_sha: &str, date: &str, gates: Gates) -> String {
    fn on_off(on: bool) -> &'static str {
        if on {
            "on"
        } else {
            "off"
        }
    }
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 2,\n");
    out.push_str("  \"unit\": \"ns\",\n");
    out.push_str(&format!("  \"git_sha\": \"{git_sha}\",\n"));
    out.push_str(&format!("  \"date\": \"{date}\",\n"));
    out.push_str(&format!(
        "  \"gates\": {{ \"DPC_SIMD\": \"{}\", \"DPC_FASTPATH\": \"{}\", \"DPC_PREFETCH\": \"{}\" }},\n",
        on_off(gates.simd),
        on_off(gates.fastpath),
        on_off(gates.prefetch)
    ));
    out.push_str("  \"median_ns\": {\n");
    let last = medians.len().saturating_sub(1);
    for (i, (bench, median)) in medians.iter().enumerate() {
        let comma = if i == last { "" } else { "," };
        out.push_str(&format!("    \"{bench}\": {median:.1}{comma}\n"));
    }
    out.push_str("  }\n}\n");
    out
}

/// Pull the recorded `git_sha` out of a report written by [`render`].
/// Returns `None` for reports stamped `unknown` (no git available when
/// they were written) — there is nothing to compare those against.
pub fn parse_git_sha(text: &str) -> Option<String> {
    let after_key = text.split_once("\"git_sha\"")?.1;
    let sha = after_key.split('"').nth(1)?;
    (!sha.is_empty() && sha != "unknown").then(|| sha.to_owned())
}

/// Parse a report previously written by [`render`]: every
/// `"<group>/<bench>": <number>` line inside the `median_ns` object.
/// Schema-1 reports (no `gates` field) parse identically — the medians
/// block is unchanged.
pub fn parse_report(text: &str) -> Medians {
    let mut medians = Medians::new();
    let body = text.split_once("\"median_ns\"").map_or("", |(_, rest)| rest);
    for line in body.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else { continue };
        let key = key.trim().trim_matches('"');
        if !key.contains('/') {
            continue;
        }
        if let Ok(median) = value.trim().parse::<f64>() {
            medians.insert(key.to_owned(), median);
        }
    }
    medians
}

/// One `--check` comparison row.
pub struct Comparison {
    pub bench: String,
    pub baseline_ns: f64,
    pub current_ns: f64,
    /// `current / baseline`; > 1 means slower.
    pub ratio: f64,
    pub regressed: bool,
}

/// Compare current medians against the baseline. Benches only present on
/// one side are skipped (renames and new benches must not fail CI); a
/// shared bench regresses when it is >15% slower than the baseline.
pub fn compare(baseline: &Medians, current: &Medians) -> Vec<Comparison> {
    baseline
        .iter()
        .filter_map(|(bench, &baseline_ns)| {
            let &current_ns = current.get(bench)?;
            let ratio = if baseline_ns > 0.0 { current_ns / baseline_ns } else { 1.0 };
            Some(Comparison {
                bench: bench.clone(),
                baseline_ns,
                current_ns,
                ratio,
                regressed: ratio > 1.0 + REGRESSION_TOLERANCE,
            })
        })
        .collect()
}

fn git_output(root: &Path, args: &[&str]) -> String {
    Command::new("git")
        .args(args)
        .current_dir(root)
        .output()
        .ok()
        .filter(|out| out.status.success())
        .map_or_else(
            || "unknown".to_owned(),
            |out| String::from_utf8_lossy(&out.stdout).trim().to_owned(),
        )
}

/// Entry point for `cargo xtask bench-report [--check]`. Returns the
/// process exit code.
pub fn run(root: &Path, check: bool) -> u8 {
    let current = match collect_medians(root) {
        Ok(medians) => medians,
        Err(err) => {
            eprintln!("bench-report: {err}");
            return 2;
        }
    };
    let report_path = root.join(REPORT_FILE);

    if check {
        let baseline_text = match std::fs::read_to_string(&report_path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("bench-report: cannot read baseline {}: {err}", report_path.display());
                return 2;
            }
        };
        let baseline = parse_report(&baseline_text);
        if baseline.is_empty() {
            eprintln!("bench-report: baseline {} has no medians", report_path.display());
            return 2;
        }
        // A baseline recorded at a commit that is no longer an ancestor
        // of HEAD predates a rebase (or was measured on a branch that
        // never merged): its medians may not describe this code at all.
        // Warn rather than fail — the ratio comparison below still runs.
        if let Some(sha) = parse_git_sha(&baseline_text) {
            let is_ancestor = Command::new("git")
                .args(["merge-base", "--is-ancestor", &sha, "HEAD"])
                .current_dir(root)
                .status()
                .is_ok_and(|status| status.success());
            if !is_ancestor {
                eprintln!(
                    "bench-report: warning: baseline {} was recorded at {sha}, which is not an \
                     ancestor of HEAD — regenerate it with `cargo xtask bench-report`",
                    report_path.display()
                );
            }
        }
        let rows = compare(&baseline, &current);
        let mut regressions = 0;
        for row in &rows {
            let verdict = if row.regressed { "REGRESSED" } else { "ok" };
            println!(
                "{:<40} baseline {:>12.1} ns  current {:>12.1} ns  ratio {:.3}  {verdict}",
                row.bench, row.baseline_ns, row.current_ns, row.ratio
            );
            regressions += u32::from(row.regressed);
        }
        if rows.is_empty() {
            eprintln!("bench-report: no benches shared between baseline and current run");
            return 2;
        }
        if regressions > 0 {
            let pct = REGRESSION_TOLERANCE * 100.0;
            eprintln!("bench-report: {regressions} bench(es) more than {pct:.0}% slower");
            return 1;
        }
        println!("bench-report: {} bench(es) within tolerance", rows.len());
        return 0;
    }

    // Stamp the report with the *commit* sha/date rather than the wall
    // clock so re-running on the same tree rewrites the same file.
    let sha = git_output(root, &["rev-parse", "--short", "HEAD"]);
    let date = git_output(root, &["log", "-1", "--format=%cI"]);
    let gates = Gates::from_env();
    let text = render(&current, &sha, &date, gates);
    if let Err(err) = std::fs::write(&report_path, &text) {
        eprintln!("bench-report: cannot write {}: {err}", report_path.display());
        return 2;
    }
    println!(
        "bench-report: wrote {} ({} benches, gates {gates})",
        report_path.display(),
        current.len()
    );
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_median_point_estimate() {
        let json = r#"{"mean":{"point_estimate":4859253.0},"median":{"point_estimate":4598222.5}}"#;
        assert_eq!(extract_median(json), Some(4_598_222.5));
    }

    #[test]
    fn extracts_from_real_criterion_shape() {
        // Real criterion nests confidence intervals before the estimate.
        let json = r#"{"mean":{"confidence_interval":{"confidence_level":0.95,
            "lower_bound":1.0,"upper_bound":2.0},"point_estimate":1.5,"standard_error":0.1},
            "median":{"confidence_interval":{"confidence_level":0.95,"lower_bound":3.0,
            "upper_bound":4.0},"point_estimate":3.5,"standard_error":0.1}}"#;
        assert_eq!(extract_median(json), Some(3.5));
    }

    #[test]
    fn render_parse_round_trip() {
        let mut medians = Medians::new();
        medians.insert("simulator/canneal_baseline".to_owned(), 4_811_000.0);
        medians.insert("simulator/bfs_dppred_cbpred".to_owned(), 1_640_500.5);
        medians.insert("predictor_phases/phist_lookup".to_owned(), 31_250.0);
        let gates = Gates { simd: true, fastpath: true, prefetch: false };
        let text = render(&medians, "abc1234", "2026-08-06T00:00:00+00:00", gates);
        assert_eq!(parse_report(&text), medians);
        assert_eq!(parse_git_sha(&text).as_deref(), Some("abc1234"));
    }

    #[test]
    fn gates_fingerprint_is_rendered() {
        let gates = Gates { simd: true, fastpath: false, prefetch: false };
        let text = render(&Medians::new(), "abc1234", "2026-08-06T00:00:00+00:00", gates);
        assert!(text.contains("\"schema\": 2"), "gates field bumps the schema: {text}");
        assert!(
            text.contains(
                "\"gates\": { \"DPC_SIMD\": \"on\", \"DPC_FASTPATH\": \"off\", \"DPC_PREFETCH\": \"off\" }"
            ),
            "fingerprint line missing: {text}"
        );
        // The gates object must not confuse the medians parser.
        assert!(parse_report(&text).is_empty());
    }

    #[test]
    fn unknown_sha_is_not_comparable() {
        let text = render(
            &Medians::new(),
            "unknown",
            "2026-08-06T00:00:00+00:00",
            Gates { simd: true, fastpath: true, prefetch: false },
        );
        assert_eq!(parse_git_sha(&text), None);
    }

    #[test]
    fn schema_1_reports_still_parse() {
        // The checked-in baseline may predate the gates field; the
        // medians block is unchanged, so it must keep parsing.
        let text = "{\n  \"schema\": 1,\n  \"unit\": \"ns\",\n  \"git_sha\": \"9c09b0f\",\n  \
                    \"median_ns\": {\n    \"simulator/lbm_baseline\": 1349450.0\n  }\n}\n";
        let medians = parse_report(text);
        assert_eq!(medians.get("simulator/lbm_baseline"), Some(&1_349_450.0));
        assert_eq!(parse_git_sha(text).as_deref(), Some("9c09b0f"));
    }

    #[test]
    fn collect_requires_every_gated_group() {
        // A tree with only the first group populated must fail loudly:
        // a missing group means its bench never ran, and the CI gate
        // would otherwise silently stop comparing it.
        let root =
            std::env::temp_dir().join(format!("dpc-bench-report-test-{}", std::process::id()));
        let (first_group, _) = GROUPS[0];
        let bench_dir =
            root.join("target").join("criterion").join(first_group).join("some_bench").join("new");
        std::fs::create_dir_all(&bench_dir).unwrap();
        std::fs::write(bench_dir.join("estimates.json"), r#"{"median":{"point_estimate":1.0}}"#)
            .unwrap();
        let err = collect_medians(&root).unwrap_err();
        let (second_group, second_cmd) = GROUPS[1];
        assert!(err.contains(second_group), "error should name the missing group: {err}");
        assert!(err.contains(second_cmd), "error should say how to produce it: {err}");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn regression_gate_trips_above_tolerance() {
        let mut baseline = Medians::new();
        baseline.insert("simulator/a".to_owned(), 1000.0);
        baseline.insert("simulator/b".to_owned(), 1000.0);
        baseline.insert("simulator/renamed".to_owned(), 1000.0);
        let mut current = Medians::new();
        current.insert("simulator/a".to_owned(), 1149.0); // +14.9% → ok
        current.insert("simulator/b".to_owned(), 1151.0); // +15.1% → regressed
        current.insert("simulator/new".to_owned(), 9999.0); // unmatched → skipped
        let rows = compare(&baseline, &current);
        assert_eq!(rows.len(), 2);
        assert!(!rows[0].regressed, "simulator/a is within tolerance");
        assert!(rows[1].regressed, "simulator/b is past tolerance");
    }

    #[test]
    fn faster_is_never_a_regression() {
        let mut baseline = Medians::new();
        baseline.insert("simulator/a".to_owned(), 1000.0);
        let mut current = Medians::new();
        current.insert("simulator/a".to_owned(), 400.0);
        let rows = compare(&baseline, &current);
        assert!(!rows[0].regressed);
        assert!(rows[0].ratio < 0.5);
    }
}
