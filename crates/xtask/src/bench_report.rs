//! `cargo xtask bench-report` — benchmark-regression tracking.
//!
//! Collects the `median.point_estimate` from every
//! `target/criterion/<group>/*/new/estimates.json` left behind by
//! `cargo bench --bench simulator` and `cargo bench --bench
//! predictor_phases`, and writes them, together with the commit sha and
//! commit date, to `BENCH_simulator.json` at the workspace root. The
//! checked-in copy of that file is the regression baseline:
//! `bench-report --check` re-collects the current estimates and fails
//! if any bench shared with the baseline got more than 15% slower
//! (median vs median).
//!
//! Three groups gate: `simulator` (end-to-end throughput of the
//! monomorphized event loop), `predictor_phases` (pHIST/bHIST lookup,
//! shadow-table hit, and PFQ probe micro-phases, which localise a
//! simulator regression to the predictor structure that caused it), and
//! `simd_phases` (the vectorized kernels and their scalar twins, so a
//! regression in either the AVX2 or the `DPC_SIMD=off` path trips CI).
//! The `structures` micro-benches stay ungated: their one-shot samples
//! are too noisy to act as a tripwire. Like the lint pass, everything
//! here is hand-rolled (no serde) so the workspace stays
//! dependency-free on an offline toolchain.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::Command;

/// Gate threshold: a bench fails `--check` when its median exceeds the
/// baseline median by more than this fraction.
pub const REGRESSION_TOLERANCE: f64 = 0.15;

/// The criterion groups whose estimates are reported and gated, with
/// the bench invocation that produces each one.
pub const GROUPS: &[(&str, &str)] = &[
    ("simulator", "cargo bench --bench simulator"),
    ("predictor_phases", "cargo bench --bench predictor_phases"),
    ("simd_phases", "cargo bench --bench simd_phases"),
    ("fastpath_phases", "cargo bench --bench fastpath_phases"),
];

/// Report file name at the workspace root.
pub const REPORT_FILE: &str = "BENCH_simulator.json";

/// Collected medians, bench id → nanoseconds.
pub type Medians = BTreeMap<String, f64>;

/// Walk `target/criterion/<group>/*/new/estimates.json` under `root`
/// for every gated group and return the median point estimate for each
/// bench id. Every group must be present: a missing directory means its
/// bench never ran, and silently skipping it would let the CI gate pass
/// without comparing that group at all.
pub fn collect_medians(root: &Path) -> Result<Medians, String> {
    let mut medians = Medians::new();
    for &(group, bench_cmd) in GROUPS {
        let group_dir = root.join("target").join("criterion").join(group);
        let entries = std::fs::read_dir(&group_dir).map_err(|err| {
            format!("cannot read {}: {err}\n(run `{bench_cmd}` first)", group_dir.display())
        })?;
        let before = medians.len();
        for entry in entries {
            let entry = entry.map_err(|err| err.to_string())?;
            let estimates = entry.path().join("new").join("estimates.json");
            let Ok(text) = std::fs::read_to_string(&estimates) else { continue };
            let median = extract_median(&text)
                .ok_or_else(|| format!("no median.point_estimate in {}", estimates.display()))?;
            let bench = entry.file_name().to_string_lossy().into_owned();
            medians.insert(format!("{group}/{bench}"), median);
        }
        if medians.len() == before {
            return Err(format!(
                "no estimates under {} — run `{bench_cmd}` first",
                group_dir.display()
            ));
        }
    }
    Ok(medians)
}

/// Pull `median.point_estimate` out of a criterion `estimates.json`
/// without a JSON parser: find the `"median"` object, then the first
/// `"point_estimate"` number inside it.
pub fn extract_median(text: &str) -> Option<f64> {
    let median_at = text.find("\"median\"")?;
    let tail = &text[median_at..];
    let key_at = tail.find("\"point_estimate\"")?;
    let after_key = &tail[key_at + "\"point_estimate\"".len()..];
    let colon = after_key.find(':')?;
    let value = after_key[colon + 1..].trim_start().split([',', '}']).next()?.trim();
    value.parse().ok()
}

/// Render the report JSON: stable key order, one bench per line so the
/// baseline parser (and humans diffing the file) stay simple.
pub fn render(medians: &Medians, git_sha: &str, date: &str) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str("  \"unit\": \"ns\",\n");
    out.push_str(&format!("  \"git_sha\": \"{git_sha}\",\n"));
    out.push_str(&format!("  \"date\": \"{date}\",\n"));
    out.push_str("  \"median_ns\": {\n");
    let last = medians.len().saturating_sub(1);
    for (i, (bench, median)) in medians.iter().enumerate() {
        let comma = if i == last { "" } else { "," };
        out.push_str(&format!("    \"{bench}\": {median:.1}{comma}\n"));
    }
    out.push_str("  }\n}\n");
    out
}

/// Parse a report previously written by [`render`]: every
/// `"<group>/<bench>": <number>` line inside the `median_ns` object.
pub fn parse_report(text: &str) -> Medians {
    let mut medians = Medians::new();
    let body = text.split_once("\"median_ns\"").map_or("", |(_, rest)| rest);
    for line in body.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else { continue };
        let key = key.trim().trim_matches('"');
        if !key.contains('/') {
            continue;
        }
        if let Ok(median) = value.trim().parse::<f64>() {
            medians.insert(key.to_owned(), median);
        }
    }
    medians
}

/// One `--check` comparison row.
pub struct Comparison {
    pub bench: String,
    pub baseline_ns: f64,
    pub current_ns: f64,
    /// `current / baseline`; > 1 means slower.
    pub ratio: f64,
    pub regressed: bool,
}

/// Compare current medians against the baseline. Benches only present on
/// one side are skipped (renames and new benches must not fail CI); a
/// shared bench regresses when it is >15% slower than the baseline.
pub fn compare(baseline: &Medians, current: &Medians) -> Vec<Comparison> {
    baseline
        .iter()
        .filter_map(|(bench, &baseline_ns)| {
            let &current_ns = current.get(bench)?;
            let ratio = if baseline_ns > 0.0 { current_ns / baseline_ns } else { 1.0 };
            Some(Comparison {
                bench: bench.clone(),
                baseline_ns,
                current_ns,
                ratio,
                regressed: ratio > 1.0 + REGRESSION_TOLERANCE,
            })
        })
        .collect()
}

fn git_output(root: &Path, args: &[&str]) -> String {
    Command::new("git")
        .args(args)
        .current_dir(root)
        .output()
        .ok()
        .filter(|out| out.status.success())
        .map_or_else(
            || "unknown".to_owned(),
            |out| String::from_utf8_lossy(&out.stdout).trim().to_owned(),
        )
}

/// Entry point for `cargo xtask bench-report [--check]`. Returns the
/// process exit code.
pub fn run(root: &Path, check: bool) -> u8 {
    let current = match collect_medians(root) {
        Ok(medians) => medians,
        Err(err) => {
            eprintln!("bench-report: {err}");
            return 2;
        }
    };
    let report_path = root.join(REPORT_FILE);

    if check {
        let baseline_text = match std::fs::read_to_string(&report_path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("bench-report: cannot read baseline {}: {err}", report_path.display());
                return 2;
            }
        };
        let baseline = parse_report(&baseline_text);
        if baseline.is_empty() {
            eprintln!("bench-report: baseline {} has no medians", report_path.display());
            return 2;
        }
        let rows = compare(&baseline, &current);
        let mut regressions = 0;
        for row in &rows {
            let verdict = if row.regressed { "REGRESSED" } else { "ok" };
            println!(
                "{:<40} baseline {:>12.1} ns  current {:>12.1} ns  ratio {:.3}  {verdict}",
                row.bench, row.baseline_ns, row.current_ns, row.ratio
            );
            regressions += u32::from(row.regressed);
        }
        if rows.is_empty() {
            eprintln!("bench-report: no benches shared between baseline and current run");
            return 2;
        }
        if regressions > 0 {
            let pct = REGRESSION_TOLERANCE * 100.0;
            eprintln!("bench-report: {regressions} bench(es) more than {pct:.0}% slower");
            return 1;
        }
        println!("bench-report: {} bench(es) within tolerance", rows.len());
        return 0;
    }

    // Stamp the report with the *commit* sha/date rather than the wall
    // clock so re-running on the same tree rewrites the same file.
    let sha = git_output(root, &["rev-parse", "--short", "HEAD"]);
    let date = git_output(root, &["log", "-1", "--format=%cI"]);
    let text = render(&current, &sha, &date);
    if let Err(err) = std::fs::write(&report_path, &text) {
        eprintln!("bench-report: cannot write {}: {err}", report_path.display());
        return 2;
    }
    println!("bench-report: wrote {} ({} benches)", report_path.display(), current.len());
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_median_point_estimate() {
        let json = r#"{"mean":{"point_estimate":4859253.0},"median":{"point_estimate":4598222.5}}"#;
        assert_eq!(extract_median(json), Some(4_598_222.5));
    }

    #[test]
    fn extracts_from_real_criterion_shape() {
        // Real criterion nests confidence intervals before the estimate.
        let json = r#"{"mean":{"confidence_interval":{"confidence_level":0.95,
            "lower_bound":1.0,"upper_bound":2.0},"point_estimate":1.5,"standard_error":0.1},
            "median":{"confidence_interval":{"confidence_level":0.95,"lower_bound":3.0,
            "upper_bound":4.0},"point_estimate":3.5,"standard_error":0.1}}"#;
        assert_eq!(extract_median(json), Some(3.5));
    }

    #[test]
    fn render_parse_round_trip() {
        let mut medians = Medians::new();
        medians.insert("simulator/canneal_baseline".to_owned(), 4_811_000.0);
        medians.insert("simulator/bfs_dppred_cbpred".to_owned(), 1_640_500.5);
        medians.insert("predictor_phases/phist_lookup".to_owned(), 31_250.0);
        let text = render(&medians, "abc1234", "2026-08-06T00:00:00+00:00");
        assert_eq!(parse_report(&text), medians);
    }

    #[test]
    fn collect_requires_every_gated_group() {
        // A tree with only the first group populated must fail loudly:
        // a missing group means its bench never ran, and the CI gate
        // would otherwise silently stop comparing it.
        let root =
            std::env::temp_dir().join(format!("dpc-bench-report-test-{}", std::process::id()));
        let (first_group, _) = GROUPS[0];
        let bench_dir =
            root.join("target").join("criterion").join(first_group).join("some_bench").join("new");
        std::fs::create_dir_all(&bench_dir).unwrap();
        std::fs::write(bench_dir.join("estimates.json"), r#"{"median":{"point_estimate":1.0}}"#)
            .unwrap();
        let err = collect_medians(&root).unwrap_err();
        let (second_group, second_cmd) = GROUPS[1];
        assert!(err.contains(second_group), "error should name the missing group: {err}");
        assert!(err.contains(second_cmd), "error should say how to produce it: {err}");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn regression_gate_trips_above_tolerance() {
        let mut baseline = Medians::new();
        baseline.insert("simulator/a".to_owned(), 1000.0);
        baseline.insert("simulator/b".to_owned(), 1000.0);
        baseline.insert("simulator/renamed".to_owned(), 1000.0);
        let mut current = Medians::new();
        current.insert("simulator/a".to_owned(), 1149.0); // +14.9% → ok
        current.insert("simulator/b".to_owned(), 1151.0); // +15.1% → regressed
        current.insert("simulator/new".to_owned(), 9999.0); // unmatched → skipped
        let rows = compare(&baseline, &current);
        assert_eq!(rows.len(), 2);
        assert!(!rows[0].regressed, "simulator/a is within tolerance");
        assert!(rows[1].regressed, "simulator/b is past tolerance");
    }

    #[test]
    fn faster_is_never_a_regression() {
        let mut baseline = Medians::new();
        baseline.insert("simulator/a".to_owned(), 1000.0);
        let mut current = Medians::new();
        current.insert("simulator/a".to_owned(), 400.0);
        let rows = compare(&baseline, &current);
        assert!(!rows[0].regressed);
        assert!(rows[0].ratio < 0.5);
    }
}
