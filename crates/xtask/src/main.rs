//! `cargo xtask` — workspace automation.
//!
//! Subcommands:
//!
//! * `lint` — run the `dpc-lint` static-analysis pass over the workspace;
//!   exits nonzero and prints `rule file:line message` for every
//!   violation.
//! * `lint --list` — list every rule with its one-line description.
//! * `bench-report` — collect the `cargo bench --bench simulator`,
//!   `cargo bench --bench predictor_phases`, and `cargo bench --bench
//!   simd_phases` medians from `target/criterion` into
//!   `BENCH_simulator.json`.
//! * `bench-report --check` — compare the current medians against the
//!   checked-in `BENCH_simulator.json`; exits nonzero if any shared
//!   bench is >15% slower.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("bench-report") => {
            let check = args[1..].iter().any(|a| a == "--check");
            ExitCode::from(xtask::bench_report::run(&workspace_root(), check))
        }
        _ => {
            eprintln!("usage: cargo xtask lint [--list]");
            eprintln!("       cargo xtask bench-report [--check]");
            eprintln!("       (cargo run --package xtask -- <cmd>, without the alias)");
            ExitCode::from(2)
        }
    }
}

const RULE_DESCRIPTIONS: &[(&str, &str)] = &[
    ("determinism::wall-clock", "no Instant/SystemTime outside crates/core/src/campaign.rs"),
    ("determinism::unseeded-rng", "no thread_rng/from_entropy/rand::random; seed_from_u64 only"),
    ("determinism::hash-iteration", "no HashMap/HashSet iteration; BTree* or sort first"),
    ("budget::structure-size", "paper budgets pinned (pHIST/bHIST/PFQ/shadow/RRPV width/Table I)"),
    ("budget::counter-width", "SatCounter::new literal widths within 1..=8"),
    ("hot-path::unwrap", "no unwrap/expect in non-test memsim/predictors code"),
    ("hot-path::panic", "no panic!/unreachable!/todo!/unimplemented!/get_unchecked there"),
    ("hot-path::index", "slice indexing needs visible bounds reasoning in the function"),
    ("dispatch::boxed-policy", "no dyn LltPolicy/LlcPolicy in memsim/core outside fallback.rs"),
    (
        "simd::confined-unsafe",
        "unsafe/core::arch only in simd.rs modules, with // SAFETY: comments",
    ),
];

fn lint(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--list") {
        for (rule, description) in RULE_DESCRIPTIONS {
            println!("{rule:<30} {description}");
        }
        return ExitCode::SUCCESS;
    }

    let root = workspace_root();
    let report = match xtask::lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("dpc-lint: cannot scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    for violation in &report.violations {
        println!(
            "error[{}]: {}\n  --> {}:{}",
            violation.rule,
            violation.message,
            display_rel(&root, &violation.path),
            violation.line
        );
    }
    for (path, line, rules) in &report.missing_reasons {
        println!(
            "error[allow-marker]: allow({rules}) needs `-- <reason>` (or names an unknown rule)\n  \
             --> {}:{line}",
            display_rel(&root, path)
        );
    }
    for (path, line, rules) in &report.unused_allows {
        println!(
            "warning[allow-marker]: allow({rules}) suppressed nothing; remove it\n  --> {}:{line}",
            display_rel(&root, path)
        );
    }

    let problems = report.violations.len() + report.missing_reasons.len();
    if problems == 0 {
        println!(
            "dpc-lint: clean — {} files, {} rules, {} unused allow marker(s)",
            report.files_scanned,
            RULE_DESCRIPTIONS.len(),
            report.unused_allows.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("dpc-lint: {problems} violation(s) in {} files scanned", report.files_scanned);
        ExitCode::FAILURE
    }
}

/// The workspace root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(std::path::Path::parent).map_or(manifest.clone(), PathBuf::from)
}

fn display_rel(root: &std::path::Path, path: &std::path::Path) -> String {
    path.strip_prefix(root).unwrap_or(path).display().to_string()
}
