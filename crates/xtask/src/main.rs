//! `cargo xtask` — workspace automation.
//!
//! Subcommands:
//!
//! * `lint` — run the `dpc-lint` static-analysis pass (line rules plus
//!   call-graph hot-path reachability) over the workspace.
//! * `lint --list` — list every rule with its one-line description.
//! * `lint --strict` — promote unused allow markers and stale baseline
//!   entries from warnings to errors (the CI configuration).
//! * `lint --format text|json|sarif` — diagnostic output format; SARIF
//!   2.1.0 is what GitHub code scanning ingests.
//! * `lint --output <path>` — write the formatted diagnostics to a file
//!   (a human summary still goes to stdout).
//! * `lint --baseline <path>` — tolerate findings fingerprinted in the
//!   baseline file (default: `lint-baseline.json` at the workspace root
//!   when present).
//! * `lint --write-baseline` — write the current findings' fingerprints
//!   to the baseline file and exit 0.
//! * `bench-report [--check]` — collect/gate criterion medians (see
//!   [`xtask::bench_report`]).
//!
//! **Exit codes** (CI depends on the distinction): `0` clean, `1` rule
//! violations (a dirty tree), `2` I/O or parse failure (a broken linter
//! invocation — unreadable workspace, malformed baseline, bad flags).

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("bench-report") => {
            let check = args[1..].iter().any(|a| a == "--check");
            ExitCode::from(xtask::bench_report::run(&workspace_root(), check))
        }
        _ => {
            eprintln!(
                "usage: cargo xtask lint [--list] [--strict] [--format text|json|sarif]\n\
                 \x20                       [--output <path>] [--baseline <path>] \
                 [--write-baseline]"
            );
            eprintln!("       cargo xtask bench-report [--check]");
            eprintln!("       (cargo run --package xtask -- <cmd>, without the alias)");
            ExitCode::from(2)
        }
    }
}

/// Parsed `lint` flags.
struct LintOptions {
    list: bool,
    strict: bool,
    format: Format,
    output: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: bool,
}

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Text,
    Json,
    Sarif,
}

/// Default baseline file name at the workspace root.
const BASELINE_FILE: &str = "lint-baseline.json";

fn parse_lint_args(args: &[String]) -> Result<LintOptions, String> {
    let mut opts = LintOptions {
        list: false,
        strict: false,
        format: Format::Text,
        output: None,
        baseline: None,
        write_baseline: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => opts.list = true,
            "--strict" => opts.strict = true,
            "--write-baseline" => opts.write_baseline = true,
            "--format" => {
                opts.format = match it.next().map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    other => {
                        return Err(format!(
                            "--format takes text|json|sarif, got {}",
                            other.unwrap_or("nothing")
                        ))
                    }
                };
            }
            "--output" => {
                opts.output = Some(it.next().ok_or("--output needs a path")?.into());
            }
            "--baseline" => {
                opts.baseline = Some(it.next().ok_or("--baseline needs a path")?.into());
            }
            other => return Err(format!("unknown lint flag `{other}`")),
        }
    }
    Ok(opts)
}

fn lint(args: &[String]) -> ExitCode {
    let opts = match parse_lint_args(args) {
        Ok(opts) => opts,
        Err(err) => {
            eprintln!("dpc-lint: {err}");
            return ExitCode::from(2);
        }
    };
    if opts.list {
        for (rule, description) in xtask::rules::DESCRIPTIONS {
            println!("{rule:<30} {description}");
        }
        return ExitCode::SUCCESS;
    }

    let root = workspace_root();
    let report = match xtask::lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("dpc-lint: cannot scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    // Load the baseline: an explicitly named file must exist and parse;
    // the default one is optional but must parse when present.
    let baseline_path = opts.baseline.clone().unwrap_or_else(|| root.join(BASELINE_FILE));
    let baseline: BTreeSet<String> = if opts.write_baseline {
        BTreeSet::new()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match xtask::output::parse_baseline(&text) {
                Ok(set) => set,
                Err(err) => {
                    eprintln!("dpc-lint: {}: {err}", baseline_path.display());
                    return ExitCode::from(2);
                }
            },
            Err(err) if opts.baseline.is_some() => {
                eprintln!("dpc-lint: cannot read {}: {err}", baseline_path.display());
                return ExitCode::from(2);
            }
            Err(_) => BTreeSet::new(),
        }
    };

    let set = xtask::output::collect(&report, opts.strict, &baseline);

    if opts.write_baseline {
        let text = xtask::output::render_baseline(&set);
        if let Err(err) = std::fs::write(&baseline_path, &text) {
            eprintln!("dpc-lint: cannot write {}: {err}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "dpc-lint: wrote {} ({} fingerprint(s))",
            baseline_path.display(),
            set.count(xtask::output::Level::Error)
        );
        return ExitCode::SUCCESS;
    }

    let rendered = match opts.format {
        Format::Text => render_text(&set),
        Format::Json => xtask::output::render_json(&set),
        Format::Sarif => xtask::output::render_sarif(&set),
    };
    match &opts.output {
        Some(path) => {
            if let Err(err) = std::fs::write(path, &rendered) {
                eprintln!("dpc-lint: cannot write {}: {err}", path.display());
                return ExitCode::from(2);
            }
        }
        None => print!("{rendered}"),
    }

    // The human summary always reaches stdout, even when the formatted
    // diagnostics went to a file.
    let errors = set.count(xtask::output::Level::Error);
    let warnings = set.count(xtask::output::Level::Warning);
    if opts.output.is_some() || opts.format != Format::Text {
        summary_line(&report, errors, warnings, opts.strict);
    }
    if errors == 0 {
        if opts.format == Format::Text && opts.output.is_none() {
            summary_line(&report, errors, warnings, opts.strict);
        }
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn summary_line(report: &xtask::LintReport, errors: usize, warnings: usize, strict: bool) {
    let mode = if strict { ", strict" } else { "" };
    if errors == 0 {
        println!(
            "dpc-lint: clean — {} files, {} rules, {}/{} hot-reachable fns, {} warning(s){mode}",
            report.files_scanned,
            xtask::rules::ALL_RULES.len(),
            report.reachable_fns,
            report.total_fns,
            warnings,
        );
    } else {
        println!(
            "dpc-lint: {errors} error(s), {warnings} warning(s) in {} files scanned \
             ({}/{} hot-reachable fns{mode})",
            report.files_scanned, report.reachable_fns, report.total_fns,
        );
    }
}

/// Plain-text rendering: `level[rule]: message` + `--> file:line`.
fn render_text(set: &xtask::output::DiagnosticSet) -> String {
    let mut out = String::new();
    for d in &set.diagnostics {
        if d.rel.is_empty() {
            out.push_str(&format!("{}[{}]: {}\n", d.level, d.rule, d.message));
        } else {
            out.push_str(&format!(
                "{}[{}]: {}\n  --> {}:{}\n",
                d.level, d.rule, d.message, d.rel, d.line
            ));
        }
    }
    out
}

/// The workspace root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(std::path::Path::parent).map_or(manifest.clone(), PathBuf::from)
}
