//! The five `dpc-lint` rule families.
//!
//! | family        | rules                                                      |
//! |---------------|------------------------------------------------------------|
//! | `determinism` | `wall-clock`, `unseeded-rng`, `hash-iteration`             |
//! | `budget`      | `structure-size`, `counter-width`                          |
//! | `hot-path`    | `unwrap`, `panic`, `index`, `alloc`                        |
//! | `dispatch`    | `boxed-policy`                                             |
//! | `simd`        | `confined-unsafe`                                          |
//!
//! Every rule is deny-by-default; the only escape hatch is an inline
//! `// dpc-lint: allow(<rule>) -- <reason>` comment on the offending line
//! or the line directly above it. Rule names are **stable identifiers**:
//! they key allow markers, the committed baseline fingerprints, and the
//! SARIF `ruleId`s uploaded to code scanning, so renaming one is a
//! breaking change to all three.

pub mod budget;
pub mod determinism;
pub mod dispatch;
pub mod hot_path;
pub mod simd;

use crate::graph::HotSpan;
use crate::source::SourceFile;
use std::path::PathBuf;

/// One rule violation, reported as `rule file:line message`.
#[derive(Debug)]
pub struct Violation {
    /// Rule name, e.g. `determinism::wall-clock`.
    pub rule: &'static str,
    /// File the violation is in.
    pub path: PathBuf,
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// 1-based line number.
    pub line: usize,
    /// Human explanation, including the offending token.
    pub message: String,
    /// Line-content fingerprint (rule + path + offending line text),
    /// stable across unrelated insertions above the line. Keys the
    /// committed baseline and the SARIF `partialFingerprints`.
    pub fingerprint: String,
}

/// Names of all rules, for `--list` and allow-marker validation.
pub const ALL_RULES: &[&str] = &[
    determinism::WALL_CLOCK,
    determinism::UNSEEDED_RNG,
    determinism::HASH_ITERATION,
    budget::STRUCTURE_SIZE,
    budget::COUNTER_WIDTH,
    hot_path::UNWRAP,
    hot_path::PANIC,
    hot_path::INDEX,
    hot_path::ALLOC,
    dispatch::BOXED_POLICY,
    simd::CONFINED_UNSAFE,
];

/// One-line description per rule, same order as [`ALL_RULES`] (used by
/// `--list` and as the SARIF rule catalog).
pub const DESCRIPTIONS: &[(&str, &str)] = &[
    (determinism::WALL_CLOCK, "no Instant/SystemTime outside crates/core/src/campaign.rs"),
    (determinism::UNSEEDED_RNG, "no thread_rng/from_entropy/rand::random; seed_from_u64 only"),
    (determinism::HASH_ITERATION, "no HashMap/HashSet iteration; BTree* or sort first"),
    (budget::STRUCTURE_SIZE, "paper budgets pinned (pHIST/bHIST/PFQ/shadow/RRPV width/Table I)"),
    (budget::COUNTER_WIDTH, "SatCounter::new literal widths within 1..=8"),
    (hot_path::UNWRAP, "no unwrap/expect in hot-path crates or hot-reachable functions"),
    (hot_path::PANIC, "no panic!/unreachable!/todo!/unimplemented!/get_unchecked there"),
    (hot_path::INDEX, "slice indexing needs visible bounds reasoning in the function"),
    (hot_path::ALLOC, "no heap construction (Vec/Box/format!/to_vec/...) in hot-reachable code"),
    (dispatch::BOXED_POLICY, "no dyn LltPolicy/LlcPolicy in memsim/core outside fallback.rs"),
    (simd::CONFINED_UNSAFE, "unsafe/core::arch only in simd.rs modules, with // SAFETY: comments"),
];

/// Rule-family prefixes accepted in allow markers.
pub const FAMILIES: &[&str] = &["determinism", "budget", "hot-path", "dispatch", "simd"];

/// Runs every rule over one file. `hot` carries the call-graph-reachable
/// function bodies of this file (empty when reachability was not run).
pub fn check_file(file: &SourceFile, hot: &[HotSpan]) -> Vec<Violation> {
    let mut violations = Vec::new();
    determinism::check(file, &mut violations);
    budget::check(file, &mut violations);
    hot_path::check(file, hot, &mut violations);
    dispatch::check(file, &mut violations);
    simd::check(file, &mut violations);
    violations
}

/// Helper: push a violation at a byte offset of `file`.
pub(crate) fn push(
    violations: &mut Vec<Violation>,
    file: &SourceFile,
    rule: &'static str,
    offset: usize,
    message: String,
) {
    let line = file.line_of(offset);
    violations.push(Violation {
        rule,
        path: file.path.clone(),
        rel: file.rel.clone(),
        line,
        message,
        fingerprint: crate::output::fingerprint(rule, &file.rel, line_text(file, line)),
    });
}

/// The raw text of 1-based `line` in `file`.
fn line_text(file: &SourceFile, line: usize) -> &str {
    file.raw.lines().nth(line.saturating_sub(1)).unwrap_or("")
}
