//! The five `dpc-lint` rule families.
//!
//! | family        | rules                                                      |
//! |---------------|------------------------------------------------------------|
//! | `determinism` | `wall-clock`, `unseeded-rng`, `hash-iteration`             |
//! | `budget`      | `structure-size`, `counter-width`                          |
//! | `hot-path`    | `unwrap`, `panic`, `index`                                 |
//! | `dispatch`    | `boxed-policy`                                             |
//! | `simd`        | `confined-unsafe`                                          |
//!
//! Every rule is deny-by-default; the only escape hatch is an inline
//! `// dpc-lint: allow(<rule>) -- <reason>` comment on the offending line
//! or the line directly above it.

pub mod budget;
pub mod determinism;
pub mod dispatch;
pub mod hot_path;
pub mod simd;

use crate::source::SourceFile;
use std::path::PathBuf;

/// One rule violation, reported as `rule file:line message`.
#[derive(Debug)]
pub struct Violation {
    /// Rule name, e.g. `determinism::wall-clock`.
    pub rule: &'static str,
    /// File the violation is in.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Human explanation, including the offending token.
    pub message: String,
}

/// Names of all rules, for `--list` and allow-marker validation.
pub const ALL_RULES: &[&str] = &[
    determinism::WALL_CLOCK,
    determinism::UNSEEDED_RNG,
    determinism::HASH_ITERATION,
    budget::STRUCTURE_SIZE,
    budget::COUNTER_WIDTH,
    hot_path::UNWRAP,
    hot_path::PANIC,
    hot_path::INDEX,
    dispatch::BOXED_POLICY,
    simd::CONFINED_UNSAFE,
];

/// Rule-family prefixes accepted in allow markers.
pub const FAMILIES: &[&str] = &["determinism", "budget", "hot-path", "dispatch", "simd"];

/// Runs every rule over one file.
pub fn check_file(file: &SourceFile) -> Vec<Violation> {
    let mut violations = Vec::new();
    determinism::check(file, &mut violations);
    budget::check(file, &mut violations);
    hot_path::check(file, &mut violations);
    dispatch::check(file, &mut violations);
    simd::check(file, &mut violations);
    violations
}

/// Helper: push a violation at a byte offset of `file`.
pub(crate) fn push(
    violations: &mut Vec<Violation>,
    file: &SourceFile,
    rule: &'static str,
    offset: usize,
    message: String,
) {
    violations.push(Violation {
        rule,
        path: file.path.clone(),
        line: file.line_of(offset),
        message,
    });
}
