//! `budget` family: the paper's iso-storage comparison (Section V,
//! Table I) only holds while the reproduced structures keep the stated
//! sizes. These rules pin the defaults — pHIST 1024×3-bit (6-bit PC hash
//! × 4-bit VPN hash), bHIST 4096×3-bit with a 12-bit block hash, 8-entry
//! PFQ, 2-entry shadow table, prediction threshold 6, the 2-bit SRRIP
//! RRPV width, and the Table I machine — against the source, so a
//! drive-by "tune the table size" edit fails the lint instead of
//! silently invalidating every result.

use super::{push, Violation};
use crate::source::SourceFile;

/// Structure-size constants must match the paper's hardware budgets.
pub const STRUCTURE_SIZE: &str = "budget::structure-size";

/// `SatCounter::new` literal call sites must request widths in `1..=8`.
pub const COUNTER_WIDTH: &str = "budget::counter-width";

/// One pinned `field: value` pair inside a named constructor function.
struct BudgetSpec {
    /// File the constructor lives in.
    file: &'static str,
    /// Constructor function name (`fn <function>` is located by text).
    function: &'static str,
    /// Optional context: the check is confined to the brace group opened
    /// right after this substring (e.g. `l2_tlb: TlbConfig`).
    context: Option<&'static str>,
    /// Field name.
    field: &'static str,
    /// Exact expected initializer text (whitespace-normalized).
    expected: &'static str,
    /// What the paper says this is.
    note: &'static str,
}

/// The paper's hardware budgets, one row per pinned constant.
const BUDGETS: &[BudgetSpec] = &[
    // dpPred (paper Section V-A): pHIST = 2^(6+4) = 1024 × 3-bit counters,
    // threshold 6, 2-entry shadow table.
    spec(
        "crates/predictors/src/dppred.rs",
        "paper_default",
        None,
        "pc_bits",
        "6",
        "6-bit PC hash (pHIST first dimension)",
    ),
    spec(
        "crates/predictors/src/dppred.rs",
        "paper_default",
        None,
        "vpn_bits",
        "4",
        "4-bit VPN hash (pHIST second dimension; 2^(6+4) = 1024 entries)",
    ),
    spec(
        "crates/predictors/src/dppred.rs",
        "paper_default",
        None,
        "counter_bits",
        "3",
        "3-bit pHIST saturating counters",
    ),
    spec(
        "crates/predictors/src/dppred.rs",
        "paper_default",
        None,
        "threshold",
        "6",
        "prediction threshold 6",
    ),
    spec(
        "crates/predictors/src/dppred.rs",
        "paper_default",
        None,
        "shadow_entries",
        "2",
        "2-entry shadow table",
    ),
    // cbPred (paper Section V-B): bHIST = 4096 × 3-bit counters indexed by
    // a 12-bit hash, 8-entry PFQ, threshold 6.
    spec(
        "crates/predictors/src/cbpred.rs",
        "paper_default",
        None,
        "bhist_entries",
        "4096",
        "4096-entry bHIST",
    ),
    spec(
        "crates/predictors/src/cbpred.rs",
        "paper_default",
        None,
        "hash_bits",
        "12",
        "12-bit block-address hash",
    ),
    spec(
        "crates/predictors/src/cbpred.rs",
        "paper_default",
        None,
        "counter_bits",
        "3",
        "3-bit bHIST saturating counters",
    ),
    spec(
        "crates/predictors/src/cbpred.rs",
        "paper_default",
        None,
        "threshold",
        "6",
        "prediction threshold 6",
    ),
    spec(
        "crates/predictors/src/cbpred.rs",
        "paper_default",
        None,
        "pfq_entries",
        "8",
        "8-entry PFN filter queue",
    ),
    // Table I machine: the LLT and LLC geometries the iso-storage
    // comparison is built on.
    spec(
        "crates/types/src/config.rs",
        "paper_baseline",
        Some("l2_tlb: TlbConfig"),
        "entries",
        "1024",
        "1024-entry LLT (Table I)",
    ),
    spec(
        "crates/types/src/config.rs",
        "paper_baseline",
        Some("l2_tlb: TlbConfig"),
        "ways",
        "8",
        "8-way LLT (Table I)",
    ),
    spec(
        "crates/types/src/config.rs",
        "paper_baseline",
        Some("llc: CacheConfig"),
        "size_bytes",
        "2 << 20",
        "2 MB LLC (Table I)",
    ),
    spec(
        "crates/types/src/config.rs",
        "paper_baseline",
        Some("llc: CacheConfig"),
        "ways",
        "16",
        "16-way LLC (Table I)",
    ),
    spec(
        "crates/types/src/config.rs",
        "paper_baseline",
        None,
        "mem_latency",
        "191",
        "191-cycle memory latency (Table I)",
    ),
];

const fn spec(
    file: &'static str,
    function: &'static str,
    context: Option<&'static str>,
    field: &'static str,
    expected: &'static str,
    note: &'static str,
) -> BudgetSpec {
    BudgetSpec { file, function, context, field, expected, note }
}

/// One pinned module-level `const`: a paper parameter that lives as a
/// free constant rather than a constructor field.
struct ConstSpec {
    /// File the constant lives in.
    file: &'static str,
    /// Constant name (`const <name>` is located by text).
    name: &'static str,
    /// Exact expected initializer text (whitespace-normalized).
    expected: &'static str,
    /// What the paper says this is.
    note: &'static str,
}

/// Paper parameters pinned as module-level constants. The SRRIP RRPV
/// width is a storage budget like any table size: widening it to 3-bit
/// RRIP changes both the replacement behaviour and the per-line metadata
/// cost the iso-storage comparison accounts for.
const CONST_PINS: &[ConstSpec] = &[
    ConstSpec {
        file: "crates/memsim/src/set_assoc.rs",
        name: "RRPV_MAX",
        expected: "3",
        note: "2-bit SRRIP: RRPV_MAX = 2^2 - 1",
    },
    ConstSpec {
        file: "crates/memsim/src/set_assoc.rs",
        name: "RRPV_LONG",
        expected: "2",
        note: "2-bit SRRIP long re-reference insertion (RRPV_MAX - 1)",
    },
    // Per-size L1 TLB geometries (Skylake-class cpuid leaves): the
    // huge-page axis only compares like-for-like while the split L1
    // arrays keep these shapes.
    ConstSpec {
        file: "crates/types/src/page.rs",
        name: "L1_DTLB_GEOM_4K",
        expected: "(64, 4)",
        note: "64-entry 4-way 4 KB L1 DTLB (cpuid)",
    },
    ConstSpec {
        file: "crates/types/src/page.rs",
        name: "L1_DTLB_GEOM_2M",
        expected: "(32, 4)",
        note: "32-entry 4-way 2 MB L1 DTLB (cpuid)",
    },
    ConstSpec {
        file: "crates/types/src/page.rs",
        name: "L1_DTLB_GEOM_1G",
        expected: "(8, 8)",
        note: "8-entry fully-associative 1 GB L1 DTLB (cpuid)",
    },
    // dpPred's total budget, re-derived for the multi-page-size LLT: a
    // huge page is one LLT entry and one prediction unit, so the budget
    // is unchanged from the paper's Section V-D figure.
    ConstSpec {
        file: "crates/predictors/src/storage.rs",
        name: "DPPRED_BUDGET_BYTES",
        expected: "1306",
        note: "dpPred budget: 896 B metadata + 384 B pHIST + 26 B shadow (Section V-D)",
    },
];

pub fn check(file: &SourceFile, violations: &mut Vec<Violation>) {
    check_structure_sizes(file, violations);
    check_const_pins(file, violations);
    check_counter_widths(file, violations);
}

fn check_const_pins(file: &SourceFile, violations: &mut Vec<Violation>) {
    for pin in CONST_PINS.iter().filter(|p| p.file == file.rel) {
        let pattern = format!("const {}:", pin.name);
        let Some(offset) = file.token_offsets(&pattern).into_iter().next() else {
            push(
                violations,
                file,
                STRUCTURE_SIZE,
                0,
                format!(
                    "expected `const {}` (pins {}) — renamed or removed without updating \
                     the budget table in crates/xtask/src/rules/budget.rs",
                    pin.name, pin.note
                ),
            );
            continue;
        };
        let tail = &file.scrubbed[offset..];
        let value = tail.find('=').and_then(|eq| tail[eq + 1..].split(';').next().map(str::trim));
        match value {
            Some(value) if normalize(value) == normalize(pin.expected) => {}
            _ => push(
                violations,
                file,
                STRUCTURE_SIZE,
                offset,
                format!(
                    "`const {} = {}` violates the paper's hardware budget: expected `{}` ({})",
                    pin.name,
                    value.unwrap_or("?"),
                    pin.expected,
                    pin.note
                ),
            ),
        }
    }
}

fn check_structure_sizes(file: &SourceFile, violations: &mut Vec<Violation>) {
    for budget in BUDGETS.iter().filter(|b| b.file == file.rel) {
        let Some((body_start, body)) = fn_body(file, budget.function) else {
            push(
                violations,
                file,
                STRUCTURE_SIZE,
                0,
                format!(
                    "expected `fn {}` (pins {}) — renamed or removed without updating \
                     the budget table in crates/xtask/src/rules/budget.rs",
                    budget.function, budget.note
                ),
            );
            continue;
        };
        let (scope_start, scope) = match budget.context {
            None => (body_start, body),
            Some(context) => match scoped(body, context) {
                Some((rel, text)) => (body_start + rel, text),
                None => {
                    push(
                        violations,
                        file,
                        STRUCTURE_SIZE,
                        body_start,
                        format!(
                            "`fn {}` no longer contains `{context}` (pins {})",
                            budget.function, budget.note
                        ),
                    );
                    continue;
                }
            },
        };
        match field_value(scope, budget.field) {
            None => push(
                violations,
                file,
                STRUCTURE_SIZE,
                scope_start,
                format!(
                    "`fn {}`: field `{}` not found (expected `{}` — {})",
                    budget.function, budget.field, budget.expected, budget.note
                ),
            ),
            Some((rel, value)) if normalize(&value) != normalize(budget.expected) => push(
                violations,
                file,
                STRUCTURE_SIZE,
                scope_start + rel,
                format!(
                    "`{}: {}` violates the paper's hardware budget: expected `{}` ({})",
                    budget.field,
                    value.trim(),
                    budget.expected,
                    budget.note
                ),
            ),
            Some(_) => {}
        }
    }
}

/// Locates `fn <name>` in the scrubbed text and returns the byte offset
/// and text of its `{...}` body.
fn fn_body<'f>(file: &'f SourceFile, name: &str) -> Option<(usize, &'f str)> {
    let pattern = format!("fn {name}");
    let start = file.token_offsets(&pattern).into_iter().next()?;
    let open_rel = file.scrubbed[start..].find('{')?;
    let open = start + open_rel;
    let bytes = file.scrubbed.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, &file.scrubbed[open..=i]));
                }
            }
            _ => {}
        }
    }
    None
}

/// Confines `body` to the `{...}` group opened right after `context`.
fn scoped<'b>(body: &'b str, context: &str) -> Option<(usize, &'b str)> {
    let ctx = body.find(context)?;
    let open = ctx + body[ctx..].find('{')?;
    let bytes = body.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, &body[open..=i]));
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts the initializer text of `field:` (up to the next top-level
/// `,` or `}`) from a struct-literal scope.
fn field_value(scope: &str, field: &str) -> Option<(usize, String)> {
    let pattern = format!("{field}:");
    let bytes = scope.as_bytes();
    let mut from = 0;
    while let Some(pos) = scope[from..].find(&pattern) {
        let start = from + pos;
        from = start + pattern.len();
        let left_ok = start == 0 || !crate::source::is_ident_byte(bytes[start - 1]);
        // Skip `::` paths (e.g. `ReplacementKind::Lru` never matches a
        // field pattern anyway since pattern ends with single ':').
        let value_start = start + pattern.len();
        if !left_ok || bytes.get(value_start) == Some(&b':') {
            continue;
        }
        // `<`/`>` are deliberately not treated as brackets: initializers
        // like `2 << 20` are shifts, and these constructors use no
        // generic arguments with embedded commas.
        let mut depth = 0i32;
        let mut end = scope.len();
        for (i, &b) in bytes.iter().enumerate().skip(value_start) {
            match b {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => {
                    if depth == 0 {
                        end = i;
                        break;
                    }
                    depth -= 1;
                }
                b',' if depth == 0 => {
                    end = i;
                    break;
                }
                _ => {}
            }
        }
        return Some((start, scope[value_start..end].trim().to_owned()));
    }
    None
}

fn normalize(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

fn check_counter_widths(file: &SourceFile, violations: &mut Vec<Violation>) {
    for offset in file.token_offsets("SatCounter::new(") {
        if file.in_test_code(offset) {
            continue;
        }
        let arg_start = offset + "SatCounter::new(".len();
        let Some(close) = file.scrubbed[arg_start..].find(')') else { continue };
        let arg = file.scrubbed[arg_start..arg_start + close].trim();
        let Ok(width) = arg.replace('_', "").parse::<u32>() else {
            // Non-literal width (e.g. `config.counter_bits`): range-checked
            // at runtime by `SatCounter::new`'s assert and, under
            // `check-invariants`, by the structural invariants.
            continue;
        };
        if !(1..=8).contains(&width) {
            push(
                violations,
                file,
                COUNTER_WIDTH,
                offset,
                format!("`SatCounter::new({width})`: width must be within 1..=8 bits"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Violation> {
        let file = SourceFile::from_str(rel, src);
        let mut v = Vec::new();
        check(&file, &mut v);
        v
    }

    const GOOD_DPPRED: &str = "impl DpPredConfig {\n    pub fn paper_default() -> Self {\n        \
        DpPredConfig {\n            pc_bits: 6,\n            vpn_bits: 4,\n            \
        counter_bits: 3,\n            threshold: 6,\n            shadow_entries: 2,\n            \
        llt_sets: 128,\n            llt_ways: 8,\n        }\n    }\n}\n";

    #[test]
    fn correct_budgets_pass() {
        assert!(run("crates/predictors/src/dppred.rs", GOOD_DPPRED).is_empty());
    }

    #[test]
    fn drifted_budget_fails() {
        let drifted = GOOD_DPPRED.replace("shadow_entries: 2", "shadow_entries: 16");
        let v = run("crates/predictors/src/dppred.rs", &drifted);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, STRUCTURE_SIZE);
        assert!(v[0].message.contains("shadow_entries"));
        assert!(v[0].message.contains("2-entry shadow table"));
    }

    #[test]
    fn missing_field_fails() {
        let gone = GOOD_DPPRED.replace("threshold: 6,\n", "");
        let v = run("crates/predictors/src/dppred.rs", &gone);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("not found"));
    }

    #[test]
    fn renamed_constructor_fails() {
        let renamed = GOOD_DPPRED.replace("paper_default", "defaults");
        let v = run("crates/predictors/src/dppred.rs", &renamed);
        assert!(!v.is_empty());
        assert!(v[0].message.contains("renamed or removed"));
    }

    #[test]
    fn context_scoping_distinguishes_structures() {
        let src = "impl SystemConfig {\n    pub fn paper_baseline() -> Self {\n        Self {\n\
            l2_tlb: TlbConfig { entries: 1024, ways: 8, latency: 8, replacement: Lru },\n\
            llc: CacheConfig { size_bytes: 2 << 20, ways: 16, latency: 40, replacement: Lru },\n\
            mem_latency: 191,\n        }\n    }\n}\n";
        assert!(run("crates/types/src/config.rs", src).is_empty());
        let drifted = src.replace("entries: 1024", "entries: 2048");
        let v = run("crates/types/src/config.rs", &drifted);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("1024-entry LLT"));
    }

    const GOOD_RRPV: &str = "/// Maximum RRPV for 2-bit SRRIP (2^2 - 1).\npub const RRPV_MAX: \
        u8 = 3;\n/// SRRIP long re-reference insertion value.\npub const RRPV_LONG: u8 = 2;\n";

    #[test]
    fn rrpv_width_pinned() {
        assert!(run("crates/memsim/src/set_assoc.rs", GOOD_RRPV).is_empty());
        let widened = GOOD_RRPV.replace("RRPV_MAX: u8 = 3", "RRPV_MAX: u8 = 7");
        let v = run("crates/memsim/src/set_assoc.rs", &widened);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, STRUCTURE_SIZE);
        assert!(v[0].message.contains("2-bit SRRIP"));
    }

    #[test]
    fn removed_rrpv_const_fails() {
        let v = run("crates/memsim/src/set_assoc.rs", "pub const RRPV_MAX: u8 = 3;\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("RRPV_LONG"));
        assert!(v[0].message.contains("renamed or removed"));
    }

    #[test]
    fn const_pins_scoped_to_their_file() {
        // Other files may define their own RRPV constants freely.
        assert!(run("crates/memsim/src/cache.rs", "pub const RRPV_MAX: u8 = 7;\n").is_empty());
    }

    const GOOD_TLB_GEOMS: &str = "pub const L1_DTLB_GEOM_4K: (u32, u32) = (64, 4);\n\
        pub const L1_DTLB_GEOM_2M: (u32, u32) = (32, 4);\n\
        pub const L1_DTLB_GEOM_1G: (u32, u32) = (8, 8);\n";

    #[test]
    fn per_size_tlb_geometries_pinned() {
        assert!(run("crates/types/src/page.rs", GOOD_TLB_GEOMS).is_empty());
        let grown = GOOD_TLB_GEOMS.replace("(32, 4)", "(1536, 12)");
        let v = run("crates/types/src/page.rs", &grown);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, STRUCTURE_SIZE);
        assert!(v[0].message.contains("2 MB L1 DTLB"));
    }

    #[test]
    fn dppred_budget_const_pinned() {
        let good = "pub const DPPRED_BUDGET_BYTES: u64 = 1306;\n";
        assert!(run("crates/predictors/src/storage.rs", good).is_empty());
        let inflated = "pub const DPPRED_BUDGET_BYTES: u64 = 2048;\n";
        let v = run("crates/predictors/src/storage.rs", inflated);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("Section V-D"));
    }

    #[test]
    fn counter_width_literals_checked() {
        let v = run("crates/foo/src/lib.rs", "let c = SatCounter::new(9);\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, COUNTER_WIDTH);
        assert!(run("crates/foo/src/lib.rs", "let c = SatCounter::new(3);\n").is_empty());
        assert!(run("crates/foo/src/lib.rs", "let c = SatCounter::new(cfg.bits);\n").is_empty());
    }
}
