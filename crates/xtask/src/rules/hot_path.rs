//! `hot-path` family: panic-free, allocation-free simulation kernels.
//!
//! Two scopes compose:
//!
//! * **crate scope** — all non-test code in `crates/memsim` and
//!   `crates/predictors` (executed once per simulated memory operation)
//!   must not `unwrap`/`expect`, must not reach `panic!`-family macros,
//!   and may only index slices when the enclosing function shows visible
//!   bounds reasoning;
//! * **reachability scope** — every function the call graph
//!   ([`crate::graph`]) proves reachable from the replay roots
//!   (`System::run_stream`/`step`, `SetAssoc::locate`/`fill`, the
//!   `LltPolicy`/`LlcPolicy` hook surface, `EventStream::decode_chunk`)
//!   is held to the same rules *wherever it lives*, plus the
//!   [`ALLOC`] rule: no heap construction (`Vec`/`Box`/`format!`/
//!   `to_vec`/`to_owned`-style heap clones) on the warm path, the static
//!   complement of the counting-allocator proof in
//!   `tests/alloc_free.rs`.

use super::{push, Violation};
use crate::graph::HotSpan;
use crate::source::{is_ident_byte, SourceFile};
use std::ops::Range;

/// No `.unwrap()` / `.expect(` in non-test hot-path code.
pub const UNWRAP: &str = "hot-path::unwrap";

/// No `panic!` / `unreachable!` / `todo!` / `unimplemented!` /
/// `get_unchecked` in non-test hot-path code. (`assert!` is permitted:
/// constructor validation is bounds reasoning, not a hot-path hazard.)
pub const PANIC: &str = "hot-path::panic";

/// Slice indexing requires visible bounds reasoning in the enclosing
/// function.
pub const INDEX: &str = "hot-path::index";

/// No heap construction in code reachable from the replay roots.
pub const ALLOC: &str = "hot-path::alloc";

/// Crate source trees the panic/index rules apply to wholesale.
const HOT_PATH_SCOPES: &[&str] = &["crates/memsim/src/", "crates/predictors/src/"];

const PANIC_TOKENS: &[&str] =
    &["panic!(", "unreachable!(", "todo!(", "unimplemented!(", "get_unchecked"];

/// Heap-constructing expressions forbidden in hot-reachable code. The
/// list is textual and deliberately explicit: `collect` only counts when
/// its turbofish names an allocating container, and `clone` is covered
/// via the owning conversions (`to_vec`/`to_owned`/`to_string`) — a bare
/// `.clone()` may be a `Copy`-like register copy the pass cannot type.
const ALLOC_TOKENS: &[&str] = &[
    "Vec::new(",
    "Vec::with_capacity(",
    "vec![",
    "Box::new(",
    "Box::from(",
    "Rc::new(",
    "Arc::new(",
    "format!(",
    "String::new(",
    "String::with_capacity(",
    "String::from(",
    ".to_vec(",
    ".to_owned(",
    ".to_string(",
    ".into_vec(",
    "HashMap::new(",
    "HashSet::new(",
    "BTreeMap::new(",
    "BTreeSet::new(",
    "VecDeque::new(",
    ".collect::<Vec",
    ".collect::<String",
    ".collect::<Box",
];

pub fn in_scope(rel: &str) -> bool {
    HOT_PATH_SCOPES.iter().any(|scope| rel.starts_with(scope))
}

pub fn check(file: &SourceFile, hot: &[HotSpan], violations: &mut Vec<Violation>) {
    let crate_scoped = in_scope(&file.rel);
    if crate_scoped {
        check_unwrap(file, 0..file.scrubbed.len(), "", violations);
        check_panics(file, 0..file.scrubbed.len(), "", violations);
        check_indexing(file, 0..file.scrubbed.len(), "", violations);
    }
    for span in hot {
        let context = format!(" — hot-path-reachable via {}", span.via);
        if !crate_scoped {
            // The crate sweep already covered these bodies; outside it,
            // reachability extends the panic/index rules to this span.
            check_unwrap(file, span.body.clone(), &context, violations);
            check_panics(file, span.body.clone(), &context, violations);
            check_indexing(file, span.body.clone(), &context, violations);
        }
        check_alloc(file, span.body.clone(), &context, violations);
    }
}

fn check_unwrap(
    file: &SourceFile,
    range: Range<usize>,
    context: &str,
    violations: &mut Vec<Violation>,
) {
    for token in [".unwrap()", ".expect("] {
        for offset in file.token_offsets(token) {
            if !range.contains(&offset) || file.in_test_code(offset) {
                continue;
            }
            push(
                violations,
                file,
                UNWRAP,
                offset,
                format!(
                    "`{token}` in hot-path code: return an error or restructure so the \
                     failure case is impossible by construction{context}",
                ),
            );
        }
    }
}

fn check_panics(
    file: &SourceFile,
    range: Range<usize>,
    context: &str,
    violations: &mut Vec<Violation>,
) {
    for token in PANIC_TOKENS {
        for offset in file.token_offsets(token) {
            if !range.contains(&offset) || file.in_test_code(offset) {
                continue;
            }
            push(violations, file, PANIC, offset, format!("`{token}` in hot-path code{context}"));
        }
    }
}

fn check_alloc(
    file: &SourceFile,
    range: Range<usize>,
    context: &str,
    violations: &mut Vec<Violation>,
) {
    for token in ALLOC_TOKENS {
        for offset in file.token_offsets(token) {
            if !range.contains(&offset) || file.in_test_code(offset) {
                continue;
            }
            push(
                violations,
                file,
                ALLOC,
                offset,
                format!(
                    "`{token}` allocates in hot-reachable code: hoist the allocation to \
                     construction/reset time and reuse the buffer{context}"
                ),
            );
        }
    }
}

/// Evidence that a computed index is in bounds. Any of:
///
/// * the index expression itself masks (`%`, `&`, `>>`, `.min(`);
/// * it is an integer literal;
/// * the enclosing function binds it through a mask, or through a helper
///   whose name declares index production (`index`, `idx`, `hash`,
///   `radix`, `set_of`, `way`);
/// * the enclosing function asserts about it (`assert!`, `debug_assert!`,
///   `invariant!`) or compares it against a bound (`x <`, `x >=`);
/// * it is a `for`-loop variable (bounded by its range) or comes from
///   `.enumerate()` / `.len()`.
fn check_indexing(
    file: &SourceFile,
    range: Range<usize>,
    context: &str,
    violations: &mut Vec<Violation>,
) {
    let bytes = file.scrubbed.as_bytes();
    let mut i = range.start;
    while i < range.end {
        if bytes[i] != b'[' {
            i += 1;
            continue;
        }
        let open = i;
        // Indexing only: the `[` must directly follow an identifier, `)`,
        // or `]` (array literals, attributes and types don't).
        let prev = previous_non_space(bytes, open);
        let is_indexing = prev.is_some_and(|b| is_ident_byte(b) || b == b')' || b == b']');
        let Some(close) = matching_bracket(bytes, open) else {
            i = open + 1;
            continue;
        };
        i = open + 1;
        if !is_indexing || file.in_test_code(open) {
            continue;
        }
        let content = file.scrubbed[open + 1..close].trim();
        if content.is_empty() || index_is_self_evident(content) {
            continue;
        }
        let Some(body) = file.enclosing_fn_body(open) else { continue };
        let Some(ident) = main_identifier(content) else { continue };
        if body_shows_bounds_reasoning(body, &ident) {
            continue;
        }
        push(
            violations,
            file,
            INDEX,
            open,
            format!(
                "slice index `{content}` has no visible bounds reasoning in this function \
                 (mask it, bound it with an assert/`invariant!`, or use `.get`){context}"
            ),
        );
    }
}

fn previous_non_space(bytes: &[u8], mut i: usize) -> Option<u8> {
    while i > 0 {
        i -= 1;
        if bytes[i] != b' ' && bytes[i] != b'\n' {
            return Some(bytes[i]);
        }
    }
    None
}

fn matching_bracket(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Indexes that carry their own bounds reasoning.
fn index_is_self_evident(content: &str) -> bool {
    // Literal (possibly cast or ranged): `0`, `3`, `1..=3`, `0..n`.
    if content
        .chars()
        .all(|c| c.is_ascii_digit() || "._= ".contains(c) || c == 'u' || c == 's' || c == 'i')
    {
        return true;
    }
    // Inline mask or clamp.
    ["%", "&", ">>", ".min(", ".clamp("].iter().any(|m| content.contains(m))
}

/// The identifier the index hinges on: the last plain identifier in the
/// content (`self.config.vpn_bits` → `vpn_bits`, `*cursor` → `cursor`,
/// `level as usize` → `level`).
fn main_identifier(content: &str) -> Option<String> {
    let stripped = content
        .trim_end_matches("as usize")
        .trim_end_matches("as u64")
        .trim_end_matches("as u32")
        .trim();
    let mut best: Option<&str> = None;
    let mut start = None;
    for (i, c) in stripped.char_indices().chain([(stripped.len(), ' ')]) {
        if c.is_ascii_alphanumeric() || c == '_' {
            start.get_or_insert(i);
        } else if let Some(s) = start.take() {
            let word = &stripped[s..i];
            if !word.starts_with(|c: char| c.is_ascii_digit()) && word != "as" {
                best = Some(word);
            }
        }
    }
    best.map(str::to_owned)
}

/// Keywords in a binding's right-hand side that certify the value as an
/// in-range index.
///
/// `locate`, `match_mask` and `trailing_zeros` cover the SoA hot path
/// (`crates/memsim/src/soa.rs` and its `set_assoc` callers): `locate`
/// returns a flat column index bounded by construction, and a way index
/// recovered via `trailing_zeros` of a validity/match bitmask is bounded
/// by the mask width (`match_mask` intersects with the per-set validity
/// mask, whose population never exceeds `ways`).
const TRUSTED_PRODUCERS: &[&str] = &[
    "index",
    "idx",
    "hash",
    "radix",
    "set_of",
    "way",
    "len",
    "locate",
    "match_mask",
    "trailing_zeros",
];

fn body_shows_bounds_reasoning(body: &str, ident: &str) -> bool {
    // Bounded loop variable: `for <ident> in ...` or `.enumerate()` in
    // the same function.
    if contains_seq(body, &["for ", ident, " in"]) || body.contains(".enumerate()") {
        return true;
    }
    // Assertions mentioning the identifier.
    for assert in ["assert!(", "assert_eq!(", "debug_assert!(", "invariant!("] {
        let mut from = 0;
        while let Some(pos) = body[from..].find(assert) {
            let start = from + pos;
            from = start + assert.len();
            let stmt_end = body[start..].find(';').map_or(body.len(), |e| start + e);
            if token_in(&body[start..stmt_end], ident) {
                return true;
            }
        }
    }
    // Comparison against a bound anywhere in the function.
    for cmp in [format!("{ident} <"), format!("{ident} >="), format!("< {ident}")] {
        if body.contains(&cmp) {
            return true;
        }
    }
    // A binding whose right-hand side masks or calls a trusted producer:
    // `let idx = self.index(...)`, `let set = x % sets`, or a tuple
    // destructuring that ends with the identifier, as in
    // `let (set, idx) = self.locate(addr, way)`.
    for pattern in [format!("{ident} ="), format!("{ident}) =")] {
        let mut from = 0;
        while let Some(pos) = body[from..].find(&pattern) {
            let start = from + pos;
            from = start + pattern.len();
            let left_ok = start == 0 || !is_ident_byte(body.as_bytes()[start - 1]);
            if !left_ok || body.as_bytes().get(start + pattern.len()) == Some(&b'=') {
                continue;
            }
            let rhs_end = body[start..].find(';').map_or(body.len(), |e| start + e);
            let rhs = &body[start + pattern.len()..rhs_end];
            if ["%", "&", ">>", ".min(", ".clamp("].iter().any(|m| rhs.contains(m))
                || TRUSTED_PRODUCERS.iter().any(|p| rhs.to_ascii_lowercase().contains(p))
            {
                return true;
            }
        }
    }
    false
}

fn contains_seq(body: &str, parts: &[&str]) -> bool {
    let needle: String = parts.concat();
    body.contains(&needle)
}

fn token_in(haystack: &str, token: &str) -> bool {
    let bytes = haystack.as_bytes();
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(token) {
        let start = from + pos;
        let end = start + token.len();
        let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let right_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Violation> {
        let file = SourceFile::from_str(rel, src);
        let mut v = Vec::new();
        check(&file, &[], &mut v);
        v
    }

    /// Runs the checks with one hot span covering `fn_name`'s body.
    fn run_hot(rel: &str, src: &str, fn_name: &str) -> Vec<Violation> {
        let file = SourceFile::from_str(rel, src);
        let at = src.find(&format!("fn {fn_name}")).expect("fn present");
        let body_open = src[at..].find('{').expect("body") + at;
        let span = HotSpan {
            body: body_open..src.len(),
            fn_name: fn_name.to_owned(),
            via: format!("System::step → {fn_name}"),
        };
        let mut v = Vec::new();
        check(&file, &[span], &mut v);
        v
    }

    #[test]
    fn unwrap_in_hot_path_flagged() {
        let v = run("crates/memsim/src/cache.rs", "fn f(x: Option<u32>) { x.unwrap(); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, UNWRAP);
    }

    #[test]
    fn expect_in_hot_path_flagged() {
        let v = run(
            "crates/predictors/src/dppred.rs",
            "fn f(x: Option<u32>) { x.expect(\"present\"); }\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, UNWRAP);
    }

    #[test]
    fn unwrap_outside_scope_ignored_without_reachability() {
        let v = run("crates/core/src/runner.rs", "fn f(x: Option<u32>) { x.unwrap(); }\n");
        assert!(v.is_empty());
    }

    #[test]
    fn unwrap_outside_scope_flagged_when_hot() {
        let v = run_hot(
            "crates/core/src/runner.rs",
            "fn helper(x: Option<u32>) { x.unwrap(); }\n",
            "helper",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, UNWRAP);
        assert!(v[0].message.contains("hot-path-reachable via System::step"), "{}", v[0].message);
    }

    #[test]
    fn panic_outside_scope_flagged_when_hot() {
        let v = run_hot(
            "crates/types/src/stream.rs",
            "fn decode(x: u32) { if x > 3 { panic!(\"bad tag\"); } }\n",
            "decode",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, PANIC);
    }

    #[test]
    fn alloc_in_hot_span_flagged() {
        let v = run_hot(
            "crates/memsim/src/walker.rs",
            "fn walk(&mut self) { let scratch = Vec::with_capacity(4); }\n",
            "walk",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, ALLOC);
        assert!(v[0].message.contains("Vec::with_capacity("));
    }

    #[test]
    fn alloc_outside_hot_span_ignored() {
        // Constructors allocate by design; without a hot span the alloc
        // rule stays silent even inside the hot crates.
        let v = run(
            "crates/memsim/src/walker.rs",
            "fn new() -> Self { Self { nodes: Vec::with_capacity(4) } }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn alloc_variants_flagged() {
        for (snippet, token) in [
            ("let s = format!(\"{x}\");", "format!("),
            ("let b = Box::new(x);", "Box::new("),
            ("let v = slice.to_vec();", ".to_vec("),
            ("let o = name.to_owned();", ".to_owned("),
            ("let c: Vec<u32> = it.collect::<Vec<u32>>();", ".collect::<Vec"),
        ] {
            let src = format!("fn hotfn(x: u32) {{ {snippet} }}\n");
            let v = run_hot("crates/core/src/report.rs", &src, "hotfn");
            assert!(v.iter().any(|v| v.rule == ALLOC), "{token} not flagged: {v:?}");
        }
    }

    #[test]
    fn unwrap_in_tests_ignored() {
        let v = run(
            "crates/memsim/src/cache.rs",
            "#[cfg(test)]\nmod tests {\n    fn f(x: Option<u32>) { x.unwrap(); }\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn panic_macros_flagged() {
        let v = run("crates/memsim/src/tlb.rs", "fn f() { unreachable!(\"no\"); }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, PANIC);
    }

    #[test]
    fn assert_is_not_a_panic_violation() {
        let v = run("crates/memsim/src/tlb.rs", "fn f(n: u32) { assert!(n > 0, \"no\"); }\n");
        assert!(v.is_empty());
    }

    #[test]
    fn no_double_report_in_crate_scope_with_hot_span() {
        // A hot span inside memsim must not duplicate the crate sweep's
        // unwrap/panic findings (only the alloc rule adds there).
        let v = run_hot(
            "crates/memsim/src/cache.rs",
            "fn helper(x: Option<u32>) { x.unwrap(); }\n",
            "helper",
        );
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn unproven_index_flagged() {
        let v = run(
            "crates/predictors/src/dppred.rs",
            "fn f(&mut self, wild: usize) { self.phist[wild].clear(); }\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, INDEX);
    }

    #[test]
    fn unproven_index_in_hot_span_flagged_outside_scope() {
        let v = run_hot(
            "crates/types/src/stream.rs",
            "fn decode(&self, wild: usize) -> u64 { self.tags[wild] }\n",
            "decode",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, INDEX);
    }

    #[test]
    fn masked_index_allowed() {
        let v = run(
            "crates/predictors/src/dppred.rs",
            "fn f(&mut self, wild: usize) { self.phist[wild % self.phist.len()].clear(); }\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn invariant_checked_index_allowed() {
        let src = "fn f(&mut self, wild: usize) {\n    dpc_types::invariant!(wild < \
                   self.phist.len());\n    self.phist[wild].clear();\n}\n";
        assert!(run("crates/predictors/src/dppred.rs", src).is_empty());
    }

    #[test]
    fn trusted_producer_binding_allowed() {
        let src = "fn f(&mut self, pc: u32, vpn: u32) {\n    let slot = self.index(pc, vpn);\n    \
                   self.phist[slot].clear();\n}\n";
        assert!(run("crates/predictors/src/dppred.rs", src).is_empty());
    }

    #[test]
    fn soa_bitmask_first_match_allowed() {
        // The SoA hot-path idiom: a way recovered from the match bitmask
        // via `trailing_zeros` is bounded by the validity-mask width.
        let src =
            "fn lookup(&mut self, set: usize, base: usize, tag: u64) -> Option<usize> {\n    \
                   let hit = self.cols.match_mask(set, base, tag);\n    \
                   let way = hit.trailing_zeros() as usize;\n    \
                   Some(self.stamps[way])\n}\n";
        assert!(run("crates/memsim/src/soa.rs", src).is_empty());
    }

    #[test]
    fn tuple_destructured_trusted_producer_allowed() {
        // `locate` returns `(set, flat_index)`; binding through a tuple
        // pattern is the same evidence as a direct binding.
        let src = "fn payload(&self, addr: u64, way: usize) -> &P {\n    \
                   let (_, idx) = self.locate(addr, way);\n    \
                   &self.payloads[idx]\n}\n";
        assert!(run("crates/memsim/src/set_assoc.rs", src).is_empty());
    }

    #[test]
    fn tuple_binding_without_producer_still_flagged() {
        let src = "fn f(&self, addr: u64) -> u32 {\n    \
                   let (_, wild) = self.mystery(addr);\n    \
                   self.payloads[wild]\n}\n";
        let v = run("crates/memsim/src/set_assoc.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, INDEX);
    }

    #[test]
    fn loop_variable_index_allowed() {
        let src = "fn f(&mut self) {\n    for level in 0..4 {\n        \
                   self.nodes[level].touch();\n    }\n}\n";
        assert!(run("crates/memsim/src/walker.rs", src).is_empty());
    }

    #[test]
    fn array_literals_not_mistaken_for_indexing() {
        let src = "fn f() -> [u64; 4] {\n    let a = [0u64; 4];\n    a\n}\n";
        assert!(run("crates/memsim/src/walker.rs", src).is_empty());
    }

    #[test]
    fn get_unchecked_flagged() {
        let src = "fn f(v: &[u32], i: usize) -> u32 { unsafe { *v.get_unchecked(i) } }\n";
        let v = run("crates/memsim/src/cache.rs", src);
        assert!(v.iter().any(|v| v.rule == PANIC));
    }
}
