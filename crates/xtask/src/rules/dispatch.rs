//! `dispatch` family: keep the simulation hot path monomorphic.
//!
//! The event loop dispatches policy hooks (`on_lookup` / `on_fill` /
//! `on_hit` / `on_evict`) once per simulated memory operation at every
//! cache and TLB level. Those hooks only inline — and the predictor
//! update paths only fuse with the SoA scan loops — when the policy type
//! is concrete, which is the whole point of the `System<L, C>`
//! monomorphization. A `dyn LltPolicy` / `dyn LlcPolicy` anywhere in
//! `memsim` or `core` silently reintroduces two virtual calls per hook
//! site, so trait-object policy types are confined to the designated
//! fallback modules (`crates/memsim/src/fallback.rs`,
//! `crates/core/src/fallback.rs`), which exist precisely to box exotic
//! or test-only policies behind the same constructors.

use super::{push, Violation};
use crate::source::SourceFile;

/// No `dyn LltPolicy` / `dyn LlcPolicy` (boxed or borrowed) outside the
/// designated fallback modules.
pub const BOXED_POLICY: &str = "dispatch::boxed-policy";

/// Crate source trees the family applies to: the simulator kernel and
/// the experiment-construction layer that instantiates it.
const DISPATCH_SCOPES: &[&str] = &["crates/memsim/src/", "crates/core/src/"];

/// Module allowed to name trait-object policy types: the fallback that
/// deliberately trades dispatch cost for runtime flexibility.
const FALLBACK_SUFFIX: &str = "/fallback.rs";

const POLICY_OBJECT_TOKENS: &[&str] = &["dyn LltPolicy", "dyn LlcPolicy"];

pub fn in_scope(rel: &str) -> bool {
    DISPATCH_SCOPES.iter().any(|scope| rel.starts_with(scope)) && !rel.ends_with(FALLBACK_SUFFIX)
}

pub fn check(file: &SourceFile, violations: &mut Vec<Violation>) {
    if !in_scope(&file.rel) {
        return;
    }
    for token in POLICY_OBJECT_TOKENS {
        for offset in file.token_offsets(token) {
            if file.in_test_code(offset) {
                continue;
            }
            push(
                violations,
                file,
                BOXED_POLICY,
                offset,
                format!(
                    "`{token}` outside the fallback module: trait-object policies devirtualize \
                     the per-event hook sites; use `System<L, C>` with concrete types (or the \
                     `fallback` module if dynamic dispatch is genuinely required)",
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from(rel), rel.to_owned(), src.to_owned())
    }

    fn rules(file: &SourceFile) -> Vec<&'static str> {
        let mut violations = Vec::new();
        check(file, &mut violations);
        violations.into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn boxed_policy_in_memsim_flagged() {
        let f = file("crates/memsim/src/system.rs", "fn f(p: Box<dyn LltPolicy>) {}\n");
        assert_eq!(rules(&f), vec![BOXED_POLICY]);
    }

    #[test]
    fn borrowed_policy_object_in_core_flagged() {
        let f = file("crates/core/src/runner.rs", "fn f(p: &mut dyn LlcPolicy) {}\n");
        assert_eq!(rules(&f), vec![BOXED_POLICY]);
    }

    #[test]
    fn fallback_modules_exempt() {
        for rel in ["crates/memsim/src/fallback.rs", "crates/core/src/fallback.rs"] {
            let f = file(rel, "pub type DynLltPolicy = Box<dyn LltPolicy>;\n");
            assert_eq!(rules(&f), Vec::<&str>::new(), "{rel} is the designated home");
        }
    }

    #[test]
    fn out_of_scope_crates_and_tests_exempt() {
        let f = file("crates/bench/src/lib.rs", "fn f(p: Box<dyn LltPolicy>) {}\n");
        assert_eq!(rules(&f), Vec::<&str>::new());
        let f = file(
            "crates/memsim/src/system.rs",
            "#[cfg(test)]\nmod tests {\n    fn f(p: Box<dyn LltPolicy>) {}\n}\n",
        );
        assert_eq!(rules(&f), Vec::<&str>::new());
    }

    #[test]
    fn similarly_named_types_not_flagged() {
        // `DynLltPolicy` (the alias) and comments must not trip the rule.
        let f = file(
            "crates/memsim/src/system.rs",
            "// a dyn LltPolicy would be slow\nuse crate::fallback::DynLltPolicy;\n",
        );
        assert_eq!(rules(&f), Vec::<&str>::new());
    }
}
