//! `simd` family: keep vector code auditable.
//!
//! The workspace denies `unsafe_code` globally; the SIMD kernels are the
//! one sanctioned exception, and they are only auditable if they stay in
//! one place per crate. This family confines `unsafe` and `core::arch`
//! to the dedicated `simd.rs` modules of the hot-path crates
//! (`crates/types/src/simd.rs`, `crates/memsim/src/simd.rs`,
//! `crates/predictors/src/simd.rs`), and inside those modules requires
//! every `unsafe` block to carry a `// SAFETY:` justification within a
//! few lines above it.

use super::{push, Violation};
use crate::source::SourceFile;

/// `unsafe` / `core::arch` outside a dedicated `simd.rs` module, or an
/// `unsafe` block inside one without a nearby `// SAFETY:` comment.
pub const CONFINED_UNSAFE: &str = "simd::confined-unsafe";

/// Crate source trees the family applies to: everything the event-loop
/// hot path runs through.
const SIMD_SCOPES: &[&str] = &["crates/types/src/", "crates/memsim/src/", "crates/predictors/src/"];

/// The designated home of vector kernels within each scoped crate.
const SIMD_SUFFIX: &str = "/simd.rs";

/// How many raw source lines above an `unsafe` block may hold its
/// `// SAFETY:` comment (multi-line justifications are common).
const SAFETY_WINDOW: usize = 6;

pub fn in_scope(rel: &str) -> bool {
    SIMD_SCOPES.iter().any(|scope| rel.starts_with(scope))
}

pub fn check(file: &SourceFile, violations: &mut Vec<Violation>) {
    if !in_scope(&file.rel) {
        return;
    }
    if file.rel.ends_with(SIMD_SUFFIX) {
        check_safety_comments(file, violations);
        return;
    }
    for token in ["unsafe", "core::arch"] {
        for offset in file.token_offsets(token) {
            if file.in_test_code(offset) {
                continue;
            }
            push(
                violations,
                file,
                CONFINED_UNSAFE,
                offset,
                format!(
                    "`{token}` outside the dedicated simd module: vector kernels and their \
                     unsafe code belong in this crate's `src/simd.rs` behind a safe dispatch \
                     wrapper, so every unsafe line in the hot-path crates sits in one \
                     auditable place"
                ),
            );
        }
    }
}

/// Inside a `simd.rs` module: every non-test `unsafe` *block* must have
/// a `// SAFETY:` comment on its own line or within [`SAFETY_WINDOW`]
/// lines above. `unsafe fn` declarations are exempt — their obligations
/// are discharged at the call sites, which are blocks.
fn check_safety_comments(file: &SourceFile, violations: &mut Vec<Violation>) {
    let raw_lines: Vec<&str> = file.raw.lines().collect();
    for offset in file.token_offsets("unsafe") {
        if file.in_test_code(offset) || !is_block(&file.scrubbed, offset) {
            continue;
        }
        let line = file.line_of(offset); // 1-based
        let from = line.saturating_sub(SAFETY_WINDOW + 1);
        let documented =
            raw_lines[from..line.min(raw_lines.len())].iter().any(|l| l.contains("SAFETY:"));
        if !documented {
            push(
                violations,
                file,
                CONFINED_UNSAFE,
                offset,
                format!(
                    "`unsafe` block without a `// SAFETY:` comment within {SAFETY_WINDOW} \
                     lines: state the invariant that makes the block sound"
                ),
            );
        }
    }
}

/// Whether the `unsafe` token at `offset` opens a block (`unsafe {`)
/// rather than declaring an `unsafe fn`/`unsafe impl`.
fn is_block(scrubbed: &str, offset: usize) -> bool {
    scrubbed[offset + "unsafe".len()..].trim_start().starts_with('{')
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from(rel), rel.to_owned(), src.to_owned())
    }

    fn rules(file: &SourceFile) -> Vec<&'static str> {
        let mut violations = Vec::new();
        check(file, &mut violations);
        violations.into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn unsafe_outside_simd_module_flagged() {
        for rel in [
            "crates/types/src/stream.rs",
            "crates/memsim/src/soa.rs",
            "crates/predictors/src/dppred.rs",
        ] {
            let f = file(rel, "fn f() { unsafe { bad() } }\n");
            assert_eq!(rules(&f), vec![CONFINED_UNSAFE], "{rel}");
        }
    }

    #[test]
    fn core_arch_outside_simd_module_flagged() {
        let f = file("crates/memsim/src/system.rs", "use core::arch::x86_64::_mm_prefetch;\n");
        assert_eq!(rules(&f), vec![CONFINED_UNSAFE]);
    }

    #[test]
    fn documented_block_in_simd_module_clean() {
        let f = file(
            "crates/memsim/src/simd.rs",
            "fn f() {\n    // SAFETY: slice is 32 bytes by construction.\n    unsafe { load() }\n}\n",
        );
        assert_eq!(rules(&f), Vec::<&str>::new());
    }

    #[test]
    fn undocumented_block_in_simd_module_flagged() {
        let f = file("crates/types/src/simd.rs", "fn f() {\n    unsafe { load() }\n}\n");
        assert_eq!(rules(&f), vec![CONFINED_UNSAFE]);
    }

    #[test]
    fn safety_comment_must_be_nearby() {
        let filler = "    x();\n".repeat(SAFETY_WINDOW + 1);
        let src =
            format!("fn f() {{\n    // SAFETY: far away.\n{filler}    unsafe {{ load() }}\n}}\n");
        let f = file("crates/types/src/simd.rs", &src);
        assert_eq!(rules(&f), vec![CONFINED_UNSAFE]);
    }

    #[test]
    fn unsafe_fn_declarations_exempt_inside_simd_module() {
        let f = file(
            "crates/memsim/src/simd.rs",
            "#[target_feature(enable = \"avx2\")]\nunsafe fn kernel(x: &[u64]) -> u64 { 0 }\n",
        );
        assert_eq!(rules(&f), Vec::<&str>::new());
    }

    #[test]
    fn out_of_scope_crates_and_tests_exempt() {
        let f = file("crates/bench/src/lib.rs", "fn f() { unsafe { bad() } }\n");
        assert_eq!(rules(&f), Vec::<&str>::new());
        let f = file(
            "crates/memsim/src/soa.rs",
            "#[cfg(test)]\nmod tests {\n    fn f() { unsafe { fine_in_tests() } }\n}\n",
        );
        assert_eq!(rules(&f), Vec::<&str>::new());
        let f = file(
            "crates/types/src/simd.rs",
            "#[cfg(test)]\nmod tests {\n    fn f() { unsafe { kernel() } }\n}\n",
        );
        assert_eq!(rules(&f), Vec::<&str>::new());
    }

    #[test]
    fn words_containing_unsafe_not_flagged() {
        // `unsafe_code` (the lint name in attributes) has a trailing word
        // character, so the word-boundary token scan must skip it.
        let f = file("crates/types/src/stream.rs", "#![allow(unsafe_code)]\n");
        assert_eq!(rules(&f), Vec::<&str>::new());
    }
}
