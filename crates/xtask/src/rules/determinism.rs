//! `determinism` family: the campaign engine promises bit-identical
//! results for any `DPC_THREADS` value, and reports must not depend on
//! process-local state. These rules keep wall clocks, entropy, and
//! default-hasher iteration order out of anything that feeds a report.

use super::{push, Violation};
use crate::source::{is_ident_byte, SourceFile};

/// No `std::time::{Instant, SystemTime}` outside the campaign engine's
/// own timing code (`crates/core/src/campaign.rs`).
pub const WALL_CLOCK: &str = "determinism::wall-clock";

/// No `rand::thread_rng` / `SeedableRng::from_entropy` / `rand::random`
/// anywhere — workload generators must derive from `seed_from_u64`.
pub const UNSEEDED_RNG: &str = "determinism::unseeded-rng";

/// No iteration over default-hasher `HashMap`/`HashSet`: iteration order
/// is randomized per process, so any iteration that can reach a report,
/// a stat, or a memo key must use `BTreeMap`/`BTreeSet` or sort first.
pub const HASH_ITERATION: &str = "determinism::hash-iteration";

/// The one file allowed to read wall clocks: campaign observability.
const WALL_CLOCK_EXEMPT: &str = "crates/core/src/campaign.rs";

const CLOCK_TOKENS: &[&str] = &["Instant", "SystemTime"];
const RNG_TOKENS: &[&str] = &["thread_rng", "from_entropy", "rand::random"];

/// Iterator-producing methods whose order leaks out of a hash container.
const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
];

/// Order-restoring steps: a statement containing one of these after the
/// iteration is deterministic again.
const ORDER_RESTORERS: &[&str] = &["sort", "collect::<BTree", "collect::<std::collections::BTree"];

pub fn check(file: &SourceFile, violations: &mut Vec<Violation>) {
    check_wall_clock(file, violations);
    check_rng(file, violations);
    check_hash_iteration(file, violations);
}

fn check_wall_clock(file: &SourceFile, violations: &mut Vec<Violation>) {
    if file.rel == WALL_CLOCK_EXEMPT {
        return;
    }
    for token in CLOCK_TOKENS {
        for offset in file.token_offsets(token) {
            if file.in_test_code(offset) {
                continue;
            }
            push(
                violations,
                file,
                WALL_CLOCK,
                offset,
                format!(
                    "`{token}` outside {WALL_CLOCK_EXEMPT}: wall clocks break \
                     bit-identical campaign results"
                ),
            );
        }
    }
}

fn check_rng(file: &SourceFile, violations: &mut Vec<Violation>) {
    for token in RNG_TOKENS {
        for offset in file.token_offsets(token) {
            if file.in_test_code(offset) {
                continue;
            }
            push(
                violations,
                file,
                UNSEEDED_RNG,
                offset,
                format!("`{token}` is unseeded entropy; use `SmallRng::seed_from_u64`"),
            );
        }
    }
}

fn check_hash_iteration(file: &SourceFile, violations: &mut Vec<Violation>) {
    let names = hash_typed_names(&file.scrubbed);
    if names.is_empty() {
        return;
    }
    for name in &names {
        // `<name>.iter()` and friends.
        for method in ITER_METHODS {
            let pattern = format!("{name}{method}");
            for offset in file.token_offsets(&pattern) {
                if file.in_test_code(offset) || statement_restores_order(file, offset) {
                    continue;
                }
                push(
                    violations,
                    file,
                    HASH_ITERATION,
                    offset,
                    format!(
                        "iterating `{name}` (HashMap/HashSet): order is per-process random; \
                         use BTreeMap/BTreeSet or sort before anything observable"
                    ),
                );
            }
        }
        // `for x in [&[mut]] <name>` loops.
        for offset in for_loops_over(&file.scrubbed, name) {
            if file.in_test_code(offset) || statement_restores_order(file, offset) {
                continue;
            }
            push(
                violations,
                file,
                HASH_ITERATION,
                offset,
                format!(
                    "`for` loop over `{name}` (HashMap/HashSet): order is per-process random; \
                     use BTreeMap/BTreeSet or sort first"
                ),
            );
        }
    }
}

/// Whether the statement containing `offset` ends in an order-restoring
/// step (`.sort*()`, `.collect::<BTree...>()`).
fn statement_restores_order(file: &SourceFile, offset: usize) -> bool {
    let stmt = file.statement_from(offset, 600);
    ORDER_RESTORERS.iter().any(|r| stmt.contains(r))
}

/// Identifiers bound to a `HashMap`/`HashSet` in this file: struct fields
/// and `let` bindings with a hash-typed annotation or initializer, plus
/// bindings typed by a local `type X = ...HashMap...` alias.
fn hash_typed_names(scrubbed: &str) -> Vec<String> {
    let mut hash_types = vec!["HashMap".to_owned(), "HashSet".to_owned()];
    // Local aliases: `type DoaRecord = Rc<RefCell<HashMap<...>>>;`
    for line in scrubbed.lines() {
        let trimmed = line.trim_start();
        let alias = trimmed.strip_prefix("pub type ").or_else(|| trimmed.strip_prefix("type "));
        if let Some(rest) = alias {
            if let Some((name, rhs)) = rest.split_once('=') {
                if rhs.contains("HashMap") || rhs.contains("HashSet") {
                    let name = name.trim().split('<').next().unwrap_or("").trim();
                    if !name.is_empty() {
                        hash_types.push(name.to_owned());
                    }
                }
            }
        }
    }

    let mut names = Vec::new();
    for line in scrubbed.lines() {
        if !hash_types.iter().any(|t| contains_token(line, t)) {
            continue;
        }
        // `name: HashMap<...>` (field or annotated binding).
        if let Some(colon) = line.find(':') {
            let (before, after) = line.split_at(colon);
            if hash_types.iter().any(|t| contains_token(&after[1..], t)) {
                if let Some(name) = last_ident(before) {
                    names.push(name);
                }
            }
        }
        // `let [mut] name = HashMap::new()` / `HashSet::with_capacity(...)`.
        if let Some(eq) = line.find('=') {
            let (before, after) = line.split_at(eq);
            if hash_types.iter().any(|t| contains_token(&after[1..], t)) && before.contains("let ")
            {
                if let Some(name) = last_ident(before.trim_end().trim_end_matches(':')) {
                    names.push(name);
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names.retain(|n| !hash_types.contains(n) && n != "let" && n != "mut");
    names
}

fn contains_token(haystack: &str, token: &str) -> bool {
    let bytes = haystack.as_bytes();
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(token) {
        let start = from + pos;
        let end = start + token.len();
        let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let right_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}

/// The trailing identifier of `text` (e.g. `    pub cache` → `cache`).
fn last_ident(text: &str) -> Option<String> {
    let trimmed = text.trim_end();
    let start = trimmed
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .map_or(0, |i| i + c_len(trimmed, i));
    let ident = &trimmed[start..];
    (!ident.is_empty() && !ident.starts_with(|c: char| c.is_ascii_digit()))
        .then(|| ident.to_owned())
}

fn c_len(s: &str, i: usize) -> usize {
    s[i..].chars().next().map_or(1, char::len_utf8)
}

/// Start offsets of `for ... in [&[mut ]]name` loops (loop keyword
/// position), where the loop expression is exactly the named binding or a
/// field access ending in it.
fn for_loops_over(scrubbed: &str, name: &str) -> Vec<usize> {
    let mut offsets = Vec::new();
    let mut from = 0;
    while let Some(pos) = scrubbed[from..].find("for ") {
        let start = from + pos;
        from = start + 4;
        if start > 0 && is_ident_byte(scrubbed.as_bytes()[start - 1]) {
            continue;
        }
        let Some(in_rel) = scrubbed[start..].find(" in ") else { continue };
        let expr_start = start + in_rel + 4;
        let expr_end =
            scrubbed[expr_start..].find(['{', '\n']).map_or(scrubbed.len(), |i| expr_start + i);
        let expr = scrubbed[expr_start..expr_end]
            .trim()
            .trim_start_matches('&')
            .trim_start_matches("mut ")
            .trim();
        // Exactly the binding, or `self.<name>` / `foo.<name>`.
        let matches_name = expr == name
            || expr
                .strip_suffix(name)
                .is_some_and(|prefix| prefix.ends_with('.') || prefix.ends_with("::"));
        if matches_name {
            offsets.push(start);
        }
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Violation> {
        let file = SourceFile::from_str(rel, src);
        let mut v = Vec::new();
        check(&file, &mut v);
        v
    }

    #[test]
    fn instant_outside_campaign_flagged() {
        let v = run("crates/core/src/report.rs", "use std::time::Instant;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, WALL_CLOCK);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn instant_inside_campaign_allowed() {
        let v = run("crates/core/src/campaign.rs", "use std::time::Instant;\n");
        assert!(v.is_empty());
    }

    #[test]
    fn instant_in_test_code_allowed() {
        let v = run(
            "crates/core/src/report.rs",
            "#[cfg(test)]\nmod tests {\n    use std::time::Instant;\n}\n",
        );
        assert!(v.is_empty());
    }

    #[test]
    fn unseeded_rng_flagged() {
        let v = run("crates/workloads/src/graph.rs", "let mut rng = rand::thread_rng();\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, UNSEEDED_RNG);
    }

    #[test]
    fn seeded_rng_allowed() {
        let v =
            run("crates/workloads/src/graph.rs", "let mut rng = SmallRng::seed_from_u64(seed);\n");
        assert!(v.is_empty());
    }

    #[test]
    fn hashmap_field_iteration_flagged() {
        let src = "struct S { cache: HashMap<K, V> }\n\
                   impl S {\n    fn dump(&self) {\n        for (k, v) in &self.cache {\n            \
                   out.push(k);\n        }\n    }\n}\n";
        let v = run("crates/core/src/report.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, HASH_ITERATION);
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn hashmap_keys_method_flagged() {
        let src = "let m: HashMap<u32, u32> = HashMap::new();\nlet ks: Vec<_> = \
                   m.keys().collect();\n";
        let v = run("crates/core/src/report.rs", src);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn sorted_iteration_allowed() {
        let src = "let m: HashMap<u32, u32> = HashMap::new();\nlet mut ks: Vec<_> = \
                   m.keys().collect();\nks.sort();\n";
        // The sort is a separate statement: the `.keys()` statement itself
        // must contain the restore step to pass without an allow marker.
        let flagged = run("crates/core/src/report.rs", src);
        assert_eq!(flagged.len(), 1);

        let inline = "let m: HashMap<u32, u32> = HashMap::new();\nlet ks: BTreeSet<_> = \
                      m.keys().collect::<BTreeSet<_>>();\n";
        assert!(run("crates/core/src/report.rs", inline).is_empty());
    }

    #[test]
    fn keyed_access_allowed() {
        let src = "let m: HashMap<u32, u32> = HashMap::new();\nlet v = m.get(&1);\n\
                   m.insert(2, 3);\nlet n = m.len();\n";
        assert!(run("crates/core/src/report.rs", src).is_empty());
    }

    #[test]
    fn alias_typed_fields_are_tracked() {
        let src = "type Record = Rc<RefCell<HashMap<u64, bool>>>;\n\
                   struct S { record: Record }\n\
                   impl S { fn f(&self) { for x in self.record.borrow().iter() {} } }\n";
        // `for` over a method chain is not the bare name, but `.iter()` on
        // the field is caught via the method pattern.
        let src2 = "type Record = Rc<RefCell<HashMap<u64, bool>>>;\n\
                    struct S { record: Record }\n\
                    impl S { fn f(&self) { let _ = self.record.iter(); } }\n";
        assert_eq!(run("crates/predictors/src/oracle.rs", src2).len(), 1);
        let _ = src;
    }

    #[test]
    fn btreemap_iteration_allowed() {
        let src = "let m: BTreeMap<u32, u32> = BTreeMap::new();\nfor (k, v) in &m {}\n";
        assert!(run("crates/core/src/report.rs", src).is_empty());
    }
}
