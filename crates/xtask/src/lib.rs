//! `dpc-lint`: the workspace static-analysis pass behind `cargo xtask
//! lint`.
//!
//! Five deny-by-default rule families protect the invariants the paper
//! reproduction depends on:
//!
//! * **determinism** — no wall clocks outside the campaign engine's
//!   timing code, no unseeded RNG, no iteration over default-hasher
//!   `HashMap`/`HashSet` whose order could reach a report;
//! * **budget** — the structure-size constants still match the paper's
//!   hardware budgets (pHIST 1024×3-bit, bHIST 4096×3-bit, 8-entry PFQ,
//!   2-entry shadow, 6-bit PC hash, threshold 6, Table I machine), and
//!   `SatCounter::new` literal widths stay in `1..=8`;
//! * **hot-path** — no `unwrap`/`expect`/`panic!`-family/unproven slice
//!   indexing in non-test code under `crates/memsim` and
//!   `crates/predictors`, **and in every function the workspace call
//!   graph proves reachable from the replay roots** (`System::
//!   run_stream`/`step`, `SetAssoc::locate`/`fill`, the `LltPolicy`/
//!   `LlcPolicy` hook surface, `EventStream::decode_chunk`) wherever it
//!   lives — plus no heap construction (`hot-path::alloc`) in that
//!   reachable set;
//! * **dispatch** — no `dyn LltPolicy`/`dyn LlcPolicy` trait objects in
//!   `crates/memsim`/`crates/core` outside the designated fallback
//!   modules;
//! * **simd** — `unsafe` and `core::arch` confined to the dedicated
//!   `simd.rs` modules of the hot-path crates, every `unsafe` block
//!   there carrying a `// SAFETY:` justification.
//!
//! The only escape hatch is an inline comment on the offending line or
//! the line above it:
//!
//! ```text
//! // dpc-lint: allow(determinism::wall-clock) -- CLI progress timing only
//! ```
//!
//! A missing `-- <reason>` is itself an error, and under `--strict` a
//! marker that suppresses nothing is too. Diagnostics are available as
//! text, JSON, or SARIF 2.1.0 ([`output`]), with a committed baseline
//! file tolerating fingerprinted pre-existing findings. The pass is
//! dependency-free by design (it lexes the source itself rather than
//! using `syn`) so it builds and gates CI on an offline toolchain.

pub mod bench_report;
pub mod graph;
pub mod items;
pub mod json;
pub mod output;
pub mod rules;
pub mod source;

use rules::Violation;
use source::SourceFile;
use std::path::{Path, PathBuf};

/// Directories (workspace-relative) that are scanned.
const SCAN_ROOTS: &[&str] = &["crates", "tests", "examples"];

/// Path prefixes that are skipped entirely.
///
/// `crates/xtask` is the linter itself: its rule tables and test fixtures
/// spell out every forbidden token.
const SKIP_PREFIXES: &[&str] = &["crates/xtask"];

/// The outcome of linting a workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Rule violations, sorted by file then line.
    pub violations: Vec<Violation>,
    /// `(rel, line, rules)` of allow markers that suppressed nothing.
    pub unused_allows: Vec<(String, usize, String)>,
    /// Allow markers missing the mandatory `-- <reason>` (or naming an
    /// unknown rule), as `(rel, line, rules)`.
    pub missing_reasons: Vec<(String, usize, String)>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Functions the call graph proves reachable from a hot-path root.
    pub reachable_fns: usize,
    /// Function definitions considered by the call graph.
    pub total_fns: usize,
}

impl LintReport {
    /// Whether the workspace is clean (unused allows are warnings, not
    /// failures; missing reasons fail). Strict cleanliness additionally
    /// requires no unused allows — see [`LintReport::is_strict_clean`].
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.missing_reasons.is_empty()
    }

    /// Whether the workspace is clean under `--strict`, where a stale
    /// allow marker is an error too.
    pub fn is_strict_clean(&self) -> bool {
        self.is_clean() && self.unused_allows.is_empty()
    }
}

/// Lints every Rust source file under the workspace `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut paths = Vec::new();
    for scan_root in SCAN_ROOTS {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut paths)?;
        }
    }
    paths.sort();

    let mut files = Vec::new();
    for path in paths {
        let rel = relative_unix(root, &path);
        if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
            continue;
        }
        let raw = std::fs::read_to_string(&path)?;
        files.push(SourceFile::parse(path, rel, raw));
    }
    Ok(lint_files(&files))
}

/// Lints a set of parsed files as one workspace: builds the hot-path
/// call graph over all of them, then applies every rule per file. This
/// is the core the fixture tests drive with in-memory file sets.
pub fn lint_files(files: &[SourceFile]) -> LintReport {
    let reach = graph::analyze(files);
    let mut report = LintReport {
        reachable_fns: reach.reachable_fns,
        total_fns: reach.total_fns,
        ..Default::default()
    };
    for file in files {
        report.files_scanned += 1;
        lint_file(file, reach.hot_spans(&file.rel), &mut report);
    }
    report.violations.sort_by(|a, b| (&a.rel, a.line, a.rule).cmp(&(&b.rel, b.line, b.rule)));
    report
}

/// Lints one parsed file into `report`, applying its allow markers.
/// `hot` carries the file's call-graph-reachable function bodies.
pub fn lint_file(file: &SourceFile, hot: &[graph::HotSpan], report: &mut LintReport) {
    let violations = rules::check_file(file, hot);
    for violation in violations {
        if let Some(allow) = applicable_allow(file, &violation) {
            allow.used.set(true);
            if allow.reason.is_empty() {
                report.missing_reasons.push((file.rel.clone(), allow.line, allow.rules.join(", ")));
            }
            continue;
        }
        report.violations.push(violation);
    }
    for allow in &file.allows {
        if !allow.used.get() {
            report.unused_allows.push((file.rel.clone(), allow.line, allow.rules.join(", ")));
        }
        if !allow.rules.iter().all(|r| known_rule(r)) {
            report.missing_reasons.push((
                file.rel.clone(),
                allow.line,
                format!("unknown rule in allow marker: {}", allow.rules.join(", ")),
            ));
        }
    }
}

/// Finds an allow marker covering `violation`: same rule (or its family
/// prefix) on the violation's line or the line directly above.
fn applicable_allow<'f>(file: &'f SourceFile, violation: &Violation) -> Option<&'f source::Allow> {
    file.allows.iter().find(|allow| {
        (allow.line == violation.line || allow.line + 1 == violation.line)
            && allow.rules.iter().any(|r| {
                r == violation.rule
                    || violation
                        .rule
                        .strip_prefix(r.as_str())
                        .is_some_and(|rest| rest.starts_with("::"))
            })
    })
}

fn known_rule(rule: &str) -> bool {
    rules::ALL_RULES.contains(&rule) || rules::FAMILIES.contains(&rule)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_unix(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_src(rel: &str, src: &str) -> LintReport {
        let file = SourceFile::from_str(rel, src);
        lint_files(std::slice::from_ref(&file))
    }

    #[test]
    fn allow_marker_suppresses_on_next_line() {
        let src = "// dpc-lint: allow(determinism::wall-clock) -- CLI timing output\n\
                   use std::time::Instant;\n";
        let report = lint_src("crates/core/src/report.rs", src);
        assert!(report.is_clean(), "{report:?}");
        assert!(report.unused_allows.is_empty());
    }

    #[test]
    fn allow_marker_suppresses_on_same_line() {
        let src = "use std::time::Instant; // dpc-lint: allow(determinism::wall-clock) -- timing\n";
        assert!(lint_src("crates/core/src/report.rs", src).is_clean());
    }

    #[test]
    fn family_prefix_allows_whole_family() {
        let src = "// dpc-lint: allow(hot-path) -- exercised by the fuzz harness\n\
                   fn f(x: Option<u32>) { x.unwrap(); }\n";
        assert!(lint_src("crates/memsim/src/cache.rs", src).is_clean());
    }

    #[test]
    fn allow_without_reason_fails() {
        let src = "// dpc-lint: allow(determinism::wall-clock)\nuse std::time::Instant;\n";
        let report = lint_src("crates/core/src/report.rs", src);
        assert!(!report.is_clean());
        assert_eq!(report.missing_reasons.len(), 1);
    }

    #[test]
    fn unused_allow_is_reported_not_fatal_unless_strict() {
        let src = "// dpc-lint: allow(determinism::wall-clock) -- stale\nlet x = 1;\n";
        let report = lint_src("crates/core/src/report.rs", src);
        assert!(report.is_clean());
        assert!(!report.is_strict_clean());
        assert_eq!(report.unused_allows.len(), 1);
    }

    #[test]
    fn unknown_rule_in_marker_fails() {
        let src = "// dpc-lint: allow(determinism::wall-clock, no-such-rule) -- reason\n\
                   use std::time::Instant;\n";
        let report = lint_src("crates/core/src/report.rs", src);
        assert!(!report.is_clean());
    }

    #[test]
    fn violations_without_marker_fail() {
        let report = lint_src("crates/core/src/report.rs", "use std::time::Instant;\n");
        assert!(!report.is_clean());
        assert_eq!(report.violations.len(), 1);
    }

    #[test]
    fn allow_marker_covers_reachability_finding() {
        let src = "impl EventStream { pub fn decode_chunk(&self) { helper(); } }\n\
                   // dpc-lint: allow(hot-path::alloc) -- scratch grown once, then reused\n\
                   fn helper() { let v: Vec<u32> = Vec::new(); let _ = v; }\n";
        let report = lint_src("crates/types/src/stream.rs", src);
        assert!(report.is_clean(), "{report:?}");
        assert!(report.unused_allows.is_empty(), "{report:?}");
    }

    #[test]
    fn cross_file_reachability_is_linted() {
        let entry = SourceFile::from_str(
            "crates/memsim/src/system.rs",
            "impl<L, C> System<L, C> { pub fn step(&mut self) { cross_helper(); } }\n",
        );
        let helper = SourceFile::from_str(
            "crates/workloads/src/emitter.rs",
            "pub fn cross_helper() { let s = format!(\"x\"); let _ = s; }\n",
        );
        let report = lint_files(&[entry, helper]);
        assert_eq!(report.violations.len(), 1, "{report:?}");
        assert_eq!(report.violations[0].rule, "hot-path::alloc");
        assert_eq!(report.violations[0].rel, "crates/workloads/src/emitter.rs");
    }
}
