//! Item model for the workspace call graph: `fn` definitions with their
//! impl/trait context, and the call sites inside each body.
//!
//! Like the rest of `dpc-lint` this is dependency-free: it works on the
//! scrubbed text of [`SourceFile`] (comments and literals blanked), so a
//! `fn` or `foo(` inside a string never produces a phantom item or edge.
//! The extraction is deliberately *conservative over-approximation*:
//!
//! * every identifier directly followed by `(` (or by a `::<...>`
//!   turbofish then `(`) is a call site, classified as a method call
//!   (`.foo(`), a qualified call (`Type::foo(`, last path segment kept),
//!   or a bare call (`foo(`);
//! * calls inside closures attribute to the enclosing `fn` — a closure
//!   runs (if at all) on its definer's call path, so its callees are the
//!   definer's callees;
//! * macro invocations (`name!(`) are *not* call edges; the panic-family
//!   macros are caught textually by the line rules instead.
//!
//! The resolver in [`crate::graph`] turns these sites into edges.

use crate::source::{is_ident_byte, SourceFile};
use std::ops::Range;

/// One `fn` definition somewhere in the workspace.
#[derive(Debug)]
pub struct FnDef {
    /// Index of the defining file in the slice given to [`parse_items`].
    pub file: usize,
    /// The function's name.
    pub name: String,
    /// The base name of the innermost enclosing `impl` target type or
    /// `trait` declaration (`System` for `impl<L, C> System<L, C>`),
    /// `None` for free and nested functions.
    pub qualifier: Option<String>,
    /// For methods of `impl Trait for Type` and for default bodies inside
    /// `trait Trait { .. }`: the trait's base name.
    pub trait_name: Option<String>,
    /// Byte offset of the `fn` keyword (for line reporting).
    pub sig_offset: usize,
    /// Body span (`{`..`}`), `None` for bodiless trait declarations.
    pub body: Option<Range<usize>>,
    /// Whether the definition sits inside `#[cfg(test)]`/`#[test]` code.
    pub is_test: bool,
}

/// How a call site names its callee.
#[derive(Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `receiver.name(..)` — resolves to methods of that name anywhere.
    Method,
    /// `Seg::name(..)` — the last path segment before the name is kept
    /// (`Pfn` in `Pfn::new`, `simd` in `dpc_types::simd::enabled`).
    Qualified(String),
    /// `name(..)` with no path — resolves to free functions.
    Bare,
}

/// One call site inside a function body.
#[derive(Debug)]
pub struct CallSite {
    /// Callee name as written.
    pub name: String,
    pub kind: CallKind,
}

/// Functions and their call sites for a set of files.
#[derive(Debug, Default)]
pub struct ItemIndex {
    pub fns: Vec<FnDef>,
    /// Call sites of `fns[i]`, same indexing.
    pub calls: Vec<Vec<CallSite>>,
}

/// An `impl`/`trait` container span with its resolved names.
#[derive(Debug)]
struct Container {
    span: Range<usize>,
    /// Impl target type name, or the trait's own name for `trait` decls.
    type_name: String,
    /// `Some` for `impl Trait for Type` and `trait Trait` containers.
    trait_name: Option<String>,
}

/// Parses every file into one workspace-wide [`ItemIndex`].
pub fn parse_items(files: &[SourceFile]) -> ItemIndex {
    let mut index = ItemIndex::default();
    for (file_idx, file) in files.iter().enumerate() {
        parse_file(file_idx, file, &mut index);
    }
    index
}

fn parse_file(file_idx: usize, file: &SourceFile, index: &mut ItemIndex) {
    let containers = find_containers(&file.scrubbed);
    let fns = find_fns(&file.scrubbed);
    let first_new = index.fns.len();
    for (sig_offset, name, body) in fns {
        // Innermost enclosing container — unless another fn body wraps
        // this definition more tightly (a nested fn is not a method).
        let container =
            containers.iter().filter(|c| c.span.contains(&sig_offset)).min_by_key(|c| c.span.len());
        let nested = body_wraps(&index.fns[first_new..], sig_offset);
        let (qualifier, trait_name) = match (container, nested) {
            (Some(c), false) => (Some(c.type_name.clone()), c.trait_name.clone()),
            _ => (None, None),
        };
        let calls = body.as_ref().map_or_else(Vec::new, |b| find_calls(&file.scrubbed, b.clone()));
        index.fns.push(FnDef {
            file: file_idx,
            name,
            qualifier,
            trait_name,
            sig_offset,
            body,
            is_test: file.in_test_code(sig_offset),
        });
        index.calls.push(calls);
    }
}

/// Whether an already-recorded fn of this file has a body containing
/// `offset`. `find_fns` emits outer fns before nested ones (it scans left
/// to right and an outer `fn` token precedes its body), so by the time a
/// nested fn is processed its encloser is in the index.
fn body_wraps(file_fns: &[FnDef], offset: usize) -> bool {
    file_fns.iter().any(|f| f.body.as_ref().is_some_and(|b| b.contains(&offset)))
}

/// Every `impl`/`trait` block in the scrubbed text.
fn find_containers(scrubbed: &str) -> Vec<Container> {
    let bytes = scrubbed.as_bytes();
    let mut containers = Vec::new();
    for keyword in ["impl", "trait"] {
        let mut from = 0;
        while let Some(pos) = scrubbed[from..].find(keyword) {
            let start = from + pos;
            from = start + keyword.len();
            let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
            let right_ok = bytes.get(start + keyword.len()).is_some_and(|&b| !is_ident_byte(b));
            if !left_ok || !right_ok {
                continue;
            }
            let header_from = start + keyword.len();
            if keyword == "impl" {
                if let Some(c) = parse_impl_header(scrubbed, header_from) {
                    containers.push(c);
                }
            } else if let Some(c) = parse_trait_header(scrubbed, header_from) {
                containers.push(c);
            }
        }
    }
    containers
}

/// Parses `impl<G..>? TraitPath for? TypePath where..? { .. }` starting
/// just after the `impl` keyword. Returns `None` for malformed headers
/// (or trait-bound positions like `impl Trait` in return types, which
/// have no `{` body).
fn parse_impl_header(scrubbed: &str, mut i: usize) -> Option<Container> {
    let bytes = scrubbed.as_bytes();
    i = skip_ws(bytes, i);
    if bytes.get(i) == Some(&b'<') {
        i = skip_angles(bytes, i)?;
    }
    // Collect the header up to the body `{` (skipping generic args so a
    // `Foo<Bar { .. }>`-free header; `where` clauses hold no braces).
    let header_start = i;
    let mut depth = 0i32;
    let open = loop {
        match bytes.get(i)? {
            b'<' => {
                i = skip_angles(bytes, i)?;
                continue;
            }
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b'{' if depth == 0 => break i,
            b';' => return None,
            _ => {}
        }
        i += 1;
    };
    let header = &scrubbed[header_start..open];
    let (trait_part, type_part) = match split_top_level_for(header) {
        Some((t, ty)) => (Some(t), ty),
        None => (None, header),
    };
    let type_name = base_type_name(type_part)?;
    let trait_name = trait_part.and_then(base_type_name);
    Some(Container { span: open..match_brace(bytes, open), type_name, trait_name })
}

/// Parses `trait Name .. { .. }` after the `trait` keyword.
fn parse_trait_header(scrubbed: &str, mut i: usize) -> Option<Container> {
    let bytes = scrubbed.as_bytes();
    i = skip_ws(bytes, i);
    let name_start = i;
    while bytes.get(i).is_some_and(|&b| is_ident_byte(b)) {
        i += 1;
    }
    if i == name_start {
        return None;
    }
    let name = scrubbed[name_start..i].to_owned();
    let mut depth = 0i32;
    let open = loop {
        match bytes.get(i)? {
            b'<' => {
                i = skip_angles(bytes, i)?;
                continue;
            }
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b'{' if depth == 0 => break i,
            b';' => return None, // `trait Alias = ..;` has no items
            _ => {}
        }
        i += 1;
    };
    Some(Container {
        span: open..match_brace(bytes, open),
        type_name: name.clone(),
        trait_name: Some(name),
    })
}

/// Splits an impl header at a top-level ` for ` keyword.
fn split_top_level_for(header: &str) -> Option<(&str, &str)> {
    let bytes = header.as_bytes();
    let mut from = 0;
    while let Some(pos) = header[from..].find("for") {
        let start = from + pos;
        from = start + 3;
        let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let right_ok = bytes.get(start + 3).is_none_or(|&b| !is_ident_byte(b));
        if left_ok && right_ok {
            return Some((&header[..start], &header[start + 3..]));
        }
    }
    None
}

/// The base name of a type path: `&mut dpc_types::addr::Vpn` → `Vpn`,
/// `System<L, C>` → `System`.
fn base_type_name(part: &str) -> Option<String> {
    let part = part.trim().trim_start_matches('&').trim();
    let part = part.strip_prefix("mut ").unwrap_or(part).trim();
    let part = part.strip_prefix("dyn ").unwrap_or(part).trim();
    let head = part.split('<').next()?.trim().trim_end_matches("::");
    let name = head.rsplit("::").next()?.trim();
    if name.is_empty() || !name.bytes().all(is_ident_byte) {
        return None;
    }
    Some(name.to_owned())
}

/// Every `fn` definition in the scrubbed text: `(sig_offset, name, body)`.
fn find_fns(scrubbed: &str) -> Vec<(usize, String, Option<Range<usize>>)> {
    let bytes = scrubbed.as_bytes();
    let mut fns = Vec::new();
    let mut from = 0;
    while let Some(pos) = scrubbed[from..].find("fn") {
        let start = from + pos;
        from = start + 2;
        let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let right_ok = bytes.get(start + 2).is_some_and(|&b| b == b' ' || b == b'\n');
        if !left_ok || !right_ok {
            continue;
        }
        let mut i = skip_ws(bytes, start + 2);
        let name_start = i;
        while bytes.get(i).is_some_and(|&b| is_ident_byte(b)) {
            i += 1;
        }
        if i == name_start {
            continue; // `fn(` — a function-pointer type, not a definition
        }
        let name = scrubbed[name_start..i].to_owned();
        // Find the body `{`, skipping the signature (generics, params,
        // return type, where clause). `;` first = bodiless declaration.
        let mut depth = 0i32;
        let body = loop {
            match bytes.get(i) {
                None => break None,
                Some(b'<') => {
                    match skip_angles(bytes, i) {
                        Some(next) => i = next,
                        None => break None,
                    }
                    continue;
                }
                Some(b'(' | b'[') => depth += 1,
                Some(b')' | b']') => depth -= 1,
                Some(b'{') if depth <= 0 => break Some(i..match_brace(bytes, i)),
                Some(b';') if depth <= 0 => break None,
                _ => {}
            }
            i += 1;
        };
        fns.push((start, name, body));
    }
    fns
}

/// Call sites inside `body` (a `{..}` span of the scrubbed text).
fn find_calls(scrubbed: &str, body: Range<usize>) -> Vec<CallSite> {
    let bytes = scrubbed.as_bytes();
    let mut calls = Vec::new();
    let mut i = body.start;
    while i < body.end {
        if !is_ident_start(bytes[i]) || (i > 0 && is_ident_byte(bytes[i - 1])) {
            i += 1;
            continue;
        }
        let name_start = i;
        while i < body.end && is_ident_byte(bytes[i]) {
            i += 1;
        }
        let name = &scrubbed[name_start..i];
        // `name!(..)` is a macro; keywords head control-flow parens.
        if bytes.get(i) == Some(&b'!') || is_keyword(name) {
            continue;
        }
        // A turbofish may sit between the name and the argument list.
        let mut after = i;
        if bytes.get(after) == Some(&b':')
            && bytes.get(after + 1) == Some(&b':')
            && bytes.get(after + 2) == Some(&b'<')
        {
            match skip_angles(bytes, after + 2) {
                Some(next) => after = next,
                None => continue,
            }
        } else if bytes.get(after) == Some(&b':') {
            continue; // `seg::next` — this identifier is a path segment
        }
        if bytes.get(after) != Some(&b'(') {
            continue;
        }
        // Definitions are not call sites.
        if preceded_by_keyword(scrubbed, name_start, "fn") {
            continue;
        }
        let kind = classify(scrubbed, name_start);
        calls.push(CallSite { name: name.to_owned(), kind });
    }
    calls
}

/// Classifies the call at `name_start` by what precedes the name.
fn classify(scrubbed: &str, name_start: usize) -> CallKind {
    let bytes = scrubbed.as_bytes();
    let mut j = name_start;
    while j > 0 && (bytes[j - 1] == b' ' || bytes[j - 1] == b'\n') {
        j -= 1;
    }
    if j >= 1 && bytes[j - 1] == b'.' {
        return CallKind::Method;
    }
    if j >= 2 && bytes[j - 1] == b':' && bytes[j - 2] == b':' {
        // Walk back over the previous path segment (skipping a closing
        // `>` of generic args, as in `SetAssoc::<P>::fill`).
        let mut k = j - 2;
        if k > 0 && bytes[k - 1] == b'>' {
            let mut depth = 0i32;
            while k > 0 {
                k -= 1;
                match bytes[k] {
                    b'>' => depth += 1,
                    b'<' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }
        let seg_end = k;
        let mut seg_start = seg_end;
        while seg_start > 0 && is_ident_byte(bytes[seg_start - 1]) {
            seg_start -= 1;
        }
        if seg_start < seg_end {
            return CallKind::Qualified(scrubbed[seg_start..seg_end].to_owned());
        }
        return CallKind::Bare;
    }
    CallKind::Bare
}

fn preceded_by_keyword(scrubbed: &str, name_start: usize, keyword: &str) -> bool {
    let head = scrubbed[..name_start].trim_end();
    head.ends_with(keyword)
        && head[..head.len() - keyword.len()].bytes().next_back().is_none_or(|b| !is_ident_byte(b))
}

fn is_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "fn"
            | "loop"
            | "unsafe"
            | "move"
            | "as"
            | "in"
            | "let"
            | "else"
            | "impl"
            | "pub"
            | "where"
            | "use"
            | "mod"
            | "crate"
            | "super"
            | "true"
            | "false"
            | "ref"
            | "mut"
            | "dyn"
            | "type"
            | "const"
            | "static"
            | "struct"
            | "enum"
            | "union"
            | "trait"
            | "break"
            | "continue"
            | "await"
            | "async"
            | "box"
    )
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while bytes.get(i).is_some_and(|&b| b == b' ' || b == b'\n') {
        i += 1;
    }
    i
}

/// Offset just past the `>` matching the `<` at `open`. Tolerates `->`
/// inside generic bounds (`impl<F: Fn() -> u64>`): the `>` of an arrow
/// never closes an angle bracket.
fn skip_angles(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'<' => depth += 1,
            b'>' if i > 0 && bytes[i - 1] == b'-' => {}
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            b'(' => {
                // Parenthesized args (Fn traits) may hold `<`/`>` as
                // comparison-free type grammar; balance them blindly.
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Offset just past the brace matching the `{` at `open`.
fn match_brace(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
    }
    bytes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(src: &str) -> ItemIndex {
        let file = SourceFile::from_str("crates/x/src/lib.rs", src);
        parse_items(std::slice::from_ref(&file))
    }

    fn find<'i>(index: &'i ItemIndex, name: &str) -> &'i FnDef {
        index.fns.iter().find(|f| f.name == name).expect("fn present")
    }

    #[test]
    fn free_fn_and_method_qualifiers() {
        let idx = index(
            "fn free() {}\n\
             struct S;\n\
             impl S { fn method(&self) {} }\n\
             impl<T> Wrap<T> { fn generic_method(&self) {} }\n",
        );
        assert_eq!(find(&idx, "free").qualifier, None);
        assert_eq!(find(&idx, "method").qualifier.as_deref(), Some("S"));
        assert_eq!(find(&idx, "generic_method").qualifier.as_deref(), Some("Wrap"));
    }

    #[test]
    fn trait_impl_and_default_bodies() {
        let idx = index(
            "trait P { fn hook(&self) {} fn required(&self); }\n\
             struct S;\n\
             impl P for S { fn required(&self) {} }\n",
        );
        let hook = find(&idx, "hook");
        assert_eq!(hook.qualifier.as_deref(), Some("P"));
        assert_eq!(hook.trait_name.as_deref(), Some("P"));
        assert!(hook.body.is_some());
        let required =
            idx.fns.iter().find(|f| f.name == "required" && f.body.is_some()).expect("impl");
        assert_eq!(required.qualifier.as_deref(), Some("S"));
        assert_eq!(required.trait_name.as_deref(), Some("P"));
    }

    #[test]
    fn nested_fn_is_not_a_method() {
        let idx = index("struct S;\nimpl S { fn outer(&self) { fn inner() {} inner(); } }\n");
        assert_eq!(find(&idx, "outer").qualifier.as_deref(), Some("S"));
        assert_eq!(find(&idx, "inner").qualifier, None);
    }

    #[test]
    fn call_kinds_classified() {
        let idx = index(
            "fn f() {\n    helper();\n    obj.method_call(1);\n    Pfn::new(0);\n    \
             dpc_types::simd::enabled();\n    items.collect::<Vec<_>>();\n    Self::assoc();\n}\n",
        );
        let calls = &idx.calls[idx.fns.iter().position(|f| f.name == "f").expect("f")];
        let get = |n: &str| calls.iter().find(|c| c.name == n).expect("call");
        assert_eq!(get("helper").kind, CallKind::Bare);
        assert_eq!(get("method_call").kind, CallKind::Method);
        assert_eq!(get("new").kind, CallKind::Qualified("Pfn".into()));
        assert_eq!(get("enabled").kind, CallKind::Qualified("simd".into()));
        assert_eq!(get("collect").kind, CallKind::Method);
        assert_eq!(get("assoc").kind, CallKind::Qualified("Self".into()));
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let idx = index("fn f(x: bool) { if (x) { panic!(\"no\"); } while (x) {} }\n");
        assert!(idx.calls[0].is_empty(), "{:?}", idx.calls[0]);
    }

    #[test]
    fn closure_calls_attribute_to_encloser() {
        let idx = index("fn f(v: &[u32]) { v.iter().map(|x| helper(x)).count(); }\n");
        let calls = &idx.calls[idx.fns.iter().position(|f| f.name == "f").expect("f")];
        assert!(calls.iter().any(|c| c.name == "helper" && c.kind == CallKind::Bare));
    }

    #[test]
    fn impl_header_with_fn_bound_generics() {
        let idx = index("impl<F: FnMut(u64) -> u64> Runner<F> { fn go(&self) {} }\n");
        assert_eq!(find(&idx, "go").qualifier.as_deref(), Some("Runner"));
    }

    #[test]
    fn trait_decl_without_body_fn_recorded() {
        let idx = index("trait P { fn required(&self); }\n");
        let f = find(&idx, "required");
        assert!(f.body.is_none());
        assert_eq!(f.qualifier.as_deref(), Some("P"));
    }
}
