//! A minimal JSON reader.
//!
//! The workspace is dependency-free by policy (the lint gate must build
//! on an offline toolchain), so this hand-rolled recursive-descent parser
//! stands in for `serde_json` where `dpc-lint` needs to *read* JSON: the
//! committed lint baseline, and the structural SARIF validation in the
//! test suite. It accepts strict JSON (no comments or trailing commas)
//! and keeps object keys in document order.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses `text` as one JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(text, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn parse_value(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(text, bytes, pos),
        Some(b'[') => parse_arr(text, bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(text, bytes, pos)?)),
        Some(b't') => parse_lit(text, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(text, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(text, pos, "null", Value::Null),
        Some(_) => parse_num(text, bytes, pos),
    }
}

fn parse_obj(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(text, bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        let value = parse_value(text, bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_arr(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(text, bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(text: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = text.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = &text[*pos..];
                let ch = rest.chars().next().ok_or("invalid UTF-8")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_num(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while bytes
        .get(*pos)
        .is_some_and(|&b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
    {
        *pos += 1;
    }
    text[start..*pos]
        .parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("bad number at byte {start}"))
}

fn parse_lit(text: &str, pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if text[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes.get(*pos).is_some_and(|b| b.is_ascii_whitespace()) {
        *pos += 1;
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, "x"], "b": {"c": true, "d": null}}"#).expect("valid");
        assert_eq!(v.get("a").and_then(|a| a.as_arr()).map(<[Value]>::len), Some(3));
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} extra").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse(r#"{"a": 1,}"#).is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "quote \" backslash \\ newline \n tab \t";
        let doc = format!("{{\"s\": \"{}\"}}", escape(original));
        let v = parse(&doc).expect("valid");
        assert_eq!(v.get("s").and_then(Value::as_str), Some(original));
    }

    #[test]
    fn unicode_escapes_and_raw_multibyte_decode() {
        let v = parse(r#""A\u00e9 é""#).expect("valid");
        assert_eq!(v.as_str(), Some("Aé é"));
    }
}
