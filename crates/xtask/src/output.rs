//! Machine-readable diagnostics for `dpc-lint`.
//!
//! The lint pass produces a [`LintReport`]; this module flattens it into
//! a severity-tagged [`Diagnostic`] list and renders it as plain text,
//! JSON, or SARIF 2.1.0 (the format GitHub code scanning ingests).
//!
//! **Fingerprints and the baseline.** Every violation carries a
//! fingerprint — an FNV-1a hash of `(rule, file, offending line text)` —
//! that survives unrelated edits elsewhere in the file. A committed
//! baseline file (`lint-baseline.json` at the workspace root) lists
//! fingerprints of tolerated pre-existing findings: matching violations
//! are downgraded to `note` severity and do not fail the build, while
//! anything new stays an error. A baseline entry that no longer matches
//! any finding is *stale* and reported (error under `--strict`), so the
//! baseline can only ever shrink.

use crate::json;
use crate::rules;
use crate::LintReport;
use std::collections::BTreeSet;
use std::fmt;

/// Diagnostic severity, mapped 1:1 onto SARIF `level`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    Error,
    Warning,
    Note,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Error => "error",
            Level::Warning => "warning",
            Level::Note => "note",
        })
    }
}

/// Synthetic rule id for allow-marker problems (missing reason, unknown
/// rule name, unused marker).
pub const ALLOW_MARKER_RULE: &str = "allow-marker";

/// Synthetic rule id for stale baseline entries.
pub const BASELINE_RULE: &str = "baseline";

/// One rendered diagnostic.
#[derive(Debug)]
pub struct Diagnostic {
    /// Rule id (a name from [`rules::ALL_RULES`] or a synthetic id).
    pub rule: String,
    pub level: Level,
    /// Workspace-relative path (`/` separators); empty for tree-wide
    /// diagnostics such as stale baseline entries.
    pub rel: String,
    /// 1-based line, 0 for tree-wide diagnostics.
    pub line: usize,
    pub message: String,
    /// Stable fingerprint (empty for diagnostics that cannot recur, e.g.
    /// stale baseline entries).
    pub fingerprint: String,
}

/// The flattened outcome of a lint run.
#[derive(Debug)]
pub struct DiagnosticSet {
    pub diagnostics: Vec<Diagnostic>,
    pub files_scanned: usize,
    pub reachable_fns: usize,
    pub total_fns: usize,
}

impl DiagnosticSet {
    /// Whether any error-level diagnostic is present (exit code 1).
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.level == Level::Error)
    }

    pub fn count(&self, level: Level) -> usize {
        self.diagnostics.iter().filter(|d| d.level == level).count()
    }
}

/// FNV-1a 64-bit fingerprint of a violation's identity.
pub fn fingerprint(rule: &str, rel: &str, line_text: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in [rule, "\0", rel, "\0", line_text.trim()] {
        for byte in chunk.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{hash:016x}")
}

/// Flattens `report` into severity-tagged diagnostics.
///
/// * violations → `error`, unless fingerprint-matched by `baseline`
///   (→ `note`);
/// * allow markers missing a reason / naming unknown rules → `error`;
/// * unused allow markers → `warning`, or `error` under `strict`;
/// * baseline entries matching no violation → `warning`, or `error`
///   under `strict` (the baseline may only shrink).
pub fn collect(report: &LintReport, strict: bool, baseline: &BTreeSet<String>) -> DiagnosticSet {
    let mut diagnostics = Vec::new();
    let mut matched: BTreeSet<&str> = BTreeSet::new();
    for v in &report.violations {
        let baselined = baseline.contains(&v.fingerprint);
        if baselined {
            matched.insert(v.fingerprint.as_str());
        }
        diagnostics.push(Diagnostic {
            rule: v.rule.to_owned(),
            level: if baselined { Level::Note } else { Level::Error },
            rel: v.rel.clone(),
            line: v.line,
            message: if baselined {
                format!("{} [baselined: tolerated pre-existing finding]", v.message)
            } else {
                v.message.clone()
            },
            fingerprint: v.fingerprint.clone(),
        });
    }
    for (rel, line, rules) in &report.missing_reasons {
        diagnostics.push(Diagnostic {
            rule: ALLOW_MARKER_RULE.to_owned(),
            level: Level::Error,
            rel: rel.clone(),
            line: *line,
            message: format!("allow({rules}) needs `-- <reason>` (or names an unknown rule)"),
            fingerprint: fingerprint(ALLOW_MARKER_RULE, rel, rules),
        });
    }
    for (rel, line, rules) in &report.unused_allows {
        diagnostics.push(Diagnostic {
            rule: ALLOW_MARKER_RULE.to_owned(),
            level: if strict { Level::Error } else { Level::Warning },
            rel: rel.clone(),
            line: *line,
            message: format!("allow({rules}) suppressed nothing; remove the stale marker"),
            fingerprint: fingerprint(ALLOW_MARKER_RULE, rel, rules),
        });
    }
    for stale in baseline.iter().filter(|fp| !matched.contains(fp.as_str())) {
        diagnostics.push(Diagnostic {
            rule: BASELINE_RULE.to_owned(),
            level: if strict { Level::Error } else { Level::Warning },
            rel: String::new(),
            line: 0,
            message: format!(
                "baseline fingerprint {stale} matches no current finding; remove it from the \
                 baseline file"
            ),
            fingerprint: String::new(),
        });
    }
    diagnostics.sort_by(|a, b| (&a.rel, a.line, &a.rule).cmp(&(&b.rel, b.line, &b.rule)));
    DiagnosticSet {
        diagnostics,
        files_scanned: report.files_scanned,
        reachable_fns: report.reachable_fns,
        total_fns: report.total_fns,
    }
}

/// Renders the diagnostic set as the `--format json` document.
pub fn render_json(set: &DiagnosticSet) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str("  \"tool\": \"dpc-lint\",\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", set.files_scanned));
    out.push_str(&format!("  \"hot_reachable_fns\": {},\n", set.reachable_fns));
    out.push_str(&format!("  \"total_fns\": {},\n", set.total_fns));
    out.push_str("  \"diagnostics\": [");
    let last = set.diagnostics.len().saturating_sub(1);
    for (i, d) in set.diagnostics.iter().enumerate() {
        let comma = if i == last { "" } else { "," };
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"level\": \"{}\", \"file\": \"{}\", \"line\": {}, \
             \"message\": \"{}\", \"fingerprint\": \"{}\"}}{comma}",
            json::escape(&d.rule),
            d.level,
            json::escape(&d.rel),
            d.line,
            json::escape(&d.message),
            json::escape(&d.fingerprint),
        ));
    }
    if !set.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Renders the diagnostic set as a SARIF 2.1.0 log (one run, one tool).
pub fn render_sarif(set: &DiagnosticSet) -> String {
    let mut rules_catalog: Vec<(String, String)> =
        rules::DESCRIPTIONS.iter().map(|&(id, desc)| (id.to_owned(), desc.to_owned())).collect();
    rules_catalog.push((
        ALLOW_MARKER_RULE.to_owned(),
        "dpc-lint escape-hatch markers must name known rules, carry a reason, and suppress \
         something"
            .to_owned(),
    ));
    rules_catalog.push((
        BASELINE_RULE.to_owned(),
        "the committed lint baseline may only shrink; stale fingerprints must be removed"
            .to_owned(),
    ));

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \
         \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"dpc-lint\",\n");
    out.push_str("          \"version\": \"2.0.0\",\n");
    out.push_str(
        "          \"informationUri\": \"https://github.com/dpc-sim/dpc/blob/main/DESIGN.md\",\n",
    );
    out.push_str("          \"rules\": [");
    let last_rule = rules_catalog.len().saturating_sub(1);
    for (i, (id, desc)) in rules_catalog.iter().enumerate() {
        let comma = if i == last_rule { "" } else { "," };
        out.push_str(&format!(
            "\n            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \
             \"defaultConfiguration\": {{\"level\": \"error\"}}}}{comma}",
            json::escape(id),
            json::escape(desc),
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"columnKind\": \"utf16CodeUnits\",\n");
    out.push_str("      \"results\": [");
    let last = set.diagnostics.len().saturating_sub(1);
    for (i, d) in set.diagnostics.iter().enumerate() {
        let comma = if i == last { "" } else { "," };
        let rule_index =
            rules_catalog.iter().position(|(id, _)| *id == d.rule).unwrap_or(last_rule);
        out.push_str(&format!(
            "\n        {{\n          \"ruleId\": \"{}\",\n          \"ruleIndex\": \
             {rule_index},\n          \"level\": \"{}\",\n          \"message\": {{\"text\": \
             \"{}\"}}",
            json::escape(&d.rule),
            d.level,
            json::escape(&d.message),
        ));
        if !d.rel.is_empty() {
            out.push_str(&format!(
                ",\n          \"locations\": [\n            {{\"physicalLocation\": \
                 {{\"artifactLocation\": {{\"uri\": \"{}\", \"uriBaseId\": \"%SRCROOT%\"}}, \
                 \"region\": {{\"startLine\": {}}}}}}}\n          ]",
                json::escape(&d.rel),
                d.line.max(1),
            ));
        }
        if !d.fingerprint.is_empty() {
            out.push_str(&format!(
                ",\n          \"partialFingerprints\": {{\"dpcLintFingerprint/v1\": \"{}\"}}",
                json::escape(&d.fingerprint),
            ));
        }
        out.push_str(&format!("\n        }}{comma}"));
    }
    if !set.diagnostics.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

/// Parses a baseline file into its fingerprint set. The file is JSON:
/// `{"schema": 1, "tool": "dpc-lint", "fingerprints": ["<hex>", ...]}`.
pub fn parse_baseline(text: &str) -> Result<BTreeSet<String>, String> {
    let doc = json::parse(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    let fps = doc
        .get("fingerprints")
        .and_then(json::Value::as_arr)
        .ok_or("baseline has no `fingerprints` array")?;
    let mut set = BTreeSet::new();
    for fp in fps {
        let s = fp.as_str().ok_or("baseline fingerprints must be strings")?;
        set.insert(s.to_owned());
    }
    Ok(set)
}

/// Renders the current error-level findings as a baseline file.
pub fn render_baseline(set: &DiagnosticSet) -> String {
    let mut fps: Vec<&str> = set
        .diagnostics
        .iter()
        .filter(|d| {
            (d.level == Level::Error || d.level == Level::Note)
                && !d.fingerprint.is_empty()
                && d.rule != ALLOW_MARKER_RULE
        })
        .map(|d| d.fingerprint.as_str())
        .collect();
    fps.sort_unstable();
    fps.dedup();
    let mut out = String::from("{\n  \"schema\": 1,\n  \"tool\": \"dpc-lint\",\n");
    out.push_str("  \"fingerprints\": [");
    let last = fps.len().saturating_sub(1);
    for (i, fp) in fps.iter().enumerate() {
        let comma = if i == last { "" } else { "," };
        out.push_str(&format!("\n    \"{fp}\"{comma}"));
    }
    if !fps.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn report_for(rel: &str, src: &str) -> LintReport {
        let file = SourceFile::from_str(rel, src);
        crate::lint_files(std::slice::from_ref(&file))
    }

    #[test]
    fn fingerprint_is_stable_and_line_insensitive() {
        let a = fingerprint("hot-path::unwrap", "crates/memsim/src/cache.rs", "  x.unwrap();");
        let b = fingerprint("hot-path::unwrap", "crates/memsim/src/cache.rs", "x.unwrap();");
        assert_eq!(a, b, "leading whitespace must not change the fingerprint");
        let c = fingerprint("hot-path::panic", "crates/memsim/src/cache.rs", "x.unwrap();");
        assert_ne!(a, c, "the rule is part of the identity");
    }

    #[test]
    fn baseline_downgrades_matching_violation() {
        let report =
            report_for("crates/memsim/src/cache.rs", "fn f(x: Option<u32>) { x.unwrap(); }\n");
        assert_eq!(report.violations.len(), 1);
        let fp = report.violations[0].fingerprint.clone();
        let strictly_empty = collect(&report, false, &BTreeSet::new());
        assert!(strictly_empty.has_errors());
        let baseline: BTreeSet<String> = [fp].into();
        let baselined = collect(&report, false, &baseline);
        assert!(!baselined.has_errors(), "{baselined:?}");
        assert_eq!(baselined.count(Level::Note), 1);
    }

    #[test]
    fn stale_baseline_entry_warns_then_fails_strict() {
        let report = report_for("crates/memsim/src/cache.rs", "fn f() {}\n");
        let baseline: BTreeSet<String> = ["deadbeefdeadbeef".to_owned()].into();
        let lax = collect(&report, false, &baseline);
        assert!(!lax.has_errors());
        assert_eq!(lax.count(Level::Warning), 1);
        let strict = collect(&report, true, &baseline);
        assert!(strict.has_errors());
    }

    #[test]
    fn unused_allow_is_error_only_in_strict() {
        let src = "// dpc-lint: allow(determinism::wall-clock) -- stale\nlet x = 1;\n";
        let report = report_for("crates/core/src/report.rs", src);
        assert!(!collect(&report, false, &BTreeSet::new()).has_errors());
        assert!(collect(&report, true, &BTreeSet::new()).has_errors());
    }

    #[test]
    fn json_output_parses_and_carries_fields() {
        let report =
            report_for("crates/memsim/src/cache.rs", "fn f(x: Option<u32>) { x.unwrap(); }\n");
        let set = collect(&report, false, &BTreeSet::new());
        let doc = json::parse(&render_json(&set)).expect("valid JSON");
        let diags = doc.get("diagnostics").and_then(json::Value::as_arr).expect("array");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].get("rule").and_then(json::Value::as_str), Some("hot-path::unwrap"));
        assert_eq!(diags[0].get("line").and_then(json::Value::as_num), Some(1.0));
    }

    #[test]
    fn baseline_round_trips_through_render_and_parse() {
        let report =
            report_for("crates/memsim/src/cache.rs", "fn f(x: Option<u32>) { x.unwrap(); }\n");
        let set = collect(&report, false, &BTreeSet::new());
        let text = render_baseline(&set);
        let parsed = parse_baseline(&text).expect("valid baseline");
        assert_eq!(parsed.len(), 1);
        let again = collect(&report, false, &parsed);
        assert!(!again.has_errors(), "round-tripped baseline must suppress the finding");
    }

    #[test]
    fn empty_baseline_renders_and_parses() {
        let report = report_for("crates/memsim/src/cache.rs", "fn f() {}\n");
        let set = collect(&report, false, &BTreeSet::new());
        let text = render_baseline(&set);
        assert_eq!(parse_baseline(&text).expect("valid").len(), 0);
    }
}
