//! The workspace call graph and hot-path reachability.
//!
//! Built from [`crate::items`]: nodes are `fn` definitions, edges are the
//! conservatively-resolved call sites inside each body. The graph is
//! rooted at the replay entry points the warm loop runs through —
//! `System::run_stream`/`step`/`fast_retire_run` (with its tier-2
//! helpers `probe_llt`/`commit_llt_hit`), `Hierarchy::access`,
//! `SetAssoc::locate`/`fill`, `EventStream::decode_chunk`,
//! `CoreModel::issue_mem_run`/`issue_mem_run_at` — plus every
//! method of a `LltPolicy`/
//! `LlcPolicy` impl (and the trait default bodies), since policy hooks
//! fire once per simulated memory operation. Everything reachable from a
//! root is **hot**, and [`crate::rules::hot_path`] holds it to the
//! panic-freedom, bounds-evidence, and allocation-freedom rules wherever
//! it lives.
//!
//! ## Soundness caveats (documented, deliberate)
//!
//! Resolution over-approximates: a method call `.fill(..)` edges to every
//! workspace method named `fill`, because without type inference the
//! receiver is unknown. The converse holes are: calls routed through
//! function pointers or closures *stored in fields*, fully-qualified
//! `<T as Trait>::m` syntax, and macro-generated code are not traced.
//! Those shapes don't occur on the replay path today; the runtime
//! counting-allocator proof (`tests/alloc_free.rs`) backstops what the
//! static pass cannot see.

use crate::items::{parse_items, CallKind, FnDef, ItemIndex};
use crate::source::SourceFile;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::ops::Range;

/// Hot-path roots named as `(impl type, fn name)`.
pub const HOT_ROOTS: &[(&str, &str)] = &[
    ("System", "run_stream"),
    ("System", "step"),
    ("System", "fast_retire_run"),
    ("System", "probe_llt"),
    ("System", "commit_llt_hit"),
    ("Hierarchy", "access"),
    ("SetAssoc", "locate"),
    ("SetAssoc", "fill"),
    ("SetAssoc", "flush_pending"),
    ("EventStream", "decode_chunk"),
    ("CoreModel", "issue_mem_run"),
    ("CoreModel", "issue_mem_run_at"),
];

/// Traits whose entire method surface (impls and default bodies) roots
/// the graph: the per-event policy hooks.
pub const HOT_TRAITS: &[&str] = &["LltPolicy", "LlcPolicy"];

/// Only `crates/<name>/src/` files participate in the graph: integration
/// tests, benches and examples drive the simulator but are not simulated
/// code, and the linter (`crates/xtask`) is excluded upstream.
fn in_graph_scope(rel: &str) -> bool {
    rel.starts_with("crates/") && rel.contains("/src/")
}

/// One hot (reachable) function body in a file.
#[derive(Debug, Clone)]
pub struct HotSpan {
    /// Body byte range in the file's text.
    pub body: Range<usize>,
    /// The function's display name (`System::step`, `decode_chunk`).
    pub fn_name: String,
    /// Shortest discovery chain from a root, for diagnostics:
    /// `System::step → helper_a → helper_b`.
    pub via: String,
}

/// Hot-path reachability over a set of files.
#[derive(Debug, Default)]
pub struct Reachability {
    /// Hot function bodies keyed by workspace-relative path.
    pub hot_by_rel: BTreeMap<String, Vec<HotSpan>>,
    /// Number of reachable functions.
    pub reachable_fns: usize,
    /// Number of function definitions considered.
    pub total_fns: usize,
}

impl Reachability {
    /// Hot spans of one file (empty if none).
    pub fn hot_spans(&self, rel: &str) -> &[HotSpan] {
        self.hot_by_rel.get(rel).map_or(&[], Vec::as_slice)
    }
}

/// Builds the call graph over `files` and walks reachability from the
/// hot-path roots. Cycles are handled by the visited set of the BFS.
pub fn analyze(files: &[SourceFile]) -> Reachability {
    let scoped: Vec<bool> = files.iter().map(|f| in_graph_scope(&f.rel)).collect();
    let index = parse_items(files);
    let resolver = Resolver::build(&index, &scoped);

    // BFS from every root, tracking the parent edge for `via` chains.
    let mut queue = VecDeque::new();
    let mut parent: HashMap<usize, Option<usize>> = HashMap::new();
    for (id, def) in index.fns.iter().enumerate() {
        if !scoped[def.file] || def.is_test || !is_root(def) {
            continue;
        }
        parent.insert(id, None);
        queue.push_back(id);
    }
    while let Some(id) = queue.pop_front() {
        for callee in resolver.callees(&index, id) {
            let def = &index.fns[callee];
            if def.is_test || !scoped[def.file] || parent.contains_key(&callee) {
                continue;
            }
            parent.insert(callee, Some(id));
            queue.push_back(callee);
        }
    }

    let mut reach = Reachability {
        total_fns: index.fns.iter().enumerate().filter(|(_, d)| scoped[d.file]).count(),
        reachable_fns: parent.len(),
        ..Default::default()
    };
    for &id in parent.keys() {
        let def = &index.fns[id];
        let Some(body) = def.body.clone() else { continue };
        let rel = files[def.file].rel.clone();
        reach.hot_by_rel.entry(rel).or_default().push(HotSpan {
            body,
            fn_name: display_name(def),
            via: via_chain(&index, &parent, id),
        });
    }
    for spans in reach.hot_by_rel.values_mut() {
        spans.sort_by_key(|s| s.body.start);
    }
    reach
}

fn is_root(def: &FnDef) -> bool {
    let named_root = HOT_ROOTS
        .iter()
        .any(|&(qual, name)| def.name == name && def.qualifier.as_deref() == Some(qual));
    let hook = def.trait_name.as_deref().is_some_and(|t| HOT_TRAITS.contains(&t));
    named_root || hook
}

fn display_name(def: &FnDef) -> String {
    match &def.qualifier {
        Some(q) => format!("{q}::{}", def.name),
        None => def.name.clone(),
    }
}

/// The discovery chain `root → .. → fn`, elided in the middle when long.
fn via_chain(index: &ItemIndex, parent: &HashMap<usize, Option<usize>>, id: usize) -> String {
    let mut chain = vec![display_name(&index.fns[id])];
    let mut cur = id;
    while let Some(&Some(p)) = parent.get(&cur) {
        chain.push(display_name(&index.fns[p]));
        cur = p;
    }
    chain.reverse();
    if chain.len() > 5 {
        let head = chain.first().cloned().unwrap_or_default();
        let tail = chain[chain.len() - 2..].join(" → ");
        return format!("{head} → … → {tail}");
    }
    chain.join(" → ")
}

/// Name-indexed call resolution.
struct Resolver {
    /// All known impl-target and trait names.
    type_names: HashSet<String>,
    /// `(qualifier, name)` → fn ids.
    by_qual: HashMap<(String, String), Vec<usize>>,
    /// Methods (fns with a qualifier) by name.
    methods_by_name: HashMap<String, Vec<usize>>,
    /// Free and nested fns by name.
    free_by_name: HashMap<String, Vec<usize>>,
}

impl Resolver {
    fn build(index: &ItemIndex, scoped: &[bool]) -> Self {
        let mut r = Resolver {
            type_names: HashSet::new(),
            by_qual: HashMap::new(),
            methods_by_name: HashMap::new(),
            free_by_name: HashMap::new(),
        };
        for (id, def) in index.fns.iter().enumerate() {
            if !scoped[def.file] || def.is_test {
                continue;
            }
            match &def.qualifier {
                Some(q) => {
                    r.type_names.insert(q.clone());
                    r.by_qual.entry((q.clone(), def.name.clone())).or_default().push(id);
                    r.methods_by_name.entry(def.name.clone()).or_default().push(id);
                }
                None => {
                    r.free_by_name.entry(def.name.clone()).or_default().push(id);
                }
            }
            if let Some(t) = &def.trait_name {
                r.type_names.insert(t.clone());
            }
        }
        r
    }

    /// Resolves every call site of `caller` to candidate callee ids.
    fn callees(&self, index: &ItemIndex, caller: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let caller_qual = index.fns[caller].qualifier.clone();
        for call in &index.calls[caller] {
            match &call.kind {
                CallKind::Method => {
                    // Unknown receiver: every workspace method of that
                    // name is a candidate (this is where trait-method
                    // dispatch — policy hooks included — is resolved).
                    if let Some(ids) = self.methods_by_name.get(&call.name) {
                        out.extend_from_slice(ids);
                    }
                }
                CallKind::Qualified(q) => {
                    let q = if q == "Self" {
                        match &caller_qual {
                            Some(own) => own.clone(),
                            None => continue,
                        }
                    } else {
                        q.clone()
                    };
                    if self.type_names.contains(&q) {
                        if let Some(ids) = self.by_qual.get(&(q.clone(), call.name.clone())) {
                            out.extend_from_slice(ids);
                        }
                        // A trait-qualified call (`LltPolicy::on_fill(p, ..)`)
                        // dispatches to every impl of that trait method.
                        if let Some(ids) = self.methods_by_name.get(&call.name) {
                            out.extend(
                                ids.iter()
                                    .copied()
                                    .filter(|&id| index.fns[id].trait_name.as_deref() == Some(&q)),
                            );
                        }
                    } else {
                        // Module-qualified path (`simd::enabled`) or a
                        // foreign type (`Vec::new`): only free fns match —
                        // falling back to every method of that name would
                        // drag foreign-constructor names like `new` in.
                        if let Some(ids) = self.free_by_name.get(&call.name) {
                            out.extend_from_slice(ids);
                        }
                    }
                }
                CallKind::Bare => {
                    if let Some(ids) = self.free_by_name.get(&call.name) {
                        out.extend_from_slice(ids);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(sources: &[(&str, &str)]) -> Vec<SourceFile> {
        sources.iter().map(|(rel, src)| SourceFile::from_str(rel, src)).collect()
    }

    fn hot_names(reach: &Reachability) -> Vec<String> {
        let mut names: Vec<String> =
            reach.hot_by_rel.values().flatten().map(|s| s.fn_name.clone()).collect();
        names.sort();
        names
    }

    #[test]
    fn two_hop_bare_call_chain_reachable() {
        let reach = analyze(&files(&[(
            "crates/memsim/src/system.rs",
            "impl<L, C> System<L, C> { pub fn step(&mut self) { helper_a(); } }\n\
             fn helper_a() { helper_b(); }\n\
             fn helper_b() { }\n\
             fn unrelated() { }\n",
        )]));
        assert_eq!(hot_names(&reach), vec!["System::step", "helper_a", "helper_b"]);
        let spans = reach.hot_spans("crates/memsim/src/system.rs");
        let b = spans.iter().find(|s| s.fn_name == "helper_b").expect("helper_b hot");
        assert_eq!(b.via, "System::step → helper_a → helper_b");
    }

    #[test]
    fn cross_crate_qualified_and_method_calls() {
        let reach = analyze(&files(&[
            (
                "crates/memsim/src/system.rs",
                "impl<L, C> System<L, C> { pub fn run_stream(&mut self, s: &EventStream) {\n    \
                 s.decode_chunk(0);\n    let p = Pfn::new(0);\n} }\n",
            ),
            (
                "crates/types/src/stream.rs",
                "impl EventStream { pub fn decode_chunk(&self, n: u64) { inner_decode(n); } }\n\
                 fn inner_decode(_n: u64) {}\n",
            ),
            (
                "crates/types/src/addr.rs",
                "impl Pfn { pub fn new(raw: u64) -> Self { Pfn(raw) } }\n\
                 impl Pfn { pub fn unused(raw: u64) -> Self { Pfn(raw) } }\n",
            ),
        ]));
        let names = hot_names(&reach);
        assert!(names.contains(&"EventStream::decode_chunk".to_owned()), "{names:?}");
        assert!(names.contains(&"inner_decode".to_owned()), "{names:?}");
        assert!(names.contains(&"Pfn::new".to_owned()), "{names:?}");
        assert!(!names.contains(&"Pfn::unused".to_owned()), "{names:?}");
    }

    #[test]
    fn trait_method_edges_reach_every_impl() {
        let reach = analyze(&files(&[(
            "crates/memsim/src/policy.rs",
            "pub trait LltPolicy { fn on_fill(&mut self) { default_helper(); } }\n\
             fn default_helper() {}\n\
             pub struct DpPred;\n\
             impl LltPolicy for DpPred { fn on_fill(&mut self) { dppred_helper(); } }\n\
             fn dppred_helper() {}\n",
        )]));
        let names = hot_names(&reach);
        for expected in ["LltPolicy::on_fill", "DpPred::on_fill", "default_helper", "dppred_helper"]
        {
            assert!(names.contains(&expected.to_owned()), "{expected} missing from {names:?}");
        }
    }

    #[test]
    fn closure_body_calls_create_edges() {
        let reach = analyze(&files(&[(
            "crates/memsim/src/set_assoc.rs",
            "impl<P> SetAssoc<P> { pub fn locate(&self, v: &[u32]) {\n    \
             v.iter().map(|x| from_closure(x)).count();\n} }\n\
             fn from_closure(_x: &u32) {}\n",
        )]));
        assert!(hot_names(&reach).contains(&"from_closure".to_owned()));
    }

    #[test]
    fn cycles_terminate_and_stay_hot() {
        let reach = analyze(&files(&[(
            "crates/memsim/src/system.rs",
            "impl<L, C> System<L, C> { pub fn step(&mut self) { ping(); } }\n\
             fn ping() { pong(); }\n\
             fn pong() { ping(); }\n",
        )]));
        assert_eq!(hot_names(&reach), vec!["System::step", "ping", "pong"]);
    }

    #[test]
    fn test_code_and_out_of_scope_files_excluded() {
        let reach = analyze(&files(&[
            (
                "crates/memsim/src/system.rs",
                "impl<L, C> System<L, C> { pub fn step(&mut self) {} }\n\
                 #[cfg(test)]\nmod tests {\n    impl LltPolicy for Fake { fn on_fill(&mut self) \
                 {} }\n}\n",
            ),
            ("tests/integration.rs", "fn step() { anything(); }\nfn anything() {}\n"),
        ]));
        assert_eq!(hot_names(&reach), vec!["System::step"]);
    }

    #[test]
    fn self_qualified_calls_resolve_in_own_impl() {
        let reach = analyze(&files(&[(
            "crates/memsim/src/set_assoc.rs",
            "impl<P> SetAssoc<P> { pub fn fill(&mut self) { Self::helper(); }\n    \
             fn helper() {} }\n",
        )]));
        assert!(hot_names(&reach).contains(&"SetAssoc::helper".to_owned()));
    }

    #[test]
    fn foreign_qualifier_does_not_overmatch_methods() {
        // `Vec::new` must not edge to every workspace `new` method.
        let reach = analyze(&files(&[(
            "crates/memsim/src/system.rs",
            "impl<L, C> System<L, C> { pub fn step(&mut self) { let v = Vec::new(); } }\n\
             pub struct Other;\n\
             impl Other { pub fn new() -> Self { expensive_setup(); Other } }\n\
             fn expensive_setup() {}\n",
        )]));
        let names = hot_names(&reach);
        assert!(!names.contains(&"Other::new".to_owned()), "{names:?}");
        assert!(!names.contains(&"expensive_setup".to_owned()), "{names:?}");
    }
}
