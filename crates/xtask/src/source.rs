//! Source model for the `dpc-lint` pass.
//!
//! The pass is deliberately dependency-free (the build must work offline,
//! so pulling in `syn` is not an option): instead of a full AST it works
//! on a **scrubbed** copy of each file — byte-for-byte the same length as
//! the original, but with every comment, string, char and byte literal
//! blanked to spaces. Token searches on the scrubbed text therefore never
//! match inside literals or comments, and byte offsets map 1:1 back to the
//! original for line reporting.
//!
//! On top of the scrubbed text the model tracks:
//!
//! * `// dpc-lint: allow(<rule>[, <rule>...]) -- <reason>` escape-hatch
//!   markers (captured from comments during scrubbing);
//! * `#[cfg(test)]` item spans and `#[test]` functions, so rules can skip
//!   test code;
//! * `fn` body spans, so rules can reason about the enclosing function.

use std::cell::Cell;
use std::ops::Range;
use std::path::PathBuf;

/// One `// dpc-lint: allow(...) -- reason` marker.
#[derive(Debug)]
pub struct Allow {
    /// 1-based line the marker appears on. The marker suppresses matching
    /// violations on its own line and on the following line.
    pub line: usize,
    /// Rule names (or family prefixes such as `hot-path`) it allows.
    pub rules: Vec<String>,
    /// The justification after `--` (may be empty; the driver flags that).
    pub reason: String,
    /// Set when the marker suppressed at least one violation.
    pub used: Cell<bool>,
}

/// A parsed source file ready for linting.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Workspace-relative path with `/` separators (rule scoping key).
    pub rel: String,
    /// Original text.
    pub raw: String,
    /// Comment/literal-blanked text, same byte length as `raw`.
    pub scrubbed: String,
    /// Escape-hatch markers found in comments.
    pub allows: Vec<Allow>,
    /// Byte offset of the start of each line (into `raw`/`scrubbed`).
    line_starts: Vec<usize>,
    /// Byte ranges of test-only code (`#[cfg(test)]` items, `#[test]` fns).
    test_spans: Vec<Range<usize>>,
    /// Byte ranges of function bodies (including nested functions).
    fn_bodies: Vec<Range<usize>>,
}

impl SourceFile {
    /// Parses `raw` as the contents of `rel`.
    pub fn parse(path: PathBuf, rel: String, raw: String) -> Self {
        let (scrubbed, allows) = scrub(&raw);
        let line_starts = line_starts(&raw);
        let test_spans = find_attr_spans(&scrubbed, &["#[cfg(test)]", "#[test]"]);
        let fn_bodies = find_fn_bodies(&scrubbed);
        SourceFile { path, rel, raw, scrubbed, allows, line_starts, test_spans, fn_bodies }
    }

    /// Convenience constructor for rule unit tests.
    pub fn from_str(rel: &str, raw: &str) -> Self {
        Self::parse(PathBuf::from(rel), rel.to_owned(), raw.to_owned())
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        self.line_starts.partition_point(|&start| start <= offset)
    }

    /// Whether the byte offset falls inside test-only code.
    pub fn in_test_code(&self, offset: usize) -> bool {
        self.test_spans.iter().any(|span| span.contains(&offset))
    }

    /// The body text of the innermost function containing `offset`, if any.
    pub fn enclosing_fn_body(&self, offset: usize) -> Option<&str> {
        self.fn_bodies
            .iter()
            .filter(|span| span.contains(&offset))
            .min_by_key(|span| span.len())
            .map(|span| &self.scrubbed[span.clone()])
    }

    /// Every start offset of `token` in the scrubbed text whose neighbors
    /// are not identifier characters (word-boundary match).
    pub fn token_offsets(&self, token: &str) -> Vec<usize> {
        let bytes = self.scrubbed.as_bytes();
        let token_bytes = token.as_bytes();
        let mut offsets = Vec::new();
        let mut from = 0;
        while let Some(pos) = self.scrubbed[from..].find(token) {
            let start = from + pos;
            let end = start + token.len();
            // Boundary checks only apply on sides where the token itself
            // is an identifier character (`.unwrap(` has neither).
            let left_ok =
                !is_ident_byte(token_bytes[0]) || start == 0 || !is_ident_byte(bytes[start - 1]);
            let right_ok = !is_ident_byte(token_bytes[token_bytes.len() - 1])
                || end >= bytes.len()
                || !is_ident_byte(bytes[end]);
            if left_ok && right_ok {
                offsets.push(start);
            }
            from = start + token.len().max(1);
        }
        offsets
    }

    /// The scrubbed statement starting at `offset`: text up to the next
    /// top-level `;` (brackets balanced), capped at `limit` bytes. Used to
    /// check whether an iterator chain ends in an order-restoring step.
    pub fn statement_from(&self, offset: usize, limit: usize) -> &str {
        let bytes = self.scrubbed.as_bytes();
        let end = (offset + limit).min(bytes.len());
        let mut depth = 0i32;
        for (i, &b) in bytes[offset..end].iter().enumerate() {
            match b {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => {
                    if depth == 0 && b == b'}' {
                        return &self.scrubbed[offset..offset + i];
                    }
                    depth -= 1;
                }
                b';' if depth <= 0 => return &self.scrubbed[offset..offset + i],
                _ => {}
            }
        }
        &self.scrubbed[offset..end]
    }
}

pub(crate) fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn line_starts(text: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Blanks comments and string/char/byte literals to spaces (newlines kept,
/// so offsets and line numbers are preserved), collecting `dpc-lint:`
/// markers from comments along the way.
fn scrub(raw: &str) -> (String, Vec<Allow>) {
    let bytes = raw.as_bytes();
    let mut out = bytes.to_vec();
    let mut allows = Vec::new();
    let mut line = 1usize;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = raw[i..].find('\n').map_or(bytes.len(), |n| i + n);
                if let Some(allow) = parse_allow(&raw[i..end], line) {
                    allows.push(allow);
                }
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            b'"' => {
                let end = skip_string(bytes, i);
                line += newline_count(&bytes[i..end]);
                blank(&mut out, i, end);
                i = end;
            }
            b'r' | b'b' if starts_raw_string(bytes, i) => {
                let end = skip_raw_string(bytes, i);
                line += newline_count(&bytes[i..end]);
                blank(&mut out, i, end);
                i = end;
            }
            b'b' if bytes.get(i + 1) == Some(&b'\'') => {
                let end = skip_char(bytes, i + 1);
                blank(&mut out, i, end);
                i = end;
            }
            b'\'' => {
                if let Some(end) = char_literal_end(bytes, i) {
                    blank(&mut out, i, end);
                    i = end;
                } else {
                    // A lifetime (`'a`) — leave as code.
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    // `out` only ever replaces bytes with ASCII spaces, so it stays UTF-8.
    (String::from_utf8(out).expect("scrub preserves UTF-8"), allows)
}

fn blank(out: &mut [u8], from: usize, to: usize) {
    for b in &mut out[from..to] {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

fn newline_count(bytes: &[u8]) -> usize {
    bytes.iter().filter(|&&b| b == b'\n').count()
}

fn skip_string(bytes: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

fn starts_raw_string(bytes: &[u8], i: usize) -> bool {
    // r"..." | r#"..."# | br"..." | br#"..."#
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

fn skip_raw_string(bytes: &[u8], start: usize) -> usize {
    let mut i = start;
    if bytes[i] == b'b' {
        i += 1;
    }
    i += 1; // 'r'
    let mut hashes = 0;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut close = 0;
            while close < hashes && bytes.get(j) == Some(&b'#') {
                close += 1;
                j += 1;
            }
            if close == hashes {
                return j;
            }
        }
        i += 1;
    }
    bytes.len()
}

fn skip_char(bytes: &[u8], quote: usize) -> usize {
    let mut i = quote + 1;
    if bytes.get(i) == Some(&b'\\') {
        i += 2;
    } else {
        i += 1;
    }
    while i < bytes.len() && bytes[i] != b'\'' {
        i += 1;
    }
    (i + 1).min(bytes.len())
}

/// Distinguishes a char literal from a lifetime at a `'`. Returns the end
/// offset of the literal, or `None` for a lifetime.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        return Some(skip_char(bytes, i));
    }
    // `'x'` is a char; `'x` followed by anything else is a lifetime.
    if bytes.get(i + 2) == Some(&b'\'') {
        return Some(i + 3);
    }
    // Multibyte char literal like 'é' — find the closing quote within a
    // few bytes (lifetimes are ASCII identifiers, so no conflict).
    if next >= 0x80 {
        let end = bytes[i + 1..].iter().take(6).position(|&b| b == b'\'')?;
        return Some(i + 1 + end + 1);
    }
    None
}

/// Parses `// dpc-lint: allow(rule1, rule2) -- reason`.
fn parse_allow(comment: &str, line: usize) -> Option<Allow> {
    let rest = comment.split_once("dpc-lint:")?.1.trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let (rules_part, tail) = rest.split_once(')')?;
    let rules: Vec<String> =
        rules_part.split(',').map(|r| r.trim().to_owned()).filter(|r| !r.is_empty()).collect();
    if rules.is_empty() {
        return None;
    }
    let reason = tail.trim_start().strip_prefix("--").map_or("", str::trim).to_owned();
    Some(Allow { line, rules, reason, used: Cell::new(false) })
}

/// Byte spans of the items introduced by any of `attrs` (e.g.
/// `#[cfg(test)] mod tests { ... }`): from the attribute to the matching
/// close brace (or the terminating `;` for braceless items).
fn find_attr_spans(scrubbed: &str, attrs: &[&str]) -> Vec<Range<usize>> {
    let bytes = scrubbed.as_bytes();
    let mut spans: Vec<Range<usize>> = Vec::new();
    for attr in attrs {
        let mut from = 0;
        while let Some(pos) = scrubbed[from..].find(attr) {
            let start = from + pos;
            from = start + attr.len();
            if spans.iter().any(|s| s.contains(&start)) {
                continue;
            }
            let mut i = start + attr.len();
            while i < bytes.len() && bytes[i] != b'{' && bytes[i] != b';' {
                i += 1;
            }
            let end = if i < bytes.len() && bytes[i] == b'{' {
                match_brace(bytes, i)
            } else {
                (i + 1).min(bytes.len())
            };
            spans.push(start..end);
        }
    }
    spans
}

/// Offset just past the brace matching the `{` at `open`.
fn match_brace(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
    }
    bytes.len()
}

/// Body spans (`{`..`}`) of every `fn` in the scrubbed text.
fn find_fn_bodies(scrubbed: &str) -> Vec<Range<usize>> {
    let bytes = scrubbed.as_bytes();
    let mut bodies = Vec::new();
    let mut from = 0;
    while let Some(pos) = scrubbed[from..].find("fn ") {
        let start = from + pos;
        from = start + 3;
        if start > 0 && is_ident_byte(bytes[start - 1]) {
            continue; // e.g. `btree_fn ` — not the `fn` keyword
        }
        // Find the opening brace of the body, skipping the signature. A
        // `;` first means a trait method declaration without a body.
        let mut i = start;
        let mut depth = 0i32;
        let body_open = loop {
            if i >= bytes.len() {
                break None;
            }
            match bytes[i] {
                b'(' | b'[' | b'<' => depth += 1,
                b')' | b']' | b'>' => depth -= 1,
                b'{' if depth <= 0 => break Some(i),
                b';' if depth <= 0 => break None,
                _ => {}
            }
            i += 1;
        };
        if let Some(open) = body_open {
            bodies.push(open..match_brace(bytes, open));
        }
    }
    bodies
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_blanks_comments_and_strings() {
        let f = SourceFile::from_str(
            "x.rs",
            "let s = \"Instant\"; // Instant\nlet c = 'I'; /* SystemTime */ let i = 1;\n",
        );
        assert_eq!(f.scrubbed.len(), f.raw.len());
        assert!(!f.scrubbed.contains("Instant"));
        assert!(!f.scrubbed.contains("SystemTime"));
        assert!(f.scrubbed.contains("let i = 1;"));
    }

    #[test]
    fn scrub_keeps_lifetimes_and_raw_strings() {
        let f = SourceFile::from_str(
            "x.rs",
            "fn f<'a>(x: &'a str) -> &'a str { x }\nlet r = r#\"thread_rng\"#;\n",
        );
        assert!(f.scrubbed.contains("<'a>"));
        assert!(!f.scrubbed.contains("thread_rng"));
    }

    #[test]
    fn line_numbers_match() {
        let f = SourceFile::from_str("x.rs", "a\nbb\nccc\n");
        assert_eq!(f.line_of(0), 1);
        assert_eq!(f.line_of(2), 2);
        assert_eq!(f.line_of(5), 3);
    }

    #[test]
    fn allow_markers_are_parsed() {
        let f = SourceFile::from_str(
            "x.rs",
            "// dpc-lint: allow(determinism::wall-clock, hot-path) -- CLI timing\nlet x = 1;\n",
        );
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].line, 1);
        assert_eq!(f.allows[0].rules, vec!["determinism::wall-clock", "hot-path"]);
        assert_eq!(f.allows[0].reason, "CLI timing");
    }

    #[test]
    fn cfg_test_spans_cover_mod_bodies() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn inner() { x.unwrap(); }\n}\n";
        let f = SourceFile::from_str("x.rs", src);
        let unwrap_at = src.find("unwrap").expect("fixture");
        assert!(f.in_test_code(unwrap_at));
        assert!(!f.in_test_code(0));
    }

    #[test]
    fn enclosing_fn_body_is_innermost() {
        let src = "fn outer() {\n    let a = 1;\n    fn inner() { let b = 2; }\n}\n";
        let f = SourceFile::from_str("x.rs", src);
        let b_at = src.find("let b").expect("fixture");
        let body = f.enclosing_fn_body(b_at).expect("inside inner");
        assert!(body.contains("let b"));
        assert!(!body.contains("let a"));
    }

    #[test]
    fn token_offsets_respect_word_boundaries() {
        let f = SourceFile::from_str("x.rs", "InstantX Instant xInstant Instant_\n");
        assert_eq!(f.token_offsets("Instant").len(), 1);
    }

    #[test]
    fn statement_extraction_balances_brackets() {
        let f = SourceFile::from_str("x.rs", "let v = m.iter().map(|(a, b)| (b; a)).sort();\n");
        let stmt = f.statement_from(8, 200);
        assert!(stmt.contains("sort"));
    }
}
