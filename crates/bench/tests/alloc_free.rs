//! Proof of the zero-allocation contract (DESIGN.md §10): once the
//! simulated machine is warm, processing an event performs **no heap
//! allocations** — not in the SoA arrays, not in the policy-view scratch
//! buffer, and not in the fallback `pick_victim` path.
//!
//! The harness installs a counting `#[global_allocator]` and replays a
//! pre-captured event stream through the same `System` twice: the first
//! pass warms every structure (page-table mappings, reverse maps, MSHR,
//! eviction vectors reach their steady-state capacity), the second pass is
//! measured and must allocate exactly nothing.

// The counting allocator has to implement `GlobalAlloc`, which is an
// unsafe trait; this is the one sanctioned exception to the workspace-wide
// `unsafe_code = "deny"` policy, confined to this test harness.
#![allow(unsafe_code)]

use dpc_memsim::system::System;
use dpc_memsim::{LlcPolicy, LltPolicy};
use dpc_predictors::{AipLlc, AipTlb, CbPred, DpPred};
use dpc_types::stream::EventStream;
use dpc_types::SystemConfig;
use dpc_workloads::{Scale, WorkloadFactory};
use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wraps the system allocator and counts every allocation-side call
/// (alloc, alloc_zeroed, realloc). Deallocations are not counted: the
/// contract is about *acquiring* memory on the hot path.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SystemAlloc.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation-side calls made while running `f`.
fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

const MEM_OPS: u64 = 30_000;

/// Replays `stream` through `sys` once (statistics side effects only).
/// Generic over the policy pair, so it covers both the `dyn`-fallback
/// `System` and the monomorphized instantiations.
fn replay<L: LltPolicy, C: LlcPolicy>(sys: &mut System<L, C>, stream: &EventStream) {
    for event in stream {
        sys.step(event);
    }
}

fn assert_event_loop_allocation_free<L: LltPolicy, C: LlcPolicy>(
    label: &str,
    mut sys: System<L, C>,
    stream: &EventStream,
) {
    // Push deadness sampling beyond the horizon: `take_sample` grows a
    // sample vector by design and is not a per-event cost.
    sys.set_sample_interval(1 << 60);
    // Two warm-up passes: the first maps pages and sizes every hash map /
    // vector, the second catches capacity growth triggered by evictions
    // that only start once the arrays are full.
    replay(&mut sys, stream);
    replay(&mut sys, stream);
    let during = allocations_during(|| replay(&mut sys, stream));
    assert_eq!(
        during, 0,
        "{label}: {during} heap allocations in {MEM_OPS} warm mem-ops; \
         the hot path must not allocate per event"
    );
}

#[test]
fn warm_event_loop_never_allocates() {
    let factory = WorkloadFactory::new(Scale::Tiny, 42);
    let mut workload = factory.build("canneal").expect("canneal workload exists");
    let stream = EventStream::capture_mem_ops(workload.as_mut(), MEM_OPS);
    let config = SystemConfig::paper_baseline();

    // Baseline: null policies, gated dispatch.
    let baseline = System::new(config).expect("baseline config is valid");
    assert_event_loop_allocation_free("baseline", baseline, &stream);

    // AIP on both structures: exercises `with_set_views` on every LLT/LLC
    // lookup *and* the policy `pick_victim` override on every fill into a
    // full set — the two paths that previously built per-miss Vecs.
    let aip = System::with_policies(
        config,
        Box::new(AipTlb::paper_default()),
        Box::new(AipLlc::paper_default()),
    )
    .expect("AIP config is valid");
    assert_event_loop_allocation_free("aip", aip, &stream);

    // The paper's headline configuration on the monomorphized fast path:
    // dpPred (pHIST + shadow table) and cbPred (bHIST + PFQ + ghost
    // FIFOs) must also reach an allocation-free steady state — their
    // bypass paths drive the ghost trackers and the System's DOA
    // classification maps, none of which may grow per event once warm.
    let dppred_cbpred = System::with_typed_policies(
        config,
        DpPred::paper_default(),
        CbPred::paper_default(&config.llc),
    )
    .expect("dpPred+cbPred config is valid");
    assert_event_loop_allocation_free("dppred_cbpred", dppred_cbpred, &stream);
}

/// The chunked replay front-end (`run_stream`) must uphold the same
/// contract: its decode batch is owned by the `System` and reused across
/// calls, so a warm campaign replay — SIMD prescan, per-chunk batch
/// refills, set prefetches and all — performs zero heap allocations.
/// This is the path `paper all` drives for every simulation, with or
/// without AVX2 (the batch reuse is mode-independent).
#[test]
fn warm_run_stream_never_allocates() {
    let factory = WorkloadFactory::new(Scale::Tiny, 42);
    let mut workload = factory.build("canneal").expect("canneal workload exists");
    let stream = EventStream::capture_mem_ops(workload.as_mut(), MEM_OPS);
    let config = SystemConfig::paper_baseline();

    let mut sys = System::with_typed_policies(
        config,
        DpPred::paper_default(),
        CbPred::paper_default(&config.llc),
    )
    .expect("dpPred+cbPred config is valid");
    sys.set_sample_interval(1 << 60);

    let replay_chunked = |sys: &mut System<DpPred, CbPred>| {
        let mut cursor = dpc_types::StreamCursor::default();
        sys.run_stream(&stream, &mut cursor, MEM_OPS);
    };
    // Two warm-up passes, as above: the first maps pages and sizes the
    // structures (including the hoisted decode batch), the second covers
    // growth triggered by steady-state evictions.
    replay_chunked(&mut sys);
    replay_chunked(&mut sys);
    let during = allocations_during(|| replay_chunked(&mut sys));
    assert_eq!(
        during, 0,
        "run_stream: {during} heap allocations in {MEM_OPS} warm mem-ops; \
         the chunked decode front-end must reuse its event batch"
    );
}
