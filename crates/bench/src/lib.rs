//! Benchmark crate: see `benches/` and the `paper` binary.
