//! Regenerates the paper's tables and figures.
//!
//! ```text
//! paper all                 # every experiment, paper order
//! paper fig9 table4         # a subset
//! paper --list              # available experiment ids
//! paper --csv out/          # also write each table as CSV
//! paper --timing t.json     # dump campaign timing as JSON
//! paper all --quick         # Tiny scale, small budgets (CI smoke runs)
//! paper all --page-size=2m  # whole campaign on 2 MB huge pages
//! ```
//!
//! Experiments run through the plan/execute campaign engine: the
//! requested experiments are first replayed against a planning context to
//! enumerate the distinct simulations they need, those are executed across
//! a worker pool, and the tables are then rendered from the preloaded
//! memo. Results are bit-identical for any worker count.
//!
//! Environment knobs: `DPC_SCALE` (`tiny`/`small`/`paper`), `DPC_WARMUP`,
//! `DPC_MEASURE`, `DPC_SEED`, `DPC_PAGE_SIZE` (`4k`/`2m`/`1g`; the
//! `--page-size` flag wins over the environment), `DPC_THREADS` (worker
//! threads for the campaign executor; default = available parallelism),
//! `DPC_TRACE_STORE` (`off` disables the shared trace store, forcing
//! live generation per run), and `DPC_FASTPATH` (`off` disables the
//! replay engine's batched L1-hit fast path; output is byte-identical
//! either way). `--quick` overrides scale and budgets to a
//! seconds-long smoke configuration (Tiny scale, 2K warm-up, 20K
//! measured) regardless of the environment.

use dpc::campaign;
use dpc::experiments::{self, ExperimentContext, ExperimentOptions};
// dpc-lint: allow(determinism::wall-clock) -- CLI progress reporting on stderr; never reaches experiment output
use std::time::Instant;

const EXPERIMENTS: [&str; 21] = [
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "table3",
    "fig9",
    "table4",
    "fig10",
    "table5",
    "table6",
    "table7",
    "fig11a",
    "fig11b",
    "fig11c",
    "fig11d",
    "fig11e",
    "fig11f",
    "storage",
    "ablation_fill",
    "ablation_threshold",
    "ablation_dueling",
];

/// One regenerated experiment: either a structured table or prose.
enum Output {
    Table(dpc::ExpTable),
    Text(String),
}

impl Output {
    fn render(&self) -> String {
        match self {
            Output::Table(t) => t.render(),
            Output::Text(s) => s.clone(),
        }
    }
}

fn run_one(ctx: &mut ExperimentContext, id: &str) -> Option<Output> {
    use Output::{Table, Text};
    Some(match id {
        "fig1" => Table(experiments::fig1_llt_deadness(ctx)),
        "fig2" => Table(experiments::fig2_llt_eviction_classes(ctx)),
        "fig3" => Table(experiments::fig3_llc_deadness(ctx)),
        "fig4" => Table(experiments::fig4_llc_eviction_classes(ctx)),
        "table3" => Table(experiments::table3_doa_correlation(ctx)),
        "fig9" => Table(experiments::fig9_tlb_predictor_ipc(ctx)),
        "table4" => Table(experiments::table4_llt_mpki(ctx)),
        "fig10" => Table(experiments::fig10_llc_predictor_ipc(ctx)),
        "table5" => Table(experiments::table5_llc_mpki(ctx)),
        "table6" => Table(experiments::table6_dp_accuracy(ctx)),
        "table7" => Table(experiments::table7_cb_accuracy(ctx)),
        "fig11a" => Table(experiments::fig11a_llt_size(ctx)),
        "fig11b" => Table(experiments::fig11b_phist_config(ctx)),
        "fig11c" => Table(experiments::fig11c_shadow_size(ctx)),
        "fig11d" => Table(experiments::fig11d_pfq_size(ctx)),
        "fig11e" => Table(experiments::fig11e_llc_size(ctx)),
        "fig11f" => Table(experiments::fig11f_srrip(ctx)),
        "storage" => Text(experiments::storage_overhead_report()),
        "ablation_fill" => Table(experiments::ablation_fill_policy(ctx)),
        "ablation_threshold" => Table(experiments::ablation_threshold(ctx)),
        "ablation_dueling" => Table(experiments::ablation_dueling(ctx)),
        _ => return None,
    })
}

/// Diagnostic dump: raw baseline + dpPred/cbPred counters per workload.
fn probe(names: &[&str], options: dpc::prelude::ExperimentOptions) {
    use dpc::prelude::*;
    let mut ctx = ExperimentContext::new(options);
    let base = options.base_run();
    for name in names {
        let b = ctx.run(name, base);
        let d = ctx.run(name, base.with_policies(TlbPolicySel::DpPred, LlcPolicySel::CbPred));
        let s = &b.stats;
        println!(
            "{name}: walks {} avg_walk {:.1}cyc pwc {:?} | cycles {} walk_cyc_share {:.1}%",
            s.walks,
            if s.walks > 0 { s.walk_cycles as f64 / s.walks as f64 } else { 0.0 },
            s.pwc_hits,
            s.cycles,
            s.walk_cycles as f64 * 100.0 / s.cycles.max(1) as f64,
        );
        println!(
            "{name}: base IPC {:.3} | LLT lookups {} hits {:.1}% MPKI {:.3} evic {} | LLC MPKI {:.3} hits {:.1}%",
            s.ipc(),
            s.llt.lookups,
            s.llt.hit_rate() * 100.0,
            s.llt_mpki(),
            s.llt.evictions,
            s.llc_mpki(),
            s.llc.hit_rate() * 100.0,
        );
        let ds = &d.stats;
        let acc = d.llt_accuracy.unwrap_or_default();
        let cacc = d.llc_accuracy.unwrap_or_default();
        println!(
            "  dpPred: IPC {:.3} LLT MPKI {:.3} bypass {} shadow {} acc {:.0}% cov {:.0}% | cbPred: LLC MPKI {:.3} bypass {} acc {:.0}% cov {:.0}%",
            ds.ipc(),
            ds.llt_mpki(),
            ds.llt.bypasses,
            ds.llt.shadow_hits,
            acc.accuracy() * 100.0,
            acc.coverage() * 100.0,
            ds.llc_mpki(),
            ds.llc.bypasses,
            cacc.accuracy() * 100.0,
            cacc.coverage() * 100.0,
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in EXPERIMENTS {
            println!("{id}");
        }
        return;
    }
    // Optional `--csv <dir>`: also write each experiment as CSV.
    // Optional `--timing <file>`: dump campaign timing stats as JSON.
    // Optional `--quick`: Tiny-scale smoke configuration for CI.
    // Optional `--page-size <4k|2m|1g>`: run the campaign on huge pages.
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut timing_path: Option<std::path::PathBuf> = None;
    let mut quick = false;
    let mut page_size: Option<dpc::prelude::PageSize> = None;
    let mut parse_page_size = |value: &str| match value.parse() {
        Ok(size) => page_size = Some(size),
        Err(e) => {
            eprintln!("--page-size: {e}");
            std::process::exit(2);
        }
    };
    let mut positional: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--quick" {
            quick = true;
        } else if let Some(value) = arg.strip_prefix("--page-size=") {
            parse_page_size(value);
        } else if arg == "--page-size" {
            match iter.next() {
                Some(value) => parse_page_size(value),
                None => {
                    eprintln!("--page-size requires a size argument (4k/2m/1g)");
                    std::process::exit(2);
                }
            }
        } else if arg == "--csv" {
            match iter.next() {
                Some(dir) => csv_dir = Some(dir.into()),
                None => {
                    eprintln!("--csv requires a directory argument");
                    std::process::exit(2);
                }
            }
        } else if arg == "--timing" {
            match iter.next() {
                Some(file) => timing_path = Some(file.into()),
                None => {
                    eprintln!("--timing requires a file argument");
                    std::process::exit(2);
                }
            }
        } else {
            positional.push(arg.as_str());
        }
    }
    if positional.first().copied() == Some("probe") {
        let mut options = ExperimentOptions::from_env();
        if let Some(size) = page_size {
            options.page_policy = dpc::prelude::AllocPolicy::uniform(size);
        }
        let names: Vec<&str> = if positional.len() > 1 {
            positional[1..].to_vec()
        } else {
            dpc::prelude::WORKLOAD_NAMES.to_vec()
        };
        probe(&names, options);
        return;
    }
    let requested: Vec<&str> = if positional.is_empty() || positional.contains(&"all") {
        EXPERIMENTS.to_vec()
    } else {
        positional
    };
    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(2);
        }
    }

    let mut options = ExperimentOptions::from_env();
    if quick {
        options.scale = dpc::prelude::Scale::Tiny;
        options.warmup_mem_ops = 2_000;
        options.measure_mem_ops = 20_000;
    }
    if let Some(size) = page_size {
        options.page_policy = dpc::prelude::AllocPolicy::uniform(size);
    }
    let threads = campaign::default_threads();
    eprintln!(
        "# scale={:?} warmup={} measure={} seed={} threads={} page={}",
        options.scale,
        options.warmup_mem_ops,
        options.measure_mem_ops,
        options.seed,
        threads,
        options.page_policy
    );
    let start = Instant::now(); // dpc-lint: allow(determinism::wall-clock) -- stderr timing only

    // Plan: replay the requested experiments against a planning context to
    // enumerate (deduplicated) every simulation they need. Unknown ids are
    // rejected here, before any simulation runs.
    let mut planner = ExperimentContext::planner(options);
    for id in &requested {
        if run_one(&mut planner, id).is_none() {
            eprintln!("unknown experiment {id:?}; try --list");
            std::process::exit(2);
        }
    }
    let plan = planner.into_plan();
    eprintln!("# campaign plan: {} distinct runs", plan.distinct_runs());

    // Execute: simulate the plan across the worker pool.
    let (mut ctx, stats) = campaign::execute(options, &plan, threads, true);

    // Render: replay the experiments against the preloaded memo.
    for id in requested {
        let t0 = Instant::now(); // dpc-lint: allow(determinism::wall-clock) -- stderr timing only
        if let Some(output) = run_one(&mut ctx, id) {
            println!("{}", output.render());
            if let (Some(dir), Output::Table(table)) = (&csv_dir, &output) {
                let path = dir.join(format!("{id}.csv"));
                if let Err(e) = std::fs::write(&path, table.to_csv()) {
                    eprintln!("cannot write {}: {e}", path.display());
                }
            }
            eprintln!(
                "# {id} rendered in {:.2}s ({} runs total)",
                t0.elapsed().as_secs_f64(),
                ctx.runs_performed()
            );
        }
    }
    if let Some(path) = &timing_path {
        if let Err(e) = std::fs::write(path, stats.to_json()) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
        eprintln!("# timing written to {}", path.display());
    }
    eprintln!("# campaign finished: {}", stats.summary_line());
    eprintln!("# total wall (plan + execute + render): {:.1}s", start.elapsed().as_secs_f64());
}
