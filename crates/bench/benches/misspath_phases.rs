//! Microbenchmarks for the overhauled miss path (DESIGN.md §16), split
//! into its three phases: side-effect-free tier-2 classification probes
//! (L1 D-TLB miss → LLT peek, L1D miss → L2 peek), fast-path retirement
//! of an L2-hit stream through `System::run_stream` (the second fast
//! tier — events whose TLB or cache lookup terminates one level down),
//! and the lazy replacement-metadata machinery in `SetAssoc` (buffered
//! hit-promotions flushed by the next metadata reader). Together these
//! localise a `simulator` throughput regression to the miss-path stage
//! that caused it.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dpc_memsim::cache::Cache;
use dpc_memsim::hierarchy::Hierarchy;
use dpc_memsim::policy::NullBlockPolicy;
use dpc_memsim::set_assoc::InsertPriority;
use dpc_memsim::tlb::TlbGroup;
use dpc_memsim::System;
use dpc_types::stream::{EventStream, StreamCursor};
use dpc_types::{
    AccessKind, BlockAddr, Event, PageSize, Pc, Pfn, PhysAddr, SystemConfig, VirtAddr, Workload,
    BLOCK_SHIFT,
};

/// Memory operations per tier-2 retire iteration.
const MEM_OPS: u64 = 65_536;
/// Classification probes per iteration.
const PROBES: u64 = 4_096;
/// Lazy-metadata operations per iteration.
const LAZY_OPS: u64 = 8_192;
/// Pages in the tier-2 working set: more than the 64-entry L1 D-TLB
/// holds (every access misses it) but comfortably inside the 1024-entry
/// LLT (every access hits there).
const PAGES: u64 = 256;
/// Distinct blocks touched per page: `PAGES * BLOCKS_PER_PAGE` blocks
/// overflow the 512-block L1D but fit the 4096-block L2, so the cache
/// side of every access also terminates one level down.
const BLOCKS_PER_PAGE: u64 = 4;

/// Looping load generator whose steady state is the tier-2 shape:
/// L1 D-TLB miss → LLT hit, L1D miss → L2 hit.
struct Tier2Loads {
    i: u64,
}

impl Workload for Tier2Loads {
    fn name(&self) -> &str {
        "tier2-loads"
    }
    fn next_event(&mut self) -> Option<Event> {
        let page = self.i % PAGES;
        let block = (self.i / PAGES) % BLOCKS_PER_PAGE;
        self.i += 1;
        let va = VirtAddr::new(0x2000_0000 + page * 4096 + block * 64);
        Some(Event::load(Pc::new(0x40_0000), va))
    }
}

fn tier2_stream() -> EventStream {
    EventStream::capture_mem_ops(&mut Tier2Loads { i: 0 }, MEM_OPS)
}

fn warm_system(stream: &EventStream) -> System {
    let mut sys = System::new(SystemConfig::paper_baseline()).expect("baseline config is valid");
    let mut cursor = StreamCursor::default();
    sys.run_stream(stream, &mut cursor, MEM_OPS);
    sys
}

fn bench_misspath_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("misspath_phases");
    group.sample_size(20);
    let config = SystemConfig::paper_baseline();

    // Phase 1 — classification: the pure probes that type an event as a
    // tier-2 retire. The L1 D-TLB and L1D probes miss, the LLT and L2
    // probes hit — the exact lookup sequence `fast_retire_run` performs
    // before committing anything.
    group.throughput(Throughput::Elements(PROBES));
    let l1_tlb = TlbGroup::single(&config.l1_dtlb); // empty: every probe misses
    let mut llt = TlbGroup::single(&config.l2_tlb);
    let mut hierarchy: Hierarchy<NullBlockPolicy> =
        Hierarchy::with_typed_policy(&config, NullBlockPolicy);
    for i in 0..PAGES {
        let va = VirtAddr::new(0x2000_0000 + i * 4096);
        llt.fill(PageSize::Size4K, va.vpn(), Pfn::new(i), InsertPriority::Normal, 0);
        for b in 0..BLOCKS_PER_PAGE {
            let pa = PhysAddr::new(i * 4096 + b * 64);
            hierarchy.access(pa, AccessKind::Read, Pc::new(0x40_0000), true);
            hierarchy.l1d.invalidate(pa.block()); // leave the block L2-resident only
        }
    }
    group.bench_function("classify", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..PROBES {
                let va = VirtAddr::new(0x2000_0000 + (i % PAGES) * 4096 + (i % BLOCKS_PER_PAGE) * 64);
                if l1_tlb.probe(black_box(va.vpn())).is_none() {
                    if let Some(hit) = llt.probe(va.vpn()) {
                        acc ^= hit.pfn.raw() as usize;
                    }
                }
                let block = BlockAddr::new(va.raw() >> BLOCK_SHIFT);
                if hierarchy.probe_l1d(black_box(block)).is_none() {
                    if let Some(way) = hierarchy.probe_l2(block) {
                        acc ^= way;
                    }
                }
            }
            acc
        });
    });

    // Phase 2 — tier-2 retirement: a warm stream whose every event misses
    // the L1 structures and hits one level down, retired through the
    // batched fast path. tests/fastpath.rs proves the retire is
    // bit-identical to stepping; this measures its cost.
    group.throughput(Throughput::Elements(MEM_OPS));
    let stream = tier2_stream();
    let mut tier2_sys = warm_system(&stream);
    group.bench_function("tier2_retire", |b| {
        b.iter(|| {
            let mut cursor = StreamCursor::default();
            black_box(tier2_sys.run_stream(&stream, &mut cursor, MEM_OPS).mem_ops)
        });
    });

    // Phase 3 — lazy metadata: hit-promotions buffer in the SetAssoc
    // pending slot (coalescing repeats, swapping on a new way) and are
    // applied only when a fill's victim search reads the metadata. The
    // mix below — runs of hits across ways punctuated by fills — cycles
    // the buffer through all three of its transitions.
    group.throughput(Throughput::Elements(LAZY_OPS));
    let mut cache = Cache::new(&config.l1d);
    let hot_blocks = u64::from(config.l1d.ways) * 32; // resident working set
    for i in 0..hot_blocks {
        cache.fill(BlockAddr::new(i << 4), InsertPriority::Normal, 0);
    }
    group.bench_function("lazy_apply", |b| {
        let mut fresh = hot_blocks;
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..LAZY_OPS {
                if i % 64 == 63 {
                    // Force the deferred promotions to apply: the victim
                    // search is a metadata reader.
                    fresh += 1;
                    cache.fill(BlockAddr::new(fresh << 4), InsertPriority::Normal, 0);
                } else if let Some(way) = cache.lookup(black_box(BlockAddr::new((i % hot_blocks) << 4))) {
                    acc ^= way;
                }
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(benches, bench_misspath_phases);
criterion_main!(benches);
