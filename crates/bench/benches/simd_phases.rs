//! Microbenchmarks for the three vectorized hot-path kernels behind the
//! `dpc_types::simd::enabled()` dispatch: the SoA way-tag compare
//! (`dpc_memsim::simd::match_mask`), the event-stream tag prescan
//! (`dpc_types::simd::classify_tags` as driven by
//! `EventStream::decode_chunk`), and the dpPred negative-feedback row
//! clear (`dpc_predictors::simd::clear_counters`).
//!
//! Each kernel is benched twice — once through the runtime dispatch
//! wrapper (AVX2 on any machine CI runs on) and once through its scalar
//! twin — so `BENCH_simulator.json` records both the vector speedup and
//! a regression tripwire for the scalar fallback that `DPC_SIMD=off`
//! and non-x86 targets still rely on.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dpc_types::stream::{EventBatch, EventStream, StreamCursor};
use dpc_types::SatCounter;
use dpc_workloads::{Scale, WorkloadFactory};

/// Ways per probed set: the LLC organisation (16-way) — the widest and
/// therefore most vector-friendly array the simulator probes.
const WAYS: usize = 16;
/// Sets probed per iteration.
const PROBES: u64 = 4_096;
/// Events decoded per iteration of the decode benches.
const DECODE_MEM_OPS: u64 = 65_536;
/// Chunk size mirroring `System::run_stream`'s `EVENT_CHUNK`.
const EVENT_CHUNK: usize = 256;

/// A tag array shaped like a warm SoA cache: `PROBES` sets of `WAYS`
/// tags with a deterministic mix of hits (needle present) and misses.
fn tag_array() -> Vec<u64> {
    (0..PROBES as usize * WAYS)
        .map(|i| {
            let set = i / WAYS;
            let way = i % WAYS;
            // One matching way in every other set.
            if set.is_multiple_of(2) && way == set % WAYS {
                0xDEAD
            } else {
                (i as u64).wrapping_mul(0x9E37)
            }
        })
        .collect()
}

/// A trained 64-counter pHIST row (the paper's 2^6 PC-hash columns),
/// values staggered across the 3-bit range including saturation.
fn phist_rows() -> Vec<SatCounter> {
    (0..PROBES as usize)
        .map(|i| {
            let mut c = SatCounter::new(3);
            for _ in 0..(i % 9) {
                c.increment();
            }
            c
        })
        .collect()
}

fn bench_simd_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("simd_phases");
    group.throughput(Throughput::Elements(PROBES));
    group.sample_size(20);

    let tags = tag_array();
    group.bench_function("match_mask_dispatch", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for set in 0..PROBES as usize {
                let row = &tags[set * WAYS..(set + 1) * WAYS];
                acc ^= dpc_memsim::simd::match_mask(black_box(row), black_box(0xDEAD));
            }
            acc
        });
    });
    group.bench_function("match_mask_scalar", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for set in 0..PROBES as usize {
                let row = &tags[set * WAYS..(set + 1) * WAYS];
                acc ^= dpc_memsim::simd::match_mask_scalar(black_box(row), black_box(0xDEAD));
            }
            acc
        });
    });

    group.bench_function("counter_clear_dispatch", |b| {
        b.iter_batched_ref(
            phist_rows,
            |rows| {
                for row in rows.chunks_mut(64) {
                    dpc_predictors::simd::clear_counters(black_box(row));
                }
            },
            BatchSize::PerIteration,
        );
    });
    group.bench_function("counter_clear_scalar", |b| {
        b.iter_batched_ref(
            phist_rows,
            |rows| {
                for row in rows.chunks_mut(64) {
                    dpc_predictors::simd::clear_counters_scalar(black_box(row));
                }
            },
            BatchSize::PerIteration,
        );
    });
    // Decode throughput is per decoded mem-op, not per probed set.
    group.throughput(Throughput::Elements(DECODE_MEM_OPS));

    let factory = WorkloadFactory::new(Scale::Tiny, 42);
    let mut workload = factory.build("canneal").expect("canneal workload exists");
    let stream = EventStream::capture_mem_ops(workload.as_mut(), DECODE_MEM_OPS);
    group.bench_function("decode_chunk", |b| {
        let mut batch = EventBatch::with_capacity(EVENT_CHUNK);
        b.iter(|| {
            let mut cursor = StreamCursor::default();
            let mut remaining = DECODE_MEM_OPS;
            let mut events = 0usize;
            while remaining > 0 {
                let taken = stream.decode_chunk(&mut cursor, &mut batch, EVENT_CHUNK, remaining);
                if batch.is_empty() {
                    break;
                }
                events += batch.len();
                remaining -= taken;
            }
            black_box(events)
        });
    });
    group.bench_function("classify_tags_scalar", |b| {
        // The scalar twin of the prescan kernel over the same tag bytes
        // `decode_chunk` classifies, isolated from event materialisation.
        let raw: Vec<u8> = (0..DECODE_MEM_OPS as usize * 2).map(|i| (i % 5) as u8).collect();
        b.iter(|| {
            let mut offset = 0usize;
            let mut mem = 0u64;
            while offset < raw.len() {
                let window = (raw.len() - offset).min(EVENT_CHUNK);
                let (take, took) = dpc_types::simd::classify_tags_scalar(
                    black_box(&raw[offset..offset + window]),
                    black_box(4),
                    u64::MAX,
                );
                offset += take.max(1);
                mem += took;
            }
            black_box(mem)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_simd_phases);
criterion_main!(benches);
