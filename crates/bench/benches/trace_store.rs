//! Replay-from-store vs live-generation: how much event-stream cost the
//! shared `TraceStore` removes from each simulation.
//!
//! Two angles on one graph workload (bfs):
//!
//! * `event_source`: pure event-production throughput — pulling N events
//!   from a fresh live generator vs a zero-copy replay cursor over a
//!   pre-captured stream;
//! * `simulation`: a full baseline simulation fed by each source, the
//!   shape campaign workers actually run.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dpc_memsim::System;
use dpc_types::{SystemConfig, Workload};
use dpc_workloads::{Scale, WorkloadFactory};

const MEM_OPS: u64 = 50_000;

fn bench_event_source(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_store_event_source");
    group.throughput(Throughput::Elements(MEM_OPS));
    group.sample_size(10);
    let factory = WorkloadFactory::new(Scale::Tiny, 42).with_trace_store(true);
    // Capture outside the measured loop: campaigns pay this once, then
    // every run replays.
    let (_, report) = factory.stream("bfs", MEM_OPS).expect("known workload");
    assert!(report.captured);

    group.bench_function("live_generation", |b| {
        b.iter(|| {
            let mut workload = factory.build("bfs").expect("known workload");
            let mut mems = 0u64;
            while mems < MEM_OPS {
                match workload.next_event() {
                    Some(event) => {
                        if event.is_mem() {
                            mems += 1;
                        }
                        black_box(event);
                    }
                    None => break,
                }
            }
        });
    });
    group.bench_function("replay_from_store", |b| {
        b.iter(|| {
            let (mut cursor, _) = factory.stream("bfs", MEM_OPS).expect("known workload");
            while let Some(event) = cursor.next_event() {
                black_box(event);
            }
        });
    });
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_store_simulation");
    group.throughput(Throughput::Elements(MEM_OPS));
    group.sample_size(10);
    let replay_factory = WorkloadFactory::new(Scale::Tiny, 42).with_trace_store(true);
    let live_factory = replay_factory.clone().with_trace_store(false);
    let (_, report) = replay_factory.stream("bfs", MEM_OPS).expect("known workload");
    assert!(report.captured);

    for (label, factory) in
        [("live_generation", &live_factory), ("replay_from_store", &replay_factory)]
    {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut system = System::new(SystemConfig::paper_baseline()).expect("valid config");
                let (mut source, _) = factory.source("bfs", MEM_OPS).expect("known workload");
                black_box(system.run_until(&mut source, MEM_OPS));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_source, bench_simulation);
criterion_main!(benches);
