//! Microbenchmarks of the predictor hot paths: dpPred fill decisions and
//! eviction training, cbPred fill decisions under PFQ filtering, and the
//! baseline predictors for comparison.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dpc_memsim::policy::{EvictedPage, LlcPolicy, LltPolicy};
use dpc_memsim::set_assoc::LineLife;
use dpc_predictors::{AipTlb, CbPred, DpPred, ShipLlc, ShipTlb};
use dpc_types::{BlockAddr, Pc, Pfn, SystemConfig, Vpn};

fn doa_life() -> LineLife {
    LineLife { fill_seq: 0, last_hit_seq: 0, hits: 0 }
}

fn bench_dppred(c: &mut Criterion) {
    let mut group = c.benchmark_group("dppred");
    group.throughput(Throughput::Elements(1));
    group.bench_function("fill_decision", |b| {
        let mut pred = DpPred::paper_default();
        let mut i = 0u64;
        b.iter(|| {
            let vpn = Vpn::new(i % 100_000);
            black_box(pred.on_fill(vpn, Pfn::new(i), Pc::new(0x40_0000 + (i % 13) * 4)));
            i += 1;
        });
    });
    group.bench_function("evict_train", |b| {
        let mut pred = DpPred::paper_default();
        let mut i = 0u64;
        b.iter(|| {
            pred.on_evict(EvictedPage {
                vpn: Vpn::new(i % 100_000),
                pfn: Pfn::new(i),
                state: (i % 64) as u32,
                life: doa_life(),
            });
            i += 1;
        });
    });
    group.finish();
}

fn bench_cbpred(c: &mut Criterion) {
    let config = SystemConfig::paper_baseline();
    let mut group = c.benchmark_group("cbpred");
    group.throughput(Throughput::Elements(1));
    group.bench_function("fill_decision_with_pfq", |b| {
        let mut pred = CbPred::paper_default(&config.llc);
        for p in 0..8u64 {
            pred.note_doa_page(Pfn::new(p));
        }
        let mut i = 0u64;
        b.iter(|| {
            black_box(pred.on_fill(BlockAddr::new(i % 1_000_000), Pc::new(0x40_0000)));
            i += 1;
        });
    });
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let config = SystemConfig::paper_baseline();
    let mut group = c.benchmark_group("baseline_predictors");
    group.throughput(Throughput::Elements(1));
    group.bench_function("ship_tlb_fill", |b| {
        let mut pred = ShipTlb::paper_default();
        let mut i = 0u64;
        b.iter(|| {
            black_box(pred.on_fill(
                Vpn::new(i % 100_000),
                Pfn::new(i),
                Pc::new(0x40_0000 + (i % 13) * 4),
            ));
            i += 1;
        });
    });
    group.bench_function("ship_llc_fill", |b| {
        let mut pred = ShipLlc::for_cache(&config.llc);
        let mut i = 0u64;
        b.iter(|| {
            black_box(pred.on_fill(BlockAddr::new(i % 1_000_000), Pc::new(0x40_0000)));
            i += 1;
        });
    });
    group.bench_function("aip_tlb_fill", |b| {
        let mut pred = AipTlb::paper_default();
        let mut i = 0u64;
        b.iter(|| {
            black_box(pred.on_fill(Vpn::new(i % 100_000), Pfn::new(i), Pc::new(0x40_0000)));
            i += 1;
        });
    });
    group.finish();
}

criterion_group!(benches, bench_dppred, bench_cbpred, bench_baselines);
criterion_main!(benches);
