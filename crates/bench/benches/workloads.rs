//! Workload-generator throughput: events per second from each of the 14
//! trace generators (at Tiny scale, so the bench measures generator code,
//! not input construction).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dpc_workloads::{Scale, WorkloadFactory, WORKLOAD_NAMES};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    group.throughput(Throughput::Elements(10_000));
    group.sample_size(10);
    let factory = WorkloadFactory::new(Scale::Tiny, 42);
    for name in WORKLOAD_NAMES {
        let mut workload = factory.build(name).expect("known workload");
        group.bench_function(name.replace('.', "_"), |b| {
            b.iter(|| {
                for _ in 0..10_000 {
                    black_box(workload.next_event());
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
