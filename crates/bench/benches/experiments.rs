//! Experiment-regeneration benchmarks: times a reduced-budget version of
//! each paper experiment so `cargo bench` exercises the full
//! figure/table harness end-to-end. The actual paper-scale tables are
//! produced by the `paper` binary (see README).

use criterion::{criterion_group, criterion_main, Criterion};
use dpc::experiments::{self, ExperimentContext, ExperimentOptions};
use dpc_workloads::Scale;

fn tiny_options() -> ExperimentOptions {
    ExperimentOptions {
        scale: Scale::Tiny,
        seed: 42,
        warmup_mem_ops: 1_000,
        measure_mem_ops: 10_000,
        page_policy: dpc_types::AllocPolicy::Base4K,
    }
}

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments_tiny");
    group.sample_size(10);

    group.bench_function("fig1_characterization", |b| {
        b.iter(|| {
            let mut ctx = ExperimentContext::new(tiny_options());
            experiments::fig1_llt_deadness(&mut ctx)
        });
    });

    group.bench_function("fig9_tlb_predictors", |b| {
        b.iter(|| {
            let mut ctx = ExperimentContext::new(tiny_options());
            experiments::fig9_tlb_predictor_ipc(&mut ctx)
        });
    });

    group.bench_function("table7_cb_accuracy", |b| {
        b.iter(|| {
            let mut ctx = ExperimentContext::new(tiny_options());
            experiments::table7_cb_accuracy(&mut ctx)
        });
    });

    group.bench_function("storage_overhead_analytic", |b| {
        b.iter(experiments::storage_overhead_report);
    });

    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
