//! End-to-end simulator throughput: memory operations per second through
//! the full system (TLBs + walks + caches + timing model) for
//! representative workloads and policy configurations.
//!
//! This benchmark measures the *production* hot path: typed
//! (monomorphized) policies and chunked replay of a pre-captured event
//! stream via [`System::run_stream`] — the same combination every
//! campaign run uses now that the shared trace store is the default
//! event source. Stream capture happens once per workload, outside the
//! timed region, so the numbers isolate simulation throughput from
//! generator throughput (the latter is tracked by the `workloads` and
//! `trace_store` benches).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dpc::prelude::*;
use dpc_types::stream::StreamCursor;

const OPS_PER_ITER: u64 = 20_000;

fn captured_stream(factory: &WorkloadFactory, workload: &str) -> EventStream {
    let mut generator = factory.build(workload).unwrap();
    EventStream::capture_mem_ops(generator.as_mut(), OPS_PER_ITER)
}

fn bench_simulation_throughput(c: &mut Criterion) {
    let config = SystemConfig::paper_baseline();
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(OPS_PER_ITER));
    group.sample_size(10);

    // canneal/bfs/lbm are the historical gate; mcf and pr are the
    // miss-heavy additions that exercise the slow walk + refill pipeline
    // (and the second fast tier) rather than the L1-hit retire loop.
    for workload in ["canneal", "bfs", "lbm", "mcf", "pr"] {
        let factory = WorkloadFactory::new(Scale::Tiny, 42);
        let stream = captured_stream(&factory, workload);

        group.bench_function(format!("{workload}_baseline"), |b| {
            b.iter_batched(
                || System::with_typed_policies(config, NullPagePolicy, NullBlockPolicy).unwrap(),
                |mut system| {
                    let mut cursor = StreamCursor::default();
                    system.run_stream(&stream, &mut cursor, OPS_PER_ITER)
                },
                BatchSize::PerIteration,
            );
        });
        group.bench_function(format!("{workload}_dppred_cbpred"), |b| {
            b.iter_batched(
                || {
                    System::with_typed_policies(
                        config,
                        DpPred::paper_default(),
                        CbPred::paper_default(&config.llc),
                    )
                    .unwrap()
                },
                |mut system| {
                    let mut cursor = StreamCursor::default();
                    system.run_stream(&stream, &mut cursor, OPS_PER_ITER)
                },
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation_throughput);
criterion_main!(benches);
