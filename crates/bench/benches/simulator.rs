//! End-to-end simulator throughput: memory operations per second through
//! the full system (TLBs + walks + caches + timing model) for
//! representative workloads and policy configurations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dpc::prelude::*;

const OPS_PER_ITER: u64 = 20_000;

fn system_with(
    config: SystemConfig,
    tlb: TlbPolicySel,
    llc: LlcPolicySel,
    factory: &WorkloadFactory,
    workload: &str,
) -> (System, Box<dyn Workload>) {
    let run = RunConfig::baseline(0, 0).with_policies(tlb, llc).with_system(config);
    // Build via the public selector machinery by doing a zero-op run.
    let _ = run;
    let system = match (tlb, llc) {
        (TlbPolicySel::Baseline, LlcPolicySel::Baseline) => System::new(config).unwrap(),
        _ => System::with_policies(
            config,
            Box::new(DpPred::paper_default()),
            Box::new(CbPred::paper_default(&config.llc)),
        )
        .unwrap(),
    };
    (system, factory.build(workload).unwrap())
}

fn bench_simulation_throughput(c: &mut Criterion) {
    let config = SystemConfig::paper_baseline();
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(OPS_PER_ITER));
    group.sample_size(10);

    for workload in ["canneal", "bfs", "lbm"] {
        group.bench_function(format!("{workload}_baseline"), |b| {
            let factory = WorkloadFactory::new(Scale::Tiny, 42);
            b.iter_batched(
                || {
                    system_with(
                        config,
                        TlbPolicySel::Baseline,
                        LlcPolicySel::Baseline,
                        &factory,
                        workload,
                    )
                },
                |(mut system, mut w)| system.run_until(w.as_mut(), OPS_PER_ITER),
                BatchSize::PerIteration,
            );
        });
        group.bench_function(format!("{workload}_dppred_cbpred"), |b| {
            let factory = WorkloadFactory::new(Scale::Tiny, 42);
            b.iter_batched(
                || {
                    system_with(
                        config,
                        TlbPolicySel::DpPred,
                        LlcPolicySel::CbPred,
                        &factory,
                        workload,
                    )
                },
                |(mut system, mut w)| system.run_until(w.as_mut(), OPS_PER_ITER),
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation_throughput);
criterion_main!(benches);
