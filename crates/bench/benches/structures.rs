//! Microbenchmarks of the core hardware structures: set-associative
//! lookups under each replacement policy, TLB and cache operations, and
//! the page-table walk path.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dpc_memsim::cache::Cache;
use dpc_memsim::page_table::PageTable;
use dpc_memsim::set_assoc::{InsertPriority, SetAssoc};
use dpc_memsim::tlb::Tlb;
use dpc_types::{BlockAddr, Pfn, ReplacementKind, SystemConfig, Vpn};

fn bench_set_assoc(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_assoc");
    group.throughput(Throughput::Elements(1));
    for kind in [ReplacementKind::Lru, ReplacementKind::Srrip, ReplacementKind::Fifo] {
        group.bench_function(format!("lookup_fill_{kind}"), |b| {
            let mut array: SetAssoc<u32> = SetAssoc::new(128, 8, kind);
            let mut i = 0u64;
            b.iter(|| {
                let addr = i.wrapping_mul(0x9E37_79B1) % 4096;
                if array.lookup(addr, addr).is_none() {
                    array.fill(addr, addr, 0, InsertPriority::Normal);
                }
                i += 1;
                black_box(&array);
            });
        });
    }
    group.finish();
}

/// Isolating micro-benches for the three phases of the SoA hot path:
/// pure lookups against a warm array (hit and miss), victim selection on
/// full sets, and the fill path into a policy-chosen way (no victim
/// search). Together with `lookup_fill_*` these bound where a simulator
/// regression comes from.
fn bench_set_assoc_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_assoc_phases");
    group.throughput(Throughput::Elements(1));
    for kind in [ReplacementKind::Lru, ReplacementKind::Srrip, ReplacementKind::Fifo] {
        // Fill all 128 sets × 8 ways with tags 0..1024 so the lookups
        // below are all hits (addr maps to set addr % 128, tag == addr).
        let warm = || {
            let mut array: SetAssoc<u32> = SetAssoc::new(128, 8, kind);
            for i in 0..1024u64 {
                array.fill(i, i, 0, InsertPriority::Normal);
            }
            array
        };
        group.bench_function(format!("lookup_hit_{kind}"), |b| {
            let mut array = warm();
            let mut i = 0u64;
            b.iter(|| {
                let addr = i.wrapping_mul(0x9E37_79B1) % 1024;
                black_box(array.lookup(addr, addr));
                i += 1;
            });
        });
        group.bench_function(format!("lookup_miss_{kind}"), |b| {
            let mut array = warm();
            let mut i = 0u64;
            b.iter(|| {
                // Tags ≥ 1024 are never resident: every probe misses.
                let addr = i.wrapping_mul(0x9E37_79B1) % 1024;
                black_box(array.lookup(addr, addr + 1024));
                i += 1;
            });
        });
        group.bench_function(format!("victim_way_{kind}"), |b| {
            let mut array = warm();
            let mut i = 0u64;
            b.iter(|| {
                black_box(array.victim_way(i % 128));
                i += 1;
            });
        });
        group.bench_function(format!("fill_way_{kind}"), |b| {
            let mut array = warm();
            let mut i = 0u64;
            b.iter(|| {
                // Round-robin way choice isolates the insert bookkeeping
                // from the victim search.
                let way = (i % 8) as usize;
                black_box(array.fill_way(i % 1024, way, i, 0, InsertPriority::Normal));
                i += 1;
            });
        });
    }
    group.finish();
}

fn bench_tlb(c: &mut Criterion) {
    let config = SystemConfig::paper_baseline();
    let mut group = c.benchmark_group("tlb");
    group.throughput(Throughput::Elements(1));
    group.bench_function("llt_lookup_fill", |b| {
        let mut tlb = Tlb::new(&config.l2_tlb);
        let mut i = 0u64;
        b.iter(|| {
            let vpn = Vpn::new(i.wrapping_mul(0x9E37_79B1) % 8192);
            if tlb.lookup(vpn).is_none() {
                tlb.fill(vpn, Pfn::new(vpn.raw()), InsertPriority::Normal, 0);
            }
            i += 1;
        });
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let config = SystemConfig::paper_baseline();
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(1));
    group.bench_function("llc_lookup_fill", |b| {
        let mut cache = Cache::new(&config.llc);
        let mut i = 0u64;
        b.iter(|| {
            let block = BlockAddr::new(i.wrapping_mul(0x9E37_79B1) % 200_000);
            if cache.lookup(block).is_none() {
                cache.fill(block, InsertPriority::Normal, 0);
            }
            i += 1;
        });
    });
    group.finish();
}

fn bench_page_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_table");
    group.throughput(Throughput::Elements(1));
    group.bench_function("translate_warm", |b| {
        let mut pt = PageTable::new();
        for i in 0..10_000u64 {
            pt.translate(Vpn::new(i));
        }
        let mut i = 0u64;
        b.iter(|| {
            black_box(pt.translate(Vpn::new(i % 10_000)));
            i += 1;
        });
    });
    group.bench_function("translate_demand_map", |b| {
        let mut pt = PageTable::new();
        let mut i = 0u64;
        b.iter(|| {
            black_box(pt.translate(Vpn::new(i)));
            i += 1;
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_set_assoc,
    bench_set_assoc_phases,
    bench_tlb,
    bench_cache,
    bench_page_table
);
criterion_main!(benches);
