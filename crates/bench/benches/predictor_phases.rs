//! Microbenchmarks for the individual predictor phases the system hot
//! path exercises on every LLT/LLC fill and eviction: the dpPred pHIST
//! lookup (`on_fill`), the cbPred bHIST lookup (`on_fill` with PFQ
//! disabled so the counter read dominates), the dpPred shadow-table hit
//! path (`shadow_lookup`), and the cbPred PFQ probe (`on_fill` against a
//! full PFQ).
//!
//! These phases are what the monomorphized dispatch inlines into the
//! event loop; tracking them separately in `BENCH_simulator.json` makes
//! a regression in one predictor structure visible even when the
//! end-to-end `simulator` numbers are dominated by cache modelling.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dpc_memsim::set_assoc::LineLife;
use dpc_memsim::{EvictedPage, LlcPolicy, LltPolicy};
use dpc_predictors::{CbPred, DpPred};
use dpc_types::{BlockAddr, Pc, Pfn, SystemConfig, Vpn};

const PROBES: u64 = 4_096;

/// A dpPred whose pHIST has seen a mix of DOA and live evictions, so
/// `on_fill` takes both the bypass and allocate branches.
fn trained_dppred() -> DpPred {
    let mut pred = DpPred::paper_default();
    for i in 0..2 * PROBES {
        let vpn = Vpn::new(i % PROBES);
        let pc_hash = (i % 64) as u32;
        let hits = u64::from(i % 3 == 0);
        pred.on_evict(EvictedPage {
            vpn,
            pfn: Pfn::new(i),
            state: pc_hash,
            life: LineLife { fill_seq: i, last_hit_seq: i, hits },
        });
    }
    pred
}

fn bench_predictor_phases(c: &mut Criterion) {
    let config = SystemConfig::paper_baseline();
    let mut group = c.benchmark_group("predictor_phases");
    group.throughput(Throughput::Elements(PROBES));
    group.sample_size(20);

    group.bench_function("phist_lookup", |b| {
        b.iter_batched_ref(
            trained_dppred,
            |pred| {
                for i in 0..PROBES {
                    black_box(pred.on_fill(Vpn::new(i), Pfn::new(i), Pc::new(i % 64)));
                }
            },
            BatchSize::PerIteration,
        );
    });

    group.bench_function("bhist_lookup", |b| {
        b.iter_batched_ref(
            // PFQ disabled: every fill goes straight to the bHIST.
            || CbPred::without_pfq(&config.llc),
            |pred| {
                for i in 0..PROBES {
                    black_box(pred.on_fill(BlockAddr::new(i << 3), Pc::new(0)));
                }
            },
            BatchSize::PerIteration,
        );
    });

    group.bench_function("shadow_hit", |b| {
        b.iter_batched_ref(
            || {
                let mut pred = DpPred::paper_default();
                let entries = pred.config().shadow_entries as u64;
                for i in 0..entries {
                    pred.on_bypass(Vpn::new(i), Pfn::new(i));
                }
                (pred, entries)
            },
            |(pred, entries)| {
                for i in 0..PROBES {
                    let vpn = Vpn::new(i % *entries);
                    // Hit path: serve the entry, then reinstall it so the
                    // next probe of this VPN hits again.
                    if black_box(pred.shadow_lookup(vpn)).is_some() {
                        pred.on_bypass(vpn, Pfn::new(i));
                    }
                }
            },
            BatchSize::PerIteration,
        );
    });

    group.bench_function("pfq_probe", |b| {
        b.iter_batched_ref(
            || {
                let mut pred = CbPred::paper_default(&config.llc);
                let entries = pred.config().pfq_entries as u64;
                for i in 0..entries {
                    pred.note_doa_page(Pfn::new(i));
                }
                (pred, entries)
            },
            |(pred, entries)| {
                for i in 0..PROBES {
                    // Alternate PFQ hits (blocks on queued DOA pages) and
                    // misses (pages far outside the queue).
                    let pfn = if i % 2 == 0 { i % *entries } else { i + (1 << 20) };
                    let addr = (pfn << 12) | ((i % 64) << 6);
                    black_box(pred.on_fill(BlockAddr::new(addr >> 6), Pc::new(0)));
                }
            },
            BatchSize::PerIteration,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_predictor_phases);
criterion_main!(benches);
