//! Campaign-engine throughput: the Tiny-scale fig9 experiment executed
//! through the plan/execute engine serially (1 worker) vs in parallel
//! (available cores), plus the planning stage alone. The serial/parallel
//! ratio is the campaign speedup on this machine; EXPERIMENTS.md records
//! measured numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use dpc::campaign;
use dpc::experiments::{self, CampaignPlan, ExperimentContext, ExperimentOptions};
use dpc_workloads::Scale;

fn tiny_options() -> ExperimentOptions {
    ExperimentOptions {
        scale: Scale::Tiny,
        seed: 42,
        warmup_mem_ops: 1_000,
        measure_mem_ops: 10_000,
        page_policy: dpc_types::AllocPolicy::Base4K,
    }
}

fn fig9_plan(options: ExperimentOptions) -> CampaignPlan {
    let mut planner = ExperimentContext::planner(options);
    experiments::fig9_tlb_predictor_ipc(&mut planner);
    planner.into_plan()
}

fn bench_campaign(c: &mut Criterion) {
    let options = tiny_options();
    let plan = fig9_plan(options);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut group = c.benchmark_group("campaign_tiny");
    group.sample_size(10);

    group.bench_function("plan_fig9", |b| {
        b.iter(|| fig9_plan(options));
    });

    group.bench_function("execute_fig9_serial", |b| {
        b.iter(|| campaign::execute(options, &plan, 1, false));
    });

    group.bench_function(format!("execute_fig9_parallel_{cores}"), |b| {
        b.iter(|| campaign::execute(options, &plan, cores, false));
    });

    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
