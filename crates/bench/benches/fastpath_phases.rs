//! Microbenchmarks for the batched L1-hit fast path (DESIGN.md §15),
//! split into its three phases: side-effect-free classification probes
//! (`TlbGroup::probe` + `Cache::probe`), fast-path retirement of an
//! all-hit stream through `System::run_stream`, and the event-at-a-time
//! `step` fallback (`System::run_events`) over the same stream — the
//! cost the fast path exists to avoid. The retire/fallback pair is the
//! per-event speedup the end-to-end `paper all` throughput gain is
//! built from.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dpc_memsim::cache::Cache;
use dpc_memsim::set_assoc::InsertPriority;
use dpc_memsim::tlb::TlbGroup;
use dpc_memsim::System;
use dpc_types::stream::{EventStream, StreamCursor};
use dpc_types::{
    BlockAddr, Event, PageSize, Pc, Pfn, SystemConfig, VirtAddr, Workload, BLOCK_SHIFT,
};

/// Memory operations per retire/fallback iteration.
const MEM_OPS: u64 = 65_536;
/// Classification probes per iteration.
const PROBES: u64 = 4_096;
/// Pages in the looping working set: small enough that, once warm,
/// every access hits the L1 D-TLB and the L1D.
const PAGES: u64 = 4;

/// Minimal looping load generator: `PAGES` consecutive pages from one
/// static PC, one block per page, forever.
struct LoopingLoads {
    i: u64,
}

impl Workload for LoopingLoads {
    fn name(&self) -> &str {
        "looping-loads"
    }
    fn next_event(&mut self) -> Option<Event> {
        let va = VirtAddr::new(0x2000_0000 + (self.i % PAGES) * 4096);
        self.i += 1;
        Some(Event::load(Pc::new(0x40_0000), va))
    }
}

fn all_hit_stream() -> EventStream {
    EventStream::capture_mem_ops(&mut LoopingLoads { i: 0 }, MEM_OPS)
}

fn warm_system(stream: &EventStream) -> System {
    let mut sys = System::new(SystemConfig::paper_baseline()).expect("baseline config is valid");
    let mut cursor = StreamCursor::default();
    sys.run_stream(stream, &mut cursor, MEM_OPS);
    sys
}

fn bench_fastpath_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("fastpath_phases");
    group.sample_size(20);

    // Phase 1 — classification: the probe-only TLB + L1D lookups the
    // fast path performs before committing anything. Warm structures,
    // every probe a hit (the fast path's steady state).
    group.throughput(Throughput::Elements(PROBES));
    let config = SystemConfig::paper_baseline();
    let mut tlb = TlbGroup::single(&config.l1_dtlb);
    let mut l1d = Cache::new(&config.l1d);
    for i in 0..PROBES {
        let va = VirtAddr::new(0x2000_0000 + (i % PAGES) * 4096);
        tlb.fill(PageSize::Size4K, va.vpn(), Pfn::new(i % PAGES), InsertPriority::Normal, 0);
        l1d.fill(BlockAddr::new(va.raw() >> BLOCK_SHIFT), InsertPriority::Normal, 0);
    }
    group.bench_function("classify_probes", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..PROBES {
                let va = VirtAddr::new(0x2000_0000 + (i % PAGES) * 4096);
                if let Some(hit) = tlb.probe(black_box(va.vpn())) {
                    acc ^= hit.pfn.raw() as usize;
                }
                if let Some(way) = l1d.probe(black_box(BlockAddr::new(va.raw() >> BLOCK_SHIFT))) {
                    acc ^= way;
                }
            }
            acc
        });
    });

    // Phases 2 and 3 — the same warm all-hit stream retired through the
    // batched fast path (`run_stream`) and through the unbatched `step`
    // loop (`run_events`). Identical machine state evolution (asserted
    // by tests/fastpath.rs); the ratio is the fast path's per-event win.
    group.throughput(Throughput::Elements(MEM_OPS));
    let stream = all_hit_stream();
    let mut fast_sys = warm_system(&stream);
    group.bench_function("hit_run_retire", |b| {
        b.iter(|| {
            let mut cursor = StreamCursor::default();
            black_box(fast_sys.run_stream(&stream, &mut cursor, MEM_OPS).mem_ops)
        });
    });
    let mut slow_sys = warm_system(&stream);
    group.bench_function("fallback_step", |b| {
        b.iter(|| black_box(slow_sys.run_events(&mut stream.iter(), MEM_OPS).mem_ops));
    });
    group.finish();
}

criterion_group!(benches, bench_fastpath_phases);
criterion_main!(benches);
