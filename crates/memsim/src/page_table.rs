//! A four-level radix page table allocated in simulated physical memory.
//!
//! The paper (Section III): *"we allocate a four-level radix tree data
//! structure as the page table. The page table contents are cached on the
//! processor caches as in the real hardware."* [`PageTable::translate`]
//! returns the physical addresses of the page-table entries a hardware
//! walker would read, so the walker can send those loads through the data
//! caches.
//!
//! Pages are mapped on demand (first touch), modeling a demand-paging OS.
//! Physical frames come from a [`FrameAllocator`] that scatters allocations
//! over the frame space with a bijective multiplier, emulating the
//! fragmented VA→PA mappings of a long-running system.
//!
//! The mapping grain is set by the [`AllocPolicy`]:
//!
//! * [`AllocPolicy::Base4K`] — every leaf is a 4 KB PTE (the paper's
//!   configuration, byte-identical to the pre-page-size code);
//! * [`AllocPolicy::Uniform`] — every mapping is a PDE (2 MB) or PDPTE
//!   (1 GB) leaf covering a physically contiguous, aligned frame region,
//!   so walks terminate one or two levels early;
//! * [`AllocPolicy::Promote2M`] — reservation-based promotion in the style
//!   of FreeBSD's superpage support: the first touch in a 2 MB-aligned
//!   virtual region reserves a contiguous 2 MB frame range and carves
//!   4 KB pages out of it; once enough distinct base pages have been
//!   touched, the PDE is flipped to a huge mapping. Because the 4 KB
//!   frames were carved from the reservation, the promoted mapping
//!   translates every address exactly as before — stale 4 KB TLB entries
//!   stay coherent and promotion simply shortens future walks.

use dpc_types::hash::FastBuildHasher;
use dpc_types::{AllocPolicy, PageSize, Pfn, PhysAddr, Vpn};
use std::collections::HashMap;

/// Entries per page-table node (512 × 8 B = one 4 KiB page).
pub const NODE_ENTRIES: usize = 512;

/// Slot bit 0: the entry maps something.
const SLOT_PRESENT: u64 = 1;
/// Slot bit 1: the entry is a huge leaf (PDE/PDPTE mapping), not a
/// pointer to a child node.
const SLOT_HUGE: u64 = 2;

#[inline]
const fn encode_slot(pfn: Pfn, huge: bool) -> u64 {
    (pfn.raw() << 2) | SLOT_PRESENT | if huge { SLOT_HUGE } else { 0 }
}

#[inline]
const fn slot_pfn(slot: u64) -> Pfn {
    Pfn::new(slot >> 2)
}

#[inline]
const fn slot_is_huge(slot: u64) -> bool {
    slot & SLOT_HUGE != 0
}

/// Allocates unique physical frames.
///
/// Frame numbers are produced by a bijective affine map over the frame
/// space so that consecutively-allocated pages do not occupy consecutive
/// frames. In *partitioned* mode (any huge-page policy) the space is
/// split by high bits: singleton 4 KB frames keep bit 33 clear, while
/// aligned, physically contiguous 2 MB / 1 GB regions live above it, so
/// regions can be handed out without colliding with scattered singletons.
#[derive(Clone, Debug)]
pub struct FrameAllocator {
    next: u64,
    next_2m: u64,
    next_1g: u64,
    partitioned: bool,
}

/// The frame space is 2^34 frames (64 TiB of simulated physical memory);
/// the multiplier is odd, hence invertible modulo every power of two.
const FRAME_SPACE_BITS: u32 = 34;
const FRAME_MULT: u64 = 0x9E37_79B9_7F4A_7C15 | 1;
/// Partitioned mode: singletons scatter below bit 33.
const SINGLETON_BITS: u32 = 33;
/// Partitioned mode: 2 MB regions (512 frames, 9 offset bits) scatter
/// their base over 23 bits at `1 << 33`.
const REGION_2M_BITS: u32 = 23;
/// Partitioned mode: 1 GB regions (2^18 frames) scatter their base over
/// 14 bits at `(1 << 33) | (1 << 32)`.
const REGION_1G_BITS: u32 = 14;

impl FrameAllocator {
    /// Creates an allocator in the legacy single-grain mode: the exact
    /// allocation sequence of the paper's 4 KB configuration.
    pub fn new() -> Self {
        FrameAllocator { next: 1, next_2m: 1, next_1g: 1, partitioned: false }
    }

    /// Creates an allocator whose frame space is partitioned between
    /// scattered singleton frames and aligned huge regions.
    pub fn partitioned() -> Self {
        FrameAllocator { next: 1, next_2m: 1, next_1g: 1, partitioned: true }
    }

    /// Allocates a fresh, never-before-returned 4 KB frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame space is exhausted (far beyond any simulated
    /// footprint).
    pub fn alloc(&mut self) -> Pfn {
        let bits = if self.partitioned { SINGLETON_BITS } else { FRAME_SPACE_BITS };
        assert!(self.next < (1 << bits), "physical frame space exhausted");
        let scattered = self.next.wrapping_mul(FRAME_MULT) & ((1 << bits) - 1);
        self.next += 1;
        Pfn::new(scattered)
    }

    /// Allocates an aligned, physically contiguous region of 4 KB frames
    /// spanning one page of `size`, returning its base frame.
    ///
    /// # Panics
    ///
    /// Panics if the allocator is not partitioned, if `size` is 4 KB
    /// (use [`FrameAllocator::alloc`]), or if the region space is
    /// exhausted.
    pub fn alloc_region(&mut self, size: PageSize) -> Pfn {
        assert!(self.partitioned, "huge regions require a partitioned allocator");
        let base = match size {
            // dpc-lint: allow(hot-path::panic) -- API-misuse guard; translate_uniform/translate_promote only request huge regions
            PageSize::Size4K => panic!("4 KB frames come from alloc(), not alloc_region()"),
            PageSize::Size2M => {
                assert!(self.next_2m < (1 << REGION_2M_BITS), "2 MB region space exhausted");
                let scattered = self.next_2m.wrapping_mul(FRAME_MULT) & ((1 << REGION_2M_BITS) - 1);
                self.next_2m += 1;
                (1 << 33) | (scattered << PageSize::Size2M.unit_shift())
            }
            PageSize::Size1G => {
                assert!(self.next_1g < (1 << REGION_1G_BITS), "1 GB region space exhausted");
                let scattered = self.next_1g.wrapping_mul(FRAME_MULT) & ((1 << REGION_1G_BITS) - 1);
                self.next_1g += 1;
                (1 << 33) | (1 << 32) | (scattered << PageSize::Size1G.unit_shift())
            }
        };
        Pfn::new(base)
    }

    /// Number of singleton frames handed out so far.
    pub fn allocated(&self) -> u64 {
        self.next - 1
    }
}

impl Default for FrameAllocator {
    fn default() -> Self {
        Self::new()
    }
}

/// The path a hardware page walk takes through the radix tree, from the
/// root (level 3, PML4) down to the mapping's terminal level (0 = PTE
/// for 4 KB pages, 1 = PDE for 2 MB, 2 = PDPTE for 1 GB).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkPath {
    /// Physical frame of the node visited at each level, indexed by level
    /// (3 = root). Levels below the terminal level of a huge mapping are
    /// not visited and hold `Pfn(0)`.
    pub node_pfns: [Pfn; 4],
    /// Physical address of the page-table *entry* read at each level — the
    /// loads a hardware walker issues into the cache hierarchy. Levels
    /// below the terminal level hold `PhysAddr(0)` and must not be read.
    pub pte_addrs: [PhysAddr; 4],
    /// The translation result at the 4 KB grain (huge mappings return
    /// `region base + frame offset`, so callers can compose physical
    /// addresses without knowing the size).
    pub pfn: Pfn,
    /// The size of the mapping this walk resolved.
    pub size: PageSize,
    /// Whether this walk demand-allocated the data page (first touch).
    pub newly_mapped: bool,
}

/// One radix node: 512 slots of `(pfn << 2) | present | huge` (0 = not
/// present).
type Node = Box<[u64; NODE_ENTRIES]>;

/// A reserved 2 MB frame region under [`AllocPolicy::Promote2M`].
#[derive(Clone, Copy, Debug)]
struct ReservedRegion {
    /// Base frame of the physically contiguous 512-frame reservation.
    base: Pfn,
    /// Distinct 4 KB pages of the region touched so far.
    touched: u32,
    /// Whether the PDE has been flipped to a huge mapping.
    promoted: bool,
}

/// The four-level radix page table.
#[derive(Debug)]
pub struct PageTable {
    root: Pfn,
    // Keyed by scattered frame numbers and probed up to four times per
    // walk; the fast hasher keeps those probes off the SipHash tax.
    nodes: HashMap<Pfn, Node, FastBuildHasher>,
    frames: FrameAllocator,
    mapped_pages: u64,
    policy: AllocPolicy,
    /// 2 MB reservations keyed by `vpn >> 9` (Promote2M only).
    reservations: HashMap<u64, ReservedRegion, FastBuildHasher>,
}

impl PageTable {
    /// Creates an empty 4 KB-grain page table (root node allocated) —
    /// the paper's configuration.
    pub fn new() -> Self {
        Self::with_policy(AllocPolicy::Base4K)
    }

    /// Creates an empty page table mapping pages per `policy`.
    pub fn with_policy(policy: AllocPolicy) -> Self {
        let mut frames =
            if policy.is_default() { FrameAllocator::new() } else { FrameAllocator::partitioned() };
        let root = frames.alloc();
        let mut nodes = HashMap::default();
        nodes.insert(root, new_node());
        PageTable { root, nodes, frames, mapped_pages: 0, policy, reservations: HashMap::default() }
    }

    /// Physical frame of the root (PML4) node.
    pub fn root(&self) -> Pfn {
        self.root
    }

    /// The allocation policy mappings follow.
    pub fn policy(&self) -> AllocPolicy {
        self.policy
    }

    /// Number of mappings created so far, each counted at its own grain
    /// (one 2 MB or 1 GB mapping counts once; under promotion, the 4 KB
    /// first touches keep their counts).
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// Number of page-table node pages allocated (the table's own
    /// footprint).
    pub fn table_pages(&self) -> u64 {
        self.nodes.len() as u64
    }

    /// The size at which `vpn` is (or would be) mapped, without mapping
    /// it. Read-only: used to key size-tagged TLB structures before a
    /// walk resolves.
    pub fn probe_size(&self, vpn: Vpn) -> PageSize {
        match self.policy {
            AllocPolicy::Base4K | AllocPolicy::Uniform(PageSize::Size4K) => PageSize::Size4K,
            AllocPolicy::Uniform(size) => size,
            AllocPolicy::Promote2M { .. } => {
                let mut node_pfn = self.root;
                for level in [3u32, 2u32] {
                    let Some(node) = self.nodes.get(&node_pfn) else {
                        return PageSize::Size4K;
                    };
                    let slot = node[vpn.radix_index(level)];
                    if slot == 0 {
                        return PageSize::Size4K;
                    }
                    node_pfn = slot_pfn(slot);
                }
                let pd_index = vpn.radix_index(1);
                match self.nodes.get(&node_pfn) {
                    Some(node) if slot_is_huge(node[pd_index]) => PageSize::Size2M,
                    _ => PageSize::Size4K,
                }
            }
        }
    }

    /// Translates `vpn` (4 KB grain), demand-mapping it on first touch,
    /// and reports the full walk path.
    pub fn translate(&mut self, vpn: Vpn) -> WalkPath {
        match self.policy {
            AllocPolicy::Base4K | AllocPolicy::Uniform(PageSize::Size4K) => {
                self.translate_base(vpn)
            }
            AllocPolicy::Uniform(size) => self.translate_uniform(vpn, size),
            AllocPolicy::Promote2M { threshold } => self.translate_promote(vpn, threshold),
        }
    }

    /// The paper's 4 KB walk, kept as its own loop so the default policy
    /// performs the exact allocator-call and node-access sequence of the
    /// pre-page-size code (the golden outputs pin this).
    fn translate_base(&mut self, vpn: Vpn) -> WalkPath {
        let mut node_pfns = [Pfn::new(0); 4];
        let mut pte_addrs = [PhysAddr::new(0); 4];
        let mut newly_mapped = false;
        let mut node_pfn = self.root;
        // Levels 3 (root) down to 1 point at child nodes.
        for level in (1..=3).rev() {
            let index = vpn.radix_index(level as u32);
            node_pfns[level] = node_pfn;
            pte_addrs[level] = pte_addr(node_pfn, index);
            // dpc-lint: allow(hot-path::unwrap) -- node_pfn is the root (inserted in new) or a child inserted the moment it was allocated below
            let node = self.nodes.get_mut(&node_pfn).expect("interior node must exist");
            let slot = node[index];
            let child = if slot == 0 {
                let child = self.frames.alloc();
                // Re-borrow after alloc (frames and nodes are disjoint
                // fields, but the node borrow must be re-established).
                // dpc-lint: allow(hot-path::unwrap) -- re-borrow of the node fetched two lines up; alloc cannot remove map entries
                self.nodes.get_mut(&node_pfn).expect("interior node must exist")[index] =
                    encode_slot(child, false);
                self.nodes.insert(child, new_node());
                child
            } else {
                slot_pfn(slot)
            };
            node_pfn = child;
        }
        // Level 0: leaf PT maps the data page.
        let index = vpn.radix_index(0);
        node_pfns[0] = node_pfn;
        pte_addrs[0] = pte_addr(node_pfn, index);
        // dpc-lint: allow(hot-path::unwrap) -- the level-1 iteration above inserted this node before naming it as the child
        let node = self.nodes.get_mut(&node_pfn).expect("leaf node must exist");
        let pfn = if node[index] == 0 {
            let frame = self.frames.alloc();
            node[index] = encode_slot(frame, false);
            self.mapped_pages += 1;
            newly_mapped = true;
            frame
        } else {
            slot_pfn(node[index])
        };
        WalkPath { node_pfns, pte_addrs, pfn, size: PageSize::Size4K, newly_mapped }
    }

    /// Uniform huge mapping: the walk terminates at `size`'s PDE/PDPTE,
    /// which maps a whole aligned frame region on first touch.
    fn translate_uniform(&mut self, vpn: Vpn, size: PageSize) -> WalkPath {
        let terminal = size.terminal_level();
        let mut node_pfns = [Pfn::new(0); 4];
        let mut pte_addrs = [PhysAddr::new(0); 4];
        let mut node_pfn = self.root;
        dpc_types::invariant!(terminal < 4, "terminal level indexes the 4-level walk arrays");
        for level in (terminal + 1..=3).rev() {
            let index = vpn.radix_index(level as u32);
            node_pfns[level] = node_pfn;
            pte_addrs[level] = pte_addr(node_pfn, index);
            node_pfn = self.child_or_alloc(node_pfn, index);
        }
        let index = vpn.radix_index(terminal as u32);
        node_pfns[terminal] = node_pfn;
        pte_addrs[terminal] = pte_addr(node_pfn, index);
        // dpc-lint: allow(hot-path::unwrap) -- the loop above inserted this node before naming it as the child
        let node = self.nodes.get_mut(&node_pfn).expect("terminal node must exist");
        let slot = node[index];
        let (base, newly_mapped) = if slot == 0 {
            let base = self.frames.alloc_region(size);
            // dpc-lint: allow(hot-path::unwrap) -- re-borrow of the node fetched above; alloc_region cannot remove map entries
            self.nodes.get_mut(&node_pfn).expect("terminal node must exist")[index] =
                encode_slot(base, true);
            self.mapped_pages += 1;
            (base, true)
        } else {
            (slot_pfn(slot), false)
        };
        let pfn = Pfn::new(base.raw() + size.frame_offset(vpn));
        WalkPath { node_pfns, pte_addrs, pfn, size, newly_mapped }
    }

    /// Reservation-based promotion: 4 KB pages carved out of per-region
    /// 2 MB reservations, with the PDE flipped huge once `threshold`
    /// distinct base pages have been touched.
    fn translate_promote(&mut self, vpn: Vpn, threshold: u32) -> WalkPath {
        let mut node_pfns = [Pfn::new(0); 4];
        let mut pte_addrs = [PhysAddr::new(0); 4];
        let mut node_pfn = self.root;
        for level in (2..=3).rev() {
            let index = vpn.radix_index(level as u32);
            node_pfns[level] = node_pfn;
            pte_addrs[level] = pte_addr(node_pfn, index);
            node_pfn = self.child_or_alloc(node_pfn, index);
        }
        // Level 1 (PD): either a huge leaf or a pointer to the PT.
        let pd_pfn = node_pfn;
        let pd_index = vpn.radix_index(1);
        node_pfns[1] = pd_pfn;
        pte_addrs[1] = pte_addr(pd_pfn, pd_index);
        // dpc-lint: allow(hot-path::unwrap) -- the loop above inserted this node before naming it as the child
        let pd_slot = self.nodes.get_mut(&pd_pfn).expect("PD node must exist")[pd_index];
        if slot_is_huge(pd_slot) {
            let base = slot_pfn(pd_slot);
            let pfn = Pfn::new(base.raw() + PageSize::Size2M.frame_offset(vpn));
            return WalkPath {
                node_pfns,
                pte_addrs,
                pfn,
                size: PageSize::Size2M,
                newly_mapped: false,
            };
        }
        let pt_pfn =
            if pd_slot == 0 { self.child_or_alloc(pd_pfn, pd_index) } else { slot_pfn(pd_slot) };
        // Level 0: 4 KB leaf, frames carved from the region reservation.
        let index = vpn.radix_index(0);
        node_pfns[0] = pt_pfn;
        pte_addrs[0] = pte_addr(pt_pfn, index);
        // dpc-lint: allow(hot-path::unwrap) -- child_or_alloc inserted this node before returning it
        let slot = self.nodes.get_mut(&pt_pfn).expect("leaf node must exist")[index];
        let (pfn, newly_mapped) = if slot == 0 {
            let region = vpn.raw() >> PageSize::Size2M.unit_shift();
            let (frames, reservations) = (&mut self.frames, &mut self.reservations);
            let resv = reservations.entry(region).or_insert_with(|| ReservedRegion {
                base: frames.alloc_region(PageSize::Size2M),
                touched: 0,
                promoted: false,
            });
            let frame = Pfn::new(resv.base.raw() + PageSize::Size2M.frame_offset(vpn));
            resv.touched += 1;
            let promote = resv.touched >= threshold && !resv.promoted;
            if promote {
                resv.promoted = true;
            }
            let base = resv.base;
            // dpc-lint: allow(hot-path::unwrap) -- re-borrow of the leaf node fetched above; reservation bookkeeping cannot remove map entries
            self.nodes.get_mut(&pt_pfn).expect("leaf node must exist")[index] =
                encode_slot(frame, false);
            if promote {
                // Flip the PDE to a huge leaf over the same frames; the
                // abandoned PT node stays allocated (as on real systems
                // until the OS reclaims it). Visible from the next walk.
                // dpc-lint: allow(hot-path::unwrap) -- pd_pfn was fetched from the map a few lines up
                self.nodes.get_mut(&pd_pfn).expect("PD node must exist")[pd_index] =
                    encode_slot(base, true);
            }
            self.mapped_pages += 1;
            (frame, true)
        } else {
            (slot_pfn(slot), false)
        };
        WalkPath { node_pfns, pte_addrs, pfn, size: PageSize::Size4K, newly_mapped }
    }

    /// Follows (or demand-allocates) the child node under `index` of the
    /// interior node at `node_pfn`.
    fn child_or_alloc(&mut self, node_pfn: Pfn, index: usize) -> Pfn {
        dpc_types::invariant!(index < NODE_ENTRIES, "radix indices are 9-bit");
        // dpc-lint: allow(hot-path::unwrap) -- callers only pass node frames already inserted into the map
        let slot = self.nodes.get_mut(&node_pfn).expect("interior node must exist")[index];
        if slot == 0 {
            let child = self.frames.alloc();
            // dpc-lint: allow(hot-path::unwrap) -- re-borrow of the node fetched two lines up; alloc cannot remove map entries
            self.nodes.get_mut(&node_pfn).expect("interior node must exist")[index] =
                encode_slot(child, false);
            self.nodes.insert(child, new_node());
            child
        } else {
            slot_pfn(slot)
        }
    }

    /// Returns the node frame a walk starting at `level` for `vpn` would
    /// visit, if mapped — used to verify page-walk-cache correctness.
    pub fn node_at(&mut self, vpn: Vpn, level: u32) -> Pfn {
        dpc_types::invariant!(level < 4, "radix walks have 4 levels, got {level}");
        self.translate(vpn).node_pfns[(level as usize).min(3)]
    }
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

fn new_node() -> Node {
    // dpc-lint: allow(hot-path::alloc) -- demand-mapping allocates one PT node per first touch; steady-state replay stays allocation-free (proved by the counting-allocator test)
    Box::new([0u64; NODE_ENTRIES])
}

/// Physical address of slot `index` in the node at `node_pfn` (8-byte
/// entries).
fn pte_addr(node_pfn: Pfn, index: usize) -> PhysAddr {
    PhysAddr::new(node_pfn.base().raw() + (index as u64) * 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_unique() {
        let mut alloc = FrameAllocator::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100_000 {
            assert!(seen.insert(alloc.alloc()), "frame allocator repeated a frame");
        }
        assert_eq!(alloc.allocated(), 100_000);
    }

    #[test]
    fn partitioned_regions_are_aligned_and_disjoint() {
        let mut alloc = FrameAllocator::partitioned();
        let mut claimed: Vec<(u64, u64)> = Vec::new(); // [start, end) frame ranges
        for _ in 0..500 {
            let f = alloc.alloc();
            assert_eq!(f.raw() >> 33, 0, "singletons stay below bit 33");
            claimed.push((f.raw(), f.raw() + 1));
        }
        for _ in 0..200 {
            let base = alloc.alloc_region(PageSize::Size2M);
            assert_eq!(base.raw() % 512, 0, "2 MB regions are 512-frame aligned");
            claimed.push((base.raw(), base.raw() + 512));
        }
        for _ in 0..50 {
            let base = alloc.alloc_region(PageSize::Size1G);
            assert_eq!(base.raw() % (512 * 512), 0, "1 GB regions are 2^18-frame aligned");
            claimed.push((base.raw(), base.raw() + 512 * 512));
        }
        claimed.sort_unstable();
        for pair in claimed.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "frame ranges overlap: {pair:?}");
        }
    }

    #[test]
    #[should_panic(expected = "partitioned")]
    fn legacy_allocator_rejects_regions() {
        FrameAllocator::new().alloc_region(PageSize::Size2M);
    }

    #[test]
    fn translation_is_stable() {
        let mut pt = PageTable::new();
        let vpn = Vpn::new(0x12_3456);
        let first = pt.translate(vpn);
        assert!(first.newly_mapped);
        assert_eq!(first.size, PageSize::Size4K);
        let second = pt.translate(vpn);
        assert!(!second.newly_mapped);
        assert_eq!(first.pfn, second.pfn);
        assert_eq!(first.pte_addrs, second.pte_addrs);
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        let mut pt = PageTable::new();
        let a = pt.translate(Vpn::new(100)).pfn;
        let b = pt.translate(Vpn::new(101)).pfn;
        assert_ne!(a, b);
    }

    #[test]
    fn sibling_pages_share_interior_nodes() {
        let mut pt = PageTable::new();
        // Same 512-page region → same leaf PT node, different slots.
        let a = pt.translate(Vpn::new(0x1000));
        let b = pt.translate(Vpn::new(0x1001));
        assert_eq!(a.node_pfns[0], b.node_pfns[0]);
        assert_ne!(a.pte_addrs[0], b.pte_addrs[0]);
        // Distant regions → different leaf PT nodes, same root.
        let c = pt.translate(Vpn::new(0x8000_0000));
        assert_ne!(a.node_pfns[0], c.node_pfns[0]);
        assert_eq!(a.node_pfns[3], c.node_pfns[3]);
    }

    #[test]
    fn pte_addresses_live_in_their_nodes() {
        let mut pt = PageTable::new();
        let walk = pt.translate(Vpn::new(0xABCDE));
        for level in 0..4 {
            assert_eq!(
                walk.pte_addrs[level].pfn(),
                walk.node_pfns[level],
                "PTE at level {level} must lie in that level's node frame"
            );
        }
    }

    #[test]
    fn table_pages_grow_with_spread_mappings() {
        let mut pt = PageTable::new();
        let before = pt.table_pages();
        // Map pages 512 GiB apart: each needs its own PDPT/PD/PT chain.
        for i in 0..4u64 {
            pt.translate(Vpn::new(i << 27));
        }
        assert!(pt.table_pages() >= before + 9, "interior nodes must be allocated");
    }

    #[test]
    fn root_is_constant() {
        let mut pt = PageTable::new();
        let root = pt.root();
        pt.translate(Vpn::new(42));
        assert_eq!(pt.root(), root);
        assert_eq!(pt.translate(Vpn::new(42)).node_pfns[3], root);
    }

    #[test]
    fn uniform_2m_walks_terminate_at_the_pde() {
        let mut pt = PageTable::with_policy(AllocPolicy::Uniform(PageSize::Size2M));
        let vpn = Vpn::new(0x12_3456);
        let walk = pt.translate(vpn);
        assert_eq!(walk.size, PageSize::Size2M);
        assert!(walk.newly_mapped);
        assert_eq!(walk.node_pfns[0], Pfn::new(0), "no PT node below a PDE mapping");
        for level in 1..4 {
            assert_eq!(walk.pte_addrs[level].pfn(), walk.node_pfns[level]);
        }
        // The whole 2 MB region shares one mapping over contiguous frames.
        let sibling = pt.translate(Vpn::new(vpn.raw() ^ 0x1ff));
        assert!(!sibling.newly_mapped);
        assert_eq!(pt.mapped_pages(), 1);
        assert_eq!(
            walk.pfn.raw().wrapping_sub(PageSize::Size2M.frame_offset(vpn)),
            sibling.pfn.raw() - PageSize::Size2M.frame_offset(Vpn::new(vpn.raw() ^ 0x1ff)),
            "both pages translate into the same region"
        );
        assert_eq!(pt.probe_size(vpn), PageSize::Size2M);
    }

    #[test]
    fn uniform_1g_walks_terminate_at_the_pdpte() {
        let mut pt = PageTable::with_policy(AllocPolicy::Uniform(PageSize::Size1G));
        let vpn = Vpn::new(0x12_3456);
        let walk = pt.translate(vpn);
        assert_eq!(walk.size, PageSize::Size1G);
        assert_eq!(walk.node_pfns[0], Pfn::new(0));
        assert_eq!(walk.node_pfns[1], Pfn::new(0));
        assert_eq!(walk.pfn.raw() % (512 * 512), PageSize::Size1G.frame_offset(vpn));
        // 1 GB apart → distinct regions; within → shared.
        assert!(pt.translate(Vpn::new(vpn.raw() + (1 << 18))).newly_mapped);
        assert!(!pt.translate(Vpn::new(vpn.raw() + 1)).newly_mapped);
        assert_eq!(pt.mapped_pages(), 2);
    }

    #[test]
    fn huge_translations_are_stable_and_offset_correct() {
        for policy in
            [AllocPolicy::Uniform(PageSize::Size2M), AllocPolicy::Uniform(PageSize::Size1G)]
        {
            let mut pt = PageTable::with_policy(policy);
            let vpn = Vpn::new(0xABCDE);
            let a = pt.translate(vpn);
            let b = pt.translate(vpn);
            assert_eq!(a.pfn, b.pfn);
            assert_eq!(a.pte_addrs, b.pte_addrs);
            let size = a.size;
            assert_eq!(
                size.frame_offset(Vpn::new(a.pfn.raw())),
                size.frame_offset(vpn),
                "VA and PA agree on the in-region offset"
            );
        }
    }

    #[test]
    fn promotion_flips_the_pde_after_threshold_touches() {
        let threshold = 4;
        let mut pt = PageTable::with_policy(AllocPolicy::Promote2M { threshold });
        let base = Vpn::new(0x4_0000); // 2 MB-region aligned
                                       // Below threshold: 4 KB walks.
        let mut frames = Vec::new();
        for i in 0..threshold as u64 {
            let walk = pt.translate(Vpn::new(base.raw() + i));
            assert_eq!(walk.size, PageSize::Size4K);
            assert!(walk.newly_mapped);
            frames.push(walk.pfn);
            let expected =
                if i + 1 < u64::from(threshold) { PageSize::Size4K } else { PageSize::Size2M };
            assert_eq!(pt.probe_size(Vpn::new(base.raw() + i)), expected, "touch {i}");
        }
        // Promotion preserved the carved frames: the huge walk returns
        // exactly the frame each 4 KB walk returned.
        for (i, &frame) in frames.iter().enumerate() {
            let walk = pt.translate(Vpn::new(base.raw() + i as u64));
            assert_eq!(walk.size, PageSize::Size2M);
            assert!(!walk.newly_mapped);
            assert_eq!(walk.pfn, frame, "promotion must not move frames");
        }
        // Untouched pages of the promoted region translate too.
        let fresh = pt.translate(Vpn::new(base.raw() + 100));
        assert_eq!(fresh.size, PageSize::Size2M);
        assert_eq!(
            fresh.pfn.raw() - PageSize::Size2M.frame_offset(Vpn::new(fresh.pfn.raw())),
            frames[0].raw() - PageSize::Size2M.frame_offset(Vpn::new(frames[0].raw())),
        );
    }

    #[test]
    fn unpromoted_regions_stay_4k() {
        let mut pt = PageTable::with_policy(AllocPolicy::Promote2M { threshold: 512 });
        for i in 0..100u64 {
            assert_eq!(pt.translate(Vpn::new(0x4_0000 + i)).size, PageSize::Size4K);
        }
        assert_eq!(pt.probe_size(Vpn::new(0x4_0000)), PageSize::Size4K);
        assert_eq!(pt.probe_size(Vpn::new(0xFFFF_0000)), PageSize::Size4K, "unmapped VPN");
    }

    #[test]
    fn reservation_frames_are_carved_contiguously() {
        let mut pt = PageTable::with_policy(AllocPolicy::Promote2M { threshold: 512 });
        let a = pt.translate(Vpn::new(0x4_0000)).pfn;
        let b = pt.translate(Vpn::new(0x4_0001)).pfn;
        let far = pt.translate(Vpn::new(0x4_0000 + 0x1ff)).pfn;
        assert_eq!(b.raw(), a.raw() + 1, "adjacent pages share the reservation");
        assert_eq!(far.raw(), a.raw() + 0x1ff);
    }
}
