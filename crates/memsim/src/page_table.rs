//! A four-level radix page table allocated in simulated physical memory.
//!
//! The paper (Section III): *"we allocate a four-level radix tree data
//! structure as the page table. The page table contents are cached on the
//! processor caches as in the real hardware."* [`PageTable::translate`]
//! returns the physical addresses of the four page-table entries a hardware
//! walker would read, so the walker can send those loads through the data
//! caches.
//!
//! Pages are mapped on demand (first touch), modeling a demand-paging OS.
//! Physical frames come from a [`FrameAllocator`] that scatters allocations
//! over the frame space with a bijective multiplier, emulating the
//! fragmented VA→PA mappings of a long-running system.

use dpc_types::hash::FastBuildHasher;
use dpc_types::{Pfn, PhysAddr, Vpn};
use std::collections::HashMap;

/// Entries per page-table node (512 × 8 B = one 4 KiB page).
pub const NODE_ENTRIES: usize = 512;

/// Allocates unique physical frames.
///
/// Frame numbers are produced by a bijective affine map over a 2^34-frame
/// space so that consecutively-allocated pages do not occupy consecutive
/// frames.
#[derive(Clone, Debug)]
pub struct FrameAllocator {
    next: u64,
}

/// The frame space is 2^34 frames (64 TiB of simulated physical memory);
/// the multiplier is odd, hence invertible modulo 2^34.
const FRAME_SPACE_BITS: u32 = 34;
const FRAME_MULT: u64 = 0x9E37_79B9_7F4A_7C15 | 1;

impl FrameAllocator {
    /// Creates an allocator.
    pub fn new() -> Self {
        FrameAllocator { next: 1 }
    }

    /// Allocates a fresh, never-before-returned frame.
    ///
    /// # Panics
    ///
    /// Panics if the 2^34-frame space is exhausted (far beyond any
    /// simulated footprint).
    pub fn alloc(&mut self) -> Pfn {
        assert!(self.next < (1 << FRAME_SPACE_BITS), "physical frame space exhausted");
        let scattered = self.next.wrapping_mul(FRAME_MULT) & ((1 << FRAME_SPACE_BITS) - 1);
        self.next += 1;
        Pfn::new(scattered)
    }

    /// Number of frames handed out so far.
    pub fn allocated(&self) -> u64 {
        self.next - 1
    }
}

impl Default for FrameAllocator {
    fn default() -> Self {
        Self::new()
    }
}

/// The path a hardware page walk takes through the radix tree, from the
/// root (level 3, PML4) to the leaf (level 0, PT).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkPath {
    /// Physical frame of the node visited at each level, indexed by level
    /// (3 = root).
    pub node_pfns: [Pfn; 4],
    /// Physical address of the page-table *entry* read at each level — the
    /// loads a hardware walker issues into the cache hierarchy.
    pub pte_addrs: [PhysAddr; 4],
    /// The translation result.
    pub pfn: Pfn,
    /// Whether this walk demand-allocated the data page (first touch).
    pub newly_mapped: bool,
}

/// One radix node: 512 slots holding child/leaf PFN + 1 (0 = not present).
type Node = Box<[u64; NODE_ENTRIES]>;

/// The four-level radix page table.
#[derive(Debug)]
pub struct PageTable {
    root: Pfn,
    // Keyed by scattered frame numbers and probed four times per walk;
    // the fast hasher keeps those probes off the SipHash tax.
    nodes: HashMap<Pfn, Node, FastBuildHasher>,
    frames: FrameAllocator,
    mapped_pages: u64,
}

impl PageTable {
    /// Creates an empty page table (root node allocated).
    pub fn new() -> Self {
        let mut frames = FrameAllocator::new();
        let root = frames.alloc();
        let mut nodes = HashMap::default();
        nodes.insert(root, new_node());
        PageTable { root, nodes, frames, mapped_pages: 0 }
    }

    /// Physical frame of the root (PML4) node.
    pub fn root(&self) -> Pfn {
        self.root
    }

    /// Number of data pages mapped so far.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// Number of page-table node pages allocated (the table's own
    /// footprint).
    pub fn table_pages(&self) -> u64 {
        self.nodes.len() as u64
    }

    /// Translates `vpn`, demand-mapping it on first touch, and reports the
    /// full walk path.
    pub fn translate(&mut self, vpn: Vpn) -> WalkPath {
        let mut node_pfns = [Pfn::new(0); 4];
        let mut pte_addrs = [PhysAddr::new(0); 4];
        let mut newly_mapped = false;
        let mut node_pfn = self.root;
        // Levels 3 (root) down to 1 point at child nodes.
        for level in (1..=3).rev() {
            let index = vpn.radix_index(level as u32);
            node_pfns[level] = node_pfn;
            pte_addrs[level] = pte_addr(node_pfn, index);
            // dpc-lint: allow(hot-path::unwrap) -- node_pfn is the root (inserted in new) or a child inserted the moment it was allocated below
            let node = self.nodes.get_mut(&node_pfn).expect("interior node must exist");
            let slot = node[index];
            let child = if slot == 0 {
                let child = self.frames.alloc();
                // Re-borrow after alloc (frames and nodes are disjoint
                // fields, but the node borrow must be re-established).
                // dpc-lint: allow(hot-path::unwrap) -- re-borrow of the node fetched two lines up; alloc cannot remove map entries
                self.nodes.get_mut(&node_pfn).expect("interior node must exist")[index] =
                    child.raw() + 1;
                self.nodes.insert(child, new_node());
                child
            } else {
                Pfn::new(slot - 1)
            };
            node_pfn = child;
        }
        // Level 0: leaf PT maps the data page.
        let index = vpn.radix_index(0);
        node_pfns[0] = node_pfn;
        pte_addrs[0] = pte_addr(node_pfn, index);
        // dpc-lint: allow(hot-path::unwrap) -- the level-1 iteration above inserted this node before naming it as the child
        let node = self.nodes.get_mut(&node_pfn).expect("leaf node must exist");
        let pfn = if node[index] == 0 {
            let frame = self.frames.alloc();
            node[index] = frame.raw() + 1;
            self.mapped_pages += 1;
            newly_mapped = true;
            frame
        } else {
            Pfn::new(node[index] - 1)
        };
        WalkPath { node_pfns, pte_addrs, pfn, newly_mapped }
    }

    /// Returns the node frame a walk starting at `level` for `vpn` would
    /// visit, if mapped — used to verify page-walk-cache correctness.
    pub fn node_at(&mut self, vpn: Vpn, level: u32) -> Pfn {
        dpc_types::invariant!(level < 4, "radix walks have 4 levels, got {level}");
        self.translate(vpn).node_pfns[(level as usize).min(3)]
    }
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

fn new_node() -> Node {
    // dpc-lint: allow(hot-path::alloc) -- demand-mapping allocates one PT node per first touch; steady-state replay stays allocation-free (proved by the counting-allocator test)
    Box::new([0u64; NODE_ENTRIES])
}

/// Physical address of slot `index` in the node at `node_pfn` (8-byte
/// entries).
fn pte_addr(node_pfn: Pfn, index: usize) -> PhysAddr {
    PhysAddr::new(node_pfn.base().raw() + (index as u64) * 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_unique() {
        let mut alloc = FrameAllocator::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100_000 {
            assert!(seen.insert(alloc.alloc()), "frame allocator repeated a frame");
        }
        assert_eq!(alloc.allocated(), 100_000);
    }

    #[test]
    fn translation_is_stable() {
        let mut pt = PageTable::new();
        let vpn = Vpn::new(0x12_3456);
        let first = pt.translate(vpn);
        assert!(first.newly_mapped);
        let second = pt.translate(vpn);
        assert!(!second.newly_mapped);
        assert_eq!(first.pfn, second.pfn);
        assert_eq!(first.pte_addrs, second.pte_addrs);
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        let mut pt = PageTable::new();
        let a = pt.translate(Vpn::new(100)).pfn;
        let b = pt.translate(Vpn::new(101)).pfn;
        assert_ne!(a, b);
    }

    #[test]
    fn sibling_pages_share_interior_nodes() {
        let mut pt = PageTable::new();
        // Same 512-page region → same leaf PT node, different slots.
        let a = pt.translate(Vpn::new(0x1000));
        let b = pt.translate(Vpn::new(0x1001));
        assert_eq!(a.node_pfns[0], b.node_pfns[0]);
        assert_ne!(a.pte_addrs[0], b.pte_addrs[0]);
        // Distant regions → different leaf PT nodes, same root.
        let c = pt.translate(Vpn::new(0x8000_0000));
        assert_ne!(a.node_pfns[0], c.node_pfns[0]);
        assert_eq!(a.node_pfns[3], c.node_pfns[3]);
    }

    #[test]
    fn pte_addresses_live_in_their_nodes() {
        let mut pt = PageTable::new();
        let walk = pt.translate(Vpn::new(0xABCDE));
        for level in 0..4 {
            assert_eq!(
                walk.pte_addrs[level].pfn(),
                walk.node_pfns[level],
                "PTE at level {level} must lie in that level's node frame"
            );
        }
    }

    #[test]
    fn table_pages_grow_with_spread_mappings() {
        let mut pt = PageTable::new();
        let before = pt.table_pages();
        // Map pages 512 GiB apart: each needs its own PDPT/PD/PT chain.
        for i in 0..4u64 {
            pt.translate(Vpn::new(i << 27));
        }
        assert!(pt.table_pages() >= before + 9, "interior nodes must be allocated");
    }

    #[test]
    fn root_is_constant() {
        let mut pt = PageTable::new();
        let root = pt.root();
        pt.translate(Vpn::new(42));
        assert_eq!(pt.root(), root);
        assert_eq!(pt.translate(Vpn::new(42)).node_pfns[3], root);
    }
}
