//! Simulation statistics: per-structure counters, eviction-time dead/DOA
//! classification (paper Figs. 2 and 4) and resident-deadness sampling
//! (paper Figs. 1 and 3).

use crate::set_assoc::LineLife;
use serde::{Deserialize, Serialize};

/// Hit/miss/fill counters for one cache or TLB structure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StructStats {
    /// Total lookups.
    pub lookups: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Allocations performed.
    pub fills: u64,
    /// Fills suppressed by a bypass prediction.
    pub bypasses: u64,
    /// Valid entries displaced by replacement.
    pub evictions: u64,
    /// Misses served by the policy's shadow/victim buffer (LLT only).
    pub shadow_hits: u64,
    /// Entries removed by back-invalidation (inclusion enforcement).
    pub invalidations: u64,
}

impl StructStats {
    /// Hit rate in `[0, 1]`; zero when there were no lookups.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Misses per kilo-instruction.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }
}

/// Eviction-time classification of entries (paper Figs. 2/4): dead-on-
/// arrival, mostly dead (dead time > live time but at least one hit), or
/// live.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvictionClasses {
    /// Total classified evictions.
    pub total: u64,
    /// Entries evicted with zero hits.
    pub doa: u64,
    /// Entries with ≥1 hit whose dead time exceeded their live time.
    pub mostly_dead: u64,
    /// Entries whose live time dominated.
    pub live: u64,
}

impl EvictionClasses {
    /// Classifies an eviction. Time is measured in the owning structure's
    /// lookup sequence numbers; *live* is fill → last hit, *dead* is last
    /// hit → eviction, matching Section IV-A of the paper.
    pub fn record(&mut self, life: LineLife, evict_seq: u64) {
        self.total += 1;
        if life.hits == 0 {
            self.doa += 1;
        } else {
            let live = life.last_hit_seq.saturating_sub(life.fill_seq);
            let dead = evict_seq.saturating_sub(life.last_hit_seq);
            if dead > live {
                self.mostly_dead += 1;
            } else {
                self.live += 1;
            }
        }
    }

    /// Fraction of evictions that were DOA.
    pub fn doa_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.doa as f64 / self.total as f64
        }
    }

    /// Fraction of evictions that were dead (DOA or mostly dead) — the
    /// total bar height in Figs. 2/4.
    pub fn dead_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.doa + self.mostly_dead) as f64 / self.total as f64
        }
    }
}

/// Sampled resident deadness (paper Figs. 1/3): at each sampling instant,
/// what fraction of currently resident entries will receive no further hit
/// before eviction (*dead*), and what fraction will end their stay with
/// zero hits (*DOA*)?
///
/// Future knowledge is resolved lazily: sampling instants are recorded as
/// structure-local sequence numbers, and each entry contributes to the
/// sample accounting when its stay ends (eviction or end-of-simulation
/// flush), when its full hit history is known.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadnessSampler {
    sample_seqs: Vec<u64>,
    present: u64,
    dead: u64,
    doa: u64,
}

impl DeadnessSampler {
    /// Creates an empty sampler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a sampling instant at structure-local sequence `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not monotonically non-decreasing.
    pub fn take_sample(&mut self, seq: u64) {
        if let Some(&last) = self.sample_seqs.last() {
            assert!(seq >= last, "sample sequence numbers must be monotonic");
        }
        self.sample_seqs.push(seq);
    }

    /// Accounts a finished stay: the entry was resident for sequence
    /// numbers `[life.fill_seq, end_seq)`.
    pub fn record_stay(&mut self, life: LineLife, end_seq: u64) {
        let n_present = self.count_in(life.fill_seq, end_seq);
        self.present += n_present;
        if life.hits == 0 {
            self.dead += n_present;
            self.doa += n_present;
        } else {
            // Dead exactly for samples strictly after the last hit.
            self.dead += self.count_in(life.last_hit_seq + 1, end_seq);
        }
    }

    fn count_in(&self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            return 0;
        }
        let start = self.sample_seqs.partition_point(|&s| s < lo);
        let end = self.sample_seqs.partition_point(|&s| s < hi);
        (end - start) as u64
    }

    /// Aggregated results.
    pub fn stats(&self) -> DeadnessStats {
        DeadnessStats {
            samples: self.sample_seqs.len() as u64,
            present: self.present,
            dead: self.dead,
            doa: self.doa,
        }
    }
}

/// Aggregated output of a [`DeadnessSampler`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadnessStats {
    /// Number of sampling instants.
    pub samples: u64,
    /// Σ over samples of resident entries.
    pub present: u64,
    /// Σ over samples of resident entries with no future hit.
    pub dead: u64,
    /// Σ over samples of resident entries that end their stay with 0 hits.
    pub doa: u64,
}

impl DeadnessStats {
    /// Average fraction of resident entries that are dead (Fig. 1/3 total
    /// bar height).
    pub fn dead_fraction(&self) -> f64 {
        if self.present == 0 {
            0.0
        } else {
            self.dead as f64 / self.present as f64
        }
    }

    /// Average fraction of resident entries that are DOA (Fig. 1/3 lower
    /// stack).
    pub fn doa_fraction(&self) -> f64 {
        if self.present == 0 {
            0.0
        } else {
            self.doa as f64 / self.present as f64
        }
    }
}

/// Full output of one simulation run.
///
/// Equality is **architectural**: every simulated-machine statistic must
/// match, but the engine telemetry ([`fast_hits`](SimStats::fast_hits) /
/// [`slow_steps`](SimStats::slow_steps)) is excluded — a replayed
/// (fast-path) and a live (event-at-a-time) execution of the same run
/// are bit-identical architecturally while dividing the events between
/// the two engine paths differently.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// Retired instructions (memory + compute).
    pub instructions: u64,
    /// Retired memory operations.
    pub mem_ops: u64,
    /// Total cycles from the core timing model.
    pub cycles: u64,

    /// L1 instruction TLB counters.
    pub l1i_tlb: StructStats,
    /// L1 data TLB counters.
    pub l1d_tlb: StructStats,
    /// L2 (last-level) TLB counters.
    pub llt: StructStats,
    /// L1 data cache counters.
    pub l1d: StructStats,
    /// L2 cache counters.
    pub l2: StructStats,
    /// L3 / last-level cache counters.
    pub llc: StructStats,

    /// Completed page walks.
    pub walks: u64,
    /// PTE loads issued by the walker into the data caches.
    pub walk_pte_loads: u64,
    /// Page-walk cache hits per level (L1/L2/L3 PWC).
    pub pwc_hits: [u64; 3],
    /// Cycles spent in page walks (sum; walks overlap in the ROB model).
    pub walk_cycles: u64,

    /// Eviction-time classification of LLT entries (Fig. 2).
    pub llt_evictions: EvictionClasses,
    /// Eviction-time classification of LLC blocks (Fig. 4).
    pub llc_evictions: EvictionClasses,
    /// Sampled LLT deadness (Fig. 1).
    pub llt_deadness: DeadnessStats,
    /// Sampled LLC deadness (Fig. 3).
    pub llc_deadness: DeadnessStats,

    /// DOA-evicted LLC blocks whose page's most recent LLT stay was DOA
    /// (numerator of Table III).
    pub doa_blocks_on_doa_pages: u64,
    /// All DOA-evicted LLC blocks with a known page stay (denominator of
    /// Table III).
    pub doa_blocks_classified: u64,

    /// Events retired by the replay engine's batched L1-hit fast path
    /// (engine telemetry, not architecture; excluded from equality).
    pub fast_hits: u64,
    /// Events retired by the replay engine's second fast tier — an L1
    /// D-TLB miss absorbed by the L2 TLB and/or an L1D miss absorbed by
    /// the L2 cache (engine telemetry, not architecture; excluded from
    /// equality).
    pub fast_l2_hits: u64,
    /// Events processed by the full `step` machinery (engine telemetry,
    /// not architecture; excluded from equality).
    pub slow_steps: u64,
}

/// Architectural equality: compares every simulated-machine statistic,
/// ignoring the engine-telemetry split between the fast and slow paths.
/// The exhaustive destructuring forces this impl to be revisited whenever
/// a field is added.
impl PartialEq for SimStats {
    fn eq(&self, other: &Self) -> bool {
        let SimStats {
            instructions,
            mem_ops,
            cycles,
            l1i_tlb,
            l1d_tlb,
            llt,
            l1d,
            l2,
            llc,
            walks,
            walk_pte_loads,
            pwc_hits,
            walk_cycles,
            llt_evictions,
            llc_evictions,
            llt_deadness,
            llc_deadness,
            doa_blocks_on_doa_pages,
            doa_blocks_classified,
            fast_hits: _,
            fast_l2_hits: _,
            slow_steps: _,
        } = self;
        *instructions == other.instructions
            && *mem_ops == other.mem_ops
            && *cycles == other.cycles
            && *l1i_tlb == other.l1i_tlb
            && *l1d_tlb == other.l1d_tlb
            && *llt == other.llt
            && *l1d == other.l1d
            && *l2 == other.l2
            && *llc == other.llc
            && *walks == other.walks
            && *walk_pte_loads == other.walk_pte_loads
            && *pwc_hits == other.pwc_hits
            && *walk_cycles == other.walk_cycles
            && *llt_evictions == other.llt_evictions
            && *llc_evictions == other.llc_evictions
            && *llt_deadness == other.llt_deadness
            && *llc_deadness == other.llc_deadness
            && *doa_blocks_on_doa_pages == other.doa_blocks_on_doa_pages
            && *doa_blocks_classified == other.doa_blocks_classified
    }
}

impl Eq for SimStats {}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// LLT misses per kilo-instruction.
    pub fn llt_mpki(&self) -> f64 {
        self.llt.mpki(self.instructions)
    }

    /// LLC misses per kilo-instruction.
    pub fn llc_mpki(&self) -> f64 {
        self.llc.mpki(self.instructions)
    }

    /// Fraction of DOA LLC blocks that fell on DOA pages (Table III).
    pub fn doa_block_page_correlation(&self) -> f64 {
        if self.doa_blocks_classified == 0 {
            0.0
        } else {
            self.doa_blocks_on_doa_pages as f64 / self.doa_blocks_classified as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn life(fill: u64, last_hit: u64, hits: u64) -> LineLife {
        LineLife { fill_seq: fill, last_hit_seq: last_hit, hits }
    }

    #[test]
    fn struct_stats_rates() {
        let s = StructStats { lookups: 10, hits: 7, misses: 3, ..Default::default() };
        assert!((s.hit_rate() - 0.7).abs() < 1e-12);
        assert!((s.mpki(1000) - 3.0).abs() < 1e-12);
        assert_eq!(StructStats::default().hit_rate(), 0.0);
        assert_eq!(StructStats::default().mpki(0), 0.0);
    }

    #[test]
    fn eviction_classification() {
        let mut c = EvictionClasses::default();
        c.record(life(0, 0, 0), 100); // DOA
        c.record(life(0, 10, 1), 100); // live 10, dead 90 -> mostly dead
        c.record(life(0, 90, 5), 100); // live 90, dead 10 -> live
        assert_eq!((c.doa, c.mostly_dead, c.live), (1, 1, 1));
        assert!((c.doa_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.dead_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dead_equals_live_counts_as_live() {
        let mut c = EvictionClasses::default();
        c.record(life(0, 50, 1), 100); // dead 50 == live 50
        assert_eq!(c.live, 1);
    }

    #[test]
    fn sampler_counts_doa_stays() {
        let mut s = DeadnessSampler::new();
        s.take_sample(10);
        s.take_sample(20);
        s.take_sample(30);
        // Stay [5, 25) with zero hits: samples 10 and 20 present, both DOA.
        s.record_stay(life(5, 5, 0), 25);
        let d = s.stats();
        assert_eq!(d.present, 2);
        assert_eq!(d.dead, 2);
        assert_eq!(d.doa, 2);
    }

    #[test]
    fn sampler_counts_partially_dead_stays() {
        let mut s = DeadnessSampler::new();
        for seq in [10, 20, 30, 40] {
            s.take_sample(seq);
        }
        // Stay [5, 45), last hit at 25, one hit: samples 10..40 present,
        // dead only at 30 and 40 (after the last hit).
        s.record_stay(life(5, 25, 1), 45);
        let d = s.stats();
        assert_eq!(d.present, 4);
        assert_eq!(d.dead, 2);
        assert_eq!(d.doa, 0);
        assert!((d.dead_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sample_exactly_at_last_hit_is_live() {
        let mut s = DeadnessSampler::new();
        s.take_sample(25);
        s.record_stay(life(5, 25, 1), 45);
        assert_eq!(s.stats().dead, 0);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn samples_must_be_monotonic() {
        let mut s = DeadnessSampler::new();
        s.take_sample(10);
        s.take_sample(5);
    }

    #[test]
    fn empty_stay_counts_nothing() {
        let mut s = DeadnessSampler::new();
        s.take_sample(10);
        s.record_stay(life(20, 20, 0), 15); // lo >= hi
        assert_eq!(s.stats().present, 0);
    }

    #[test]
    fn sim_stats_derived_metrics() {
        let stats = SimStats {
            instructions: 2000,
            cycles: 1000,
            llt: StructStats { misses: 10, ..Default::default() },
            llc: StructStats { misses: 4, ..Default::default() },
            doa_blocks_on_doa_pages: 3,
            doa_blocks_classified: 4,
            ..Default::default()
        };
        assert!((stats.ipc() - 2.0).abs() < 1e-12);
        assert!((stats.llt_mpki() - 5.0).abs() < 1e-12);
        assert!((stats.llc_mpki() - 2.0).abs() < 1e-12);
        assert!((stats.doa_block_page_correlation() - 0.75).abs() < 1e-12);
    }
}
