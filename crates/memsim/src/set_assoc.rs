//! A generic set-associative array with pluggable replacement.
//!
//! Caches, TLBs and the (fully-associative) page-walk caches are all
//! instances of [`SetAssoc`] with different payload types. Replacement is
//! selected by [`ReplacementKind`]: LRU keeps a per-line recency stamp,
//! SRRIP a 2-bit re-reference prediction value, FIFO an insertion stamp.
//!
//! Storage is the struct-of-arrays layout of [`crate::soa`]: lookups do a
//! branchless tag compare over one contiguous tag column per set and a
//! single validity-bitmask intersection, instead of walking an
//! array-of-structs. Set indexing uses a precomputed mask when the set
//! count is a power of two (every paper-baseline structure) and falls back
//! to modulo otherwise (e.g. a 3 MB LLC with 3072 sets).
//!
//! Lifetime statistics needed by the paper's deadness characterization
//! (fill time, last-hit time, hit count) are tracked per line in
//! [`LineLife`].
//!
//! The victim-selection hooks ([`SetAssoc::with_set_views`]) reuse a
//! scratch buffer owned by the array, so steady-state operation performs
//! **zero heap allocations per event** (see DESIGN.md §10).

use crate::policy::PolicyLineView;
use crate::soa::{LineRef, SoaColumns};
use dpc_types::{invariant, ReplacementKind};

/// Payloads that expose 32 bits of policy scratch state to the
/// [`policy`](crate::policy) hooks.
pub trait HasPolicyState {
    /// Mutable access to the per-line policy state.
    fn policy_state_mut(&mut self) -> &mut u32;
}

/// Maximum RRPV for 2-bit SRRIP (2^2 - 1).
pub const RRPV_MAX: u8 = 3;
/// SRRIP "long re-reference interval" insertion value (RRPV_MAX - 1).
pub const RRPV_LONG: u8 = 2;

/// Where a newly inserted line lands in the replacement order.
///
/// Mirrors how the paper adapts SHiP to both base policies: under LRU, a
/// distant prediction inserts at the LRU position; under SRRIP it inserts
/// with RRPV = 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum InsertPriority {
    /// Most-recently-used position (LRU base) / RRPV = 2 (SRRIP base) — the
    /// default insertion of the respective policy.
    #[default]
    Normal,
    /// LRU position (LRU base) / RRPV = 3 (SRRIP base): predicted to be
    /// re-referenced in the distant future.
    Distant,
    /// MRU position / RRPV = 0: predicted imminent reuse.
    High,
}

/// Per-line lifetime statistics, in units of the owning structure's lookup
/// sequence numbers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LineLife {
    /// Lookup sequence number at fill.
    pub fill_seq: u64,
    /// Lookup sequence number of the most recent hit (equals `fill_seq`
    /// until the first hit).
    pub last_hit_seq: u64,
    /// Number of hits the line has received since fill.
    pub hits: u64,
}

/// Sentinel for [`PendingHit::idx`]: no hit-promotion is buffered.
const NO_PENDING: usize = usize::MAX;

/// A buffered hit-promotion not yet applied to the metadata columns.
///
/// The hit paths advance the scalar clocks eagerly but defer the column
/// stores (lifetime stats, LRU stamp / SRRIP promotion) into this
/// one-entry buffer; consecutive hits to the same line coalesce into a
/// single eventual store. The buffer is applied ([`SetAssoc`]'s
/// `flush_pending`) before any code path reads or writes the metadata
/// columns, and merged on the fly by the `&self` readers — so the
/// deferral is unobservable (DESIGN.md §16).
#[derive(Clone, Copy, Debug)]
struct PendingHit {
    /// Flat column index of the hit line, or [`NO_PENDING`].
    idx: usize,
    /// Coalesced hit count.
    hits: u64,
    /// Lookup-clock value of the most recent coalesced hit.
    last_seq: u64,
    /// Recency-clock value of the most recent coalesced hit.
    last_tick: u64,
}

impl PendingHit {
    const fn empty() -> Self {
        PendingHit { idx: NO_PENDING, hits: 0, last_seq: 0, last_tick: 0 }
    }
}

/// Contents evicted by an insertion.
#[derive(Clone, Debug)]
pub struct Evicted<P> {
    /// Tag of the evicted line.
    pub tag: u64,
    /// Lifetime statistics accumulated during the evictee's stay.
    pub life: LineLife,
    /// The evicted payload.
    pub payload: P,
}

/// A set-associative array of `sets × ways` lines holding payload `P`,
/// stored as dense parallel columns ([`SoaColumns`]).
#[derive(Clone, Debug)]
pub struct SetAssoc<P> {
    sets: usize,
    ways: usize,
    /// `sets - 1` when the set count is a power of two (mask indexing).
    set_mask: u64,
    /// Whether `set_mask` is usable (power-of-two set count).
    sets_pow2: bool,
    /// Bitmask with the low `ways` bits set (a full set's validity mask).
    way_mask: u64,
    replacement: ReplacementKind,
    cols: SoaColumns<P>,
    /// Reusable buffer for [`SetAssoc::with_set_views`]; preallocated to
    /// `ways` so the hot path never reallocates.
    scratch: Vec<PolicyLineView>,
    /// Monotonic recency clock (advanced on every touch/insert).
    tick: u64,
    /// Monotonic lookup sequence (advanced on every lookup), used for
    /// lifetime statistics.
    seq: u64,
    /// Lazily-applied hit-promotion buffer (see [`PendingHit`]).
    pending: PendingHit,
}

impl<P: Default> SetAssoc<P> {
    /// Creates an array with `sets` sets of `ways` ways each.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero, or if `ways` exceeds the
    /// 64-way validity-bitmask limit.
    pub fn new(sets: usize, ways: usize, replacement: ReplacementKind) -> Self {
        assert!(sets > 0 && ways > 0, "SetAssoc requires nonzero geometry");
        let sets_pow2 = sets.is_power_of_two();
        let way_mask = if ways == 64 { u64::MAX } else { (1u64 << ways) - 1 };
        SetAssoc {
            sets,
            ways,
            set_mask: (sets as u64).wrapping_sub(1),
            sets_pow2,
            way_mask,
            replacement,
            cols: SoaColumns::new(sets, ways, RRPV_MAX),
            scratch: Vec::with_capacity(ways),
            tick: 0,
            seq: 0,
            pending: PendingHit::empty(),
        }
    }
}

impl<P> SetAssoc<P> {
    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    #[inline]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Set index for a line address (block address, VPN, ...): a mask when
    /// the set count is a power of two, modulo otherwise (which also
    /// handles non-power-of-two organizations such as a 3 MB LLC).
    #[inline]
    pub fn set_of(&self, addr: u64) -> usize {
        if self.sets_pow2 {
            (addr & self.set_mask) as usize
        } else {
            (addr % self.sets as u64) as usize
        }
    }

    /// Current lookup sequence number (the structure-local clock used by
    /// [`LineLife`]).
    #[inline]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Flat column index of `way` in the set `addr` maps to, with the set
    /// index alongside it.
    #[inline]
    fn locate(&self, addr: u64, way: usize) -> (usize, usize) {
        let set = self.set_of(addr);
        invariant!(way < self.ways, "way {way} out of range for {}-way array", self.ways);
        (set, set * self.ways + way)
    }

    /// Records a hit on flat index `idx` in the lazy promotion buffer.
    /// Consecutive hits to the same line coalesce; a hit elsewhere first
    /// applies whatever was buffered. Must run *after* the hit advanced
    /// `seq` and `tick` (the buffer captures their current values).
    #[inline]
    fn note_hit(&mut self, idx: usize) {
        if self.pending.idx == idx {
            self.pending.hits += 1;
            self.pending.last_seq = self.seq;
            self.pending.last_tick = self.tick;
        } else {
            self.flush_pending();
            self.pending = PendingHit { idx, hits: 1, last_seq: self.seq, last_tick: self.tick };
        }
    }

    /// Applies the buffered hit-promotion to the metadata columns.
    ///
    /// Equivalent to having performed the eager per-hit stores: the
    /// intermediate values of a coalesced run are overwritten by its
    /// last hit (`last_hit_seq`, LRU stamp) or idempotent (SRRIP
    /// promotion to 0), and `hits` accumulates — so applying once at the
    /// first metadata read gives the exact eager column state. Called
    /// before every path that reads or writes stamps/rrpvs/lives.
    #[inline]
    fn flush_pending(&mut self) {
        let idx = self.pending.idx;
        if idx == NO_PENDING {
            return;
        }
        invariant!(idx < self.cols.lives.len(), "pending index came from an in-bounds hit");
        let life = &mut self.cols.lives[idx];
        life.hits += self.pending.hits;
        life.last_hit_seq = self.pending.last_seq;
        match self.replacement {
            ReplacementKind::Lru => self.cols.stamps[idx] = self.pending.last_tick,
            ReplacementKind::Srrip => self.cols.rrpvs[idx] = 0,
            ReplacementKind::Fifo => {}
        }
        self.pending.idx = NO_PENDING;
    }

    /// Looks up `tag` in its set. On a hit, advances the lookup clock,
    /// updates recency and lifetime stats (buffered lazily, see
    /// [`PendingHit`]), and returns the way index. On a miss, only the
    /// lookup clock advances.
    #[inline]
    pub fn lookup(&mut self, addr: u64, tag: u64) -> Option<usize> {
        self.seq += 1;
        let set = self.set_of(addr);
        let base = set * self.ways;
        let hit = self.cols.match_mask(set, base, tag);
        if hit == 0 {
            return None;
        }
        // First-match-wins, exactly like the previous linear scan.
        let way = hit.trailing_zeros() as usize;
        self.tick += 1;
        self.note_hit(base + way);
        Some(way)
    }

    /// [`lookup`](Self::lookup) fused with payload access: on a hit,
    /// returns the way *and* a reference to its payload, saving the
    /// re-derivation of the flat column index that a separate
    /// [`payload`](Self::payload) call would perform.
    #[inline]
    pub fn lookup_payload(&mut self, addr: u64, tag: u64) -> Option<(usize, &P)> {
        self.seq += 1;
        let set = self.set_of(addr);
        let base = set * self.ways;
        let hit = self.cols.match_mask(set, base, tag);
        if hit == 0 {
            return None;
        }
        let way = hit.trailing_zeros() as usize;
        let idx = base + way;
        self.tick += 1;
        self.note_hit(idx);
        invariant!(idx < self.cols.payloads.len(), "set * ways + way stays inside the columns");
        Some((way, &self.cols.payloads[idx]))
    }

    /// Commits a hit previously found by [`peek`](Self::peek), applying
    /// exactly the state transitions a hitting [`lookup`](Self::lookup)
    /// performs: lookup clock, recency tick, lifetime stats, and the
    /// replacement-policy stamp. This is the second half of the replay
    /// fast path's probe-then-commit split — classification peeks without
    /// perturbing state, and only a fully classified hit commits.
    ///
    /// `way` must be the way a `peek` of the same `addr`/tag returned,
    /// with the array unmodified in between.
    #[inline]
    pub fn commit_hit(&mut self, addr: u64, way: usize) {
        self.seq += 1;
        let (_, idx) = self.locate(addr, way);
        self.tick += 1;
        invariant!(idx < self.cols.lives.len(), "locate() stays inside the columns");
        self.note_hit(idx);
    }

    /// Commits a miss previously established by [`peek`](Self::peek):
    /// only the lookup clock advances, exactly like a missing
    /// [`lookup`](Self::lookup).
    #[inline]
    pub fn commit_miss(&mut self) {
        self.seq += 1;
    }

    /// Hints the hardware prefetcher at the tag column and validity word
    /// of the set `addr` maps to, ahead of a future [`lookup`](Self::lookup)
    /// for the same address. Pure scheduling hint: no clock, recency, or
    /// any other architectural state changes, so issuing it for addresses
    /// that are never looked up (or skipping it entirely) is
    /// behavior-neutral. No-op when the runtime SIMD gate is off.
    #[inline]
    pub fn prefetch_set(&self, addr: u64) {
        let set = self.set_of(addr);
        let base = set * self.ways;
        // `wrapping_add` keeps the pointer arithmetic safe even though
        // `set < sets` already holds by construction; the prefetch
        // instruction itself tolerates any address.
        crate::simd::prefetch_read(self.cols.tags.as_ptr().wrapping_add(base));
        crate::simd::prefetch_read(self.cols.valid.as_ptr().wrapping_add(set));
    }

    /// Probes for `tag` without advancing any clock or updating recency
    /// (used by inclusion checks and tests).
    #[inline]
    pub fn peek(&self, addr: u64, tag: u64) -> Option<usize> {
        let set = self.set_of(addr);
        let hit = self.cols.match_mask(set, set * self.ways, tag);
        if hit == 0 {
            None
        } else {
            Some(hit.trailing_zeros() as usize)
        }
    }

    /// Payload of a way in the set that `addr` maps to (contents are
    /// meaningful only while the way is valid).
    #[inline]
    pub fn payload(&self, addr: u64, way: usize) -> &P {
        let (_, idx) = self.locate(addr, way);
        invariant!(idx < self.cols.payloads.len(), "locate() stays inside the columns");
        &self.cols.payloads[idx]
    }

    /// Mutable payload of a way in the set that `addr` maps to.
    #[inline]
    pub fn payload_mut(&mut self, addr: u64, way: usize) -> &mut P {
        let (_, idx) = self.locate(addr, way);
        invariant!(idx < self.cols.payloads.len(), "locate() stays inside the columns");
        &mut self.cols.payloads[idx]
    }

    /// Lifetime statistics of a way in the set that `addr` maps to,
    /// with any buffered hit-promotion merged in (`&self` readers merge
    /// instead of flushing).
    #[inline]
    pub fn life_of(&self, addr: u64, way: usize) -> LineLife {
        let (_, idx) = self.locate(addr, way);
        invariant!(idx < self.cols.lives.len(), "locate() stays inside the columns");
        let mut life = self.cols.lives[idx];
        if self.pending.idx == idx {
            life.hits += self.pending.hits;
            life.last_hit_seq = self.pending.last_seq;
        }
        life
    }

    /// The way the base replacement policy would evict from the set `addr`
    /// maps to. Invalid ways are preferred. SRRIP ages lines as a side
    /// effect (that *is* the SRRIP victim-search algorithm).
    #[inline]
    pub fn victim_way(&mut self, addr: u64) -> usize {
        self.flush_pending();
        let set = self.set_of(addr);
        let base = set * self.ways;
        // Prefer the first invalid way.
        let invalid = !self.cols.valid[set] & self.way_mask;
        if invalid != 0 {
            return invalid.trailing_zeros() as usize;
        }
        match self.replacement {
            ReplacementKind::Lru | ReplacementKind::Fifo => {
                // First-encountered minimum stamp, as before.
                let stamps = &self.cols.stamps[base..base + self.ways];
                let mut best = 0;
                let mut best_stamp = u64::MAX;
                for (way, &stamp) in stamps.iter().enumerate() {
                    if stamp < best_stamp {
                        best_stamp = stamp;
                        best = way;
                    }
                }
                best
            }
            ReplacementKind::Srrip => loop {
                let rrpvs = &mut self.cols.rrpvs[base..base + self.ways];
                if let Some(way) = rrpvs.iter().position(|&r| r >= RRPV_MAX) {
                    return way;
                }
                for rrpv in rrpvs {
                    *rrpv += 1;
                }
            },
        }
    }

    /// Inserts `payload` under `tag` into the given `way` of the set `addr`
    /// maps to, returning the previous contents if the way was valid.
    #[inline]
    pub fn fill_way(
        &mut self,
        addr: u64,
        way: usize,
        tag: u64,
        payload: P,
        priority: InsertPriority,
    ) -> Option<Evicted<P>> {
        assert!(way < self.ways, "way {way} out of range (ways = {})", self.ways);
        self.flush_pending();
        self.tick += 1;
        let tick = self.tick;
        let seq = self.seq;
        let set = self.set_of(addr);
        let idx = set * self.ways + way;
        let way_bit = 1u64 << way;
        let evicted = if self.cols.valid[set] & way_bit != 0 {
            Some(Evicted {
                tag: self.cols.tags[idx],
                life: self.cols.lives[idx],
                payload: std::mem::replace(&mut self.cols.payloads[idx], payload),
            })
        } else {
            self.cols.payloads[idx] = payload;
            None
        };
        self.cols.valid[set] |= way_bit;
        self.cols.tags[idx] = tag;
        self.cols.lives[idx] = LineLife { fill_seq: seq, last_hit_seq: seq, hits: 0 };
        match self.replacement {
            ReplacementKind::Lru => {
                self.cols.stamps[idx] = match priority {
                    InsertPriority::Normal | InsertPriority::High => tick,
                    InsertPriority::Distant => 0,
                };
            }
            ReplacementKind::Fifo => self.cols.stamps[idx] = tick,
            ReplacementKind::Srrip => {
                self.cols.rrpvs[idx] = match priority {
                    InsertPriority::Normal => RRPV_LONG,
                    InsertPriority::Distant => RRPV_MAX,
                    InsertPriority::High => 0,
                };
            }
        }
        evicted
    }

    /// Inserts via the base replacement policy's victim choice.
    #[inline]
    pub fn fill(
        &mut self,
        addr: u64,
        tag: u64,
        payload: P,
        priority: InsertPriority,
    ) -> Option<Evicted<P>> {
        let way = self.victim_way(addr);
        self.fill_way(addr, way, tag, payload, priority)
    }

    /// Invalidates `tag` if present, returning the evicted contents
    /// (used for LLC-inclusion back-invalidation).
    pub fn invalidate(&mut self, addr: u64, tag: u64) -> Option<Evicted<P>>
    where
        P: Default,
    {
        let way = self.peek(addr, tag)?;
        self.flush_pending();
        let set = self.set_of(addr);
        invariant!(way < self.ways, "peek returned way {way} beyond {}-way set", self.ways);
        let idx = set * self.ways + way;
        self.cols.valid[set] &= !(1u64 << way);
        Some(Evicted {
            tag: self.cols.tags[idx],
            life: self.cols.lives[idx],
            payload: std::mem::take(&mut self.cols.payloads[idx]),
        })
    }

    /// Whether every way of the set `addr` maps to holds valid contents.
    #[inline]
    pub fn set_full(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        self.cols.valid[set] == self.way_mask
    }

    /// Runs `f` over [`PolicyLineView`]s of all *valid* lines in the set
    /// `addr` maps to. `hit_way` marks which view (if any) corresponds to
    /// the line the current lookup hit.
    ///
    /// The views carry a *copy* of each line's policy state; whatever the
    /// hook leaves in [`PolicyLineView::state`] is written back to the
    /// line afterwards. The view buffer is owned by the array and reused
    /// across calls — building views allocates nothing in steady state.
    #[inline]
    pub fn with_set_views<R>(
        &mut self,
        addr: u64,
        hit_way: Option<usize>,
        f: impl FnOnce(&mut [PolicyLineView]) -> R,
    ) -> R
    where
        P: HasPolicyState,
    {
        self.flush_pending();
        let set = self.set_of(addr);
        let base = set * self.ways;
        self.scratch.clear();
        let mut mask = self.cols.valid[set];
        while mask != 0 {
            let way = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let idx = base + way;
            self.scratch.push(PolicyLineView {
                way,
                tag: self.cols.tags[idx],
                hits: self.cols.lives[idx].hits,
                is_hit: hit_way == Some(way),
                state: *self.cols.payloads[idx].policy_state_mut(),
            });
        }
        let result = f(&mut self.scratch);
        for view in &self.scratch {
            invariant!(
                view.way < self.ways,
                "policy moved a view beyond the {}-way set",
                self.ways
            );
            *self.cols.payloads[base + view.way].policy_state_mut() = view.state;
        }
        result
    }

    /// Iterates over all valid lines (used by the deadness sampler's final
    /// flush and by tests), with any buffered hit-promotion merged into
    /// the yielded lifetime stats.
    pub fn iter_valid(&self) -> impl Iterator<Item = LineRef<'_, P>> {
        self.cols.iter_valid_pending(self.pending.idx, self.pending.hits, self.pending.last_seq)
    }

    /// Number of currently valid lines.
    pub fn valid_count(&self) -> usize {
        self.cols.valid_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sa(sets: usize, ways: usize, kind: ReplacementKind) -> SetAssoc<u32> {
        SetAssoc::new(sets, ways, kind)
    }

    #[test]
    fn prefetch_set_is_state_free() {
        // Hints must not perturb any observable state, for any address
        // (set_of masks the index, so out-of-range addresses are fine).
        let mut s = sa(4, 2, ReplacementKind::Lru);
        s.fill(5, 5, 99, InsertPriority::Normal);
        let seq = s.seq();
        for addr in [0, 5, u64::MAX] {
            s.prefetch_set(addr);
        }
        assert_eq!(s.seq(), seq);
        let way = s.lookup(5, 5).expect("filled tag still resident");
        assert_eq!(*s.payload(5, way), 99);
    }

    #[test]
    fn miss_then_hit() {
        let mut s = sa(4, 2, ReplacementKind::Lru);
        assert_eq!(s.lookup(5, 5), None);
        assert!(s.fill(5, 5, 99, InsertPriority::Normal).is_none());
        let way = s.lookup(5, 5).expect("filled tag must hit");
        assert_eq!(*s.payload(5, way), 99);
        assert_eq!(s.life_of(5, way).hits, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut s = sa(1, 2, ReplacementKind::Lru);
        s.fill(0, 10, 0, InsertPriority::Normal);
        s.fill(0, 20, 0, InsertPriority::Normal);
        // Touch 10 so 20 becomes LRU.
        assert!(s.lookup(0, 10).is_some());
        let evicted = s.fill(0, 30, 0, InsertPriority::Normal).expect("set full");
        assert_eq!(evicted.tag, 20);
        assert!(s.peek(0, 10).is_some());
        assert!(s.peek(0, 30).is_some());
    }

    #[test]
    fn distant_insertion_is_first_victim_under_lru() {
        let mut s = sa(1, 4, ReplacementKind::Lru);
        for tag in 1..=3 {
            s.fill(0, tag, 0, InsertPriority::Normal);
        }
        s.fill(0, 4, 0, InsertPriority::Distant);
        let evicted = s.fill(0, 5, 0, InsertPriority::Normal).expect("set full");
        assert_eq!(evicted.tag, 4, "distant-inserted line must be evicted first");
    }

    #[test]
    fn srrip_victimizes_rrpv_max() {
        let mut s = sa(1, 2, ReplacementKind::Srrip);
        s.fill(0, 1, 0, InsertPriority::Normal); // rrpv 2
        s.fill(0, 2, 0, InsertPriority::Normal); // rrpv 2
        assert!(s.lookup(0, 1).is_some()); // rrpv -> 0
                                           // Victim search ages both to find an RRPV_MAX line; tag 2 ages
                                           // 2 -> 3 first.
        let evicted = s.fill(0, 3, 0, InsertPriority::Normal).unwrap();
        assert_eq!(evicted.tag, 2);
        assert!(s.peek(0, 1).is_some());
    }

    #[test]
    fn srrip_distant_insert_is_immediate_victim() {
        let mut s = sa(1, 2, ReplacementKind::Srrip);
        s.fill(0, 1, 0, InsertPriority::Normal);
        s.fill(0, 2, 0, InsertPriority::Distant); // rrpv 3
        let evicted = s.fill(0, 3, 0, InsertPriority::Normal).unwrap();
        assert_eq!(evicted.tag, 2);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut s = sa(1, 2, ReplacementKind::Fifo);
        s.fill(0, 1, 0, InsertPriority::Normal);
        s.fill(0, 2, 0, InsertPriority::Normal);
        assert!(s.lookup(0, 1).is_some()); // does not refresh under FIFO
        let evicted = s.fill(0, 3, 0, InsertPriority::Normal).unwrap();
        assert_eq!(evicted.tag, 1, "FIFO evicts oldest insertion regardless of hits");
    }

    #[test]
    fn invalidate_removes() {
        let mut s = sa(2, 2, ReplacementKind::Lru);
        s.fill(7, 7, 42, InsertPriority::Normal);
        let gone = s.invalidate(7, 7).expect("present");
        assert_eq!(gone.payload, 42);
        assert!(s.peek(7, 7).is_none());
        assert!(s.invalidate(7, 7).is_none());
        assert_eq!(s.valid_count(), 0);
    }

    #[test]
    fn stale_tag_in_invalid_way_never_hits() {
        let mut s = sa(1, 2, ReplacementKind::Lru);
        s.fill(0, 9, 1, InsertPriority::Normal);
        s.invalidate(0, 9);
        // The tag column still holds 9, but the validity mask excludes it.
        assert_eq!(s.lookup(0, 9), None);
        assert_eq!(s.peek(0, 9), None);
        // Refilling lands in the freed way (first invalid way preferred).
        assert!(s.fill(0, 8, 2, InsertPriority::Normal).is_none());
    }

    #[test]
    fn lifetime_stats_track_hits() {
        let mut s = sa(1, 1, ReplacementKind::Lru);
        s.lookup(0, 9); // seq 1, miss
        s.fill(0, 9, 0, InsertPriority::Normal); // fill_seq = 1
        s.lookup(0, 9); // seq 2, hit
        s.lookup(0, 9); // seq 3, hit
        s.lookup(0, 8); // seq 4, miss
        let evicted = s.fill(0, 8, 0, InsertPriority::Normal).unwrap();
        assert_eq!(evicted.life.fill_seq, 1);
        assert_eq!(evicted.life.last_hit_seq, 3);
        assert_eq!(evicted.life.hits, 2);
    }

    #[test]
    fn doa_lifetime() {
        let mut s = sa(1, 1, ReplacementKind::Lru);
        s.lookup(0, 9);
        s.fill(0, 9, 0, InsertPriority::Normal);
        s.lookup(0, 8);
        let evicted = s.fill(0, 8, 0, InsertPriority::Normal).unwrap();
        assert_eq!(evicted.life.hits, 0, "never-hit line is DOA");
        assert_eq!(evicted.life.last_hit_seq, evicted.life.fill_seq);
    }

    #[test]
    fn modulo_set_indexing_handles_non_power_of_two() {
        let s: SetAssoc<u32> = SetAssoc::new(3072, 16, ReplacementKind::Lru);
        assert_eq!(s.set_of(3072), 0);
        assert_eq!(s.set_of(3073), 1);
    }

    #[test]
    fn pow2_set_indexing_matches_modulo() {
        let s: SetAssoc<u32> = SetAssoc::new(128, 8, ReplacementKind::Lru);
        for addr in [0u64, 1, 127, 128, 129, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(s.set_of(addr), (addr % 128) as usize, "addr {addr:#x}");
        }
    }

    #[test]
    fn set_view_state_written_back() {
        #[derive(Clone, Copy, Debug, Default)]
        struct S(u32);
        impl HasPolicyState for S {
            fn policy_state_mut(&mut self) -> &mut u32 {
                &mut self.0
            }
        }
        let mut s: SetAssoc<S> = SetAssoc::new(1, 2, ReplacementKind::Lru);
        s.fill(0, 1, S(5), InsertPriority::Normal);
        s.fill(0, 2, S(6), InsertPriority::Normal);
        let seen = s.with_set_views(0, Some(1), |views| {
            views[0].state += 10;
            views[1].state += 10;
            (views[0].is_hit, views[1].is_hit, views.len())
        });
        assert_eq!(seen, (false, true, 2));
        assert_eq!(s.payload(0, 0).0, 15, "hook state must be written back");
        assert_eq!(s.payload(0, 1).0, 16);
    }

    /// peek + commit_hit / commit_miss must be indistinguishable from
    /// lookup, for every replacement kind, across a mixed hit/miss
    /// sequence — the contract the replay fast path rests on.
    #[test]
    fn probe_then_commit_matches_lookup() {
        for kind in [ReplacementKind::Lru, ReplacementKind::Srrip, ReplacementKind::Fifo] {
            let mut via_lookup = sa(4, 2, kind);
            let mut via_commit = sa(4, 2, kind);
            for s in [&mut via_lookup, &mut via_commit] {
                s.fill(1, 1, 10, InsertPriority::Normal);
                s.fill(1, 5, 11, InsertPriority::Normal);
                s.fill(2, 2, 12, InsertPriority::Normal);
            }
            for addr in [1u64, 5, 2, 3, 1, 1, 5, 9, 2] {
                let want = via_lookup.lookup(addr, addr);
                match via_commit.peek(addr, addr) {
                    Some(way) => via_commit.commit_hit(addr, way),
                    None => via_commit.commit_miss(),
                }
                assert_eq!(via_commit.peek(addr, addr), want, "{kind:?} addr {addr}");
            }
            assert_eq!(via_commit.seq(), via_lookup.seq(), "{kind:?} lookup clocks");
            // Same replacement order afterwards: evictions must agree.
            let a = via_lookup.fill(1, 7, 0, InsertPriority::Normal).expect("set full");
            let b = via_commit.fill(1, 7, 0, InsertPriority::Normal).expect("set full");
            assert_eq!(a.tag, b.tag, "{kind:?} victim choice");
            assert_eq!(a.life, b.life, "{kind:?} evicted lifetime stats");
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_geometry_rejected() {
        let _ = sa(0, 1, ReplacementKind::Lru);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fill_way_bounds_checked() {
        let mut s = sa(1, 1, ReplacementKind::Lru);
        s.fill_way(0, 1, 0, 0, InsertPriority::Normal);
    }
}
