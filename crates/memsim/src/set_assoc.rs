//! A generic set-associative array with pluggable replacement.
//!
//! Caches, TLBs and the (fully-associative) page-walk caches are all
//! instances of [`SetAssoc`] with different payload types. Replacement is
//! selected by [`ReplacementKind`]: LRU keeps a per-line recency stamp,
//! SRRIP a 2-bit re-reference prediction value, FIFO an insertion stamp.
//!
//! Lifetime statistics needed by the paper's deadness characterization
//! (fill time, last-hit time, hit count) are tracked per line in
//! [`LineLife`].

use crate::policy::PolicyLineView;
use dpc_types::{invariant, ReplacementKind};

/// Payloads that expose 32 bits of policy scratch state to the
/// [`policy`](crate::policy) hooks.
pub trait HasPolicyState {
    /// Mutable access to the per-line policy state.
    fn policy_state_mut(&mut self) -> &mut u32;
}

/// Maximum RRPV for 2-bit SRRIP (2^2 - 1).
pub const RRPV_MAX: u8 = 3;
/// SRRIP "long re-reference interval" insertion value (RRPV_MAX - 1).
pub const RRPV_LONG: u8 = 2;

/// Where a newly inserted line lands in the replacement order.
///
/// Mirrors how the paper adapts SHiP to both base policies: under LRU, a
/// distant prediction inserts at the LRU position; under SRRIP it inserts
/// with RRPV = 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum InsertPriority {
    /// Most-recently-used position (LRU base) / RRPV = 2 (SRRIP base) — the
    /// default insertion of the respective policy.
    #[default]
    Normal,
    /// LRU position (LRU base) / RRPV = 3 (SRRIP base): predicted to be
    /// re-referenced in the distant future.
    Distant,
    /// MRU position / RRPV = 0: predicted imminent reuse.
    High,
}

/// Per-line lifetime statistics, in units of the owning structure's lookup
/// sequence numbers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LineLife {
    /// Lookup sequence number at fill.
    pub fill_seq: u64,
    /// Lookup sequence number of the most recent hit (equals `fill_seq`
    /// until the first hit).
    pub last_hit_seq: u64,
    /// Number of hits the line has received since fill.
    pub hits: u64,
}

/// One way of one set.
#[derive(Clone, Debug)]
pub struct Line<P> {
    valid: bool,
    tag: u64,
    stamp: u64,
    rrpv: u8,
    life: LineLife,
    /// Policy- and structure-specific payload (TLB translation + metadata,
    /// cache block flags, ...).
    pub payload: P,
}

impl<P: Default> Line<P> {
    fn empty() -> Self {
        Line {
            valid: false,
            tag: 0,
            stamp: 0,
            rrpv: RRPV_MAX,
            life: LineLife::default(),
            payload: P::default(),
        }
    }
}

impl<P> Line<P> {
    /// Whether the line holds valid contents.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// The line's tag (meaningless when invalid).
    #[inline]
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Lifetime statistics of the current contents.
    #[inline]
    pub fn life(&self) -> LineLife {
        self.life
    }
}

/// Contents evicted by an insertion.
#[derive(Clone, Debug)]
pub struct Evicted<P> {
    /// Tag of the evicted line.
    pub tag: u64,
    /// Lifetime statistics accumulated during the evictee's stay.
    pub life: LineLife,
    /// The evicted payload.
    pub payload: P,
}

/// A set-associative array of `sets × ways` lines holding payload `P`.
#[derive(Clone, Debug)]
pub struct SetAssoc<P> {
    sets: usize,
    ways: usize,
    replacement: ReplacementKind,
    lines: Vec<Line<P>>,
    /// Monotonic recency clock (advanced on every touch/insert).
    tick: u64,
    /// Monotonic lookup sequence (advanced on every lookup), used for
    /// lifetime statistics.
    seq: u64,
}

impl<P: Default> SetAssoc<P> {
    /// Creates an array with `sets` sets of `ways` ways each.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize, replacement: ReplacementKind) -> Self {
        assert!(sets > 0 && ways > 0, "SetAssoc requires nonzero geometry");
        let mut lines = Vec::with_capacity(sets * ways);
        lines.resize_with(sets * ways, Line::empty);
        SetAssoc { sets, ways, replacement, lines, tick: 0, seq: 0 }
    }
}

impl<P> SetAssoc<P> {
    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    #[inline]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Set index for a line address (block address, VPN, ...): modulo the
    /// set count, which also handles non-power-of-two organizations such as
    /// the paper's 3 MB LLC.
    #[inline]
    pub fn set_of(&self, addr: u64) -> usize {
        (addr % self.sets as u64) as usize
    }

    /// Current lookup sequence number (the structure-local clock used by
    /// [`LineLife`]).
    #[inline]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    #[inline]
    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        let base = set * self.ways;
        base..base + self.ways
    }

    /// Looks up `tag` in its set. On a hit, advances the lookup clock,
    /// updates recency and lifetime stats, and returns the way index.
    /// On a miss, only the lookup clock advances.
    pub fn lookup(&mut self, addr: u64, tag: u64) -> Option<usize> {
        self.seq += 1;
        let set = self.set_of(addr);
        let range = self.set_range(set);
        let seq = self.seq;
        for (way, idx) in range.clone().enumerate() {
            if self.lines[idx].valid && self.lines[idx].tag == tag {
                self.tick += 1;
                let tick = self.tick;
                let line = &mut self.lines[idx];
                line.life.hits += 1;
                line.life.last_hit_seq = seq;
                match self.replacement {
                    ReplacementKind::Lru => line.stamp = tick,
                    ReplacementKind::Srrip => line.rrpv = 0,
                    ReplacementKind::Fifo => {}
                }
                return Some(way);
            }
        }
        None
    }

    /// Probes for `tag` without advancing any clock or updating recency
    /// (used by inclusion checks and tests).
    pub fn peek(&self, addr: u64, tag: u64) -> Option<usize> {
        let set = self.set_of(addr);
        self.set_range(set)
            .enumerate()
            .find(|&(_, idx)| self.lines[idx].valid && self.lines[idx].tag == tag)
            .map(|(way, _)| way)
    }

    /// Immutable view of a way in the set that `addr` maps to.
    pub fn line(&self, addr: u64, way: usize) -> &Line<P> {
        let set = self.set_of(addr);
        invariant!(way < self.ways, "way {way} out of range for {}-way array", self.ways);
        &self.lines[set * self.ways + way]
    }

    /// Mutable view of a way in the set that `addr` maps to.
    pub fn line_mut(&mut self, addr: u64, way: usize) -> &mut Line<P> {
        let set = self.set_of(addr);
        invariant!(way < self.ways, "way {way} out of range for {}-way array", self.ways);
        &mut self.lines[set * self.ways + way]
    }

    /// The way the base replacement policy would evict from the set `addr`
    /// maps to. Invalid ways are preferred. SRRIP ages lines as a side
    /// effect (that *is* the SRRIP victim-search algorithm).
    pub fn victim_way(&mut self, addr: u64) -> usize {
        let set = self.set_of(addr);
        let range = self.set_range(set);
        // Prefer an invalid way.
        for (way, idx) in range.clone().enumerate() {
            if !self.lines[idx].valid {
                return way;
            }
        }
        match self.replacement {
            ReplacementKind::Lru | ReplacementKind::Fifo => {
                let mut best = 0;
                let mut best_stamp = u64::MAX;
                for (way, idx) in range.enumerate() {
                    if self.lines[idx].stamp < best_stamp {
                        best_stamp = self.lines[idx].stamp;
                        best = way;
                    }
                }
                best
            }
            ReplacementKind::Srrip => loop {
                for (way, idx) in range.clone().enumerate() {
                    if self.lines[idx].rrpv >= RRPV_MAX {
                        return way;
                    }
                }
                for idx in range.clone() {
                    self.lines[idx].rrpv += 1;
                }
            },
        }
    }

    /// Inserts `payload` under `tag` into the given `way` of the set `addr`
    /// maps to, returning the previous contents if the way was valid.
    pub fn fill_way(
        &mut self,
        addr: u64,
        way: usize,
        tag: u64,
        payload: P,
        priority: InsertPriority,
    ) -> Option<Evicted<P>> {
        assert!(way < self.ways, "way {way} out of range (ways = {})", self.ways);
        self.tick += 1;
        let tick = self.tick;
        let seq = self.seq;
        let set = self.set_of(addr);
        let line = &mut self.lines[set * self.ways + way];
        let evicted = if line.valid {
            Some(Evicted {
                tag: line.tag,
                life: line.life,
                payload: std::mem::replace(&mut line.payload, payload),
            })
        } else {
            line.payload = payload;
            None
        };
        line.valid = true;
        line.tag = tag;
        line.life = LineLife { fill_seq: seq, last_hit_seq: seq, hits: 0 };
        match self.replacement {
            ReplacementKind::Lru => {
                line.stamp = match priority {
                    InsertPriority::Normal | InsertPriority::High => tick,
                    InsertPriority::Distant => 0,
                };
            }
            ReplacementKind::Fifo => line.stamp = tick,
            ReplacementKind::Srrip => {
                line.rrpv = match priority {
                    InsertPriority::Normal => RRPV_LONG,
                    InsertPriority::Distant => RRPV_MAX,
                    InsertPriority::High => 0,
                };
            }
        }
        evicted
    }

    /// Inserts via the base replacement policy's victim choice.
    pub fn fill(
        &mut self,
        addr: u64,
        tag: u64,
        payload: P,
        priority: InsertPriority,
    ) -> Option<Evicted<P>> {
        let way = self.victim_way(addr);
        self.fill_way(addr, way, tag, payload, priority)
    }

    /// Invalidates `tag` if present, returning the evicted contents
    /// (used for LLC-inclusion back-invalidation).
    pub fn invalidate(&mut self, addr: u64, tag: u64) -> Option<Evicted<P>>
    where
        P: Default,
    {
        let way = self.peek(addr, tag)?;
        let set = self.set_of(addr);
        invariant!(way < self.ways, "peek returned way {way} beyond {}-way set", self.ways);
        let line = &mut self.lines[set * self.ways + way];
        line.valid = false;
        Some(Evicted { tag: line.tag, life: line.life, payload: std::mem::take(&mut line.payload) })
    }

    /// Whether every way of the set `addr` maps to holds valid contents.
    pub fn set_full(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        self.lines[self.set_range(set)].iter().all(|line| line.valid)
    }

    /// Runs `f` over [`PolicyLineView`]s of all *valid* lines in the set
    /// `addr` maps to. `hit_way` marks which view (if any) corresponds to
    /// the line the current lookup hit.
    pub fn with_set_views<R>(
        &mut self,
        addr: u64,
        hit_way: Option<usize>,
        f: impl FnOnce(&mut [PolicyLineView<'_>]) -> R,
    ) -> R
    where
        P: HasPolicyState,
    {
        let set = self.set_of(addr);
        let range = self.set_range(set);
        let mut views: Vec<PolicyLineView<'_>> = Vec::with_capacity(self.ways);
        for (way, line) in self.lines[range].iter_mut().enumerate() {
            if line.valid {
                views.push(PolicyLineView {
                    way,
                    tag: line.tag,
                    hits: line.life.hits,
                    is_hit: hit_way == Some(way),
                    state: line.payload.policy_state_mut(),
                });
            }
        }
        f(&mut views)
    }

    /// Iterates over all valid lines (used by the deadness sampler's final
    /// flush and by tests).
    pub fn iter_valid(&self) -> impl Iterator<Item = &Line<P>> {
        self.lines.iter().filter(|l| l.valid)
    }

    /// Number of currently valid lines.
    pub fn valid_count(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sa(sets: usize, ways: usize, kind: ReplacementKind) -> SetAssoc<u32> {
        SetAssoc::new(sets, ways, kind)
    }

    #[test]
    fn miss_then_hit() {
        let mut s = sa(4, 2, ReplacementKind::Lru);
        assert_eq!(s.lookup(5, 5), None);
        assert!(s.fill(5, 5, 99, InsertPriority::Normal).is_none());
        let way = s.lookup(5, 5).expect("filled tag must hit");
        assert_eq!(s.line(5, way).payload, 99);
        assert_eq!(s.line(5, way).life().hits, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut s = sa(1, 2, ReplacementKind::Lru);
        s.fill(0, 10, 0, InsertPriority::Normal);
        s.fill(0, 20, 0, InsertPriority::Normal);
        // Touch 10 so 20 becomes LRU.
        assert!(s.lookup(0, 10).is_some());
        let evicted = s.fill(0, 30, 0, InsertPriority::Normal).expect("set full");
        assert_eq!(evicted.tag, 20);
        assert!(s.peek(0, 10).is_some());
        assert!(s.peek(0, 30).is_some());
    }

    #[test]
    fn distant_insertion_is_first_victim_under_lru() {
        let mut s = sa(1, 4, ReplacementKind::Lru);
        for tag in 1..=3 {
            s.fill(0, tag, 0, InsertPriority::Normal);
        }
        s.fill(0, 4, 0, InsertPriority::Distant);
        let evicted = s.fill(0, 5, 0, InsertPriority::Normal).expect("set full");
        assert_eq!(evicted.tag, 4, "distant-inserted line must be evicted first");
    }

    #[test]
    fn srrip_victimizes_rrpv_max() {
        let mut s = sa(1, 2, ReplacementKind::Srrip);
        s.fill(0, 1, 0, InsertPriority::Normal); // rrpv 2
        s.fill(0, 2, 0, InsertPriority::Normal); // rrpv 2
        assert!(s.lookup(0, 1).is_some()); // rrpv -> 0
                                           // Victim search ages both to find an RRPV_MAX line; tag 2 ages
                                           // 2 -> 3 first.
        let evicted = s.fill(0, 3, 0, InsertPriority::Normal).unwrap();
        assert_eq!(evicted.tag, 2);
        assert!(s.peek(0, 1).is_some());
    }

    #[test]
    fn srrip_distant_insert_is_immediate_victim() {
        let mut s = sa(1, 2, ReplacementKind::Srrip);
        s.fill(0, 1, 0, InsertPriority::Normal);
        s.fill(0, 2, 0, InsertPriority::Distant); // rrpv 3
        let evicted = s.fill(0, 3, 0, InsertPriority::Normal).unwrap();
        assert_eq!(evicted.tag, 2);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut s = sa(1, 2, ReplacementKind::Fifo);
        s.fill(0, 1, 0, InsertPriority::Normal);
        s.fill(0, 2, 0, InsertPriority::Normal);
        assert!(s.lookup(0, 1).is_some()); // does not refresh under FIFO
        let evicted = s.fill(0, 3, 0, InsertPriority::Normal).unwrap();
        assert_eq!(evicted.tag, 1, "FIFO evicts oldest insertion regardless of hits");
    }

    #[test]
    fn invalidate_removes() {
        let mut s = sa(2, 2, ReplacementKind::Lru);
        s.fill(7, 7, 42, InsertPriority::Normal);
        let gone = s.invalidate(7, 7).expect("present");
        assert_eq!(gone.payload, 42);
        assert!(s.peek(7, 7).is_none());
        assert!(s.invalidate(7, 7).is_none());
        assert_eq!(s.valid_count(), 0);
    }

    #[test]
    fn lifetime_stats_track_hits() {
        let mut s = sa(1, 1, ReplacementKind::Lru);
        s.lookup(0, 9); // seq 1, miss
        s.fill(0, 9, 0, InsertPriority::Normal); // fill_seq = 1
        s.lookup(0, 9); // seq 2, hit
        s.lookup(0, 9); // seq 3, hit
        s.lookup(0, 8); // seq 4, miss
        let evicted = s.fill(0, 8, 0, InsertPriority::Normal).unwrap();
        assert_eq!(evicted.life.fill_seq, 1);
        assert_eq!(evicted.life.last_hit_seq, 3);
        assert_eq!(evicted.life.hits, 2);
    }

    #[test]
    fn doa_lifetime() {
        let mut s = sa(1, 1, ReplacementKind::Lru);
        s.lookup(0, 9);
        s.fill(0, 9, 0, InsertPriority::Normal);
        s.lookup(0, 8);
        let evicted = s.fill(0, 8, 0, InsertPriority::Normal).unwrap();
        assert_eq!(evicted.life.hits, 0, "never-hit line is DOA");
        assert_eq!(evicted.life.last_hit_seq, evicted.life.fill_seq);
    }

    #[test]
    fn modulo_set_indexing_handles_non_power_of_two() {
        let s: SetAssoc<u32> = SetAssoc::new(3072, 16, ReplacementKind::Lru);
        assert_eq!(s.set_of(3072), 0);
        assert_eq!(s.set_of(3073), 1);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_geometry_rejected() {
        let _ = sa(0, 1, ReplacementKind::Lru);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fill_way_bounds_checked() {
        let mut s = sa(1, 1, ReplacementKind::Lru);
        s.fill_way(0, 1, 0, 0, InsertPriority::Normal);
    }
}
