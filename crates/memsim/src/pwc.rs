//! Page-walk caches (PWCs).
//!
//! Three fully-associative caches of partial translations (paper Table I:
//! 4/8/16 entries at 1/1/2 cycles). Level `i` caches the page-table node a
//! walk can resume from, skipping `3 - i` of the four PTE loads:
//!
//! * **PWC L1** (index 0) tags `vpn >> 9` and holds the leaf PT node —
//!   a hit leaves 1 PTE load;
//! * **PWC L2** (index 1) tags `vpn >> 18` and holds the PD node —
//!   2 PTE loads;
//! * **PWC L3** (index 2) tags `vpn >> 27` and holds the PDPT node —
//!   3 PTE loads.

use crate::set_assoc::{InsertPriority, SetAssoc};
use dpc_types::{Pfn, PwcConfig, ReplacementKind, Vpn};

/// Tag shift applied to the VPN for PWC level `i` (0-based).
const LEVEL_SHIFT: [u32; 3] = [9, 18, 27];

/// Result of probing the PWC hierarchy. Produced side-effect-free by
/// [`PwcSet::probe`] / [`PwcSet::probe_from`]; pass it back to
/// [`PwcSet::commit_probe`] to apply the counters and recency updates the
/// probe classified.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PwcProbe {
    /// Which PWC level hit (0 is closest to the leaf), or `None` for a
    /// full walk from the root.
    pub hit_level: Option<usize>,
    /// Node frame to resume the walk from (meaningful only on a hit).
    pub resume_node: Pfn,
    /// Cycles spent probing.
    pub latency: u64,
    /// Number of PTE loads the walk still needs (1..=4).
    pub remaining_loads: u32,
    /// Way of the hit inside its level (meaningful only on a hit).
    hit_way: usize,
    /// The level the probe started from, so the commit replays the same
    /// levels.
    min_level: usize,
}

/// The three-level page-walk cache hierarchy.
#[derive(Debug)]
pub struct PwcSet {
    levels: [SetAssoc<Pfn>; 3],
    latency: [u32; 3],
    hits: [u64; 3],
    probes: u64,
}

impl PwcSet {
    /// Builds the PWC hierarchy from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if any level has zero entries.
    pub fn new(config: &PwcConfig) -> Self {
        let levels = [
            SetAssoc::new(1, config.entries[0] as usize, ReplacementKind::Lru),
            SetAssoc::new(1, config.entries[1] as usize, ReplacementKind::Lru),
            SetAssoc::new(1, config.entries[2] as usize, ReplacementKind::Lru),
        ];
        PwcSet { levels, latency: config.latency, hits: [0; 3], probes: 0 }
    }

    /// Probes the PWCs closest-to-leaf first, accumulating probe latency,
    /// exactly like a hardware walker searching for the longest cached
    /// prefix. Side-effect-free: counters and recency move only when the
    /// result is passed to [`commit_probe`](Self::commit_probe).
    pub fn probe(&self, vpn: Vpn) -> PwcProbe {
        self.probe_from(vpn, 0)
    }

    /// Probes only the PWC levels at or above `min_level` — the walker's
    /// entry point for huge mappings, whose walks terminate at the PDE
    /// (`min_level == 1`, 2 MB) or PDPTE (`min_level == 2`, 1 GB) and
    /// therefore never consult the levels below. Skipping those levels
    /// also sidesteps stale sub-terminal entries left behind when a
    /// region is promoted.
    ///
    /// On a hit at level `L`, `remaining_loads` is `L + 1 - min_level`;
    /// on a full miss it is `4 - min_level` (the walk's total PTE loads).
    ///
    /// Side-effect-free: the classification half of the probe-then-commit
    /// split. [`commit_probe`](Self::commit_probe) applies the state
    /// transitions.
    pub fn probe_from(&self, vpn: Vpn, min_level: usize) -> PwcProbe {
        let mut latency = 0u64;
        for (level, &shift) in LEVEL_SHIFT.iter().enumerate().skip(min_level) {
            latency += u64::from(self.latency[level]);
            let tag = vpn.raw() >> shift;
            if let Some(way) = self.levels[level].peek(tag, tag) {
                let node = *self.levels[level].payload(tag, way);
                return PwcProbe {
                    hit_level: Some(level),
                    resume_node: node,
                    latency,
                    remaining_loads: (level + 1 - min_level) as u32,
                    hit_way: way,
                    min_level,
                };
            }
        }
        PwcProbe {
            hit_level: None,
            resume_node: Pfn::new(0),
            latency,
            remaining_loads: (4 - min_level) as u32,
            hit_way: 0,
            min_level,
        }
    }

    /// Commits a [`probe_from`](Self::probe_from) result exactly as the
    /// pre-split mutating probe did: the probe counter, then — for every
    /// level the probe visited — that level's lookup clock (a miss) or
    /// recency/lifetime/hit-counter update (the hit that ended the
    /// search). `probe` must come from this `vpn` with the PWCs
    /// unmodified in between.
    pub fn commit_probe(&mut self, vpn: Vpn, probe: &PwcProbe) {
        self.probes += 1;
        for (level, &shift) in LEVEL_SHIFT.iter().enumerate().skip(probe.min_level) {
            if probe.hit_level == Some(level) {
                let tag = vpn.raw() >> shift;
                self.levels[level].commit_hit(tag, probe.hit_way);
                self.hits[level] += 1;
                return;
            }
            self.levels[level].commit_miss();
        }
    }

    /// Installs the nodes discovered by a completed walk into every PWC
    /// level. `node_pfns[level]` is the node visited at radix level
    /// `level` (0 = leaf PT), as produced by
    /// [`WalkPath`](crate::page_table::WalkPath).
    pub fn fill(&mut self, vpn: Vpn, node_pfns: &[Pfn; 4]) {
        self.fill_from(vpn, node_pfns, 0);
    }

    /// Installs only the levels at or above `min_level` — a huge walk
    /// never visited the nodes below its terminal level, so it has
    /// nothing to install there (`node_pfns` holds `Pfn(0)` fillers).
    pub fn fill_from(&mut self, vpn: Vpn, node_pfns: &[Pfn; 4], min_level: usize) {
        for (level, &shift) in LEVEL_SHIFT.iter().enumerate().skip(min_level) {
            let tag = vpn.raw() >> shift;
            if self.levels[level].peek(tag, tag).is_none() {
                self.levels[level].fill(tag, tag, node_pfns[level], InsertPriority::Normal);
            }
        }
    }

    /// Hits per level so far.
    pub fn hits(&self) -> [u64; 3] {
        self.hits
    }

    /// Total probes so far.
    pub fn probes(&self) -> u64 {
        self.probes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_types::SystemConfig;

    fn pwc() -> PwcSet {
        PwcSet::new(&SystemConfig::paper_baseline().pwc)
    }

    #[test]
    fn cold_probe_misses_everywhere() {
        let p = pwc();
        let probe = p.probe(Vpn::new(0x1234));
        assert_eq!(probe.hit_level, None);
        assert_eq!(probe.remaining_loads, 4);
        // 1 + 1 + 2 cycles of probing.
        assert_eq!(probe.latency, 4);
    }

    #[test]
    fn fill_then_leaf_hit() {
        let mut p = pwc();
        let nodes = [Pfn::new(10), Pfn::new(11), Pfn::new(12), Pfn::new(13)];
        p.fill(Vpn::new(0x1234), &nodes);
        let probe = p.probe(Vpn::new(0x1234));
        assert_eq!(probe.hit_level, Some(0));
        assert_eq!(probe.resume_node, Pfn::new(10));
        assert_eq!(probe.remaining_loads, 1);
        assert_eq!(probe.latency, 1);
        assert_eq!(p.hits(), [0, 0, 0], "a probe alone moves no counters");
        p.commit_probe(Vpn::new(0x1234), &probe);
        assert_eq!(p.hits(), [1, 0, 0]);
        assert_eq!(p.probes(), 1);
    }

    /// Probing is pure: repeating it yields the identical classification
    /// and leaves every counter untouched.
    #[test]
    fn probe_is_side_effect_free() {
        let mut p = pwc();
        p.fill(Vpn::new(0x1234), &[Pfn::new(10), Pfn::new(11), Pfn::new(12), Pfn::new(13)]);
        let first = p.probe(Vpn::new(0x1234));
        let second = p.probe(Vpn::new(0x1234));
        assert_eq!(first, second);
        assert_eq!(p.hits(), [0, 0, 0]);
        assert_eq!(p.probes(), 0);
    }

    /// commit_probe must replay the recency update the pre-split mutating
    /// probe performed: a committed leaf hit becomes MRU and survives the
    /// fills that would otherwise evict it.
    #[test]
    fn commit_probe_replays_recency() {
        let mut p = pwc();
        // PWC L1 holds 4 entries; fill it, then re-reference the oldest.
        for i in 0..4u64 {
            p.fill(Vpn::new(i << 9), &[Pfn::new(i); 4]);
        }
        let probe = p.probe(Vpn::new(0));
        assert_eq!(probe.hit_level, Some(0));
        p.commit_probe(Vpn::new(0), &probe);
        // The next two distinct regions evict the two actual LRU entries,
        // not the freshly promoted one.
        p.fill(Vpn::new(4 << 9), &[Pfn::new(4); 4]);
        p.fill(Vpn::new(5 << 9), &[Pfn::new(5); 4]);
        assert_eq!(p.probe(Vpn::new(0)).hit_level, Some(0), "promoted entry must survive");
    }

    #[test]
    fn sibling_region_hits_higher_level() {
        let mut p = pwc();
        let nodes = [Pfn::new(10), Pfn::new(11), Pfn::new(12), Pfn::new(13)];
        p.fill(Vpn::new(0), &nodes);
        // Same PD region (shares vpn >> 18) but different PT region.
        let probe = p.probe(Vpn::new(1 << 9));
        assert_eq!(probe.hit_level, Some(1));
        assert_eq!(probe.resume_node, Pfn::new(11));
        assert_eq!(probe.remaining_loads, 2);
        assert_eq!(probe.latency, 2);
    }

    #[test]
    fn capacity_is_bounded_lru() {
        let mut p = pwc();
        // PWC L1 holds 4 entries; the 5th distinct PT region evicts the LRU.
        for i in 0..5u64 {
            p.fill(Vpn::new(i << 9), &[Pfn::new(i); 4]);
        }
        let probe = p.probe(Vpn::new(0)); // oldest PT region
        assert_ne!(probe.hit_level, Some(0), "LRU entry must have been evicted");
    }

    #[test]
    fn probe_from_skips_sub_terminal_levels() {
        let p = pwc();
        // Cold 2 MB probe: levels 1 and 2 only → 1 + 2 cycles, 3 loads.
        let probe = p.probe_from(Vpn::new(0x1234), 1);
        assert_eq!(probe.hit_level, None);
        assert_eq!(probe.remaining_loads, 3);
        assert_eq!(probe.latency, 3);
        // Cold 1 GB probe: level 2 only → 2 cycles, 2 loads.
        let probe = p.probe_from(Vpn::new(0x1234), 2);
        assert_eq!(probe.remaining_loads, 2);
        assert_eq!(probe.latency, 2);
    }

    #[test]
    fn fill_from_leaves_lower_levels_cold() {
        let mut p = pwc();
        let nodes = [Pfn::new(0), Pfn::new(21), Pfn::new(22), Pfn::new(23)];
        p.fill_from(Vpn::new(0x1234), &nodes, 1);
        // A warm 2 MB probe resumes from the PD node with one load left.
        let probe = p.probe_from(Vpn::new(0x1234), 1);
        assert_eq!(probe.hit_level, Some(1));
        assert_eq!(probe.resume_node, Pfn::new(21));
        assert_eq!(probe.remaining_loads, 1);
        assert_eq!(probe.latency, 1);
        // Level 0 was never filled: a 4 KB probe of the same VPN must not
        // see a stale leaf entry.
        let probe = p.probe(Vpn::new(0x1234));
        assert_ne!(probe.hit_level, Some(0));
    }

    #[test]
    fn probes_counted() {
        let mut p = pwc();
        for vpn in [Vpn::new(1), Vpn::new(2)] {
            let probe = p.probe(vpn);
            p.commit_probe(vpn, &probe);
        }
        assert_eq!(p.probes(), 2);
    }
}
