//! Hook traits through which content-management policies (dpPred, cbPred,
//! SHiP, AIP, the oracle, ...) attach to the last-level TLB and the LLC.
//!
//! The structures own their arrays and statistics; a policy only observes
//! lookups/fills/evictions and answers three questions:
//!
//! 1. *Should this fill be bypassed?* ([`LltPolicy::on_fill`],
//!    [`LlcPolicy::on_fill`])
//! 2. *Where should an allocated entry land in the replacement order?*
//!    (the [`InsertPriority`] inside the fill decision — how SHiP is adapted)
//! 3. *Is there a preferred victim?* (`pick_victim` — how AIP prioritizes
//!    predicted-dead entries)
//!
//! Each entry carries 32 bits of opaque policy scratch state (`state`),
//! enough for every predictor in the paper (dpPred stores a 6-bit PC hash;
//! AIP stores a hashed PC, an event counter and a learned threshold; SHiP a
//! signature and an outcome bit; cbPred a DP bit).
//!
//! The cross-predictor channel of the paper — *"when the dpPred in the LLT
//! predicts a DOA page, the corresponding PFN is sent to all LLC slices"* —
//! is wired by the [`System`](crate::system::System): a
//! [`PageFillDecision::Bypass`] triggers [`LlcPolicy::note_doa_page`].

pub use crate::set_assoc::InsertPriority;
use crate::set_assoc::LineLife;
use dpc_types::{BlockAddr, Pc, Pfn, Vpn};
use std::fmt::Debug;

/// Decision returned by [`LltPolicy::on_fill`] when a page walk completes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageFillDecision {
    /// Allocate the translation in the LLT.
    Allocate {
        /// Replacement-order position for the new entry.
        priority: InsertPriority,
        /// Initial per-entry policy state (e.g. dpPred's 6-bit PC hash).
        state: u32,
    },
    /// Do not allocate (predicted dead-on-arrival). The translation is
    /// still returned to the L1 TLB; dpPred additionally parks it in its
    /// shadow table.
    Bypass,
}

impl PageFillDecision {
    /// The default allocation used by the no-op policy.
    pub const ALLOCATE: Self =
        PageFillDecision::Allocate { priority: InsertPriority::Normal, state: 0 };
}

/// Decision returned by [`LlcPolicy::on_fill`] when a block arrives from
/// memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockFillDecision {
    /// Allocate the block in the LLC.
    Allocate {
        /// Replacement-order position for the new block.
        priority: InsertPriority,
        /// Initial per-block policy state (e.g. cbPred's DP bit).
        state: u32,
    },
    /// Do not allocate in the LLC (predicted dead-on-arrival). The block is
    /// still returned to, and cached by, the upper levels.
    Bypass,
}

impl BlockFillDecision {
    /// The default allocation used by the no-op policy.
    pub const ALLOCATE: Self =
        BlockFillDecision::Allocate { priority: InsertPriority::Normal, state: 0 };
}

/// A view of one valid line handed to set-access hooks
/// ([`LltPolicy::on_set_access`] / [`LlcPolicy::on_set_access`]) and to
/// `pick_victim`.
///
/// `state` is a *copy* of the line's policy scratch state;
/// [`SetAssoc::with_set_views`](crate::set_assoc::SetAssoc::with_set_views)
/// writes whatever the hook leaves in it back to the line afterwards.
/// Owning the state (instead of borrowing it) lets the array reuse one
/// scratch buffer of views across calls, keeping the hot path free of
/// heap allocations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PolicyLineView {
    /// Way index within the set.
    pub way: usize,
    /// The line's tag (VPN for TLBs, block address for caches).
    pub tag: u64,
    /// Hits received by the line since fill (the `Accessed` bit of the
    /// paper is `hits > 0`).
    pub hits: u64,
    /// Whether this lookup hit this line.
    pub is_hit: bool,
    /// Per-line policy scratch state (written back after the hook).
    pub state: u32,
}

/// An LLT entry at the moment of its eviction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvictedPage {
    /// Virtual page number of the evicted translation.
    pub vpn: Vpn,
    /// Physical frame it mapped to.
    pub pfn: Pfn,
    /// Per-entry policy state (dpPred keeps its PC hash here).
    pub state: u32,
    /// Lifetime statistics; `life.hits == 0` is the paper's "Accessed bit
    /// unset" condition identifying a true DOA page.
    pub life: LineLife,
}

impl EvictedPage {
    /// The paper's `Accessed`-bit test: was the entry ever hit?
    pub fn accessed(&self) -> bool {
        self.life.hits > 0
    }
}

/// An LLC block at the moment of its eviction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvictedBlock {
    /// Physical block address of the evicted block.
    pub block: BlockAddr,
    /// Per-block policy state (cbPred keeps its DP bit here).
    pub state: u32,
    /// Lifetime statistics; `life.hits == 0` identifies a true DOA block.
    pub life: LineLife,
    /// Whether the eviction was a back-invalidation side effect rather
    /// than a capacity/conflict replacement.
    pub by_invalidation: bool,
}

impl EvictedBlock {
    /// The paper's `Accessed`-bit test: was the block ever hit?
    pub fn accessed(&self) -> bool {
        self.life.hits > 0
    }
}

/// Prediction-quality counters reported by a policy (paper Tables VI/VII).
///
/// *Accuracy* is correct predictions over all predictions; *coverage* is
/// correct predictions over all true DOA entries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccuracyReport {
    /// Total DOA predictions made (bypasses, or distant insertions for
    /// SHiP-style policies).
    pub predictions: u64,
    /// Predictions confirmed correct.
    pub correct: u64,
    /// Predictions observed wrong.
    pub mispredictions: u64,
    /// True DOA entries observed (correctly predicted ones plus DOA
    /// evictions the policy failed to predict).
    pub true_doas: u64,
}

impl AccuracyReport {
    /// Fraction of resolved predictions that were correct.
    pub fn accuracy(&self) -> f64 {
        let resolved = self.correct + self.mispredictions;
        if resolved == 0 {
            0.0
        } else {
            self.correct as f64 / resolved as f64
        }
    }

    /// Fraction of true DOAs the policy predicted.
    pub fn coverage(&self) -> f64 {
        if self.true_doas == 0 {
            0.0
        } else {
            self.correct as f64 / self.true_doas as f64
        }
    }
}

/// Content-management policy for the last-level TLB.
///
/// All hooks have no-op defaults so simple policies implement only what
/// they need. Implementations must be deterministic.
pub trait LltPolicy: Debug {
    /// Short name for reports (e.g. `"dpPred"`, `"SHiP-TLB"`).
    fn policy_name(&self) -> &'static str;

    /// Whether this policy is the no-op baseline. **Must return `true`
    /// only if every hook keeps its default (no-op) body** — the simulator
    /// caches this flag at construction and skips hook dispatch entirely
    /// on the hot path when it is set, so an overridden hook behind a
    /// `true` gate silently never runs.
    fn is_null(&self) -> bool {
        false
    }

    /// Prediction-quality counters, if the policy tracks them.
    fn accuracy_report(&self) -> Option<AccuracyReport> {
        None
    }

    /// Called on every LLT lookup, before the result is known to the
    /// policy, with the outcome. Used by accuracy trackers.
    fn on_lookup(&mut self, _vpn: Vpn, _hit: bool) {}

    /// Probes the policy's shadow/victim buffer on an LLT miss. Returning
    /// `Some(pfn)` serves the translation without a page walk; the paper's
    /// dpPred treats this as a detected misprediction (negative feedback)
    /// and the system re-allocates the entry in the LLT.
    fn shadow_lookup(&mut self, _vpn: Vpn) -> Option<Pfn> {
        None
    }

    /// Decides what to do with a completed walk's translation. `pc` is the
    /// PC recovered from the LLT MSHR.
    fn on_fill(&mut self, _vpn: Vpn, _pfn: Pfn, _pc: Pc) -> PageFillDecision {
        PageFillDecision::ALLOCATE
    }

    /// Called when a bypassed translation is produced, so the policy can
    /// park it in its shadow table.
    fn on_bypass(&mut self, _vpn: Vpn, _pfn: Pfn) {}

    /// Initial per-entry state for a translation re-allocated after a
    /// shadow-table hit (paper Fig. 6a: *"insert entry into LLT, store
    /// h(PC) in the LLT entry"*).
    fn refill_state(&mut self, _vpn: Vpn, _pc: Pc) -> u32 {
        0
    }

    /// Called on an LLT hit with the entry's scratch state.
    fn on_hit(&mut self, _vpn: Vpn, _state: &mut u32) {}

    /// Whether the policy observes set accesses. **Must return `true` iff
    /// [`LltPolicy::on_set_access`] is overridden** — the simulator skips
    /// building line views entirely when this is `false`, so an
    /// overridden hook behind a `false` gate silently never runs.
    fn uses_set_views(&self) -> bool {
        false
    }

    /// Whether the policy may override victim selection. **Must return
    /// `true` iff [`LltPolicy::pick_victim`] is overridden** — the
    /// simulator consults `pick_victim` only when this is `true`.
    fn overrides_victim(&self) -> bool {
        false
    }

    /// Called on every lookup with views of all valid lines in the set
    /// (interval-counting predictors like AIP train here). Only invoked
    /// when [`LltPolicy::uses_set_views`] returns `true`.
    fn on_set_access(&mut self, _lines: &mut [PolicyLineView]) {}

    /// Chooses a victim among the set's valid lines, or `None` to defer to
    /// the base replacement policy. Only consulted when the set is full
    /// and [`LltPolicy::overrides_victim`] returns `true`.
    fn pick_victim(&mut self, _lines: &mut [PolicyLineView]) -> Option<usize> {
        None
    }

    /// Called when an entry leaves the LLT.
    fn on_evict(&mut self, _evicted: EvictedPage) {}
}

/// Content-management policy for the last-level cache.
pub trait LlcPolicy: Debug {
    /// Short name for reports (e.g. `"cbPred"`, `"SHiP-LLC"`).
    fn policy_name(&self) -> &'static str;

    /// Whether this policy is the no-op baseline. **Must return `true`
    /// only if every hook keeps its default (no-op) body** — the simulator
    /// caches this flag at construction and skips hook dispatch entirely
    /// on the hot path when it is set, so an overridden hook behind a
    /// `true` gate silently never runs.
    fn is_null(&self) -> bool {
        false
    }

    /// Prediction-quality counters, if the policy tracks them.
    fn accuracy_report(&self) -> Option<AccuracyReport> {
        None
    }

    /// Receives the PFN of a page the TLB-side policy just predicted DOA
    /// (the paper's dpPred → PFQ message).
    fn note_doa_page(&mut self, _pfn: Pfn) {}

    /// Called on every LLC lookup with the outcome.
    fn on_lookup(&mut self, _block: BlockAddr, _hit: bool) {}

    /// Decides what to do with a block arriving from memory.
    fn on_fill(&mut self, _block: BlockAddr, _pc: Pc) -> BlockFillDecision {
        BlockFillDecision::ALLOCATE
    }

    /// Called on an LLC hit with the block's scratch state.
    fn on_hit(&mut self, _block: BlockAddr, _state: &mut u32) {}

    /// Whether the policy observes set accesses. **Must return `true` iff
    /// [`LlcPolicy::on_set_access`] is overridden** — the simulator skips
    /// building line views entirely when this is `false`, so an
    /// overridden hook behind a `false` gate silently never runs.
    fn uses_set_views(&self) -> bool {
        false
    }

    /// Whether the policy may override victim selection. **Must return
    /// `true` iff [`LlcPolicy::pick_victim`] is overridden** — the
    /// simulator consults `pick_victim` only when this is `true`.
    fn overrides_victim(&self) -> bool {
        false
    }

    /// Called on every lookup with views of all valid lines in the set.
    /// Only invoked when [`LlcPolicy::uses_set_views`] returns `true`.
    fn on_set_access(&mut self, _lines: &mut [PolicyLineView]) {}

    /// Chooses a victim among the set's valid lines, or `None` to defer to
    /// the base replacement policy. Only consulted when
    /// [`LlcPolicy::overrides_victim`] returns `true`.
    fn pick_victim(&mut self, _lines: &mut [PolicyLineView]) -> Option<usize> {
        None
    }

    /// Called when a block leaves the LLC.
    fn on_evict(&mut self, _evicted: EvictedBlock) {}
}

/// The baseline no-op LLT policy: plain allocation under the base
/// replacement policy.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullPagePolicy;

impl LltPolicy for NullPagePolicy {
    #[inline]
    fn policy_name(&self) -> &'static str {
        "baseline"
    }

    #[inline]
    fn is_null(&self) -> bool {
        true
    }
}

/// The baseline no-op LLC policy.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullBlockPolicy;

impl LlcPolicy for NullBlockPolicy {
    #[inline]
    fn policy_name(&self) -> &'static str {
        "baseline"
    }

    #[inline]
    fn is_null(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_policies_allocate() {
        let mut p = NullPagePolicy;
        assert_eq!(p.on_fill(Vpn::new(1), Pfn::new(2), Pc::new(3)), PageFillDecision::ALLOCATE);
        assert_eq!(p.shadow_lookup(Vpn::new(1)), None);
        assert_eq!(p.policy_name(), "baseline");

        let mut b = NullBlockPolicy;
        assert_eq!(b.on_fill(BlockAddr::new(1), Pc::new(3)), BlockFillDecision::ALLOCATE);
        assert_eq!(b.policy_name(), "baseline");
    }

    #[test]
    fn evicted_accessors() {
        let life = LineLife { fill_seq: 1, last_hit_seq: 1, hits: 0 };
        let page = EvictedPage { vpn: Vpn::new(1), pfn: Pfn::new(2), state: 0, life };
        assert!(!page.accessed());
        let block = EvictedBlock {
            block: BlockAddr::new(1),
            state: 0,
            life: LineLife { hits: 3, ..life },
            by_invalidation: false,
        };
        assert!(block.accessed());
    }
}
