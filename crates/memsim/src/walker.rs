//! The hardware page-table walker.
//!
//! A walk triggered by an LLT miss probes the page-walk caches for the
//! longest cached prefix, then issues the remaining 1–4 PTE loads
//! *sequentially* (each load discovers the next node) **through the data
//! caches**, per the paper's methodology: *"the page walk latency is
//! variable — it depends upon hits/misses to PWCs and whether the page
//! table accesses hit in the data caches."*

use crate::hierarchy::Hierarchy;
use crate::page_table::PageTable;
use crate::policy::LlcPolicy;
use crate::pwc::PwcSet;
use dpc_types::{AccessKind, PageSize, Pc, Pfn, PwcConfig, Vpn};

/// Outcome of one page walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkOutcome {
    /// The translation, at the 4 KB grain regardless of mapping size.
    pub pfn: Pfn,
    /// Total walk latency in cycles (PWC probes + PTE loads).
    pub latency: u64,
    /// Number of PTE loads issued.
    pub pte_loads: u32,
    /// The size of the mapping the walk resolved. Huge mappings
    /// terminate at the PDE (2 MB) or PDPTE (1 GB), so their walks are
    /// one or two PTE loads shorter.
    pub size: PageSize,
    /// Whether the walked page was demand-mapped by this walk.
    pub newly_mapped: bool,
}

/// The walker: PWCs plus walk statistics.
#[derive(Debug)]
pub struct Walker {
    pwc: PwcSet,
    /// Completed walks.
    pub walks: u64,
    /// Total PTE loads issued into the cache hierarchy.
    pub pte_loads: u64,
    /// Total cycles spent walking.
    pub walk_cycles: u64,
}

impl Walker {
    /// Builds a walker with the given PWC configuration.
    pub fn new(config: &PwcConfig) -> Self {
        Walker { pwc: PwcSet::new(config), walks: 0, pte_loads: 0, walk_cycles: 0 }
    }

    /// PWC hit counters per level.
    pub fn pwc_hits(&self) -> [u64; 3] {
        self.pwc.hits()
    }

    /// Walks `vpn`: resolves the translation in `page_table` and charges
    /// the PTE loads to `hierarchy`.
    pub fn walk<C: LlcPolicy>(
        &mut self,
        vpn: Vpn,
        page_table: &mut PageTable,
        hierarchy: &mut Hierarchy<C>,
    ) -> WalkOutcome {
        self.walks += 1;
        let path = page_table.translate(vpn);
        // A huge mapping terminates at the PDE/PDPTE: the walk neither
        // probes nor loads below its terminal level.
        let terminal = path.size.terminal_level();
        let probe = self.pwc.probe_from(vpn, terminal);
        self.pwc.commit_probe(vpn, &probe);
        let mut latency = probe.latency;
        // A PWC hit at level L resumes at radix level L; loads cover
        // levels L..=terminal (closest-to-root first, sequentially
        // dependent).
        let top_level = terminal + probe.remaining_loads as usize - 1;
        for level in (terminal..=top_level).rev() {
            latency += hierarchy.access(path.pte_addrs[level], AccessKind::Read, Pc::new(0), false);
            self.pte_loads += 1;
        }
        self.pwc.fill_from(vpn, &path.node_pfns, terminal);
        self.walk_cycles += latency;
        WalkOutcome {
            pfn: path.pfn,
            latency,
            pte_loads: probe.remaining_loads,
            size: path.size,
            newly_mapped: path.newly_mapped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NullBlockPolicy;
    use dpc_types::SystemConfig;

    fn setup() -> (Walker, PageTable, Hierarchy) {
        setup_with(dpc_types::AllocPolicy::Base4K)
    }

    fn setup_with(policy: dpc_types::AllocPolicy) -> (Walker, PageTable, Hierarchy) {
        let config = SystemConfig::paper_baseline();
        (
            Walker::new(&config.pwc),
            PageTable::with_policy(policy),
            Hierarchy::new(&config, Box::new(NullBlockPolicy)),
        )
    }

    #[test]
    fn cold_walk_issues_four_loads() {
        let (mut walker, mut pt, mut hier) = setup();
        let outcome = walker.walk(Vpn::new(0x1234), &mut pt, &mut hier);
        assert_eq!(outcome.pte_loads, 4);
        assert!(outcome.newly_mapped);
        // 4 PWC probe cycles + 4 cold cache misses.
        assert_eq!(outcome.latency, 4 + 4 * (5 + 11 + 40 + 191));
        assert_eq!(walker.walks, 1);
        assert_eq!(walker.pte_loads, 4);
    }

    #[test]
    fn warm_walk_uses_pwc_and_caches() {
        let (mut walker, mut pt, mut hier) = setup();
        walker.walk(Vpn::new(0x1234), &mut pt, &mut hier);
        let outcome = walker.walk(Vpn::new(0x1234), &mut pt, &mut hier);
        assert_eq!(outcome.pte_loads, 1, "leaf PWC hit leaves one PTE load");
        assert!(!outcome.newly_mapped);
        // 1 PWC probe cycle + 1 L1D hit.
        assert_eq!(outcome.latency, 1 + 5);
        assert_eq!(walker.pwc_hits()[0], 1);
    }

    #[test]
    fn sibling_page_walk_partially_accelerated() {
        let (mut walker, mut pt, mut hier) = setup();
        walker.walk(Vpn::new(0), &mut pt, &mut hier);
        // Same PT region: leaf PWC hit, different slot in the same node —
        // the PTE load may even hit in L1D (same block for slots 0 and 1).
        let outcome = walker.walk(Vpn::new(1), &mut pt, &mut hier);
        assert_eq!(outcome.pte_loads, 1);
        assert_eq!(outcome.latency, 1 + 5);
    }

    #[test]
    fn cold_2m_walk_issues_three_loads() {
        let (mut walker, mut pt, mut hier) =
            setup_with(dpc_types::AllocPolicy::Uniform(PageSize::Size2M));
        let outcome = walker.walk(Vpn::new(0x1234), &mut pt, &mut hier);
        assert_eq!(outcome.size, PageSize::Size2M);
        assert_eq!(outcome.pte_loads, 3);
        // PWC levels 1 + 2 probed (1 + 2 cycles) + 3 cold cache misses.
        assert_eq!(outcome.latency, 3 + 3 * (5 + 11 + 40 + 191));
    }

    #[test]
    fn cold_1g_walk_issues_two_loads() {
        let (mut walker, mut pt, mut hier) =
            setup_with(dpc_types::AllocPolicy::Uniform(PageSize::Size1G));
        let outcome = walker.walk(Vpn::new(0x1234), &mut pt, &mut hier);
        assert_eq!(outcome.size, PageSize::Size1G);
        assert_eq!(outcome.pte_loads, 2);
        // Only PWC level 2 probed (2 cycles) + 2 cold cache misses.
        assert_eq!(outcome.latency, 2 + 2 * (5 + 11 + 40 + 191));
    }

    #[test]
    fn cold_walks_shorten_with_page_size() {
        let cold = |policy| {
            let (mut walker, mut pt, mut hier) = setup_with(policy);
            walker.walk(Vpn::new(0x1234), &mut pt, &mut hier).latency
        };
        let l4k = cold(dpc_types::AllocPolicy::Base4K);
        let l2m = cold(dpc_types::AllocPolicy::Uniform(PageSize::Size2M));
        let l1g = cold(dpc_types::AllocPolicy::Uniform(PageSize::Size1G));
        assert!(l1g < l2m && l2m < l4k, "walk latency must shrink with page size");
    }

    #[test]
    fn warm_2m_walk_resumes_from_the_pd() {
        let (mut walker, mut pt, mut hier) =
            setup_with(dpc_types::AllocPolicy::Uniform(PageSize::Size2M));
        walker.walk(Vpn::new(0x1234), &mut pt, &mut hier);
        let outcome = walker.walk(Vpn::new(0x1234), &mut pt, &mut hier);
        assert_eq!(outcome.pte_loads, 1, "PWC level-1 hit leaves the PDE load");
        // 1 PWC probe cycle + 1 L1D hit.
        assert_eq!(outcome.latency, 1 + 5);
        assert_eq!(walker.pwc_hits(), [0, 1, 0]);
    }

    #[test]
    fn walk_results_are_consistent() {
        let (mut walker, mut pt, mut hier) = setup();
        let a = walker.walk(Vpn::new(77), &mut pt, &mut hier).pfn;
        let b = walker.walk(Vpn::new(77), &mut pt, &mut hier).pfn;
        assert_eq!(a, b);
    }
}
