//! The full simulated system: core + TLBs + page walks + caches, with the
//! dead-page and dead-block policy attachment points.

use crate::core_model::{CoreModel, MemRun};
use crate::fallback::{DynLlcPolicy, DynLltPolicy};
use crate::hierarchy::Hierarchy;
use crate::mshr::Mshr;
use crate::page_table::PageTable;
use crate::policy::{EvictedPage, LlcPolicy, LltPolicy, PageFillDecision};
use crate::set_assoc::InsertPriority;
use crate::stats::{DeadnessSampler, EvictionClasses, SimStats};
use crate::tlb::{Tlb, TlbGroup, TlbProbe};
use crate::walker::Walker;
use dpc_types::hash::FastBuildHasher;
use dpc_types::stream::{EventBatch, EventStream, StreamCursor};
use dpc_types::{
    AccessKind, BlockAddr, ConfigError, Event, PageSize, Pc, Pfn, PhysAddr, SystemConfig,
    TlbFillPolicy, VirtAddr, Vpn, Workload, BLOCK_SHIFT,
};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Default outstanding-miss capacity of the LLT MSHR.
const MSHR_CAPACITY: usize = 16;
/// Default instructions between deadness samples.
const DEFAULT_SAMPLE_INTERVAL: u64 = 50_000;
/// Events decoded per [`System::run_stream`] chunk: large enough to
/// amortize the tag-decode branch tree and the loop bookkeeping, small
/// enough that the scratch batch stays L1-cache-resident (~256 × 32 B).
const EVENT_CHUNK: usize = 256;
/// How many events ahead of the one being stepped [`System::run_stream`]
/// issues set prefetch hints: far enough to beat the L1D/L2 tag-column
/// miss latency, near enough that the hinted lines survive until use.
const PREFETCH_DISTANCE: usize = 8;
/// Cap on the fast-path classification backoff shift: after repeated
/// empty run attempts, up to `1 << FAST_BACKOFF_SHIFT_CAP` events are
/// slow-stepped without re-attempting. Large enough that a long miss
/// streak pays ~one wasted probe pair per 32 events, small enough that
/// a phase change back to L1 hits is noticed within a chunk.
const FAST_BACKOFF_SHIFT_CAP: u32 = 5;
/// Cap on the tier-2 deep-probe backoff shift: after consecutive tier-2
/// classification *failures* (an event missed the L1 D-TLB or L1D, the
/// LLT/L2 probes were paid, and the event still fell to the slow path),
/// up to `1 << DEEP_BACKOFF_SHIFT_CAP` subsequent first-level probe
/// misses break the run immediately instead of probing deeper. Streams
/// that thrash past the L2/LLT (where tier-2 probes are pure loss — the
/// slow step redoes them as full lookups) pay ~one wasted deep probe per
/// 32 deep misses, while a phase whose misses terminate at L2 re-engages
/// the tier within a chunk.
const DEEP_BACKOFF_SHIFT_CAP: u32 = 5;

/// Errors from [`System`] construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemError {
    /// The machine configuration is structurally invalid.
    InvalidConfig(ConfigError),
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::InvalidConfig(e) => write!(f, "invalid system configuration: {e}"),
        }
    }
}

impl Error for SystemError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SystemError::InvalidConfig(e) => Some(e),
        }
    }
}

impl From<ConfigError> for SystemError {
    fn from(e: ConfigError) -> Self {
        SystemError::InvalidConfig(e)
    }
}

/// Which L1 TLB a translation request came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Side {
    Instruction,
    Data,
}

/// Classification of a unified-LLT hit, produced side-effect-free by
/// [`System::probe_llt`] and replayed by [`System::commit_llt_hit`] — the
/// probe-then-commit split of the translation path's second level, shared
/// verbatim between the slow path and the second fast tier.
#[derive(Clone, Copy, Debug)]
struct LltProbe {
    /// Page size whose key hit.
    size: PageSize,
    /// The size-tagged LLT key that hit.
    key: Vpn,
    /// Way of the hit.
    way: usize,
    /// How many smaller sizes were probed (and missed) first; the commit
    /// replays one lookup clock per missing probe.
    missed_probes: usize,
}

/// The TLB tier a fast-path event's translation was classified into.
#[derive(Clone, Copy, Debug)]
enum TlbTier {
    /// L1 D-TLB hit (the first tier).
    L1(TlbProbe),
    /// L1 D-TLB miss absorbed by a unified-LLT hit (the second tier).
    Llt(LltProbe),
}

/// The cache tier a fast-path event's data access was classified into.
#[derive(Clone, Copy, Debug)]
enum CacheTier {
    /// L1D hit (the first tier).
    L1d(usize),
    /// L1D miss absorbed by an L2 hit (the second tier).
    L2(usize),
}

/// The simulated machine, generic over its two content-management
/// policies.
///
/// The type parameters default to the boxed trait objects from
/// [`crate::fallback`], so `System` written without parameters is the
/// runtime-dispatch fallback built by [`System::new`] /
/// [`System::with_policies`]. Concrete policy pairs — what the campaign
/// driver instantiates for every configuration in the paper's policy
/// matrix — go through [`System::with_typed_policies`], which
/// monomorphizes the whole event loop (translation path, hierarchy
/// hooks, pHIST/bHIST lookups) around the policy types (DESIGN.md §11).
///
/// Feed the machine a [`Workload`] via [`System::run`] /
/// [`System::run_until`], or replay a captured stream in decoded chunks
/// via [`System::run_stream`], then read the [`SimStats`].
#[derive(Debug)]
pub struct System<L: LltPolicy = DynLltPolicy, C: LlcPolicy = DynLlcPolicy> {
    config: SystemConfig,
    core: CoreModel,
    l1i_tlb: TlbGroup,
    l1d_tlb: TlbGroup,
    llt: Tlb,
    llt_policy: L,
    /// Page sizes the allocation policy can map, in probe order (smallest
    /// first). A single-size policy keeps the whole translation path on
    /// untagged 4 KB keys — byte-identical to the pre-page-size code.
    llt_sizes: &'static [PageSize],
    /// Whether LLT/shadow/reverse-map keys carry a size tag. Only true
    /// when more than one page size can coexist (Promote2M), so
    /// same-numbered units of different sizes cannot alias.
    size_tagged: bool,
    /// dpPred→cbPred PFQ messages name frames at the *prediction unit* —
    /// the policy's largest page size — so a dead 2 MB page kills its
    /// blocks as one unit. Zero for the paper's 4 KB configuration.
    pfq_unit_shift: u32,
    /// Cached [`LltPolicy::is_null`]: `true` for the baseline no-op
    /// policy, letting the translation path skip hook dispatch entirely
    /// (every skipped hook is a no-op, so behavior is identical).
    llt_null: bool,
    hier: Hierarchy<C>,
    page_table: PageTable,
    walker: Walker,
    mshr: Mshr,

    llt_evictions: EvictionClasses,
    llt_sampler: DeadnessSampler,
    /// DOA-ness of each page's most recent completed LLT stay (Table III).
    page_stay_doa: HashMap<Vpn, bool, FastBuildHasher>,
    /// Reverse translation map for classifying evicted LLC blocks.
    pfn_to_vpn: HashMap<Pfn, Vpn, FastBuildHasher>,
    doa_blocks_on_doa_pages: u64,
    doa_blocks_classified: u64,

    sample_interval: u64,
    next_sample_at: u64,
    cur_code_vpn: Option<Vpn>,
    mem_ops: u64,
    /// Events retired by the batched L1-hit fast path (engine telemetry;
    /// see [`System::fast_retire_run`]).
    fast_hits: u64,
    /// Events retired by the second fast tier (an LLT and/or L2 hit
    /// absorbed a first-level miss).
    fast_l2_hits: u64,
    /// Events processed by the full [`System::step`] machinery.
    slow_steps: u64,
    /// Tier-2 deep-probe backoff (see [`DEEP_BACKOFF_SHIFT_CAP`]):
    /// consecutive tier-2 classification failures, and how many upcoming
    /// first-level probe misses skip the deep probes. Replay heuristics
    /// only — which path retires an event never affects simulated state,
    /// and both evolve as pure functions of the event stream, so replay
    /// stays deterministic.
    deep_fails: u32,
    deep_skip: u64,
    /// Reusable decode scratch for [`System::run_stream`], hoisted into
    /// the machine so repeated calls (warm-up + measure, and every run of
    /// a long campaign) replay with zero per-call heap allocations.
    batch: EventBatch,
}

impl<L: LltPolicy, C: LlcPolicy> System<L, C> {
    /// Builds a system with the given LLT and LLC content-management
    /// policies, monomorphizing the event loop around their concrete
    /// types. The boxed constructors [`System::new`] and
    /// [`System::with_policies`] (in [`crate::fallback`]) delegate here.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::InvalidConfig`] if the configuration fails
    /// [`SystemConfig::validate`].
    pub fn with_typed_policies(
        config: SystemConfig,
        llt_policy: L,
        llc_policy: C,
    ) -> Result<Self, SystemError> {
        config.validate()?;
        let llt_null = llt_policy.is_null();
        let page_policy = config.page_policy;
        Ok(System {
            core: CoreModel::new(config.core.width, config.core.rob_size, config.core.mem_slots),
            l1i_tlb: TlbGroup::for_policy(&config.l1_itlb, page_policy, true),
            l1d_tlb: TlbGroup::for_policy(&config.l1_dtlb, page_policy, false),
            llt: Tlb::new(&config.l2_tlb),
            llt_policy,
            llt_null,
            llt_sizes: page_policy.page_sizes(),
            size_tagged: page_policy.page_sizes().len() > 1,
            pfq_unit_shift: page_policy.prediction_unit_shift(),
            hier: Hierarchy::with_typed_policy(&config, llc_policy),
            page_table: PageTable::with_policy(page_policy),
            walker: Walker::new(&config.pwc),
            mshr: Mshr::new(MSHR_CAPACITY),
            llt_evictions: EvictionClasses::default(),
            llt_sampler: DeadnessSampler::new(),
            page_stay_doa: HashMap::default(),
            pfn_to_vpn: HashMap::default(),
            doa_blocks_on_doa_pages: 0,
            doa_blocks_classified: 0,
            sample_interval: DEFAULT_SAMPLE_INTERVAL,
            next_sample_at: DEFAULT_SAMPLE_INTERVAL,
            cur_code_vpn: None,
            mem_ops: 0,
            fast_hits: 0,
            fast_l2_hits: 0,
            slow_steps: 0,
            deep_fails: 0,
            deep_skip: 0,
            batch: EventBatch::with_capacity(EVENT_CHUNK),
            config,
        })
    }

    /// The machine configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The attached LLT policy (e.g. to read its accuracy report).
    pub fn llt_policy(&self) -> &L {
        &self.llt_policy
    }

    /// The attached LLC policy (e.g. to read its accuracy report).
    pub fn llc_policy(&self) -> &C {
        self.hier.policy()
    }

    /// Sets the deadness sampling interval in instructions.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn set_sample_interval(&mut self, interval: u64) {
        assert!(interval > 0, "sample interval must be nonzero");
        self.sample_interval = interval;
        self.next_sample_at = self.core.instructions() + interval;
    }

    /// Runs the workload to completion and returns the statistics.
    pub fn run(&mut self, workload: &mut dyn Workload) -> SimStats {
        while let Some(event) = workload.next_event() {
            self.step(event);
        }
        self.stats()
    }

    /// Runs until the workload ends or `max_mem_ops` memory operations
    /// have been simulated, then returns the statistics.
    pub fn run_until(&mut self, workload: &mut dyn Workload, max_mem_ops: u64) -> SimStats {
        self.run_events(&mut std::iter::from_fn(|| workload.next_event()), max_mem_ops)
    }

    /// Runs events pulled from `events` until the iterator ends or
    /// `max_mem_ops` memory operations have been simulated — the borrowed
    /// counterpart of [`System::run_until`] for driving the machine
    /// straight from a captured `dpc_types::stream::EventStream` (or any
    /// other event iterator) without boxing or re-buffering. The loop
    /// stops as soon as the budget is reached and never pulls an event it
    /// will not simulate.
    pub fn run_events(
        &mut self,
        events: &mut dyn Iterator<Item = Event>,
        max_mem_ops: u64,
    ) -> SimStats {
        let stop_at = self.mem_ops + max_mem_ops;
        while self.mem_ops < stop_at {
            match events.next() {
                Some(event) => self.step(event),
                None => break,
            }
        }
        self.stats()
    }

    /// Replays `stream` from `cursor` until the stream ends or
    /// `max_mem_ops` memory operations have been simulated, decoding in
    /// chunks of [`EVENT_CHUNK`] events into a reusable scratch batch and
    /// stepping the decoded slice — the batched counterpart of
    /// [`System::run_events`], bit-identical to it (the chunk decoder
    /// applies the memory-op budget before every event, exactly like the
    /// event-at-a-time loop; see
    /// [`EventStream::decode_chunk`]).
    ///
    /// Unless `DPC_FASTPATH=off`, each decoded chunk first retires runs
    /// of trivially-hitting events through the L1-hit fast path
    /// ([`System::fast_retire_run`]) — bit-identical to stepping them
    /// (DESIGN.md §15) — and only the first event failing a fast-path
    /// predicate goes through the unchanged [`System::step`].
    ///
    /// The cursor is left on the first event not simulated, so a
    /// warm-up/measure split drives two `run_stream` calls over the same
    /// stream with the same cursor.
    pub fn run_stream(
        &mut self,
        stream: &EventStream,
        cursor: &mut StreamCursor,
        max_mem_ops: u64,
    ) -> SimStats {
        // The decode scratch lives in the machine so every call reuses
        // one allocation; it is taken for the loop's duration because
        // `step` needs `&mut self` while the decoded slice is walked.
        let mut batch = std::mem::take(&mut self.batch);
        let prefetch = dpc_types::simd::prefetch_enabled();
        let fastpath = dpc_types::simd::fastpath_enabled();
        let mut remaining = max_mem_ops;
        while remaining > 0 {
            let mem_taken = stream.decode_chunk(cursor, &mut batch, EVENT_CHUNK, remaining);
            if batch.is_empty() {
                break;
            }
            let events = batch.events();
            let mut i = 0;
            // Classification backoff: a zero-length run attempt is pure
            // loss — the probes it paid are immediately redone by the
            // full lookup in `step`. In miss-heavy stretches (streaming
            // blocks, thrashing pages) every attempt comes back empty,
            // so after consecutive empty attempts the next ones are
            // skipped for a geometrically growing number of events
            // (capped at FAST_BACKOFF_CAP). Which path retires an event
            // never affects simulated state (DESIGN.md §15), so the
            // heuristic is free to be wrong — it only trades coverage
            // for probe overhead — and it is deterministic, so replay
            // stays reproducible.
            let mut empty_runs = 0u32;
            let mut penalty = 0usize;
            while i < events.len() {
                if fastpath && penalty == 0 {
                    let Some(rest) = events.get(i..) else { break };
                    let taken = self.fast_retire_run(rest, prefetch);
                    i += taken;
                    if taken == 0 {
                        empty_runs = (empty_runs + 1).min(FAST_BACKOFF_SHIFT_CAP);
                        penalty = 1usize << empty_runs;
                    } else {
                        empty_runs = 0;
                    }
                    if i >= events.len() {
                        break;
                    }
                }
                if prefetch {
                    // Hide the tag-column latency of upcoming lookups:
                    // hint the L1 D-TLB set and the L1D set of the memory
                    // access PREFETCH_DISTANCE events ahead. The L1D set
                    // index bits of the paper geometry (64 sets × 64 B =
                    // 4 KiB) sit inside the page offset, so the virtual
                    // block number selects the same set as the physical
                    // one (VIPT); for other geometries the hint may miss
                    // the set, which costs nothing. Hints never change
                    // simulated state (see SetAssoc::prefetch_set).
                    if let Some(&Event::Mem { vaddr, .. }) = events.get(i + PREFETCH_DISTANCE) {
                        self.l1d_tlb.prefetch(vaddr);
                        self.hier.l1d.array().prefetch_set(vaddr.raw() >> BLOCK_SHIFT);
                    }
                }
                // With the fast path on, this is the one event that failed
                // a predicate (or the sampler-boundary event): the full
                // machinery handles it, then the fast path resumes.
                let Some(&event) = events.get(i) else { break };
                self.step(event);
                i += 1;
                penalty = penalty.saturating_sub(1);
            }
            remaining -= mem_taken;
        }
        self.batch = batch;
        self.stats()
    }

    /// Retires the longest prefix of `events` that qualifies for the
    /// batched fast path, returning how many events were consumed
    /// (possibly 0). The caller slow-steps the first non-qualifying
    /// event, after which a new run can start.
    ///
    /// A `Mem` event qualifies when **all** of the following hold — each
    /// predicate guards one piece of machinery [`System::step`] would
    /// otherwise engage (DESIGN.md §15–16):
    ///
    /// * its PC stays on the current code page (no I-side translation);
    /// * its VPN hits the L1 D-TLB (**tier 1**), or misses it and hits
    ///   the unified LLT (**tier 2** — the walker, shadow buffer, and
    ///   MSHR are still never consulted);
    /// * its block hits the L1D (**tier 1**), or misses it and hits the
    ///   L2 (**tier 2** — the LLC and its policy are still never
    ///   consulted, so no LLC fill, eviction, or bypass can occur);
    /// * no DOA-eviction drain is pending (the drain is re-checked
    ///   per event on the slow path but can only become non-empty through
    ///   an LLC eviction, which no tier-1/tier-2 shape can cause — so one
    ///   check up front covers the whole run);
    /// * it does not reach the sampler boundary (the boundary event is
    ///   slow-stepped so [`System::step`]'s sampler fires identically).
    ///
    /// `Compute` events inside the run are issued unchanged (they touch
    /// only the core and the sampler budget), so the emitter's
    /// compute/mem interleaving never cuts runs short.
    ///
    /// Qualifying events are retired via the probe-then-commit splits
    /// ([`TlbGroup::commit_probe`] / [`TlbGroup::commit_miss`] +
    /// [`System::commit_llt_hit`], [`Hierarchy::commit_l1d_hit`] /
    /// [`Hierarchy::commit_l2_hit`]) and the batch-aware
    /// [`CoreModel::issue_mem_run_at`] — each commits exactly the state
    /// transitions the slow path would perform, in the same order, so
    /// machine state stays bit-identical whichever path ran. Tier-2
    /// commits *fill* upper levels (the LLT hit refills the L1 D-TLB, the
    /// L2 hit refills the L1D), so they invalidate the run's one-entry
    /// probe caches; classification itself is fully side-effect-free, so
    /// an event that fails any predicate leaves no trace before its slow
    /// step.
    ///
    /// Deep probes carry their own backoff: consecutive tier-2
    /// classification failures (deep probes paid, event slow-stepped
    /// anyway) suppress the LLT/L2 probes for a geometrically growing
    /// number of first-level misses ([`DEEP_BACKOFF_SHIFT_CAP`]), so
    /// streams thrashing past the L2 degrade to the tier-1-only
    /// classification cost instead of paying two wasted probes per miss.
    /// Records a tier-2 classification failure and arms the deep-probe
    /// backoff: the next `1 << deep_fails` first-level probe misses break
    /// their run without paying the LLT/L2 probes (see
    /// [`DEEP_BACKOFF_SHIFT_CAP`]).
    #[inline]
    fn note_deep_fail(&mut self) {
        self.deep_fails = (self.deep_fails + 1).min(DEEP_BACKOFF_SHIFT_CAP);
        self.deep_skip = 1u64 << self.deep_fails;
    }

    fn fast_retire_run(&mut self, events: &[Event], prefetch: bool) -> usize {
        // Run-wide predicates, hoisted: a current code page must exist
        // (the first-ever event always slow-steps) and no DOA drain may
        // be pending.
        let Some(code_vpn) = self.cur_code_vpn else { return 0 };
        if !self.hier.pending_doa_evictions.is_empty() {
            return 0;
        }
        // Instruction budget to the sampler boundary: every fast event
        // must leave `instructions()` strictly below `next_sample_at` so
        // the event that reaches the boundary takes the slow path and
        // samples there, exactly like event-at-a-time replay.
        let mut budget =
            self.next_sample_at.saturating_sub(self.core.instructions()).saturating_sub(1);
        // The tier-1 latency: L1 D-TLB hit + L1D hit, exactly the sum the
        // slow path accumulates when both first levels hit and the code
        // page is unchanged. Tier-2 events add the missed level's latency
        // per call via `issue_mem_run_at`.
        let l1_tlb_latency = u64::from(self.l1d_tlb.latency);
        let llt_latency = u64::from(self.llt.latency);
        let mut run = MemRun::new(l1_tlb_latency + u64::from(self.hier.l1d.latency));
        // Within a run the fast path commits hits and tier-2 upper-level
        // refills — recency stamps and clocks move, and the L1 D-TLB/L1D
        // gain entries, but nothing below them changes — so a probe
        // result stays valid for every later event on the same page (or
        // block) until a tier-2 commit fills the probed structure (which
        // clears the cache). Caching the last one turns the common
        // same-page / sub-block-stride patterns into a compare instead
        // of a tag scan. The *commits* still happen once per event.
        let mut last_tlb: Option<(Vpn, TlbProbe)> = None;
        let mut last_l1d: Option<(BlockAddr, usize)> = None;
        let mut taken = 0usize;
        for &event in events {
            match event {
                Event::Compute { ops } => {
                    let ops = u64::from(ops);
                    if ops > budget {
                        break;
                    }
                    budget -= ops;
                    self.core.issue_compute(ops);
                }
                Event::Mem { pc, vaddr, kind: _, dependent } => {
                    // `kind` is irrelevant on this path: `Hierarchy::access`
                    // ignores it, and no other slow-path state depends on it.
                    if budget == 0 || VirtAddr::new(pc.raw()).vpn() != code_vpn {
                        break;
                    }
                    let vpn = vaddr.vpn();
                    // --- classification: probes only, no state moves ---
                    let tlb_tier = match last_tlb {
                        Some((cached_vpn, hit)) if cached_vpn == vpn => TlbTier::L1(hit),
                        _ => match self.l1d_tlb.probe(vpn) {
                            Some(hit) => {
                                last_tlb = Some((vpn, hit));
                                TlbTier::L1(hit)
                            }
                            None if self.deep_skip > 0 => {
                                self.deep_skip -= 1;
                                break;
                            }
                            None => match self.probe_llt(vpn) {
                                Some(probe) => TlbTier::Llt(probe),
                                None => {
                                    self.note_deep_fail();
                                    break;
                                }
                            },
                        },
                    };
                    let pfn = match tlb_tier {
                        TlbTier::L1(hit) => hit.pfn,
                        TlbTier::Llt(ref probe) => self.probed_llt_pfn(vpn, probe),
                    };
                    let pa = PhysAddr::new(pfn.base().raw() | vaddr.page_offset());
                    let block = pa.block();
                    let cache_tier = match last_l1d {
                        Some((cached_block, way)) if cached_block == block => {
                            CacheTier::L1d(way)
                        }
                        _ => match self.hier.probe_l1d(block) {
                            Some(way) => {
                                last_l1d = Some((block, way));
                                CacheTier::L1d(way)
                            }
                            None if self.deep_skip > 0 => {
                                self.deep_skip -= 1;
                                break;
                            }
                            None => match self.hier.probe_l2(block) {
                                Some(way) => CacheTier::L2(way),
                                None => {
                                    self.note_deep_fail();
                                    break;
                                }
                            },
                        },
                    };
                    if prefetch {
                        // Per-retired-access hint, like the slow loop's
                        // per-event hint (hints are state-free scheduling
                        // advice, so the slightly different cadence cannot
                        // change simulated state).
                        if let Some(&Event::Mem { vaddr: ahead, .. }) =
                            events.get(taken + PREFETCH_DISTANCE)
                        {
                            self.l1d_tlb.prefetch(ahead);
                            self.hier.l1d.array().prefetch_set(ahead.raw() >> BLOCK_SHIFT);
                        }
                    }
                    budget -= 1;
                    // --- commits, in the slow path's order: translation,
                    // then hierarchy, then the core issue ---
                    self.mem_ops += 1;
                    let mut latency = l1_tlb_latency;
                    let mut tier2 = false;
                    match tlb_tier {
                        TlbTier::L1(hit) => self.l1d_tlb.commit_probe(vpn, hit),
                        TlbTier::Llt(probe) => {
                            latency += llt_latency;
                            self.l1d_tlb.commit_miss();
                            self.commit_llt_hit(vpn, &probe, pc, Side::Data);
                            // The commit refilled the L1 D-TLB (and, under
                            // the victim organization, possibly churned
                            // the LLT): the cached L1 probe is stale.
                            last_tlb = None;
                            tier2 = true;
                        }
                    }
                    latency += match cache_tier {
                        CacheTier::L1d(way) => self.hier.commit_l1d_hit(block, way),
                        CacheTier::L2(way) => {
                            // The commit refills the L1D, possibly evicting
                            // the cached block: the cached probe is stale.
                            last_l1d = None;
                            tier2 = true;
                            self.hier.commit_l2_hit(block, way)
                        }
                    };
                    if tier2 {
                        self.fast_l2_hits += 1;
                        // A deep probe paid off: the stream's misses are
                        // terminating at L2/LLT again, so stop suppressing.
                        self.deep_fails = 0;
                    } else {
                        self.fast_hits += 1;
                    }
                    self.core.issue_mem_run_at(&mut run, latency, dependent);
                }
            }
            taken += 1;
        }
        taken
    }

    /// Zeroes all statistics while keeping the machine state (cache/TLB/
    /// predictor contents) warm. Use after a warm-up phase.
    pub fn reset_stats(&mut self) {
        self.core = CoreModel::new(
            self.config.core.width,
            self.config.core.rob_size,
            self.config.core.mem_slots,
        );
        self.l1i_tlb.stats = Default::default();
        self.l1d_tlb.stats = Default::default();
        self.llt.stats = Default::default();
        self.hier.l1d.stats = Default::default();
        self.hier.l2.stats = Default::default();
        self.hier.llc.stats = Default::default();
        self.hier.llc_evictions = Default::default();
        self.hier.llc_sampler = DeadnessSampler::new();
        self.hier.llc_demand_misses = 0;
        self.hier.llc_walker_misses = 0;
        self.walker = Walker::new(&self.config.pwc);
        self.llt_evictions = Default::default();
        self.llt_sampler = DeadnessSampler::new();
        self.doa_blocks_on_doa_pages = 0;
        self.doa_blocks_classified = 0;
        self.mem_ops = 0;
        self.fast_hits = 0;
        self.fast_l2_hits = 0;
        self.slow_steps = 0;
        self.next_sample_at = self.sample_interval;
    }

    /// Processes one event.
    pub fn step(&mut self, event: Event) {
        self.slow_steps += 1;
        match event {
            Event::Compute { ops } => self.core.issue_compute(u64::from(ops)),
            Event::Mem { pc, vaddr, kind, dependent } => {
                self.mem_access(pc, vaddr, kind, dependent);
            }
        }
        if self.core.instructions() >= self.next_sample_at {
            self.llt_sampler.take_sample(self.llt.array().seq());
            self.hier.sample_llc();
            self.next_sample_at += self.sample_interval;
        }
    }

    fn mem_access(&mut self, pc: Pc, vaddr: VirtAddr, kind: AccessKind, dependent: bool) {
        self.mem_ops += 1;
        let mut latency = 0u64;
        // Instruction-side translation when execution enters a new code
        // page (fetch within a page reuses the current translation).
        let code_vpn = VirtAddr::new(pc.raw()).vpn();
        if self.cur_code_vpn != Some(code_vpn) {
            self.cur_code_vpn = Some(code_vpn);
            let (_, ilat) = self.translate(pc, code_vpn, Side::Instruction);
            latency += ilat;
        }
        let (pfn, tlat) = self.translate(pc, vaddr.vpn(), Side::Data);
        latency += tlat;
        let pa = PhysAddr::new(pfn.base().raw() | vaddr.page_offset());
        latency += self.hier.access(pa, kind, pc, true);
        self.core.issue_mem(latency, dependent);
        self.drain_doa_evictions();
    }

    /// The LLT/shadow/reverse-map key for a page of `size` holding the
    /// 4 KB-grain `vpn`: the size's *unit* VPN, tagged with the size
    /// index when several sizes can coexist. Untagged single-size keys
    /// keep the paper's 4 KB configuration byte-identical.
    #[inline]
    fn llt_key(&self, size: PageSize, vpn: Vpn) -> Vpn {
        self.llt_key_from_unit(size, size.vpn_unit(vpn))
    }

    #[inline]
    fn llt_key_from_unit(&self, size: PageSize, unit: Vpn) -> Vpn {
        if self.size_tagged {
            Vpn::new((unit.raw() << 2) | size.index())
        } else {
            unit
        }
    }

    /// Key into the reverse translation map for a unit frame of `size`.
    #[inline]
    fn pfn_map_key(&self, size: PageSize, unit_pfn: Pfn) -> Pfn {
        if self.size_tagged {
            Pfn::new((unit_pfn.raw() << 2) | size.index())
        } else {
            unit_pfn
        }
    }

    /// Reconstructs the 4 KB-grain frame from a unit translation.
    #[inline]
    fn compose_pfn(size: PageSize, unit_pfn: u64, vpn: Vpn) -> Pfn {
        Pfn::new((unit_pfn << size.unit_shift()) | size.frame_offset(vpn))
    }

    /// Side-effect-free unified-LLT probe: each enabled size peeks its own
    /// key, smallest first, without touching clocks, counters, or policy
    /// hooks — the classification half of the translation path's second
    /// level. [`System::commit_llt_hit`] replays the state transitions.
    fn probe_llt(&self, vpn: Vpn) -> Option<LltProbe> {
        for (missed_probes, &size) in self.llt_sizes.iter().enumerate() {
            let key = self.llt_key(size, vpn);
            if let Some(way) = self.llt.array().peek(key.raw(), key.raw()) {
                return Some(LltProbe { size, key, way, missed_probes });
            }
        }
        None
    }

    /// The frame a [`probe_llt`](System::probe_llt) hit resolves `vpn` to,
    /// read without committing (the hit's payload is immutable until the
    /// commit, whose `on_hit` hook touches only the policy state word).
    fn probed_llt_pfn(&self, vpn: Vpn, probe: &LltProbe) -> Pfn {
        let entry = self.llt.array().payload(probe.key.raw(), probe.way);
        Self::compose_pfn(probe.size, entry.pfn, vpn)
    }

    /// Commits a [`probe_llt`](System::probe_llt) hit exactly as the
    /// pre-split lookup loop did: the group counters, one lookup clock per
    /// smaller size probed first, the hit's recency/lifetime update, the
    /// policy hooks in their original order, and the L1 refill. Shared
    /// verbatim between [`System::translate`] and the second fast tier,
    /// so the two paths cannot drift.
    fn commit_llt_hit(&mut self, vpn: Vpn, probe: &LltProbe, pc: Pc, side: Side) -> Pfn {
        self.llt.stats.lookups += 1;
        for _ in 0..probe.missed_probes {
            self.llt.array_mut().commit_miss();
        }
        self.llt.array_mut().commit_hit(probe.key.raw(), probe.way);
        self.llt.stats.hits += 1;
        if !self.llt_null {
            self.llt_policy.on_lookup(probe.key, true);
            // Policies that don't observe set views skip view construction.
            if self.llt_policy.uses_set_views() {
                let policy = &mut self.llt_policy;
                self.llt
                    .array_mut()
                    .with_set_views(probe.key.raw(), Some(probe.way), |views| {
                        policy.on_set_access(views)
                    });
            }
        }
        let entry = self.llt.array_mut().payload_mut(probe.key.raw(), probe.way);
        let unit_pfn = entry.pfn;
        if !self.llt_null {
            self.llt_policy.on_hit(probe.key, &mut entry.state);
        }
        let pfn = Self::compose_pfn(probe.size, unit_pfn, vpn);
        self.fill_l1(side, probe.size, vpn, pfn, pc);
        pfn
    }

    /// Translates `vpn`, going L1 TLB → LLT (+ shadow) → page walk.
    fn translate(&mut self, pc: Pc, vpn: Vpn, side: Side) -> (Pfn, u64) {
        let l1 = match side {
            Side::Instruction => &mut self.l1i_tlb,
            Side::Data => &mut self.l1d_tlb,
        };
        let mut latency = u64::from(l1.latency);
        if let Some(pfn) = l1.lookup(vpn) {
            return (pfn, latency);
        }
        latency += u64::from(self.llt.latency);

        // --- LLT lookup with policy hooks (all no-ops for the baseline,
        // so `llt_null` skips the dynamic dispatch without changing
        // behavior). The unified LLT holds every size; probe-then-commit
        // (the probe classifies side-effect-free, the commit replays the
        // per-size lookup clocks, counters, and hooks in the pre-split
        // order), shared with the second fast tier. ---
        if let Some(probe) = self.probe_llt(vpn) {
            let pfn = self.commit_llt_hit(vpn, &probe, pc, side);
            return (pfn, latency);
        }
        self.llt.stats.lookups += 1;
        for _ in 0..self.llt_sizes.len() {
            self.llt.array_mut().commit_miss();
        }
        self.llt.stats.misses += 1;
        // Policy hooks see the key the page would occupy at its mapped
        // size, so training and the shadow probe agree with the eventual
        // fill.
        let hook_size = self.page_table.probe_size(vpn);
        let hook_key = self.llt_key(hook_size, vpn);
        if !self.llt_null {
            self.llt_policy.on_lookup(hook_key, false);
            // Policies that don't observe set views skip view construction.
            if self.llt_policy.uses_set_views() {
                let policy = &mut self.llt_policy;
                self.llt
                    .array_mut()
                    .with_set_views(hook_key.raw(), None, |views| policy.on_set_access(views));
            }
        }

        // --- LLT miss: shadow/victim-buffer probe ---
        if !self.llt_null {
            if let Some(unit_pfn) = self.llt_policy.shadow_lookup(hook_key) {
                self.llt.stats.shadow_hits += 1;
                // Paper Fig. 6a: re-allocate the mispredicted entry in the
                // LLT.
                let state = self.llt_policy.refill_state(hook_key, pc);
                self.fill_llt(hook_key, unit_pfn, InsertPriority::Normal, state);
                let pfn = Self::compose_pfn(hook_size, unit_pfn.raw(), vpn);
                self.fill_l1(side, hook_size, vpn, pfn, pc);
                return (pfn, latency);
            }
        }

        // --- True miss: page walk ---
        self.mshr.allocate(vpn, pc);
        let outcome = self.walker.walk(vpn, &mut self.page_table, &mut self.hier);
        latency += outcome.latency;
        let size = outcome.size;
        let key = self.llt_key(size, vpn);
        let unit_pfn = size.pfn_unit(outcome.pfn);
        self.pfn_to_vpn.insert(self.pfn_map_key(size, unit_pfn), key);
        let fill_pc = self.mshr.complete(vpn);
        if self.config.tlb_fill == TlbFillPolicy::Both {
            self.llt_insert(size, key, unit_pfn, fill_pc);
        }
        // Under L1ThenVictim, the LLT is filled when the L1 evicts the
        // entry (see `fill_l1`).
        self.fill_l1(side, size, vpn, outcome.pfn, fill_pc);
        (outcome.pfn, latency)
    }

    /// Runs the LLT fill-decision flow (policy consultation, bypass
    /// bookkeeping, dpPred → PFQ message). `key` and `unit_pfn` are at
    /// `size`'s grain: one huge page is one prediction unit.
    fn llt_insert(&mut self, size: PageSize, key: Vpn, unit_pfn: Pfn, pc: Pc) {
        // The baseline always allocates with default priority and state —
        // exactly what `LltPolicy::on_fill`'s default body returns.
        let decision = if self.llt_null {
            PageFillDecision::ALLOCATE
        } else {
            self.llt_policy.on_fill(key, unit_pfn, pc)
        };
        match decision {
            PageFillDecision::Allocate { priority, state } => {
                self.fill_llt(key, unit_pfn, priority, state);
            }
            PageFillDecision::Bypass => {
                self.llt.stats.bypasses += 1;
                self.llt_policy.on_bypass(key, unit_pfn);
                // A bypassed page had no LLT stay; for the block↔page
                // correlation it counts as a (predicted) dead page.
                self.page_stay_doa.insert(key, true);
                // dpPred → PFQ message (paper Fig. 7), renamed to the
                // prediction unit (the policy's largest page size).
                let pfq_pfn = Pfn::new(unit_pfn.raw() >> (self.pfq_unit_shift - size.unit_shift()));
                self.hier.policy_mut().note_doa_page(pfq_pfn);
            }
        }
    }

    fn fill_l1(&mut self, side: Side, size: PageSize, vpn: Vpn, pfn: Pfn, pc: Pc) {
        // Under the victim-TLB organization the L1 entry remembers the PC
        // that brought it, so the LLT policy can be consulted when the
        // entry trickles down at L1-eviction time.
        let state = match self.config.tlb_fill {
            TlbFillPolicy::Both => 0,
            TlbFillPolicy::L1ThenVictim => pc.raw() as u32,
        };
        let l1 = match side {
            Side::Instruction => &mut self.l1i_tlb,
            Side::Data => &mut self.l1d_tlb,
        };
        let evicted = l1.fill(size, vpn, pfn, InsertPriority::Normal, state);
        if self.config.tlb_fill == TlbFillPolicy::L1ThenVictim {
            if let Some((evicted_size, evicted_unit, entry, _)) = evicted {
                let evicted_key = self.llt_key_from_unit(evicted_size, evicted_unit);
                if !self.llt.contains(evicted_key) {
                    self.llt_insert(
                        evicted_size,
                        evicted_key,
                        Pfn::new(entry.pfn),
                        Pc::new(u64::from(entry.state)),
                    );
                }
            }
        }
    }

    fn fill_llt(&mut self, key: Vpn, unit_pfn: Pfn, priority: InsertPriority, state: u32) {
        let evicted = if self.llt.array().set_full(key.raw()) {
            let choice = if !self.llt_null && self.llt_policy.overrides_victim() {
                let policy = &mut self.llt_policy;
                self.llt
                    .array_mut()
                    .with_set_views(key.raw(), None, |views| policy.pick_victim(views))
            } else {
                None
            };
            match choice {
                Some(way) => self.llt.fill_way(key, way, unit_pfn, priority, state),
                None => self.llt.fill(key, unit_pfn, priority, state),
            }
        } else {
            self.llt.fill(key, unit_pfn, priority, state)
        };
        if let Some((evicted_key, entry, life)) = evicted {
            let end_seq = self.llt.array().seq();
            self.llt_evictions.record(life, end_seq);
            self.llt_sampler.record_stay(life, end_seq);
            self.page_stay_doa.insert(evicted_key, life.hits == 0);
            if !self.llt_null {
                self.llt_policy.on_evict(EvictedPage {
                    vpn: evicted_key,
                    pfn: Pfn::new(entry.pfn),
                    state: entry.state,
                    life,
                });
            }
        }
    }

    /// Classifies DOA LLC evictions against dead-page state (Table III).
    fn drain_doa_evictions(&mut self) {
        if self.hier.pending_doa_evictions.is_empty() {
            return;
        }
        let mut pending = std::mem::take(&mut self.hier.pending_doa_evictions);
        for pfn in pending.drain(..) {
            // The block's 4 KB-grain frame may be mapped at any enabled
            // size; the reverse map resolves to the page's LLT key.
            let mut mapped = None;
            for &size in self.llt_sizes {
                let map_key = self.pfn_map_key(size, size.pfn_unit(pfn));
                if let Some(&key) = self.pfn_to_vpn.get(&map_key) {
                    mapped = Some(key);
                    break;
                }
            }
            let Some(key) = mapped else {
                continue; // page-table frame or unmapped: unclassifiable
            };
            let page_doa = match self.llt.resident_hits(key) {
                Some(hits) => hits == 0,
                None => match self.page_stay_doa.get(&key) {
                    Some(&doa) => doa,
                    None => continue,
                },
            };
            self.doa_blocks_classified += 1;
            if page_doa {
                self.doa_blocks_on_doa_pages += 1;
            }
        }
        self.hier.pending_doa_evictions = pending;
    }

    /// Assembles the current statistics. Non-destructive: resident entries
    /// are flushed into *clones* of the deadness samplers, so this may be
    /// called repeatedly.
    pub fn stats(&self) -> SimStats {
        let mut llt_sampler = self.llt_sampler.clone();
        let llt_end = self.llt.array().seq();
        for line in self.llt.array().iter_valid() {
            llt_sampler.record_stay(line.life(), llt_end);
        }
        let mut llc_sampler = self.hier.llc_sampler.clone();
        let llc_end = self.hier.llc.array().seq();
        for line in self.hier.llc.array().iter_valid() {
            llc_sampler.record_stay(line.life(), llc_end);
        }
        SimStats {
            instructions: self.core.instructions(),
            mem_ops: self.mem_ops,
            cycles: self.core.cycles(),
            l1i_tlb: self.l1i_tlb.stats,
            l1d_tlb: self.l1d_tlb.stats,
            llt: self.llt.stats,
            l1d: self.hier.l1d.stats,
            l2: self.hier.l2.stats,
            llc: self.hier.llc.stats,
            walks: self.walker.walks,
            walk_pte_loads: self.walker.pte_loads,
            pwc_hits: self.walker.pwc_hits(),
            walk_cycles: self.walker.walk_cycles,
            llt_evictions: self.llt_evictions,
            llc_evictions: self.hier.llc_evictions,
            llt_deadness: llt_sampler.stats(),
            llc_deadness: llc_sampler.stats(),
            doa_blocks_on_doa_pages: self.doa_blocks_on_doa_pages,
            doa_blocks_classified: self.doa_blocks_classified,
            fast_hits: self.fast_hits,
            fast_l2_hits: self.fast_l2_hits,
            slow_steps: self.slow_steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Single-PC load generator shared by every test below: emits
    /// `remaining` loads at addresses `addr(0), addr(1), …`. The two
    /// constructors cover the patterns the tests need — a strided
    /// single-pass stream (pages never revisited) and a small looping
    /// working set (pages revisited forever).
    struct SyntheticLoads {
        i: u64,
        remaining: u64,
        addr: Box<dyn Fn(u64) -> u64>,
    }

    impl SyntheticLoads {
        /// Single-pass reader from `0x1000_0000` at byte stride `stride`.
        fn strided(stride: u64, remaining: u64) -> Self {
            SyntheticLoads { i: 0, remaining, addr: Box::new(move |i| 0x1000_0000 + i * stride) }
        }

        /// Loop over `pages` consecutive pages from `0x2000_0000`.
        fn looping(pages: u64, remaining: u64) -> Self {
            SyntheticLoads {
                i: 0,
                remaining,
                addr: Box::new(move |i| 0x2000_0000 + (i % pages) * 4096),
            }
        }
    }

    impl Workload for SyntheticLoads {
        fn name(&self) -> &str {
            "synthetic-loads"
        }
        fn next_event(&mut self) -> Option<Event> {
            if self.remaining == 0 {
                return None;
            }
            self.remaining -= 1;
            let va = VirtAddr::new((self.addr)(self.i));
            self.i += 1;
            Some(Event::load(Pc::new(0x40_0000), va))
        }
    }

    fn system() -> System {
        System::new(SystemConfig::paper_baseline()).expect("baseline config is valid")
    }

    // Most tests below simulate tens of thousands of memory operations;
    // under Miri's interpreter that is minutes per test, so only the
    // small ones run there (the CI Miri job covers `memsim` for the
    // pointer/aliasing behavior of the SoA arrays and the batched replay
    // path, not for throughput).
    #[test]
    #[cfg_attr(miri, ignore = "simulates 20k mem ops; too slow under Miri")]
    fn conservation_laws() {
        let mut sys = system();
        let stats = sys.run(&mut SyntheticLoads::strided(64, 20_000));
        assert_eq!(stats.mem_ops, 20_000);
        for s in [&stats.l1d_tlb, &stats.llt, &stats.l1d, &stats.l2, &stats.llc] {
            assert_eq!(s.hits + s.misses, s.lookups, "hits + misses must equal lookups");
        }
        assert!(stats.cycles > 0);
        assert!(stats.instructions >= stats.mem_ops);
    }

    #[test]
    #[cfg_attr(miri, ignore = "simulates 6.4k mem ops; too slow under Miri")]
    fn page_locality_hits_l1_tlb() {
        let mut sys = system();
        // 64 accesses per 4 KiB page at stride 64: one TLB miss per page.
        let stats = sys.run(&mut SyntheticLoads::strided(64, 6400));
        assert_eq!(stats.l1d_tlb.misses, 100, "one L1 TLB miss per fresh page");
        assert_eq!(stats.walks, 100 + stats.l1i_tlb.misses, "every LLT miss walks");
    }

    #[test]
    #[cfg_attr(miri, ignore = "simulates 20k mem ops; too slow under Miri")]
    fn streaming_pages_are_doa_in_llt() {
        let mut sys = system();
        sys.set_sample_interval(1000);
        // Page-stride stream: each page touched once -> all LLT entries DOA.
        let stats = sys.run(&mut SyntheticLoads::strided(4096, 20_000));
        assert!(stats.llt_evictions.total > 0);
        assert!(
            stats.llt_evictions.doa_fraction() > 0.95,
            "single-touch pages must be DOA (got {})",
            stats.llt_evictions.doa_fraction()
        );
        let deadness = stats.llt_deadness;
        assert!(deadness.doa_fraction() > 0.9, "resident entries are DOA-resident");
    }

    #[test]
    #[cfg_attr(miri, ignore = "simulates 10k mem ops; too slow under Miri")]
    fn repeated_small_working_set_is_live() {
        let mut sys = system();
        let stats = sys.run(&mut SyntheticLoads::looping(16, 10_000));
        // 16 data pages plus the code page: cold misses only, then hits.
        assert_eq!(stats.llt.misses, 16 + stats.l1i_tlb.misses);
        assert_eq!(stats.walks, stats.llt.misses);
        // Page-stride accesses miss L1/L2 and hit the LLC; throughput is
        // bounded by the 10 line-fill buffers over the ~56-cycle LLC hit.
        assert!(stats.ipc() > 0.15, "ipc = {}", stats.ipc());
    }

    #[test]
    #[cfg_attr(miri, ignore = "simulates 5k mem ops; too slow under Miri")]
    fn stats_are_idempotent() {
        let mut sys = system();
        sys.run(&mut SyntheticLoads::strided(4096, 5000));
        let a = sys.stats();
        let b = sys.stats();
        assert_eq!(a.llt_deadness, b.llt_deadness);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn run_until_bounds_mem_ops() {
        let mut sys = system();
        let stats = sys.run_until(&mut SyntheticLoads::strided(64, 1_000_000), 1000);
        assert_eq!(stats.mem_ops, 1000);
    }

    #[test]
    #[cfg_attr(miri, ignore = "simulates 12.8k mem ops; too slow under Miri")]
    fn reset_stats_keeps_state_warm() {
        let mut sys = system();
        sys.run(&mut SyntheticLoads::strided(64, 6400));
        sys.reset_stats();
        // Re-run over the same pages: everything already mapped; the
        // 400 KiB working set is LLC-resident, so the LLC now hits.
        let stats = sys.run(&mut SyntheticLoads::strided(64, 6400));
        assert_eq!(stats.mem_ops, 6400);
        assert_eq!(stats.llt.misses + stats.llt.hits, stats.llt.lookups);
        assert!(stats.llc.hits > 0);
    }

    #[test]
    #[cfg_attr(miri, ignore = "simulates 6.4k mem ops; too slow under Miri")]
    fn victim_fill_policy_populates_llt_on_l1_eviction() {
        let config = SystemConfig::paper_baseline().with_tlb_fill(TlbFillPolicy::L1ThenVictim);
        let mut sys = System::new(config).unwrap();
        // Touch 100 fresh pages: more than the 64-entry L1 D-TLB, so
        // evictions trickle translations into the LLT.
        let stats = sys.run(&mut SyntheticLoads::strided(64, 6400));
        assert!(stats.llt.fills > 0, "L1 evictions must fill the LLT");
        // Re-walk count stays one per page: L1 miss → LLT (victim) hit.
        assert_eq!(stats.walks, stats.llt.misses - stats.llt.shadow_hits);
    }

    #[test]
    #[cfg_attr(miri, ignore = "simulates 60k mem ops; too slow under Miri")]
    fn fill_policies_perform_similarly() {
        // Paper Section III: "we did not find any significant performance
        // difference between these two alternative designs."
        let mut both = System::new(SystemConfig::paper_baseline()).unwrap();
        let a = both.run(&mut SyntheticLoads::strided(4096, 30_000));
        let config = SystemConfig::paper_baseline().with_tlb_fill(TlbFillPolicy::L1ThenVictim);
        let mut victim = System::new(config).unwrap();
        let b = victim.run(&mut SyntheticLoads::strided(4096, 30_000));
        let ratio = a.ipc() / b.ipc();
        assert!((0.9..1.1).contains(&ratio), "IPC ratio {ratio} too far from 1");
    }

    #[test]
    #[cfg_attr(miri, ignore = "simulates 11k mem ops; too slow under Miri")]
    fn run_events_replays_borrowed_streams_identically() {
        use dpc_types::stream::EventStream;
        // Capture exactly the prefix a 3000-mem-op run consumes, then
        // drive a fresh system straight from the borrowed stream.
        let stream =
            EventStream::capture_mem_ops(&mut SyntheticLoads::strided(64, 1_000_000), 3000);
        let mut live_sys = system();
        let live = live_sys.run_until(&mut SyntheticLoads::strided(64, 1_000_000), 3000);
        let mut replay_sys = system();
        let replayed = replay_sys.run_events(&mut stream.iter(), 3000);
        assert_eq!(replayed.mem_ops, 3000);
        assert_eq!(replayed.cycles, live.cycles, "replay must be bit-identical to live");
        assert_eq!(replayed.llt, live.llt);
        assert_eq!(replayed.llc, live.llc);
        // The budget, not the stream end, stops the run: a longer stream
        // replays the same prefix.
        let longer =
            EventStream::capture_mem_ops(&mut SyntheticLoads::strided(64, 1_000_000), 5000);
        let mut prefix_sys = system();
        let prefix = prefix_sys.run_events(&mut longer.iter(), 3000);
        assert_eq!(prefix.cycles, live.cycles);
    }

    #[test]
    fn run_stream_matches_event_at_a_time_replay() {
        // Small enough to run under Miri (which is how CI exercises the
        // chunk-decode path for aliasing bugs) yet longer than two
        // EVENT_CHUNKs so chunk boundaries are crossed, with a warm-up/
        // measure split landing mid-chunk.
        let stream = EventStream::capture_mem_ops(&mut SyntheticLoads::strided(4096, 1000), 600);
        let mut item_sys = system();
        let mut item_cursor = stream.iter();
        item_sys.run_events(&mut item_cursor, 100);
        item_sys.reset_stats();
        let item = item_sys.run_events(&mut item_cursor, 500);

        let mut chunk_sys = system();
        let mut cursor = StreamCursor::default();
        chunk_sys.run_stream(&stream, &mut cursor, 100);
        chunk_sys.reset_stats();
        let chunked = chunk_sys.run_stream(&stream, &mut cursor, 500);

        assert_eq!(chunked.mem_ops, item.mem_ops);
        assert_eq!(chunked.cycles, item.cycles, "batched replay must be bit-identical");
        assert_eq!(chunked.llt, item.llt);
        assert_eq!(chunked.llc, item.llc);
        assert_eq!(cursor.mem_position(), 600);
        // A typed (monomorphized) system consumes the same stream with
        // the same result as the dyn fallback above.
        let mut typed_sys = System::with_typed_policies(
            SystemConfig::paper_baseline(),
            crate::policy::NullPagePolicy,
            crate::policy::NullBlockPolicy,
        )
        .expect("baseline config is valid");
        let mut typed_cursor = StreamCursor::default();
        typed_sys.run_stream(&stream, &mut typed_cursor, 100);
        typed_sys.reset_stats();
        let typed = typed_sys.run_stream(&stream, &mut typed_cursor, 500);
        assert_eq!(typed.cycles, item.cycles, "typed and dyn systems must agree");
        assert_eq!(typed.llt, item.llt);
    }

    /// The fast path must hand the sampler-boundary event to the slow
    /// path so deadness samples fire at identical instruction counts. A
    /// tiny looping working set makes (almost) every event fast-path
    /// eligible, and a 37-instruction sample interval forces a boundary
    /// inside essentially every run.
    #[test]
    fn fast_path_respects_sampler_boundaries() {
        let stream = EventStream::capture_mem_ops(&mut SyntheticLoads::looping(4, 2000), 800);
        let mut slow_sys = system();
        slow_sys.set_sample_interval(37);
        let slow = slow_sys.run_events(&mut stream.iter(), 800);
        let mut fast_sys = system();
        fast_sys.set_sample_interval(37);
        let fast = fast_sys.run_stream(&stream, &mut StreamCursor::default(), 800);
        assert_eq!(fast, slow, "fast-path run must be architecturally identical");
        assert_eq!(fast.llt_deadness, slow.llt_deadness, "same samples at same boundaries");
        assert_eq!(fast.llc_deadness, slow.llc_deadness);
        assert_eq!(slow.fast_hits, 0, "run_events never takes the fast path");
        if dpc_types::simd::fastpath_enabled() {
            assert!(fast.fast_hits > 0, "looping hits must retire on the fast path");
            assert!(
                fast.slow_steps < slow.slow_steps,
                "the fast path must take work away from step()"
            );
        } else {
            assert_eq!(fast.fast_hits, 0);
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "simulates 19.2k mem ops; too slow under Miri")]
    fn huge_pages_shorten_walks_and_cut_tlb_misses() {
        use dpc_types::AllocPolicy;
        let run = |policy| {
            let config = SystemConfig::paper_baseline().with_page_policy(policy);
            let mut sys = System::new(config).unwrap();
            sys.run(&mut SyntheticLoads::strided(4096, 6400))
        };
        let base = run(AllocPolicy::Base4K);
        let two_m = run(AllocPolicy::Uniform(PageSize::Size2M));
        let one_g = run(AllocPolicy::Uniform(PageSize::Size1G));
        for s in [&base, &two_m, &one_g] {
            assert_eq!(s.llt.hits + s.llt.misses, s.llt.lookups);
        }
        // 6400 pages span 13 regions at 2 MB and 1 at 1 GB: almost every
        // access becomes an L1 TLB hit, and the few walks are shorter.
        assert!(two_m.llt.misses < base.llt.misses / 10);
        assert!(one_g.llt.misses < two_m.llt.misses);
        // Far fewer walks, and a smaller total walk burden (count and
        // cycles); per-walk averages are not comparable because the 4 KB
        // run's walks are mostly warm leaf-PWC hits.
        assert!(two_m.walks < base.walks / 10);
        assert!(one_g.walks < two_m.walks);
        assert!(two_m.walk_pte_loads < base.walk_pte_loads);
        assert!(
            two_m.walk_cycles < base.walk_cycles,
            "2 MB total walk cycles must shrink: {} vs {}",
            two_m.walk_cycles,
            base.walk_cycles
        );
        assert!(one_g.walk_cycles < two_m.walk_cycles);
    }

    #[test]
    #[cfg_attr(miri, ignore = "simulates 12.8k mem ops; too slow under Miri")]
    fn promotion_policy_converges_and_stays_consistent() {
        use dpc_types::AllocPolicy;
        let config = SystemConfig::paper_baseline()
            .with_page_policy(AllocPolicy::Promote2M { threshold: 64 });
        let mut sys = System::new(config).unwrap();
        // Two passes over 100 pages (64 accesses each): regions promote
        // during the first pass, the second runs on 2 MB mappings.
        let stats = sys.run(&mut SyntheticLoads::strided(64, 6400));
        assert_eq!(stats.l1d_tlb.hits + stats.l1d_tlb.misses, stats.l1d_tlb.lookups);
        sys.reset_stats();
        let warm = sys.run(&mut SyntheticLoads::strided(64, 6400));
        assert_eq!(warm.mem_ops, 6400);
        // Promoted regions cover the working set with one L1 D-TLB entry
        // per 2 MB: the second pass misses (almost) never.
        assert!(
            warm.l1d_tlb.misses < stats.l1d_tlb.misses / 4,
            "promotion must cut L1 D-TLB misses: {} -> {}",
            stats.l1d_tlb.misses,
            warm.l1d_tlb.misses
        );
    }

    #[test]
    #[cfg_attr(miri, ignore = "simulates 9.6k mem ops; too slow under Miri")]
    fn huge_page_runs_are_deterministic() {
        use dpc_types::AllocPolicy;
        for policy in [
            AllocPolicy::Uniform(PageSize::Size2M),
            AllocPolicy::Uniform(PageSize::Size1G),
            AllocPolicy::Promote2M { threshold: 64 },
        ] {
            let run = || {
                let config = SystemConfig::paper_baseline().with_page_policy(policy);
                let mut sys = System::new(config).unwrap();
                sys.run(&mut SyntheticLoads::strided(1024, 3200))
            };
            let a = run();
            let b = run();
            assert_eq!(a.cycles, b.cycles, "{policy:?} must be deterministic");
            assert_eq!(a.llt, b.llt);
            assert_eq!(a.llc, b.llc);
        }
    }

    #[test]
    fn invalid_config_rejected() {
        let mut config = SystemConfig::paper_baseline();
        config.l2_tlb.ways = 0;
        let err = System::new(config).unwrap_err();
        assert!(matches!(err, SystemError::InvalidConfig(_)));
        assert!(err.to_string().contains("l2_tlb"));
    }
}
