//! A single set-associative cache level.

use crate::set_assoc::{Evicted, HasPolicyState, InsertPriority, LineLife, SetAssoc};
use crate::stats::StructStats;
use dpc_types::{BlockAddr, CacheConfig};

/// Per-block metadata: 32 bits of policy scratch state (cbPred's DP bit,
/// AIP's counters, SHiP's signature, ...).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockInfo {
    /// Policy scratch state.
    pub state: u32,
}

impl HasPolicyState for BlockInfo {
    fn policy_state_mut(&mut self) -> &mut u32 {
        &mut self.state
    }
}

/// One cache level. Blocks are tagged by their full [`BlockAddr`]; the set
/// index is derived from the same address, so tags are unambiguous across
/// sets (convenient for back-invalidation).
#[derive(Debug)]
pub struct Cache {
    array: SetAssoc<BlockInfo>,
    /// Hit latency in cycles.
    pub latency: u32,
    /// Counters for this level.
    pub stats: StructStats,
}

impl Cache {
    /// Builds a cache level from its configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero geometry; validate the [`CacheConfig`] first.
    pub fn new(config: &CacheConfig) -> Self {
        Cache {
            array: SetAssoc::new(config.sets() as usize, config.ways as usize, config.replacement),
            latency: config.latency,
            stats: StructStats::default(),
        }
    }

    /// Looks up a block, updating recency and counters. Returns the hit
    /// way.
    #[inline]
    pub fn lookup(&mut self, block: BlockAddr) -> Option<usize> {
        self.stats.lookups += 1;
        let way = self.array.lookup(block.raw(), block.raw());
        if way.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        way
    }

    /// Probes without side effects.
    #[inline]
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.array.peek(block.raw(), block.raw()).is_some()
    }

    /// Side-effect-free [`lookup`](Self::lookup): returns the way `block`
    /// would hit without touching clocks, recency, or counters — the
    /// classification half of the replay fast path's probe-then-commit
    /// split.
    #[inline]
    pub fn probe(&self, block: BlockAddr) -> Option<usize> {
        self.array.peek(block.raw(), block.raw())
    }

    /// Commits a hit previously found by [`probe`](Self::probe) exactly as
    /// if [`lookup`](Self::lookup) had run: level counters plus the
    /// array's recency/lifetime update. `way` must come from a `probe` of
    /// the same `block` with the cache unmodified in between.
    #[inline]
    pub fn commit_hit(&mut self, block: BlockAddr, way: usize) {
        self.stats.lookups += 1;
        self.stats.hits += 1;
        self.array.commit_hit(block.raw(), way);
    }

    /// Commits a miss previously established by [`probe`](Self::probe)
    /// exactly as if a missing [`lookup`](Self::lookup) had run: level
    /// counters plus the array's lookup clock. The second-tier fast path
    /// uses this to descend past a missing level without re-scanning it.
    #[inline]
    pub fn commit_miss(&mut self) {
        self.stats.lookups += 1;
        self.stats.misses += 1;
        self.array.commit_miss();
    }

    /// Allocates `block`, evicting via the base replacement policy.
    /// Returns the displaced block, if any.
    #[inline]
    pub fn fill(
        &mut self,
        block: BlockAddr,
        priority: InsertPriority,
        state: u32,
    ) -> Option<(BlockAddr, u32, LineLife)> {
        self.stats.fills += 1;
        self.array
            .fill(block.raw(), block.raw(), BlockInfo { state }, priority)
            .map(evicted_parts)
            .inspect(|_| self.stats.evictions += 1)
    }

    /// Allocates `block` into a specific way (used when a policy overrides
    /// the victim choice).
    #[inline]
    pub fn fill_way(
        &mut self,
        block: BlockAddr,
        way: usize,
        priority: InsertPriority,
        state: u32,
    ) -> Option<(BlockAddr, u32, LineLife)> {
        self.stats.fills += 1;
        self.array
            .fill_way(block.raw(), way, block.raw(), BlockInfo { state }, priority)
            .map(evicted_parts)
            .inspect(|_| self.stats.evictions += 1)
    }

    /// Removes `block` if present (back-invalidation), returning its
    /// metadata.
    #[inline]
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<(BlockAddr, u32, LineLife)> {
        self.array.invalidate(block.raw(), block.raw()).map(|e| {
            self.stats.invalidations += 1;
            evicted_parts(e)
        })
    }

    /// Direct access to the underlying array (policy views, sampling).
    pub fn array_mut(&mut self) -> &mut SetAssoc<BlockInfo> {
        &mut self.array
    }

    /// Read-only access to the underlying array.
    pub fn array(&self) -> &SetAssoc<BlockInfo> {
        &self.array
    }
}

fn evicted_parts(e: Evicted<BlockInfo>) -> (BlockAddr, u32, LineLife) {
    (BlockAddr::new(e.tag), e.payload.state, e.life)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_types::{ReplacementKind, SystemConfig};

    fn small() -> Cache {
        Cache::new(&CacheConfig {
            size_bytes: 2 * 64, // 1 set, 2 ways
            ways: 2,
            latency: 5,
            replacement: ReplacementKind::Lru,
        })
    }

    #[test]
    fn miss_fill_hit() {
        let mut c = small();
        let b = BlockAddr::new(7);
        assert!(c.lookup(b).is_none());
        assert!(c.fill(b, InsertPriority::Normal, 3).is_none());
        assert!(c.lookup(b).is_some());
        assert_eq!(c.stats.lookups, 2);
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
        assert_eq!(c.stats.fills, 1);
    }

    /// probe + commit_hit must be indistinguishable from a hitting lookup
    /// (counters, recency, and subsequent victim choice).
    #[test]
    fn probe_then_commit_matches_lookup() {
        let mut via_lookup = small();
        let mut via_commit = small();
        for c in [&mut via_lookup, &mut via_commit] {
            c.fill(BlockAddr::new(0), InsertPriority::Normal, 0);
            c.fill(BlockAddr::new(2), InsertPriority::Normal, 0);
        }
        assert!(via_lookup.lookup(BlockAddr::new(0)).is_some());
        let way = via_commit.probe(BlockAddr::new(0)).expect("resident block must probe");
        via_commit.commit_hit(BlockAddr::new(0), way);
        assert_eq!(via_commit.stats, via_lookup.stats);
        // Block 0 is now MRU in both: the next fill must evict block 2.
        let a = via_lookup.fill(BlockAddr::new(4), InsertPriority::Normal, 0).expect("full set");
        let b = via_commit.fill(BlockAddr::new(4), InsertPriority::Normal, 0).expect("full set");
        assert_eq!(a.0, BlockAddr::new(2));
        assert_eq!(a.0, b.0);
        assert_eq!(a.2, b.2, "evicted lifetime stats must agree");
    }

    #[test]
    fn eviction_returns_state() {
        let mut c = small();
        c.fill(BlockAddr::new(0), InsertPriority::Normal, 11);
        c.fill(BlockAddr::new(2), InsertPriority::Normal, 22);
        let (addr, state, _) = c.fill(BlockAddr::new(4), InsertPriority::Normal, 33).unwrap();
        assert_eq!(addr, BlockAddr::new(0));
        assert_eq!(state, 11);
        assert_eq!(c.stats.evictions, 1);
    }

    #[test]
    fn invalidate_counts() {
        let mut c = small();
        c.fill(BlockAddr::new(9), InsertPriority::Normal, 0);
        assert!(c.contains(BlockAddr::new(9)));
        assert!(c.invalidate(BlockAddr::new(9)).is_some());
        assert!(!c.contains(BlockAddr::new(9)));
        assert_eq!(c.stats.invalidations, 1);
        assert!(c.invalidate(BlockAddr::new(9)).is_none());
    }

    #[test]
    fn paper_llc_geometry() {
        let c = Cache::new(&SystemConfig::paper_baseline().llc);
        assert_eq!(c.array().sets(), 2048);
        assert_eq!(c.array().ways(), 16);
        assert_eq!(c.latency, 40);
    }
}
