//! Struct-of-arrays backing store for [`SetAssoc`](crate::set_assoc::SetAssoc).
//!
//! The hot path of the simulator is the tag search in `SetAssoc::lookup`;
//! with an array-of-structs layout every probed way drags a whole
//! `Line<P>` (tag + stamp + rrpv + lifetime stats + payload) through the
//! data cache. This module stores each field in its own dense column so a
//! set's tags occupy one contiguous run of `ways` × 8 bytes — a 16-way
//! set's tags fit in two hardware cache lines — and validity is a single
//! `u64` bitmask per set:
//!
//! * `valid[set]` — bit `w` set ⇔ way `w` holds valid contents;
//! * `tags[set * ways + w]` — the tag stored in way `w`;
//! * `stamps` / `rrpvs` — LRU/FIFO recency stamps and SRRIP re-reference
//!   values, only touched by the replacement policy;
//! * `lives` — [`LineLife`] lifetime statistics for the deadness
//!   characterization;
//! * `payloads` — the structure-specific payload (TLB translation, cache
//!   block flags, PWC node, ...).
//!
//! [`SoaColumns::match_mask`] compares every tag of a set without
//! branching and intersects with the validity mask; `trailing_zeros` on
//! the result recovers the first matching way, preserving the
//! first-match-wins semantics of the original linear scan bit for bit.
//!
//! Bounds evidence for the dpc-lint `hot-path::index` rule: every flat
//! index is `set * ways + way` where `set` comes from
//! `SetAssoc::set_of` (reduced modulo / masked by the set count) and
//! `way < ways` is asserted by `invariant!` at the call sites, so all
//! column accesses stay inside the `sets * ways` allocation made by
//! [`SoaColumns::new`].

use crate::set_assoc::LineLife;
use dpc_types::invariant;

/// Maximum associativity representable by the per-set `u64` validity
/// bitmask.
pub const MAX_WAYS: usize = 64;

/// The dense parallel columns of a set-associative array.
///
/// Field layout is crate-internal; [`SetAssoc`](crate::set_assoc::SetAssoc)
/// is the only consumer and re-exposes typed accessors.
#[derive(Clone, Debug)]
pub struct SoaColumns<P> {
    ways: usize,
    /// One validity bitmask per set (bit `w` = way `w` is valid).
    pub(crate) valid: Vec<u64>,
    /// Packed tags, `ways` consecutive entries per set.
    pub(crate) tags: Vec<u64>,
    /// LRU/FIFO recency stamps, same layout as `tags`.
    pub(crate) stamps: Vec<u64>,
    /// SRRIP re-reference prediction values, same layout as `tags`.
    pub(crate) rrpvs: Vec<u8>,
    /// Per-line lifetime statistics, same layout as `tags`.
    pub(crate) lives: Vec<LineLife>,
    /// Per-line payloads, same layout as `tags`.
    pub(crate) payloads: Vec<P>,
}

impl<P: Default> SoaColumns<P> {
    /// Allocates empty columns for `sets × ways` lines.
    ///
    /// # Panics
    ///
    /// Panics if `ways` exceeds [`MAX_WAYS`] (the validity bitmask is one
    /// `u64` per set).
    pub(crate) fn new(sets: usize, ways: usize, initial_rrpv: u8) -> Self {
        assert!(ways <= MAX_WAYS, "associativity {ways} exceeds the {MAX_WAYS}-way bitmask limit");
        let lines = sets * ways;
        let mut payloads = Vec::with_capacity(lines);
        payloads.resize_with(lines, P::default);
        SoaColumns {
            ways,
            valid: vec![0; sets],
            tags: vec![0; lines],
            stamps: vec![0; lines],
            rrpvs: vec![initial_rrpv; lines],
            lives: vec![LineLife::default(); lines],
            payloads,
        }
    }
}

impl<P> SoaColumns<P> {
    /// Branchless tag compare over the set's contiguous tag column,
    /// intersected with the validity mask. Bit `w` of the result is set
    /// iff way `w` is valid and holds `tag`; `trailing_zeros` recovers
    /// the first match.
    ///
    /// The compare itself is [`crate::simd::match_mask`]: 256-bit AVX2
    /// tag compares (four ways per vector) when the runtime SIMD gate is
    /// on, fixed-width unrolled scalar comparisons otherwise — both
    /// producing the identical way bitmask.
    #[inline]
    pub(crate) fn match_mask(&self, set: usize, base: usize, tag: u64) -> u64 {
        invariant!(set < self.valid.len(), "caller masks the set index into range");
        invariant!(base + self.ways <= self.tags.len(), "base = set * ways stays inside the tags");
        crate::simd::match_mask(&self.tags[base..base + self.ways], tag) & self.valid[set]
    }

    /// Iterates over all valid lines in storage order, with the owning
    /// array's lazily buffered hit-promotion merged in: the line at flat index
    /// `pending_idx` is yielded with `pending_hits` extra hits and
    /// `pending_seq` as its last-hit time, exactly the state eager
    /// updates would have left in the columns. Pass `usize::MAX` (never
    /// a valid index) when nothing is buffered.
    pub(crate) fn iter_valid_pending(
        &self,
        pending_idx: usize,
        pending_hits: u64,
        pending_seq: u64,
    ) -> impl Iterator<Item = LineRef<'_, P>> {
        self.valid.iter().enumerate().flat_map(move |(set, &mask)| {
            let base = set * self.ways;
            BitIter(mask).map(move |way| {
                let idx = base + way;
                let mut life = self.lives[idx];
                if idx == pending_idx {
                    life.hits += pending_hits;
                    life.last_hit_seq = pending_seq;
                }
                LineRef { tag: self.tags[idx], life, payload: &self.payloads[idx] }
            })
        })
    }

    /// Number of valid lines across all sets.
    #[inline]
    pub(crate) fn valid_count(&self) -> usize {
        self.valid.iter().map(|m| m.count_ones() as usize).sum()
    }
}

/// A read-only view of one valid line, yielded by
/// [`SetAssoc::iter_valid`](crate::set_assoc::SetAssoc::iter_valid).
#[derive(Clone, Copy, Debug)]
pub struct LineRef<'a, P> {
    tag: u64,
    life: LineLife,
    /// The line's payload.
    pub payload: &'a P,
}

impl<P> LineRef<'_, P> {
    /// The line's tag.
    #[inline]
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Lifetime statistics of the current contents.
    #[inline]
    pub fn life(&self) -> LineLife {
        self.life
    }
}

/// Iterator over the set bit positions of a `u64` mask, ascending.
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let bit = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_mask_respects_validity_and_order() {
        let mut cols: SoaColumns<u32> = SoaColumns::new(2, 4, 0);
        // Set 1: ways 0 and 2 hold tag 7, but only way 2 is valid.
        let base = 4;
        cols.tags[base] = 7;
        cols.tags[base + 2] = 7;
        cols.valid[1] = 0b0100;
        assert_eq!(cols.match_mask(1, base, 7), 0b0100);
        // Making way 0 valid restores first-match-wins via trailing_zeros.
        cols.valid[1] = 0b0101;
        let mask = cols.match_mask(1, base, 7);
        assert_eq!(mask, 0b0101);
        assert_eq!(mask.trailing_zeros(), 0);
        // An invalid set contributes nothing.
        assert_eq!(cols.match_mask(0, 0, 0), 0);
    }

    #[test]
    fn bit_iter_ascends() {
        let bits: Vec<usize> = BitIter(0b1010_0110).collect();
        assert_eq!(bits, vec![1, 2, 5, 7]);
        assert_eq!(BitIter(0).count(), 0);
    }

    #[test]
    fn iter_valid_walks_storage_order() {
        let mut cols: SoaColumns<u32> = SoaColumns::new(2, 2, 0);
        cols.tags[1] = 11; // set 0, way 1
        cols.tags[2] = 22; // set 1, way 0
        cols.valid[0] = 0b10;
        cols.valid[1] = 0b01;
        let tags: Vec<u64> =
            cols.iter_valid_pending(usize::MAX, 0, 0).map(|l| l.tag()).collect();
        assert_eq!(tags, vec![11, 22]);
        assert_eq!(cols.valid_count(), 2);
    }

    #[test]
    fn iter_valid_pending_merges_the_buffered_promotion() {
        let mut cols: SoaColumns<u32> = SoaColumns::new(1, 2, 0);
        cols.valid[0] = 0b11;
        cols.lives[0] = LineLife { fill_seq: 1, last_hit_seq: 1, hits: 0 };
        cols.lives[1] = LineLife { fill_seq: 2, last_hit_seq: 2, hits: 5 };
        let lives: Vec<LineLife> =
            cols.iter_valid_pending(1, 3, 9).map(|l| l.life()).collect();
        assert_eq!(lives[0], cols.lives[0], "unbuffered line is yielded verbatim");
        assert_eq!(lives[1], LineLife { fill_seq: 2, last_hit_seq: 9, hits: 8 });
        // The columns themselves stay untouched: merge, not flush.
        assert_eq!(cols.lives[1].hits, 5);
    }

    #[test]
    #[should_panic(expected = "bitmask limit")]
    fn over_wide_sets_rejected() {
        let _: SoaColumns<u32> = SoaColumns::new(1, 65, 0);
    }
}
