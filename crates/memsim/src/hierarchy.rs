//! The three-level data-cache hierarchy with an inclusive LLC and the
//! dead-block-policy attachment point.
//!
//! Flow of an access (paper Table I latencies accumulate):
//! L1D (5 cyc) → L2 (11 cyc) → LLC (40 cyc) → memory (191 cyc).
//! Upper levels are filled on the return path. The LLC is **inclusive**:
//! evicting an LLC block back-invalidates L1/L2 copies. A block whose LLC
//! allocation is *bypassed* by the policy is still returned to and cached
//! by L1/L2 (the paper returns the block to the L2 before the PFQ is even
//! consulted), which relaxes strict inclusion exactly as LLC-bypass
//! proposals do.
//!
//! Page-table walker loads take the same path (`is_demand = false`) so the
//! page table competes for cache space, as in the paper's methodology.

use crate::cache::Cache;
use crate::fallback::DynLlcPolicy;
use crate::policy::{BlockFillDecision, EvictedBlock, LlcPolicy};
use crate::set_assoc::InsertPriority;
use crate::stats::{DeadnessSampler, EvictionClasses};
use dpc_types::{AccessKind, BlockAddr, Pc, Pfn, PhysAddr, SystemConfig};

/// The L1D/L2/LLC hierarchy plus main memory, generic over the LLC
/// policy. The parameter defaults to the boxed fallback from
/// [`crate::fallback`]; concrete policy types monomorphize the access
/// path (see [`crate::System`]).
#[derive(Debug)]
pub struct Hierarchy<C: LlcPolicy = DynLlcPolicy> {
    /// L1 data cache.
    pub l1d: Cache,
    /// L2 cache.
    pub l2: Cache,
    /// L3 / last-level cache (inclusive).
    pub llc: Cache,
    /// Precomputed cumulative latency of an access that terminates at
    /// each level: `[L1D hit, L2 hit, LLC hit, memory]`. The flattened
    /// miss pipeline indexes this table instead of accumulating per-level
    /// latencies as it descends.
    cum_latency: [u64; 4],
    policy: C,
    /// Cached [`LlcPolicy::is_null`]: `true` for the baseline no-op
    /// policy, letting the access path skip hook dispatch entirely
    /// (every skipped hook is a no-op, so behavior is identical).
    policy_null: bool,
    /// LLC eviction-time dead/DOA classification (Fig. 4).
    pub llc_evictions: EvictionClasses,
    /// LLC resident-deadness sampler (Fig. 3).
    pub llc_sampler: DeadnessSampler,
    /// PFNs of blocks evicted from the LLC as true DOA since the last
    /// drain — the `System` classifies them against LLT dead-page state
    /// for Table III.
    pub pending_doa_evictions: Vec<Pfn>,
    /// Demand (non-walker) LLC misses.
    pub llc_demand_misses: u64,
    /// Walker-induced LLC misses.
    pub llc_walker_misses: u64,
}

impl<C: LlcPolicy> Hierarchy<C> {
    /// Builds the hierarchy with the given LLC policy, monomorphizing
    /// the access path around its concrete type. The boxed constructor
    /// [`Hierarchy::new`] (in [`crate::fallback`]) delegates here.
    pub fn with_typed_policy(config: &SystemConfig, policy: C) -> Self {
        let policy_null = policy.is_null();
        let l1d = u64::from(config.l1d.latency);
        let l2 = l1d + u64::from(config.l2.latency);
        let llc = l2 + u64::from(config.llc.latency);
        Hierarchy {
            l1d: Cache::new(&config.l1d),
            l2: Cache::new(&config.l2),
            llc: Cache::new(&config.llc),
            cum_latency: [l1d, l2, llc, llc + u64::from(config.mem_latency)],
            policy,
            policy_null,
            llc_evictions: EvictionClasses::default(),
            llc_sampler: DeadnessSampler::new(),
            pending_doa_evictions: Vec::new(),
            llc_demand_misses: 0,
            llc_walker_misses: 0,
        }
    }

    /// The attached LLC policy.
    pub fn policy_mut(&mut self) -> &mut C {
        &mut self.policy
    }

    /// Read-only access to the attached LLC policy.
    pub fn policy(&self) -> &C {
        &self.policy
    }

    /// Performs an access and returns its latency in cycles.
    ///
    /// `is_demand` distinguishes program accesses from page-walker loads
    /// (both are cached; they are counted separately).
    ///
    /// The walk is flattened into probe-then-commit form (DESIGN.md §16):
    /// side-effect-free probes descend the levels until the first hit
    /// classifies the access, then that outcome's commit helper replays
    /// exactly the state transitions the nested per-level lookups used to
    /// perform — counters, clocks, recency, hooks and fills in the
    /// original order — and returns the precomputed cumulative latency.
    /// Each commit helper is shared with the replay fast path's
    /// second-tier retire, so the two paths cannot drift.
    pub fn access(&mut self, pa: PhysAddr, _kind: AccessKind, pc: Pc, is_demand: bool) -> u64 {
        let block = pa.block();
        if let Some(way) = self.l1d.probe(block) {
            return self.commit_l1d_hit(block, way);
        }
        if let Some(way) = self.l2.probe(block) {
            return self.commit_l2_hit(block, way);
        }
        self.l1d.commit_miss();
        self.l2.commit_miss();
        let hit_way = self.llc.probe(block);
        self.commit_llc(block, hit_way, pc, is_demand)
    }

    /// Commits an access that terminated at the LLC: the LLC's own
    /// hit-or-miss bookkeeping, the policy hooks (which fire on every
    /// access that reaches the LLC, hit or miss), and the return-path
    /// fills — batched into one straight-line sequence. The caller has
    /// already committed the L1D and L2 misses.
    fn commit_llc(&mut self, block: BlockAddr, hit_way: Option<usize>, pc: Pc, is_demand: bool) -> u64 {
        match hit_way {
            Some(way) => self.llc.commit_hit(block, way),
            None => self.llc.commit_miss(),
        }
        if !self.policy_null {
            self.policy.on_lookup(block, hit_way.is_some());
            // Set-access hook (AIP-style interval predictors train on
            // every access to the set). Policies that don't observe set
            // views skip the view construction entirely.
            if self.policy.uses_set_views() {
                let policy = &mut self.policy;
                self.llc
                    .array_mut()
                    .with_set_views(block.raw(), hit_way, |views| policy.on_set_access(views));
            }
        }
        if let Some(way) = hit_way {
            if !self.policy_null {
                let state = &mut self.llc.array_mut().payload_mut(block.raw(), way).state;
                self.policy.on_hit(block, state);
            }
            self.l2.fill(block, InsertPriority::Normal, 0);
            self.l1d.fill(block, InsertPriority::Normal, 0);
            return self.cum_latency[2];
        }
        // LLC miss: go to memory.
        if is_demand {
            self.llc_demand_misses += 1;
        } else {
            self.llc_walker_misses += 1;
        }
        // The baseline always allocates with default priority and state —
        // exactly what `LlcPolicy::on_fill`'s default body returns.
        let decision = if self.policy_null {
            BlockFillDecision::ALLOCATE
        } else {
            self.policy.on_fill(block, pc)
        };
        match decision {
            BlockFillDecision::Allocate { priority, state } => {
                self.fill_llc(block, priority, state);
            }
            BlockFillDecision::Bypass => {
                self.llc.stats.bypasses += 1;
            }
        }
        // The block is returned upward either way.
        self.l2.fill(block, InsertPriority::Normal, 0);
        self.l1d.fill(block, InsertPriority::Normal, 0);
        self.cum_latency[3]
    }

    /// Side-effect-free L1D probe: the way `block` would hit at the first
    /// level, or `None` when an access would have to descend past the
    /// L1D. The classification half of the replay fast path's
    /// probe-then-commit split.
    #[inline]
    pub fn probe_l1d(&self, block: BlockAddr) -> Option<usize> {
        self.l1d.probe(block)
    }

    /// Commits an L1D hit found by [`probe_l1d`](Self::probe_l1d),
    /// returning the access latency. This replays exactly the L1-hit
    /// prefix of [`access`](Self::access): no other level is looked up,
    /// no fill happens, and no policy hook fires — `access` only invokes
    /// the LLC policy for accesses that reach the LLC, so the commit is
    /// bit-identical for *every* policy, null or not.
    #[inline]
    pub fn commit_l1d_hit(&mut self, block: BlockAddr, way: usize) -> u64 {
        self.l1d.commit_hit(block, way);
        self.cum_latency[0]
    }

    /// Side-effect-free L2 probe: the way `block` would hit at the second
    /// level. Only meaningful when an L1D probe of the same block missed
    /// (the second-tier classification order matches the descent order).
    #[inline]
    pub fn probe_l2(&self, block: BlockAddr) -> Option<usize> {
        self.l2.probe(block)
    }

    /// Commits an access that missed the L1D and hit the L2 (found by
    /// [`probe_l2`](Self::probe_l2)), returning the access latency. This
    /// replays exactly the L2-hit path of [`access`](Self::access): the
    /// L1D's miss bookkeeping, the L2's hit bookkeeping, and the L1D
    /// return-path fill — the LLC and its policy are never consulted, so
    /// the commit is bit-identical for every policy, null or not. Shared
    /// by the flattened walk and the replay fast path's second tier.
    #[inline]
    pub fn commit_l2_hit(&mut self, block: BlockAddr, way: usize) -> u64 {
        self.l1d.commit_miss();
        self.l2.commit_hit(block, way);
        self.l1d.fill(block, InsertPriority::Normal, 0);
        self.cum_latency[1]
    }

    fn fill_llc(&mut self, block: BlockAddr, priority: InsertPriority, state: u32) {
        // Give the policy a chance to override the victim when the set is
        // full (AIP victimizes predicted-dead blocks first).
        let evicted = if self.llc.array().set_full(block.raw()) {
            let choice = if !self.policy_null && self.policy.overrides_victim() {
                let policy = &mut self.policy;
                self.llc
                    .array_mut()
                    .with_set_views(block.raw(), None, |views| policy.pick_victim(views))
            } else {
                None
            };
            match choice {
                Some(way) => self.llc.fill_way(block, way, priority, state),
                None => self.llc.fill(block, priority, state),
            }
        } else {
            self.llc.fill(block, priority, state)
        };
        if let Some((victim, victim_state, life)) = evicted {
            let end_seq = self.llc.array().seq();
            self.llc_evictions.record(life, end_seq);
            self.llc_sampler.record_stay(life, end_seq);
            if life.hits == 0 {
                self.pending_doa_evictions.push(victim.pfn());
            }
            if !self.policy_null {
                self.policy.on_evict(EvictedBlock {
                    block: victim,
                    state: victim_state,
                    life,
                    by_invalidation: false,
                });
            }
            // Inclusion: the victim may not survive in upper levels.
            self.l2.invalidate(victim);
            self.l1d.invalidate(victim);
        }
    }

    /// Takes a deadness sample of the LLC's resident blocks.
    pub fn sample_llc(&mut self) {
        let seq = self.llc.array().seq();
        self.llc_sampler.take_sample(seq);
    }

    /// Flushes still-resident LLC blocks into the deadness sampler
    /// (end-of-simulation accounting).
    pub fn flush_sampler(&mut self) {
        let end_seq = self.llc.array().seq();
        for line in self.llc.array().iter_valid() {
            self.llc_sampler.record_stay(line.life(), end_seq);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NullBlockPolicy;

    fn hierarchy() -> Hierarchy {
        Hierarchy::new(&SystemConfig::paper_baseline(), Box::new(NullBlockPolicy))
    }

    fn pa(addr: u64) -> PhysAddr {
        PhysAddr::new(addr)
    }

    #[test]
    fn cold_miss_goes_to_memory() {
        let mut h = hierarchy();
        let lat = h.access(pa(0x10000), AccessKind::Read, Pc::new(1), true);
        assert_eq!(lat, 5 + 11 + 40 + 191);
        assert_eq!(h.llc_demand_misses, 1);
    }

    #[test]
    fn l1_hit_after_fill() {
        let mut h = hierarchy();
        h.access(pa(0x10000), AccessKind::Read, Pc::new(1), true);
        let lat = h.access(pa(0x10008), AccessKind::Read, Pc::new(1), true);
        assert_eq!(lat, 5, "same block must hit L1");
    }

    /// probe_l1d + commit_l1d_hit must be indistinguishable from a full
    /// `access` that hits the L1D, latency included.
    #[test]
    fn l1d_probe_then_commit_matches_access() {
        let mut via_access = hierarchy();
        let mut via_commit = hierarchy();
        for h in [&mut via_access, &mut via_commit] {
            h.access(pa(0x10000), AccessKind::Read, Pc::new(1), true);
        }
        let block = pa(0x10008).block();
        let lat_access = via_access.access(pa(0x10008), AccessKind::Read, Pc::new(1), true);
        let way = via_commit.probe_l1d(block).expect("resident block must probe");
        let lat_commit = via_commit.commit_l1d_hit(block, way);
        assert_eq!(lat_commit, lat_access);
        assert_eq!(via_commit.l1d.stats, via_access.l1d.stats);
        assert_eq!(via_commit.l2.stats, via_access.l2.stats, "L2 must stay untouched");
        assert_eq!(via_commit.llc.stats, via_access.llc.stats, "LLC must stay untouched");
        assert_eq!(via_commit.l1d.array().seq(), via_access.l1d.array().seq());
    }

    /// probe_l2 + commit_l2_hit (the second fast tier) must be
    /// indistinguishable from a full `access` that misses the L1D and hits
    /// the L2 — latency, per-level counters, clocks, and the L1D refill.
    #[test]
    fn l2_probe_then_commit_matches_access() {
        let mut via_access = hierarchy();
        let mut via_commit = hierarchy();
        let block = pa(0x10000).block();
        for h in [&mut via_access, &mut via_commit] {
            h.access(pa(0x10000), AccessKind::Read, Pc::new(1), true);
            h.l1d.invalidate(block); // leave the block in L2 only
        }
        let lat_access = via_access.access(pa(0x10000), AccessKind::Read, Pc::new(1), true);
        assert!(via_commit.probe_l1d(block).is_none(), "block must miss the L1D");
        let way = via_commit.probe_l2(block).expect("resident block must probe in L2");
        let lat_commit = via_commit.commit_l2_hit(block, way);
        assert_eq!(lat_commit, lat_access);
        assert_eq!(lat_commit, 5 + 11, "L1D latency + L2 latency");
        assert_eq!(via_commit.l1d.stats, via_access.l1d.stats);
        assert_eq!(via_commit.l2.stats, via_access.l2.stats);
        assert_eq!(via_commit.llc.stats, via_access.llc.stats, "LLC must stay untouched");
        assert_eq!(via_commit.l1d.array().seq(), via_access.l1d.array().seq());
        assert_eq!(via_commit.l2.array().seq(), via_access.l2.array().seq());
        assert!(via_commit.l1d.contains(block), "L2 hit must refill the L1D");
    }

    #[test]
    fn llc_hit_fills_upper_levels() {
        let mut h = hierarchy();
        h.access(pa(0x20000), AccessKind::Read, Pc::new(1), true);
        // Evict from L1 and L2 by filling conflicting sets, then re-access.
        // Simpler: invalidate the upper copies directly.
        let block = pa(0x20000).block();
        h.l1d.invalidate(block);
        h.l2.invalidate(block);
        let lat = h.access(pa(0x20000), AccessKind::Read, Pc::new(1), true);
        assert_eq!(lat, 5 + 11 + 40);
        assert!(h.l1d.contains(block), "LLC hit must refill L1");
    }

    #[test]
    fn inclusion_back_invalidates() {
        let mut h = hierarchy();
        // Fill one LLC set (2048 sets × 16 ways): blocks mapping to set 0.
        let sets = h.llc.array().sets() as u64;
        for i in 0..17u64 {
            h.access(pa(i * sets * 64), AccessKind::Read, Pc::new(1), true);
        }
        // The first block was evicted from the LLC; inclusion requires it
        // to have left L1/L2 as well.
        let first = pa(0).block();
        assert!(!h.llc.contains(first));
        assert!(!h.l1d.contains(first));
        assert!(!h.l2.contains(first));
        assert_eq!(h.llc_evictions.total, 1);
        assert_eq!(h.llc_evictions.doa, 1, "never-hit block is DOA");
        assert_eq!(h.pending_doa_evictions.len(), 1);
    }

    #[test]
    fn walker_misses_counted_separately() {
        let mut h = hierarchy();
        h.access(pa(0x5000), AccessKind::Read, Pc::new(1), false);
        assert_eq!(h.llc_walker_misses, 1);
        assert_eq!(h.llc_demand_misses, 0);
    }

    #[test]
    fn sampler_flush_accounts_residents() {
        let mut h = hierarchy();
        h.access(pa(0x1000), AccessKind::Read, Pc::new(1), true);
        h.sample_llc();
        h.access(pa(0x2000), AccessKind::Read, Pc::new(1), true);
        h.flush_sampler();
        let d = h.llc_sampler.stats();
        assert_eq!(d.samples, 1);
        assert_eq!(d.present, 1, "one block resident at the sampling instant");
    }

    #[derive(Debug)]
    struct BypassAll;
    impl LlcPolicy for BypassAll {
        fn policy_name(&self) -> &'static str {
            "bypass-all"
        }
        fn on_fill(&mut self, _block: BlockAddr, _pc: Pc) -> BlockFillDecision {
            BlockFillDecision::Bypass
        }
    }

    /// Victimizes way 0 unconditionally, to verify the override plumbing.
    #[derive(Debug)]
    struct AlwaysWayZero {
        evictions_seen: u64,
    }
    impl LlcPolicy for AlwaysWayZero {
        fn policy_name(&self) -> &'static str {
            "way-zero"
        }
        fn overrides_victim(&self) -> bool {
            true
        }
        fn pick_victim(&mut self, _lines: &mut [crate::policy::PolicyLineView]) -> Option<usize> {
            Some(0)
        }
        fn on_evict(&mut self, _evicted: EvictedBlock) {
            self.evictions_seen += 1;
        }
    }

    #[test]
    fn policy_victim_override_is_used() {
        let mut h = Hierarchy::new(
            &SystemConfig::paper_baseline(),
            Box::new(AlwaysWayZero { evictions_seen: 0 }),
        );
        let sets = h.llc.array().sets() as u64;
        // Fill one LLC set completely, then one more block: the policy
        // must evict way 0 (the first block inserted).
        for i in 0..17u64 {
            h.access(pa(i * sets * 64), AccessKind::Read, Pc::new(1), true);
        }
        assert!(!h.llc.contains(pa(0).block()), "way 0 must have been victimized");
        assert!(h.llc.contains(pa(sets * 64).block()), "second block must survive");
    }

    #[test]
    fn set_access_hook_sees_hit_flags() {
        #[derive(Debug, Default)]
        struct HitWatcher {
            hits_flagged: std::cell::Cell<u64>,
        }
        impl LlcPolicy for HitWatcher {
            fn policy_name(&self) -> &'static str {
                "hit-watcher"
            }
            fn uses_set_views(&self) -> bool {
                true
            }
            fn on_set_access(&mut self, lines: &mut [crate::policy::PolicyLineView]) {
                for view in lines {
                    if view.is_hit {
                        self.hits_flagged.set(self.hits_flagged.get() + 1);
                    }
                }
            }
        }
        let mut h = Hierarchy::new(&SystemConfig::paper_baseline(), Box::<HitWatcher>::default());
        h.access(pa(0x9000), AccessKind::Read, Pc::new(1), true);
        // Evict from L1/L2 so the second access reaches the LLC and hits.
        h.l1d.invalidate(pa(0x9000).block());
        h.l2.invalidate(pa(0x9000).block());
        h.access(pa(0x9000), AccessKind::Read, Pc::new(1), true);
        // The policy cannot be downcast through the trait object; verify
        // indirectly via LLC hit counters (the hook ran without panicking
        // and the access pattern produced exactly one LLC hit).
        assert_eq!(h.llc.stats.hits, 1);
    }

    #[test]
    fn bypass_keeps_block_out_of_llc_but_in_l1() {
        let mut h = Hierarchy::new(&SystemConfig::paper_baseline(), Box::new(BypassAll));
        h.access(pa(0x3000), AccessKind::Read, Pc::new(1), true);
        let block = pa(0x3000).block();
        assert!(!h.llc.contains(block));
        assert!(h.l1d.contains(block));
        assert_eq!(h.llc.stats.bypasses, 1);
        assert_eq!(h.llc.stats.fills, 0);
    }
}
