//! The LLT's miss-status holding registers.
//!
//! Section V-A: *"On an LLT miss, before sending the request downstream,
//! the hash of the PC that triggered the miss is stored in the LLT's MSHR.
//! This avoids the need to attach the PC to the page walk request."*
//!
//! The simulator processes walks synchronously, so the MSHR's role is to
//! carry the PC from the miss to the fill — but it is modeled as a real
//! bounded structure so that its capacity behaviour is testable.

use dpc_types::{Pc, Vpn};
use std::collections::VecDeque;

/// A bounded FIFO of outstanding LLT misses.
#[derive(Clone, Debug)]
pub struct Mshr {
    entries: VecDeque<(Vpn, Pc)>,
    capacity: usize,
    /// Allocations rejected because the MSHR was full (the walk proceeds;
    /// only the PC is lost, and the fill falls back to PC 0).
    pub overflows: u64,
}

impl Mshr {
    /// Creates an MSHR with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be nonzero");
        Mshr { entries: VecDeque::with_capacity(capacity), capacity, overflows: 0 }
    }

    /// Records the PC of the instruction whose miss on `vpn` started a
    /// walk. Returns `false` (and counts an overflow) when full.
    #[inline]
    pub fn allocate(&mut self, vpn: Vpn, pc: Pc) -> bool {
        if self.entries.len() >= self.capacity {
            self.overflows += 1;
            return false;
        }
        self.entries.push_back((vpn, pc));
        true
    }

    /// Retrieves and releases the PC recorded for `vpn` at fill time.
    /// Falls back to PC 0 if the entry was lost to overflow.
    #[inline]
    pub fn complete(&mut self, vpn: Vpn) -> Pc {
        if let Some(pos) = self.entries.iter().position(|&(v, _)| v == vpn) {
            self.entries.remove(pos).map_or(Pc::new(0), |(_, pc)| pc)
        } else {
            Pc::new(0)
        }
    }

    /// Outstanding entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no misses are outstanding.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut mshr = Mshr::new(4);
        assert!(mshr.allocate(Vpn::new(1), Pc::new(0x400)));
        assert_eq!(mshr.len(), 1);
        assert_eq!(mshr.complete(Vpn::new(1)), Pc::new(0x400));
        assert!(mshr.is_empty());
    }

    #[test]
    fn unknown_vpn_falls_back_to_zero() {
        let mut mshr = Mshr::new(4);
        assert_eq!(mshr.complete(Vpn::new(9)), Pc::new(0));
    }

    #[test]
    fn overflow_counted() {
        let mut mshr = Mshr::new(1);
        assert!(mshr.allocate(Vpn::new(1), Pc::new(1)));
        assert!(!mshr.allocate(Vpn::new(2), Pc::new(2)));
        assert_eq!(mshr.overflows, 1);
        // The overflowed miss completes with PC 0.
        assert_eq!(mshr.complete(Vpn::new(2)), Pc::new(0));
        assert_eq!(mshr.complete(Vpn::new(1)), Pc::new(1));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        Mshr::new(0);
    }
}
