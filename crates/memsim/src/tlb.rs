//! Translation lookaside buffers.
//!
//! [`Tlb`] models one TLB level as a set-associative array of
//! VPN → PFN translations with 32 bits of per-entry policy scratch state
//! (dpPred keeps its 6-bit PC hash there; the `Accessed` bit is derived
//! from the entry's hit count). The last-level-TLB policy logic itself
//! lives in [`System`](crate::system::System).
//!
//! [`TlbGroup`] models a first-level TLB as real cores build it: one
//! set-associative structure *per page size* (x86 cpuid reports e.g.
//! 64-entry/4-way for 4 KB data pages, 32-entry/4-way for 2 MB, a small
//! fully-associative array for 1 GB), probed in parallel and presented
//! to the core as a single lookup. Entries are tagged and filled at
//! their page's grain — one 2 MB mapping occupies one entry — and the
//! 4 KB-grain translation is reconstructed from the in-page offset on a
//! hit. With a single 4 KB member the group is call-for-call identical
//! to a bare [`Tlb`], which keeps the paper's default configuration
//! byte-identical.

use crate::set_assoc::{Evicted, HasPolicyState, InsertPriority, LineLife, SetAssoc};
use crate::stats::StructStats;
use dpc_types::{AllocPolicy, PageSize, Pfn, TlbConfig, VirtAddr, Vpn};

/// Per-entry TLB metadata.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbEntry {
    /// The translation target.
    pub pfn: u64,
    /// Policy scratch state.
    pub state: u32,
}

impl HasPolicyState for TlbEntry {
    fn policy_state_mut(&mut self) -> &mut u32 {
        &mut self.state
    }
}

/// One TLB level.
#[derive(Debug)]
pub struct Tlb {
    array: SetAssoc<TlbEntry>,
    /// Hit latency in cycles.
    pub latency: u32,
    /// Counters for this level.
    pub stats: StructStats,
}

impl Tlb {
    /// Builds a TLB from its configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero geometry; validate the [`TlbConfig`] first.
    pub fn new(config: &TlbConfig) -> Self {
        Tlb {
            array: SetAssoc::new(config.sets() as usize, config.ways as usize, config.replacement),
            latency: config.latency,
            stats: StructStats::default(),
        }
    }

    /// Looks up `vpn`, updating recency and counters.
    #[inline]
    pub fn lookup(&mut self, vpn: Vpn) -> Option<Pfn> {
        self.stats.lookups += 1;
        match self.array.lookup_payload(vpn.raw(), vpn.raw()) {
            Some((_, entry)) => {
                self.stats.hits += 1;
                Some(Pfn::new(entry.pfn))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Looks up `vpn` returning the hit way (for policy hooks).
    #[inline]
    pub fn lookup_way(&mut self, vpn: Vpn) -> Option<usize> {
        self.stats.lookups += 1;
        let way = self.array.lookup(vpn.raw(), vpn.raw());
        if way.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        way
    }

    /// Probes without side effects.
    #[inline]
    pub fn contains(&self, vpn: Vpn) -> bool {
        self.array.peek(vpn.raw(), vpn.raw()).is_some()
    }

    /// Hit count of a resident entry (the paper's `Accessed` bit is
    /// `hits > 0`), or `None` if absent. Side-effect free.
    #[inline]
    pub fn resident_hits(&self, vpn: Vpn) -> Option<u64> {
        self.array.peek(vpn.raw(), vpn.raw()).map(|way| self.array.life_of(vpn.raw(), way).hits)
    }

    /// Allocates a translation, evicting via the base replacement policy.
    #[inline]
    pub fn fill(
        &mut self,
        vpn: Vpn,
        pfn: Pfn,
        priority: InsertPriority,
        state: u32,
    ) -> Option<(Vpn, TlbEntry, LineLife)> {
        self.stats.fills += 1;
        self.array
            .fill(vpn.raw(), vpn.raw(), TlbEntry { pfn: pfn.raw(), state }, priority)
            .map(evicted_parts)
            .inspect(|_| self.stats.evictions += 1)
    }

    /// Allocates a translation into a specific way (policy-chosen victim).
    #[inline]
    pub fn fill_way(
        &mut self,
        vpn: Vpn,
        way: usize,
        pfn: Pfn,
        priority: InsertPriority,
        state: u32,
    ) -> Option<(Vpn, TlbEntry, LineLife)> {
        self.stats.fills += 1;
        self.array
            .fill_way(vpn.raw(), way, vpn.raw(), TlbEntry { pfn: pfn.raw(), state }, priority)
            .map(evicted_parts)
            .inspect(|_| self.stats.evictions += 1)
    }

    /// Direct access to the underlying array (policy views, sampling).
    pub fn array_mut(&mut self) -> &mut SetAssoc<TlbEntry> {
        &mut self.array
    }

    /// Read-only access to the underlying array.
    pub fn array(&self) -> &SetAssoc<TlbEntry> {
        &self.array
    }
}

fn evicted_parts(e: Evicted<TlbEntry>) -> (Vpn, TlbEntry, LineLife) {
    (Vpn::new(e.tag), e.payload, e.life)
}

/// One per-page-size structure inside a [`TlbGroup`].
#[derive(Debug)]
struct TlbMember {
    size: PageSize,
    array: SetAssoc<TlbEntry>,
}

impl TlbMember {
    fn new(size: PageSize, config: &TlbConfig) -> Self {
        TlbMember {
            size,
            array: SetAssoc::new(config.sets() as usize, config.ways as usize, config.replacement),
        }
    }
}

/// A successful side-effect-free [`TlbGroup::probe`]: which member hit,
/// at which way, and the reconstructed 4 KB-grain frame. Pass it back to
/// [`TlbGroup::commit_probe`] to apply the hit.
#[derive(Clone, Copy, Debug)]
pub struct TlbProbe {
    /// Index of the member (page-size structure) that hit.
    member: usize,
    /// Hit way inside that member.
    way: usize,
    /// The reconstructed 4 KB-grain translation.
    pub pfn: Pfn,
}

/// A first-level TLB: per-page-size structures probed as one lookup.
#[derive(Debug)]
pub struct TlbGroup {
    members: Vec<TlbMember>,
    /// Hit latency in cycles (shared by all members — they probe in
    /// parallel).
    pub latency: u32,
    /// Counters for the group as a whole.
    pub stats: StructStats,
}

impl TlbGroup {
    /// Builds a single-structure 4 KB group with `config`'s geometry —
    /// the paper's configuration, behaviorally identical to
    /// `Tlb::new(config)`.
    pub fn single(config: &TlbConfig) -> Self {
        TlbGroup {
            members: vec![TlbMember::new(PageSize::Size4K, config)],
            latency: config.latency,
            stats: StructStats::default(),
        }
    }

    /// Builds the group `policy` requires: `config`'s geometry for the
    /// 4 KB structure (when present) and the cpuid-derived split
    /// geometries ([`PageSize::l1_itlb`] / [`PageSize::l1_dtlb`]) for
    /// huge sizes. Single-size 4 KB policies collapse to
    /// [`TlbGroup::single`].
    pub fn for_policy(config: &TlbConfig, policy: AllocPolicy, instruction: bool) -> Self {
        let sizes = policy.page_sizes();
        if sizes == [PageSize::Size4K] {
            return Self::single(config);
        }
        let members = sizes
            .iter()
            .map(|&size| {
                if size == PageSize::Size4K {
                    TlbMember::new(size, config)
                } else if instruction {
                    TlbMember::new(size, &size.l1_itlb())
                } else {
                    TlbMember::new(size, &size.l1_dtlb())
                }
            })
            .collect();
        TlbGroup { members, latency: config.latency, stats: StructStats::default() }
    }

    /// Looks up the 4 KB-grain `vpn` across every member, updating
    /// recency and the group counters; a hit reconstructs the 4 KB-grain
    /// frame from the member's unit translation and the in-page offset.
    #[inline]
    pub fn lookup(&mut self, vpn: Vpn) -> Option<Pfn> {
        self.stats.lookups += 1;
        for m in &mut self.members {
            let unit = m.size.vpn_unit(vpn).raw();
            if let Some((_, entry)) = m.array.lookup_payload(unit, unit) {
                self.stats.hits += 1;
                return Some(Pfn::new(
                    (entry.pfn << m.size.unit_shift()) | m.size.frame_offset(vpn),
                ));
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Probes every member without side effects.
    #[inline]
    pub fn contains(&self, vpn: Vpn) -> bool {
        self.members.iter().any(|m| {
            let unit = m.size.vpn_unit(vpn).raw();
            m.array.peek(unit, unit).is_some()
        })
    }

    /// Side-effect-free [`lookup`](Self::lookup): probes the members in
    /// order and returns where the 4 KB-grain `vpn` hit plus the
    /// reconstructed frame, without touching any clock, counter, or
    /// recency state. The replay fast path classifies with this and, only
    /// once the whole event qualifies, replays the state transitions via
    /// [`commit_probe`](Self::commit_probe).
    #[inline]
    pub fn probe(&self, vpn: Vpn) -> Option<TlbProbe> {
        for (member, m) in self.members.iter().enumerate() {
            let unit = m.size.vpn_unit(vpn).raw();
            if let Some(way) = m.array.peek(unit, unit) {
                let entry = m.array.payload(unit, way);
                let pfn = Pfn::new((entry.pfn << m.size.unit_shift()) | m.size.frame_offset(vpn));
                return Some(TlbProbe { member, way, pfn });
            }
        }
        None
    }

    /// Commits a successful [`probe`](Self::probe) exactly as if
    /// [`lookup`](Self::lookup) had run: the group counters, the hit
    /// member's recency/lifetime update, *and* the lookup clocks of the
    /// members probed before it — `lookup` advances every probed member's
    /// clock even when that member misses, and the per-member clocks feed
    /// [`LineLife`], so they must stay aligned. `hit` must come from a
    /// `probe` of the same `vpn` with the group unmodified in between.
    #[inline]
    pub fn commit_probe(&mut self, vpn: Vpn, hit: TlbProbe) {
        self.stats.lookups += 1;
        self.stats.hits += 1;
        for (member, m) in self.members.iter_mut().enumerate() {
            if member == hit.member {
                let unit = m.size.vpn_unit(vpn).raw();
                m.array.commit_hit(unit, hit.way);
                return;
            }
            m.array.commit_miss();
        }
    }

    /// Commits a full miss previously established by a
    /// [`probe`](Self::probe) that returned `None`, exactly as if
    /// [`lookup`](Self::lookup) had missed: the group counters plus
    /// every member's lookup clock (a missing `lookup` probes — and
    /// clocks — every member). The second-tier fast path uses this to
    /// descend to the LLT without re-scanning the L1 members.
    #[inline]
    pub fn commit_miss(&mut self) {
        self.stats.lookups += 1;
        self.stats.misses += 1;
        for m in &mut self.members {
            m.array.commit_miss();
        }
    }

    /// Allocates a translation into the member for `size`, tagging and
    /// storing at that size's grain. `vpn`/`pfn` are 4 KB-grain; the
    /// eviction (if any) reports the victim's size and *unit* VPN.
    ///
    /// # Panics
    ///
    /// Panics if `size` has no member in this group (the caller derives
    /// the size from the same policy that built the group).
    #[inline]
    pub fn fill(
        &mut self,
        size: PageSize,
        vpn: Vpn,
        pfn: Pfn,
        priority: InsertPriority,
        state: u32,
    ) -> Option<(PageSize, Vpn, TlbEntry, LineLife)> {
        self.stats.fills += 1;
        let m = self
            .members
            .iter_mut()
            .find(|m| m.size == size)
            // dpc-lint: allow(hot-path::unwrap) -- fill sizes come from walk outcomes of the same page policy whose sizes built this member list
            .expect("fill size must be enabled in this TLB group");
        let unit_vpn = size.vpn_unit(vpn).raw();
        let unit_pfn = size.pfn_unit(pfn).raw();
        m.array
            .fill(unit_vpn, unit_vpn, TlbEntry { pfn: unit_pfn, state }, priority)
            .map(|e| (size, Vpn::new(e.tag), e.payload, e.life))
            .inspect(|_| self.stats.evictions += 1)
    }

    /// Early set-index hint for the upcoming access (state-free), aimed
    /// at the primary (first-listed) member.
    #[inline]
    pub fn prefetch(&self, vaddr: VirtAddr) {
        if let Some(m) = self.members.first() {
            m.array.prefetch_set(m.size.vpn_unit(vaddr.vpn()).raw());
        }
    }

    /// Read-only access to the primary member's array (tests, sampling).
    pub fn primary_array(&self) -> &SetAssoc<TlbEntry> {
        &self.members[0].array
    }

    /// The page sizes this group holds, in probe order.
    pub fn sizes(&self) -> impl Iterator<Item = PageSize> + '_ {
        self.members.iter().map(|m| m.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_types::{ReplacementKind, SystemConfig};

    fn tiny() -> Tlb {
        Tlb::new(&TlbConfig { entries: 2, ways: 2, latency: 8, replacement: ReplacementKind::Lru })
    }

    #[test]
    fn translation_roundtrip() {
        let mut t = tiny();
        assert_eq!(t.lookup(Vpn::new(5)), None);
        t.fill(Vpn::new(5), Pfn::new(50), InsertPriority::Normal, 0);
        assert_eq!(t.lookup(Vpn::new(5)), Some(Pfn::new(50)));
        assert_eq!(t.stats.hits, 1);
        assert_eq!(t.stats.misses, 1);
    }

    #[test]
    fn resident_hits_tracks_accessed_bit() {
        let mut t = tiny();
        t.fill(Vpn::new(5), Pfn::new(50), InsertPriority::Normal, 0);
        assert_eq!(t.resident_hits(Vpn::new(5)), Some(0), "freshly filled entry is unaccessed");
        t.lookup(Vpn::new(5));
        assert_eq!(t.resident_hits(Vpn::new(5)), Some(1));
        assert_eq!(t.resident_hits(Vpn::new(99)), None);
    }

    #[test]
    fn eviction_reports_vpn_and_state() {
        let mut t = tiny();
        t.fill(Vpn::new(1), Pfn::new(10), InsertPriority::Normal, 0xAB);
        t.fill(Vpn::new(3), Pfn::new(30), InsertPriority::Normal, 0);
        let (vpn, entry, _) = t.fill(Vpn::new(5), Pfn::new(50), InsertPriority::Normal, 0).unwrap();
        assert_eq!(vpn, Vpn::new(1));
        assert_eq!(entry.state, 0xAB);
        assert_eq!(entry.pfn, 10);
    }

    #[test]
    fn paper_llt_geometry() {
        let t = Tlb::new(&SystemConfig::paper_baseline().l2_tlb);
        assert_eq!(t.array().sets(), 128);
        assert_eq!(t.array().ways(), 8);
    }

    #[test]
    fn single_group_matches_bare_tlb() {
        let config = SystemConfig::paper_baseline().l1_dtlb;
        let mut tlb = Tlb::new(&config);
        let mut group = TlbGroup::single(&config);
        // Identical fill/lookup sequence → identical results and counters.
        for i in 0..200u64 {
            let vpn = Vpn::new(i * 37 % 97);
            let pfn = Pfn::new(1000 + vpn.raw());
            assert_eq!(tlb.lookup(vpn), group.lookup(vpn), "lookup {i}");
            tlb.fill(vpn, pfn, InsertPriority::Normal, 0);
            group.fill(PageSize::Size4K, vpn, pfn, InsertPriority::Normal, 0);
        }
        assert_eq!(tlb.stats, group.stats);
    }

    #[test]
    fn group_probes_all_sizes_and_reconstructs_offsets() {
        let config = SystemConfig::paper_baseline().l1_dtlb;
        let mut group =
            TlbGroup::for_policy(&config, AllocPolicy::Promote2M { threshold: 64 }, false);
        assert_eq!(group.sizes().collect::<Vec<_>>(), [PageSize::Size4K, PageSize::Size2M]);
        // A 2 MB mapping: base frame 0x8000, page vpn 0x4_0055 inside
        // region 0x200 (unit vpn).
        let vpn = Vpn::new(0x4_0055);
        let pfn = Pfn::new(0x8000 + 0x55);
        group.fill(PageSize::Size2M, vpn, pfn, InsertPriority::Normal, 0);
        assert_eq!(group.lookup(vpn), Some(pfn));
        // Any other page of the same region hits the same entry.
        let sibling = Vpn::new(0x4_01ff);
        assert!(group.contains(sibling));
        assert_eq!(group.lookup(sibling), Some(Pfn::new(0x8000 + 0x1ff)));
        // A 4 KB entry with the same unit tag lives in its own member.
        group.fill(PageSize::Size4K, Vpn::new(0x200), Pfn::new(7), InsertPriority::Normal, 0);
        assert_eq!(group.lookup(Vpn::new(0x200)), Some(Pfn::new(7)));
        assert_eq!(group.stats.hits, 3);
        assert_eq!(group.stats.misses, 0);
    }

    /// probe + commit_probe must be indistinguishable from lookup — on a
    /// single-member group and on a multi-member group where the hit
    /// member is not the first probed (the member clocks of the earlier
    /// misses must advance identically).
    #[test]
    fn probe_then_commit_matches_group_lookup() {
        let config = SystemConfig::paper_baseline().l1_dtlb;
        let build = || {
            let mut g =
                TlbGroup::for_policy(&config, AllocPolicy::Promote2M { threshold: 64 }, false);
            g.fill(
                PageSize::Size2M,
                Vpn::new(0x4_0055),
                Pfn::new(0x8000 + 0x55),
                InsertPriority::Normal,
                0,
            );
            g.fill(PageSize::Size4K, Vpn::new(0x200), Pfn::new(7), InsertPriority::Normal, 0);
            g
        };
        let mut via_lookup = build();
        let mut via_commit = build();
        // 4K hit (first member), 2M hit (second member, after a 4K-member
        // miss), sibling 2M hit, and a full miss.
        for vpn in [Vpn::new(0x200), Vpn::new(0x4_0055), Vpn::new(0x4_01ff), Vpn::new(0x999)] {
            let want = via_lookup.lookup(vpn);
            match via_commit.probe(vpn) {
                Some(hit) => {
                    assert_eq!(Some(hit.pfn), want, "probe frame for {vpn:?}");
                    via_commit.commit_probe(vpn, hit);
                }
                None => assert_eq!(want, None, "probe miss must match lookup miss"),
            }
        }
        // commit_probe does not cover the full-miss case (the fast path
        // never commits misses); replay it on the lookup side only and
        // compare the hit counters plus every member's clock.
        assert_eq!(via_commit.stats.hits, via_lookup.stats.hits);
        assert_eq!(via_commit.stats.hits, 3);
        // The one full miss (never committed on the fast path) probed
        // every member on the lookup side; the committed lookups must
        // have advanced each member's clock identically.
        for (a, b) in via_lookup.members.iter().zip(&via_commit.members) {
            assert_eq!(b.array.seq() + 1, a.array.seq(), "member {:?} lookup clock", a.size);
        }
    }

    /// commit_miss (the second fast tier descending past a missing L1
    /// D-TLB) must be indistinguishable from a missing lookup: group
    /// counters plus every member's lookup clock.
    #[test]
    fn commit_miss_matches_missing_lookup() {
        let config = SystemConfig::paper_baseline().l1_dtlb;
        let build = || {
            let mut g =
                TlbGroup::for_policy(&config, AllocPolicy::Promote2M { threshold: 64 }, false);
            g.fill(PageSize::Size4K, Vpn::new(0x200), Pfn::new(7), InsertPriority::Normal, 0);
            g
        };
        let mut via_lookup = build();
        let mut via_commit = build();
        let missing = Vpn::new(0x999);
        assert_eq!(via_lookup.lookup(missing), None);
        assert!(via_commit.probe(missing).is_none());
        via_commit.commit_miss();
        assert_eq!(via_commit.stats, via_lookup.stats);
        for (a, b) in via_lookup.members.iter().zip(&via_commit.members) {
            assert_eq!(a.array.seq(), b.array.seq(), "member {:?} lookup clock", a.size);
        }
    }

    #[test]
    fn split_geometries_follow_cpuid() {
        let config = SystemConfig::paper_baseline().l1_dtlb;
        let group = TlbGroup::for_policy(&config, AllocPolicy::Uniform(PageSize::Size2M), false);
        // Uniform 2 MB: one member with the cpuid 32-entry/4-way split.
        assert_eq!(group.sizes().collect::<Vec<_>>(), [PageSize::Size2M]);
        assert_eq!(group.primary_array().sets() * group.primary_array().ways(), 32);
        assert_eq!(group.primary_array().ways(), 4);
    }
}
