//! Translation lookaside buffers.
//!
//! [`Tlb`] models one TLB level as a set-associative array of
//! VPN → PFN translations with 32 bits of per-entry policy scratch state
//! (dpPred keeps its 6-bit PC hash there; the `Accessed` bit is derived
//! from the entry's hit count). The last-level-TLB policy logic itself
//! lives in [`System`](crate::system::System).

use crate::set_assoc::{Evicted, HasPolicyState, InsertPriority, LineLife, SetAssoc};
use crate::stats::StructStats;
use dpc_types::{Pfn, TlbConfig, Vpn};

/// Per-entry TLB metadata.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbEntry {
    /// The translation target.
    pub pfn: u64,
    /// Policy scratch state.
    pub state: u32,
}

impl HasPolicyState for TlbEntry {
    fn policy_state_mut(&mut self) -> &mut u32 {
        &mut self.state
    }
}

/// One TLB level.
#[derive(Debug)]
pub struct Tlb {
    array: SetAssoc<TlbEntry>,
    /// Hit latency in cycles.
    pub latency: u32,
    /// Counters for this level.
    pub stats: StructStats,
}

impl Tlb {
    /// Builds a TLB from its configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero geometry; validate the [`TlbConfig`] first.
    pub fn new(config: &TlbConfig) -> Self {
        Tlb {
            array: SetAssoc::new(config.sets() as usize, config.ways as usize, config.replacement),
            latency: config.latency,
            stats: StructStats::default(),
        }
    }

    /// Looks up `vpn`, updating recency and counters.
    #[inline]
    pub fn lookup(&mut self, vpn: Vpn) -> Option<Pfn> {
        self.stats.lookups += 1;
        match self.array.lookup_payload(vpn.raw(), vpn.raw()) {
            Some((_, entry)) => {
                self.stats.hits += 1;
                Some(Pfn::new(entry.pfn))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Looks up `vpn` returning the hit way (for policy hooks).
    #[inline]
    pub fn lookup_way(&mut self, vpn: Vpn) -> Option<usize> {
        self.stats.lookups += 1;
        let way = self.array.lookup(vpn.raw(), vpn.raw());
        if way.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        way
    }

    /// Probes without side effects.
    #[inline]
    pub fn contains(&self, vpn: Vpn) -> bool {
        self.array.peek(vpn.raw(), vpn.raw()).is_some()
    }

    /// Hit count of a resident entry (the paper's `Accessed` bit is
    /// `hits > 0`), or `None` if absent. Side-effect free.
    #[inline]
    pub fn resident_hits(&self, vpn: Vpn) -> Option<u64> {
        self.array.peek(vpn.raw(), vpn.raw()).map(|way| self.array.life_of(vpn.raw(), way).hits)
    }

    /// Allocates a translation, evicting via the base replacement policy.
    #[inline]
    pub fn fill(
        &mut self,
        vpn: Vpn,
        pfn: Pfn,
        priority: InsertPriority,
        state: u32,
    ) -> Option<(Vpn, TlbEntry, LineLife)> {
        self.stats.fills += 1;
        self.array
            .fill(vpn.raw(), vpn.raw(), TlbEntry { pfn: pfn.raw(), state }, priority)
            .map(evicted_parts)
            .inspect(|_| self.stats.evictions += 1)
    }

    /// Allocates a translation into a specific way (policy-chosen victim).
    #[inline]
    pub fn fill_way(
        &mut self,
        vpn: Vpn,
        way: usize,
        pfn: Pfn,
        priority: InsertPriority,
        state: u32,
    ) -> Option<(Vpn, TlbEntry, LineLife)> {
        self.stats.fills += 1;
        self.array
            .fill_way(vpn.raw(), way, vpn.raw(), TlbEntry { pfn: pfn.raw(), state }, priority)
            .map(evicted_parts)
            .inspect(|_| self.stats.evictions += 1)
    }

    /// Direct access to the underlying array (policy views, sampling).
    pub fn array_mut(&mut self) -> &mut SetAssoc<TlbEntry> {
        &mut self.array
    }

    /// Read-only access to the underlying array.
    pub fn array(&self) -> &SetAssoc<TlbEntry> {
        &self.array
    }
}

fn evicted_parts(e: Evicted<TlbEntry>) -> (Vpn, TlbEntry, LineLife) {
    (Vpn::new(e.tag), e.payload, e.life)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_types::{ReplacementKind, SystemConfig};

    fn tiny() -> Tlb {
        Tlb::new(&TlbConfig { entries: 2, ways: 2, latency: 8, replacement: ReplacementKind::Lru })
    }

    #[test]
    fn translation_roundtrip() {
        let mut t = tiny();
        assert_eq!(t.lookup(Vpn::new(5)), None);
        t.fill(Vpn::new(5), Pfn::new(50), InsertPriority::Normal, 0);
        assert_eq!(t.lookup(Vpn::new(5)), Some(Pfn::new(50)));
        assert_eq!(t.stats.hits, 1);
        assert_eq!(t.stats.misses, 1);
    }

    #[test]
    fn resident_hits_tracks_accessed_bit() {
        let mut t = tiny();
        t.fill(Vpn::new(5), Pfn::new(50), InsertPriority::Normal, 0);
        assert_eq!(t.resident_hits(Vpn::new(5)), Some(0), "freshly filled entry is unaccessed");
        t.lookup(Vpn::new(5));
        assert_eq!(t.resident_hits(Vpn::new(5)), Some(1));
        assert_eq!(t.resident_hits(Vpn::new(99)), None);
    }

    #[test]
    fn eviction_reports_vpn_and_state() {
        let mut t = tiny();
        t.fill(Vpn::new(1), Pfn::new(10), InsertPriority::Normal, 0xAB);
        t.fill(Vpn::new(3), Pfn::new(30), InsertPriority::Normal, 0);
        let (vpn, entry, _) = t.fill(Vpn::new(5), Pfn::new(50), InsertPriority::Normal, 0).unwrap();
        assert_eq!(vpn, Vpn::new(1));
        assert_eq!(entry.state, 0xAB);
        assert_eq!(entry.pfn, 10);
    }

    #[test]
    fn paper_llt_geometry() {
        let t = Tlb::new(&SystemConfig::paper_baseline().l2_tlb);
        assert_eq!(t.array().sets(), 128);
        assert_eq!(t.array().ways(), 8);
    }
}
