//! Trace-driven memory-hierarchy simulator: caches, TLBs, page-table walks
//! and a mechanistic out-of-order core timing model.
//!
//! This crate is the substrate under the dead-page/dead-block predictors of
//! the HPCA 2021 paper *"Dead Page and Dead Block Predictors: Cleaning TLBs
//! and Caches Together"*. It models the machine of the paper's Table I:
//!
//! * a three-level data-cache hierarchy with an **inclusive LLC**
//!   ([`cache`], [`hierarchy`]);
//! * split L1 I/D TLBs and a unified **L2 TLB (the last-level TLB)**
//!   ([`tlb`]);
//! * a four-level radix **page table allocated in simulated physical
//!   memory**, walked through the data caches ([`page_table`], [`walker`]),
//!   accelerated by three **page-walk caches** ([`pwc`]);
//! * an MSHR that carries the PC hash from LLT miss to LLT fill ([`mshr`]);
//! * a ROB-based **timing model** in which independent misses overlap
//!   ([`core_model`]);
//! * deadness **sampling and eviction classification** used by the paper's
//!   characterization figures ([`stats`]).
//!
//! Management policies (dpPred, cbPred, SHiP, AIP, ...) plug in through the
//! hook traits in [`policy`]; the implementations live in `dpc-predictors`.
//!
//! # Example
//!
//! ```
//! use dpc_memsim::System;
//! use dpc_types::{Event, Pc, SystemConfig, VirtAddr, Workload};
//!
//! struct Stream(u64);
//! impl Workload for Stream {
//!     fn name(&self) -> &str { "stream" }
//!     fn next_event(&mut self) -> Option<Event> {
//!         if self.0 == 0 { return None; }
//!         self.0 -= 1;
//!         Some(Event::load(Pc::new(0x400), VirtAddr::new(0x10_0000 + self.0 * 64)))
//!     }
//! }
//!
//! let mut system = System::new(SystemConfig::paper_baseline()).unwrap();
//! let stats = system.run(&mut Stream(10_000));
//! assert_eq!(stats.mem_ops, 10_000);
//! // L1D also serves the page walker's PTE loads.
//! assert!(stats.l1d.lookups >= 10_000);
//! assert!(stats.ipc() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod core_model;
pub mod fallback;
pub mod hierarchy;
pub mod mshr;
pub mod page_table;
pub mod policy;
pub mod pwc;
pub mod set_assoc;
pub mod simd;
pub mod soa;
pub mod stats;
pub mod system;
pub mod tlb;
pub mod walker;

pub use fallback::{DynLlcPolicy, DynLltPolicy};
pub use policy::{
    AccuracyReport, BlockFillDecision, EvictedBlock, EvictedPage, InsertPriority, LlcPolicy,
    LltPolicy, NullBlockPolicy, NullPagePolicy, PageFillDecision, PolicyLineView,
};
pub use stats::{DeadnessStats, EvictionClasses, SimStats, StructStats};
pub use system::{System, SystemError};
