//! Mechanistic out-of-order core timing model.
//!
//! The paper evaluates on Sniper's interval core model. We use the same
//! class of approximation: a trace-driven reorder-buffer model in which
//!
//! * instructions dispatch at up to `width` per cycle;
//! * dispatch stalls when the ROB is full until the oldest instruction
//!   retires;
//! * an instruction completes at `dispatch + latency` (compute ops have
//!   latency 1; memory ops get their hierarchy latency);
//! * retirement is in order.
//!
//! The key property this reproduces is **memory-level parallelism**:
//! independent long-latency misses inside one ROB window overlap almost
//! entirely, while misses more than `rob_size` instructions apart
//! serialize. Dependences *within* one access (TLB miss → sequential page
//! walk → data access) are already serialized in the latency the memory
//! system reports.
//!
//! Explicit register dependences between different memory operations are
//! not modeled (every op is assumed independent); this overstates MLP for
//! pointer-chasing codes, which is acceptable for the paper's *relative*
//! comparisons (see DESIGN.md §3).

/// The timing model. Feed it instructions via [`issue`](CoreModel::issue)
/// and read total [`cycles`](CoreModel::cycles) at the end.
#[derive(Clone, Debug)]
pub struct CoreModel {
    width: u64,
    rob_size: usize,
    /// Retire cycle of instruction `i`, stored at `i % rob_size`.
    retire_ring: Vec<u64>,
    /// `count % rob_size`, maintained as a wrapping cursor so the hot
    /// path never divides by the (non-power-of-two) ROB size.
    ring_pos: usize,
    /// Instructions issued so far.
    count: u64,
    /// Cycle in which the next dispatch slot falls.
    dispatch_cycle: u64,
    /// Instructions already dispatched in `dispatch_cycle`.
    dispatched_in_cycle: u64,
    /// Retire cycle of the most recent instruction (monotone).
    last_retire: u64,
    /// Completion cycle of the most recent memory instruction, for
    /// dependent-access serialization.
    last_mem_complete: u64,
    /// Completion cycles of outstanding memory operations, one per
    /// line-fill-buffer slot: the MLP cap.
    mem_slots: Vec<u64>,
}

impl CoreModel {
    /// Creates a core with the given dispatch width, ROB capacity, and
    /// outstanding-memory-operation (MLP) cap.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(width: u32, rob_size: u32, mem_slots: u32) -> Self {
        assert!(
            width > 0 && rob_size > 0 && mem_slots > 0,
            "core width, ROB size and memory slots must be nonzero"
        );
        CoreModel {
            width: u64::from(width),
            rob_size: rob_size as usize,
            retire_ring: vec![0; rob_size as usize],
            ring_pos: 0,
            count: 0,
            dispatch_cycle: 0,
            dispatched_in_cycle: 0,
            last_retire: 0,
            last_mem_complete: 0,
            mem_slots: vec![0; mem_slots as usize],
        }
    }

    #[inline]
    fn dispatch_slot(&mut self) -> u64 {
        // ROB-full stall: instruction `count` cannot dispatch before
        // instruction `count - rob_size` has retired (its retire cycle
        // sits in the ring slot this instruction is about to overwrite).
        if self.count >= self.rob_size as u64 {
            dpc_types::invariant!(self.ring_pos < self.rob_size, "ring cursor wraps at rob_size");
            let oldest_retire = self.retire_ring[self.ring_pos];
            if oldest_retire > self.dispatch_cycle {
                self.dispatch_cycle = oldest_retire;
                self.dispatched_in_cycle = 0;
            }
        }
        let slot = self.dispatch_cycle;
        self.dispatched_in_cycle += 1;
        if self.dispatched_in_cycle >= self.width {
            self.dispatch_cycle += 1;
            self.dispatched_in_cycle = 0;
        }
        slot
    }

    /// Issues one instruction that completes `latency` cycles after
    /// dispatch.
    #[inline]
    pub fn issue(&mut self, latency: u64) {
        let dispatch = self.dispatch_slot();
        let complete = dispatch + latency;
        self.retire(complete);
    }

    /// Issues one *memory* instruction. If `dependent`, its address was
    /// produced by the previous memory instruction, so execution cannot
    /// begin before that instruction completed — the serialization that
    /// bounds MLP in pointer-chasing and gather code. Independent memory
    /// operations still contend for the finite line-fill-buffer slots.
    #[inline]
    pub fn issue_mem(&mut self, latency: u64, dependent: bool) {
        let dispatch = self.dispatch_slot();
        // Acquire the earliest-free memory slot. Dispatch cycles are
        // monotone, so every slot whose `free_at` is already at or before
        // `dispatch` is interchangeable with the true minimum: `start`
        // comes out as `dispatch` either way, and a stale value ≤
        // `dispatch` can never delay a later access. Taking the *first*
        // such slot lets the scan stop after one probe in the common
        // low-MLP case instead of always walking every slot.
        let mut slot_idx = 0;
        let mut slot_free = u64::MAX;
        for (idx, &free_at) in self.mem_slots.iter().enumerate() {
            if free_at <= dispatch {
                slot_idx = idx;
                slot_free = free_at;
                break;
            }
            if free_at < slot_free {
                slot_free = free_at;
                slot_idx = idx;
            }
        }
        let mut start = dispatch.max(slot_free);
        if dependent {
            start = start.max(self.last_mem_complete);
        }
        let complete = start + latency;
        self.mem_slots[slot_idx] = complete;
        self.last_mem_complete = complete;
        self.retire(complete);
    }

    #[inline]
    fn retire(&mut self, complete: u64) {
        if complete > self.last_retire {
            self.last_retire = complete;
        }
        dpc_types::invariant!(self.ring_pos < self.rob_size, "ring cursor wraps at rob_size");
        self.retire_ring[self.ring_pos] = self.last_retire;
        self.ring_pos += 1;
        if self.ring_pos == self.rob_size {
            self.ring_pos = 0;
        }
        self.count += 1;
    }

    /// Issues `n` single-cycle non-memory instructions.
    #[inline]
    pub fn issue_compute(&mut self, n: u64) {
        for _ in 0..n {
            self.issue(1);
        }
    }

    /// Total cycles elapsed: the retire time of the youngest instruction.
    #[inline]
    pub fn cycles(&self) -> u64 {
        self.last_retire
    }

    /// Instructions issued so far.
    #[inline]
    pub fn instructions(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_limits_throughput() {
        let mut core = CoreModel::new(4, 192, 10);
        core.issue_compute(4000);
        // 4000 single-cycle ops at width 4 take ~1000 cycles.
        let cycles = core.cycles();
        assert!((1000..=1010).contains(&cycles), "cycles = {cycles}");
        assert_eq!(core.instructions(), 4000);
    }

    #[test]
    fn single_miss_adds_latency() {
        let mut core = CoreModel::new(4, 192, 10);
        core.issue(200);
        assert_eq!(core.cycles(), 200);
    }

    #[test]
    fn independent_misses_overlap_within_rob() {
        let mut core = CoreModel::new(4, 192, 10);
        core.issue(200);
        core.issue(200);
        // Second miss dispatches in the same cycle (width 4); both complete
        // at ~200, not 400.
        assert!(core.cycles() <= 201, "cycles = {}", core.cycles());
    }

    #[test]
    fn misses_beyond_rob_serialize() {
        let mut core = CoreModel::new(4, 8, 10);
        core.issue(200); // retires at 200
        core.issue_compute(8); // fills the ROB behind the miss
        core.issue(200); // must wait for ROB head: dispatch >= 200
        assert!(core.cycles() >= 400, "cycles = {}", core.cycles());
    }

    #[test]
    fn in_order_retirement_is_monotone() {
        let mut core = CoreModel::new(1, 4, 10);
        core.issue(100);
        core.issue(1); // completes early but retires after the miss
        assert_eq!(core.cycles(), 100);
    }

    #[test]
    fn rob_stall_resets_dispatch_fraction() {
        let mut core = CoreModel::new(2, 2, 10);
        core.issue(50);
        core.issue(50);
        // ROB (2 entries) is full; next instruction waits for the head.
        core.issue(1);
        assert!(core.cycles() >= 51);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_width_rejected() {
        CoreModel::new(0, 1, 1);
    }

    #[test]
    fn dependent_misses_serialize() {
        let mut core = CoreModel::new(4, 192, 10);
        core.issue_mem(200, false);
        core.issue_mem(200, true); // pointer chase: waits for the first
        assert!(core.cycles() >= 400, "cycles = {}", core.cycles());
    }

    #[test]
    fn independent_mem_ops_still_overlap() {
        let mut core = CoreModel::new(4, 192, 10);
        core.issue_mem(200, false);
        core.issue_mem(200, false);
        assert!(core.cycles() <= 201, "cycles = {}", core.cycles());
    }

    #[test]
    fn dependence_chain_resets_after_independent_op() {
        let mut core = CoreModel::new(4, 192, 10);
        core.issue_mem(100, false); // completes ~100
        core.issue_mem(10, true); // completes ~110
        core.issue_mem(100, false); // independent: completes ~100..101
                                    // The third op overlapped with the chain.
        assert!(core.cycles() <= 115, "cycles = {}", core.cycles());
    }

    #[test]
    fn ipc_approaches_width_on_hits() {
        let mut core = CoreModel::new(4, 192, 10);
        // 6-cycle L1-hit-like latencies do not limit a 192-entry ROB.
        for _ in 0..10_000 {
            core.issue(6);
        }
        let ipc = core.instructions() as f64 / core.cycles() as f64;
        assert!(ipc > 3.9, "ipc = {ipc}");
    }
}
