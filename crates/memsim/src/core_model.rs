//! Mechanistic out-of-order core timing model.
//!
//! The paper evaluates on Sniper's interval core model. We use the same
//! class of approximation: a trace-driven reorder-buffer model in which
//!
//! * instructions dispatch at up to `width` per cycle;
//! * dispatch stalls when the ROB is full until the oldest instruction
//!   retires;
//! * an instruction completes at `dispatch + latency` (compute ops have
//!   latency 1; memory ops get their hierarchy latency);
//! * retirement is in order.
//!
//! The key property this reproduces is **memory-level parallelism**:
//! independent long-latency misses inside one ROB window overlap almost
//! entirely, while misses more than `rob_size` instructions apart
//! serialize. Dependences *within* one access (TLB miss → sequential page
//! walk → data access) are already serialized in the latency the memory
//! system reports.
//!
//! Explicit register dependences between different memory operations are
//! not modeled (every op is assumed independent); this overstates MLP for
//! pointer-chasing codes, which is acceptable for the paper's *relative*
//! comparisons (see DESIGN.md §3).

/// The timing model. Feed it instructions via [`issue`](CoreModel::issue)
/// and read total [`cycles`](CoreModel::cycles) at the end.
#[derive(Clone, Debug)]
pub struct CoreModel {
    width: u64,
    rob_size: usize,
    /// Retire cycle of instruction `i`, stored at `i % rob_size`.
    retire_ring: Vec<u64>,
    /// `count % rob_size`, maintained as a wrapping cursor so the hot
    /// path never divides by the (non-power-of-two) ROB size.
    ring_pos: usize,
    /// Instructions issued so far.
    count: u64,
    /// Cycle in which the next dispatch slot falls.
    dispatch_cycle: u64,
    /// Instructions already dispatched in `dispatch_cycle`.
    dispatched_in_cycle: u64,
    /// Retire cycle of the most recent instruction (monotone).
    last_retire: u64,
    /// Completion cycle of the most recent memory instruction, for
    /// dependent-access serialization.
    last_mem_complete: u64,
    /// Completion cycles of outstanding memory operations, one per
    /// line-fill-buffer slot: the MLP cap.
    mem_slots: Vec<u64>,
}

impl CoreModel {
    /// Creates a core with the given dispatch width, ROB capacity, and
    /// outstanding-memory-operation (MLP) cap.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(width: u32, rob_size: u32, mem_slots: u32) -> Self {
        assert!(
            width > 0 && rob_size > 0 && mem_slots > 0,
            "core width, ROB size and memory slots must be nonzero"
        );
        CoreModel {
            width: u64::from(width),
            rob_size: rob_size as usize,
            retire_ring: vec![0; rob_size as usize],
            ring_pos: 0,
            count: 0,
            dispatch_cycle: 0,
            dispatched_in_cycle: 0,
            last_retire: 0,
            last_mem_complete: 0,
            mem_slots: vec![0; mem_slots as usize],
        }
    }

    #[inline]
    fn dispatch_slot(&mut self) -> u64 {
        // ROB-full stall: instruction `count` cannot dispatch before
        // instruction `count - rob_size` has retired (its retire cycle
        // sits in the ring slot this instruction is about to overwrite).
        if self.count >= self.rob_size as u64 {
            dpc_types::invariant!(self.ring_pos < self.rob_size, "ring cursor wraps at rob_size");
            let oldest_retire = self.retire_ring[self.ring_pos];
            if oldest_retire > self.dispatch_cycle {
                self.dispatch_cycle = oldest_retire;
                self.dispatched_in_cycle = 0;
            }
        }
        let slot = self.dispatch_cycle;
        self.dispatched_in_cycle += 1;
        if self.dispatched_in_cycle >= self.width {
            self.dispatch_cycle += 1;
            self.dispatched_in_cycle = 0;
        }
        slot
    }

    /// Issues one instruction that completes `latency` cycles after
    /// dispatch.
    #[inline]
    pub fn issue(&mut self, latency: u64) {
        let dispatch = self.dispatch_slot();
        let complete = dispatch + latency;
        self.retire(complete);
    }

    /// Issues one *memory* instruction. If `dependent`, its address was
    /// produced by the previous memory instruction, so execution cannot
    /// begin before that instruction completed — the serialization that
    /// bounds MLP in pointer-chasing and gather code. Independent memory
    /// operations still contend for the finite line-fill-buffer slots.
    #[inline]
    pub fn issue_mem(&mut self, latency: u64, dependent: bool) {
        let dispatch = self.dispatch_slot();
        // Acquire the earliest-free memory slot. Dispatch cycles are
        // monotone, so every slot whose `free_at` is already at or before
        // `dispatch` is interchangeable with the true minimum: `start`
        // comes out as `dispatch` either way, and a stale value ≤
        // `dispatch` can never delay a later access. Taking the *first*
        // such slot lets the scan stop after one probe in the common
        // low-MLP case instead of always walking every slot.
        let mut slot_idx = 0;
        let mut slot_free = u64::MAX;
        for (idx, &free_at) in self.mem_slots.iter().enumerate() {
            if free_at <= dispatch {
                slot_idx = idx;
                slot_free = free_at;
                break;
            }
            if free_at < slot_free {
                slot_free = free_at;
                slot_idx = idx;
            }
        }
        let mut start = dispatch.max(slot_free);
        if dependent {
            start = start.max(self.last_mem_complete);
        }
        let complete = start + latency;
        self.mem_slots[slot_idx] = complete;
        self.last_mem_complete = complete;
        self.retire(complete);
    }

    #[inline]
    fn retire(&mut self, complete: u64) {
        if complete > self.last_retire {
            self.last_retire = complete;
        }
        dpc_types::invariant!(self.ring_pos < self.rob_size, "ring cursor wraps at rob_size");
        self.retire_ring[self.ring_pos] = self.last_retire;
        self.ring_pos += 1;
        if self.ring_pos == self.rob_size {
            self.ring_pos = 0;
        }
        self.count += 1;
    }

    /// Issues `n` single-cycle non-memory instructions.
    #[inline]
    pub fn issue_compute(&mut self, n: u64) {
        for _ in 0..n {
            self.issue(1);
        }
    }

    /// Issues one memory instruction inside a fast-path run, carrying the
    /// run's fixed latency. Bit-identical to
    /// `issue_mem(run.latency, dependent)` in every observable — cycles,
    /// instruction count, ROB/dispatch state, dependence serialization —
    /// but amortizes the line-fill-buffer scan across the run instead of
    /// re-walking every slot per instruction (see [`MemRun`]).
    ///
    /// # Equivalence
    ///
    /// [`issue_mem`](Self::issue_mem) picks the *first* slot whose value
    /// is ≤ `dispatch`, else the first-encountered minimum. This path
    /// always overwrites the *global-minimum* slot. The two are timing-
    /// equivalent:
    ///
    /// * If any slot value is ≤ `dispatch`, the global minimum is too;
    ///   `start = dispatch` either way, and the overwritten value — in
    ///   both variants ≤ `dispatch`, which dispatch monotonicity keeps ≤
    ///   every future dispatch — can never delay any later access. The
    ///   slot multisets of the two executions differ only in values that
    ///   are forever-free in both, so every future free-slot test and
    ///   every future all-busy minimum agrees.
    /// * If no slot value is ≤ `dispatch`, both variants pick the same
    ///   minimum *value* over the identical busy multiset (ties in index
    ///   are unobservable — only the value enters `start`).
    #[inline]
    pub fn issue_mem_run(&mut self, run: &mut MemRun, dependent: bool) {
        let latency = run.latency;
        self.issue_mem_run_at(run, latency, dependent);
    }

    /// [`issue_mem_run`](Self::issue_mem_run) with a per-call latency —
    /// the second fast tier's entry point, whose L2-hit retires carry a
    /// longer latency than the run's L1-hit base. The slot *choice* is
    /// latency-independent (only the completion value depends on it), so
    /// the equivalence argument above carries over verbatim; a shorter
    /// completion landing below the FIFO back is caught by the same
    /// monotonicity check as a dependence stall and handled by the exact
    /// rebuild path.
    #[inline]
    pub fn issue_mem_run_at(&mut self, run: &mut MemRun, latency: u64, dependent: bool) {
        if !run.init {
            run.init(self.mem_slots.len());
        }
        if run.fallback {
            // Geometry beyond the fixed-size run caches: stay exact by
            // delegating to the per-instruction scan.
            self.issue_mem(latency, dependent);
            return;
        }
        let dispatch = self.dispatch_slot();
        if run.leftover != 0 && !run.min_valid {
            let (val, idx) = min_slot(&self.mem_slots, run.leftover);
            run.left_min_val = val;
            run.left_min_idx = idx;
            run.min_valid = true;
        }
        // Global minimum over all slots: the cached leftover minimum vs
        // the FIFO front (the minimum of the monotone run-written values).
        dpc_types::invariant!(
            run.leftover != 0 || run.fifo_len > 0,
            "every slot is in the leftover set or the run FIFO"
        );
        let (val, idx, from_fifo) = if run.fifo_len > 0 {
            let front = run.fifo[run.fifo_head & (MEM_RUN_MAX_SLOTS - 1)] as usize;
            dpc_types::invariant!(front < self.mem_slots.len(), "FIFO holds slot indices");
            let front_val = self.mem_slots[front];
            if run.leftover != 0 && run.left_min_val <= front_val {
                (run.left_min_val, run.left_min_idx, false)
            } else {
                (front_val, front, true)
            }
        } else {
            (run.left_min_val, run.left_min_idx, false)
        };
        let mut start = dispatch.max(val);
        if dependent {
            start = start.max(self.last_mem_complete);
        }
        let complete = start + latency;
        dpc_types::invariant!(idx < self.mem_slots.len(), "picked slot index is in range");
        self.mem_slots[idx] = complete;
        if from_fifo {
            run.fifo_head = (run.fifo_head + 1) & (MEM_RUN_MAX_SLOTS - 1);
            run.fifo_len -= 1;
        } else {
            // The leftover pick is always the cached minimum; destroying
            // it invalidates the cache (recomputed lazily on next use).
            run.leftover &= !(1u64 << idx);
            run.min_valid = false;
        }
        if run.fifo_len == 0 || complete >= run.fifo_back_val {
            let back = (run.fifo_head + run.fifo_len) & (MEM_RUN_MAX_SLOTS - 1);
            run.fifo[back] = idx as u32;
            run.fifo_len += 1;
            run.fifo_back_val = complete;
        } else {
            // A dependence stall (e.g. the run follows a slow-path miss
            // whose completion is far in the future) produced a completion
            // below the FIFO back, breaking the monotone-FIFO invariant.
            // Rebuild: return every slot to the leftover set — the values
            // live in `mem_slots`, nothing is lost — and restart the FIFO.
            run.leftover = slot_mask(self.mem_slots.len());
            run.min_valid = false;
            run.fifo_len = 0;
            run.fifo_head = 0;
        }
        self.last_mem_complete = complete;
        self.retire(complete);
    }

    /// Total cycles elapsed: the retire time of the youngest instruction.
    #[inline]
    pub fn cycles(&self) -> u64 {
        self.last_retire
    }

    /// Instructions issued so far.
    #[inline]
    pub fn instructions(&self) -> u64 {
        self.count
    }
}

/// Capacity of [`MemRun`]'s fixed slot caches. Configurations with more
/// line-fill buffers (none in the paper: the baseline has 10) fall back
/// to the per-instruction [`CoreModel::issue_mem`] scan.
const MEM_RUN_MAX_SLOTS: usize = 64;

/// Validity mask with one bit per line-fill-buffer slot.
#[inline]
fn slot_mask(slots: usize) -> u64 {
    if slots >= MEM_RUN_MAX_SLOTS {
        u64::MAX
    } else {
        (1u64 << slots) - 1
    }
}

/// First-encountered minimum of `slots` restricted to `mask`'s set bits.
/// Same scan direction (ascending index, strict `<`) as the
/// [`CoreModel::issue_mem`] full-scan fallback, so tied minima resolve to
/// the same value.
#[inline]
fn min_slot(slots: &[u64], mask: u64) -> (u64, usize) {
    let mut best_val = u64::MAX;
    let mut best_idx = 0usize;
    let mut m = mask;
    while m != 0 {
        let idx = m.trailing_zeros() as usize;
        m &= m - 1;
        dpc_types::invariant!(idx < slots.len(), "slot mask bits stay inside the slot array");
        let val = slots[idx];
        if val < best_val {
            best_val = val;
            best_idx = idx;
        }
    }
    (best_val, best_idx)
}

/// Cross-instruction scan state for a run of same-latency memory issues
/// (the replay fast path's L1 hits), fed to
/// [`CoreModel::issue_mem_run`].
///
/// Slots are partitioned into two groups whose minima are cheap to
/// maintain:
///
/// * **leftover** — slots not yet written during this run, tracked as a
///   bitmask with a lazily-cached first-encountered minimum. Their values
///   only change when the run writes them (which moves them out of the
///   set), so the cache stays valid until its own minimum is consumed.
/// * **run FIFO** — slots written during the run, in write order. Run
///   completions are non-decreasing while dispatch advances monotonically
///   and the latency is fixed, so the FIFO front is the minimum of the
///   group; a dependence stall can break the monotonicity, which is
///   detected at push time and handled by dissolving the FIFO back into
///   the leftover set.
///
/// The global minimum — what [`CoreModel::issue_mem_run`] overwrites —
/// is then `min(leftover cached min, FIFO front)`: O(1) per instruction
/// in steady state, against the O(slots) scan of
/// [`CoreModel::issue_mem`].
#[derive(Clone, Debug)]
pub struct MemRun {
    /// Fixed completion latency of every memory issue in this run.
    latency: u64,
    /// Lazily initialized from the core's geometry on first use.
    init: bool,
    /// Geometry exceeds the fixed caches: delegate to `issue_mem`.
    fallback: bool,
    /// Bitmask of slots not yet written during this run.
    leftover: u64,
    /// Whether `left_min_val` / `left_min_idx` are current.
    min_valid: bool,
    /// Cached minimum value among `leftover` slots.
    left_min_val: u64,
    /// Cached index of that minimum.
    left_min_idx: usize,
    /// Run-written slot indices in write order (ring buffer).
    fifo: [u32; MEM_RUN_MAX_SLOTS],
    /// Ring-buffer head position.
    fifo_head: usize,
    /// Ring-buffer occupancy.
    fifo_len: usize,
    /// Completion value most recently pushed (the FIFO back).
    fifo_back_val: u64,
}

impl MemRun {
    /// Begins a run whose memory issues all complete `latency` cycles
    /// after they start. Construction is core-independent and cheap; the
    /// slot caches initialize on the first
    /// [`CoreModel::issue_mem_run`] call, so a run that retires zero
    /// memory instructions costs nothing.
    #[inline]
    pub fn new(latency: u64) -> Self {
        MemRun {
            latency,
            init: false,
            fallback: false,
            leftover: 0,
            min_valid: false,
            left_min_val: u64::MAX,
            left_min_idx: 0,
            fifo: [0; MEM_RUN_MAX_SLOTS],
            fifo_head: 0,
            fifo_len: 0,
            fifo_back_val: 0,
        }
    }

    /// Binds the run to a core's line-fill-buffer geometry.
    #[inline]
    fn init(&mut self, slots: usize) {
        self.init = true;
        self.fallback = slots > MEM_RUN_MAX_SLOTS;
        self.leftover = slot_mask(slots);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_limits_throughput() {
        let mut core = CoreModel::new(4, 192, 10);
        core.issue_compute(4000);
        // 4000 single-cycle ops at width 4 take ~1000 cycles.
        let cycles = core.cycles();
        assert!((1000..=1010).contains(&cycles), "cycles = {cycles}");
        assert_eq!(core.instructions(), 4000);
    }

    #[test]
    fn single_miss_adds_latency() {
        let mut core = CoreModel::new(4, 192, 10);
        core.issue(200);
        assert_eq!(core.cycles(), 200);
    }

    #[test]
    fn independent_misses_overlap_within_rob() {
        let mut core = CoreModel::new(4, 192, 10);
        core.issue(200);
        core.issue(200);
        // Second miss dispatches in the same cycle (width 4); both complete
        // at ~200, not 400.
        assert!(core.cycles() <= 201, "cycles = {}", core.cycles());
    }

    #[test]
    fn misses_beyond_rob_serialize() {
        let mut core = CoreModel::new(4, 8, 10);
        core.issue(200); // retires at 200
        core.issue_compute(8); // fills the ROB behind the miss
        core.issue(200); // must wait for ROB head: dispatch >= 200
        assert!(core.cycles() >= 400, "cycles = {}", core.cycles());
    }

    #[test]
    fn in_order_retirement_is_monotone() {
        let mut core = CoreModel::new(1, 4, 10);
        core.issue(100);
        core.issue(1); // completes early but retires after the miss
        assert_eq!(core.cycles(), 100);
    }

    #[test]
    fn rob_stall_resets_dispatch_fraction() {
        let mut core = CoreModel::new(2, 2, 10);
        core.issue(50);
        core.issue(50);
        // ROB (2 entries) is full; next instruction waits for the head.
        core.issue(1);
        assert!(core.cycles() >= 51);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_width_rejected() {
        CoreModel::new(0, 1, 1);
    }

    #[test]
    fn dependent_misses_serialize() {
        let mut core = CoreModel::new(4, 192, 10);
        core.issue_mem(200, false);
        core.issue_mem(200, true); // pointer chase: waits for the first
        assert!(core.cycles() >= 400, "cycles = {}", core.cycles());
    }

    #[test]
    fn independent_mem_ops_still_overlap() {
        let mut core = CoreModel::new(4, 192, 10);
        core.issue_mem(200, false);
        core.issue_mem(200, false);
        assert!(core.cycles() <= 201, "cycles = {}", core.cycles());
    }

    #[test]
    fn dependence_chain_resets_after_independent_op() {
        let mut core = CoreModel::new(4, 192, 10);
        core.issue_mem(100, false); // completes ~100
        core.issue_mem(10, true); // completes ~110
        core.issue_mem(100, false); // independent: completes ~100..101
                                    // The third op overlapped with the chain.
        assert!(core.cycles() <= 115, "cycles = {}", core.cycles());
    }

    /// Drives a reference core with `issue_mem` and a fast core with
    /// `issue_mem_run` through the same instruction sequence and asserts
    /// every observable agrees. `ops` items: `(compute_ops, dependent)` —
    /// `compute_ops > 0` issues compute, else one memory issue.
    fn assert_run_matches_issue_mem(
        geometry: (u32, u32, u32),
        latency: u64,
        prelude_miss: Option<u64>,
        ops: &[(u64, bool)],
    ) {
        let (width, rob, slots) = geometry;
        let mut slow = CoreModel::new(width, rob, slots);
        let mut fast = CoreModel::new(width, rob, slots);
        if let Some(miss_latency) = prelude_miss {
            slow.issue_mem(miss_latency, false);
            fast.issue_mem(miss_latency, false);
        }
        let mut run = MemRun::new(latency);
        for &(compute_ops, dependent) in ops {
            if compute_ops > 0 {
                slow.issue_compute(compute_ops);
                fast.issue_compute(compute_ops);
            } else {
                slow.issue_mem(latency, dependent);
                fast.issue_mem_run(&mut run, dependent);
            }
        }
        // A slow-path epilogue on both cores: the run must leave slot
        // state that future issue_mem calls observe identically.
        for i in 0..(slots as u64 + 4) {
            slow.issue_mem(latency + 100 + i, i % 3 == 0);
            fast.issue_mem(latency + 100 + i, i % 3 == 0);
        }
        assert_eq!(fast.cycles(), slow.cycles(), "cycles, ops {ops:?}");
        assert_eq!(fast.instructions(), slow.instructions());
        assert_eq!(fast.dispatch_cycle, slow.dispatch_cycle);
        assert_eq!(fast.dispatched_in_cycle, slow.dispatched_in_cycle);
        assert_eq!(fast.last_mem_complete, slow.last_mem_complete);
        assert_eq!(fast.retire_ring, slow.retire_ring, "ROB state, ops {ops:?}");
    }

    #[test]
    fn mem_run_matches_issue_mem_on_alternating_streams() {
        // The emitter's real shape: compute, mem, compute, mem, ...
        let ops: Vec<(u64, bool)> = (0..200)
            .map(|i| if i % 2 == 0 { (1 + i % 3, false) } else { (0, i % 5 == 0) })
            .collect();
        assert_run_matches_issue_mem((4, 192, 10), 13, None, &ops);
    }

    #[test]
    fn mem_run_matches_issue_mem_on_pure_mem_bursts() {
        let ops: Vec<(u64, bool)> = (0..300).map(|i| (0, i % 7 == 3)).collect();
        assert_run_matches_issue_mem((4, 192, 10), 13, None, &ops);
        // Tiny ROB and single slot: heavy stalling, still identical.
        assert_run_matches_issue_mem((1, 2, 1), 13, None, &ops);
    }

    #[test]
    fn mem_run_survives_non_monotone_completions() {
        // A huge in-flight miss before the run: the first dependent run
        // issue completes far in the future, then independent issues
        // complete earlier — breaking the run FIFO's monotonicity and
        // forcing the rebuild path.
        let ops: Vec<(u64, bool)> = (0..50).map(|i| (0, i == 0 || i == 20)).collect();
        assert_run_matches_issue_mem((4, 192, 10), 13, Some(5_000), &ops);
        assert_run_matches_issue_mem((4, 32, 4), 13, Some(5_000), &ops);
    }

    #[test]
    fn mem_run_handles_more_slots_than_the_fixed_cache() {
        let ops: Vec<(u64, bool)> = (0..150).map(|i| (u64::from(i % 4 == 0), i % 6 == 5)).collect();
        assert_run_matches_issue_mem((4, 256, 100), 13, Some(700), &ops);
    }

    #[test]
    fn unused_mem_run_leaves_core_untouched() {
        let mut core = CoreModel::new(4, 192, 10);
        core.issue_compute(10);
        let cycles = core.cycles();
        let _run = MemRun::new(13);
        assert_eq!(core.cycles(), cycles);
        assert_eq!(core.instructions(), 10);
    }

    #[test]
    fn ipc_approaches_width_on_hits() {
        let mut core = CoreModel::new(4, 192, 10);
        // 6-cycle L1-hit-like latencies do not limit a 192-entry ROB.
        for _ in 0..10_000 {
            core.issue(6);
        }
        let ipc = core.instructions() as f64 / core.cycles() as f64;
        assert!(ipc > 3.9, "ipc = {ipc}");
    }
}
