//! The designated `dyn`-dispatch fallback for [`System`](crate::System).
//!
//! The simulator is generic over its two policies (`System<L, C>`) so
//! that every policy pair the campaign sweeps compiles into its own
//! monomorphic event loop with the pHIST/bHIST lookup and update paths
//! inlined (DESIGN.md §11). Exotic or test policies that are only known
//! at runtime still need the old boxed form — this module is the one
//! place in `memsim`/`core` where `Box<dyn LltPolicy>` / `Box<dyn
//! LlcPolicy>` may appear (enforced by the `dispatch::boxed-policy`
//! dpc-lint rule): it defines the boxed aliases, forwards the policy
//! traits through the box, and keeps the original [`System::new`] /
//! [`System::with_policies`] constructors compiling unchanged on the
//! defaulted `System` type.
//!
//! The forwarding impls delegate **every** trait method explicitly —
//! leaving one to its default body would silently disconnect the boxed
//! policy's override of that hook.

use crate::hierarchy::Hierarchy;
use crate::policy::{
    AccuracyReport, BlockFillDecision, EvictedBlock, EvictedPage, LlcPolicy, LltPolicy,
    NullBlockPolicy, NullPagePolicy, PageFillDecision, PolicyLineView,
};
use crate::system::{System, SystemError};
use dpc_types::{BlockAddr, Pc, Pfn, SystemConfig, Vpn};

/// Boxed LLT policy: the runtime-dispatch fallback type parameter.
pub type DynLltPolicy = Box<dyn LltPolicy>;

/// Boxed LLC policy: the runtime-dispatch fallback type parameter.
pub type DynLlcPolicy = Box<dyn LlcPolicy>;

impl LltPolicy for DynLltPolicy {
    fn policy_name(&self) -> &'static str {
        (**self).policy_name()
    }
    fn is_null(&self) -> bool {
        (**self).is_null()
    }
    fn accuracy_report(&self) -> Option<AccuracyReport> {
        (**self).accuracy_report()
    }
    fn on_lookup(&mut self, vpn: Vpn, hit: bool) {
        (**self).on_lookup(vpn, hit);
    }
    fn shadow_lookup(&mut self, vpn: Vpn) -> Option<Pfn> {
        (**self).shadow_lookup(vpn)
    }
    fn on_fill(&mut self, vpn: Vpn, pfn: Pfn, pc: Pc) -> PageFillDecision {
        (**self).on_fill(vpn, pfn, pc)
    }
    fn on_bypass(&mut self, vpn: Vpn, pfn: Pfn) {
        (**self).on_bypass(vpn, pfn);
    }
    fn refill_state(&mut self, vpn: Vpn, pc: Pc) -> u32 {
        (**self).refill_state(vpn, pc)
    }
    fn on_hit(&mut self, vpn: Vpn, state: &mut u32) {
        (**self).on_hit(vpn, state);
    }
    fn uses_set_views(&self) -> bool {
        (**self).uses_set_views()
    }
    fn overrides_victim(&self) -> bool {
        (**self).overrides_victim()
    }
    fn on_set_access(&mut self, lines: &mut [PolicyLineView]) {
        (**self).on_set_access(lines);
    }
    fn pick_victim(&mut self, lines: &mut [PolicyLineView]) -> Option<usize> {
        (**self).pick_victim(lines)
    }
    fn on_evict(&mut self, evicted: EvictedPage) {
        (**self).on_evict(evicted);
    }
}

impl LlcPolicy for DynLlcPolicy {
    fn policy_name(&self) -> &'static str {
        (**self).policy_name()
    }
    fn is_null(&self) -> bool {
        (**self).is_null()
    }
    fn accuracy_report(&self) -> Option<AccuracyReport> {
        (**self).accuracy_report()
    }
    fn note_doa_page(&mut self, pfn: Pfn) {
        (**self).note_doa_page(pfn);
    }
    fn on_lookup(&mut self, block: BlockAddr, hit: bool) {
        (**self).on_lookup(block, hit);
    }
    fn on_fill(&mut self, block: BlockAddr, pc: Pc) -> BlockFillDecision {
        (**self).on_fill(block, pc)
    }
    fn on_hit(&mut self, block: BlockAddr, state: &mut u32) {
        (**self).on_hit(block, state);
    }
    fn uses_set_views(&self) -> bool {
        (**self).uses_set_views()
    }
    fn overrides_victim(&self) -> bool {
        (**self).overrides_victim()
    }
    fn on_set_access(&mut self, lines: &mut [PolicyLineView]) {
        (**self).on_set_access(lines);
    }
    fn pick_victim(&mut self, lines: &mut [PolicyLineView]) -> Option<usize> {
        (**self).pick_victim(lines)
    }
    fn on_evict(&mut self, evicted: EvictedBlock) {
        (**self).on_evict(evicted);
    }
}

/// The boxed constructors, on the defaulted (`dyn`-fallback) `System`
/// type so existing callers compile unchanged.
impl System {
    /// Builds a baseline system (no predictors) from `config`.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::InvalidConfig`] if the configuration fails
    /// [`SystemConfig::validate`].
    pub fn new(config: SystemConfig) -> Result<Self, SystemError> {
        Self::with_policies(config, Box::new(NullPagePolicy), Box::new(NullBlockPolicy))
    }

    /// Builds a system with the given boxed LLT and LLC policies —
    /// the runtime-dispatch fallback for policies whose types are only
    /// known at runtime. Policy pairs known at compile time should use
    /// [`System::with_typed_policies`], which monomorphizes the whole
    /// event loop around them.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::InvalidConfig`] if the configuration fails
    /// [`SystemConfig::validate`].
    pub fn with_policies(
        config: SystemConfig,
        llt_policy: DynLltPolicy,
        llc_policy: DynLlcPolicy,
    ) -> Result<Self, SystemError> {
        Self::with_typed_policies(config, llt_policy, llc_policy)
    }
}

/// The boxed constructor on the defaulted `Hierarchy` type.
impl Hierarchy {
    /// Builds the hierarchy with the given boxed LLC policy (the
    /// runtime-dispatch fallback of [`Hierarchy::with_typed_policy`]).
    pub fn new(config: &SystemConfig, policy: DynLlcPolicy) -> Self {
        Self::with_typed_policy(config, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxed_policies_forward_every_hook() {
        // A policy overriding every query hook; the forwarding impl must
        // surface each override through the box.
        #[derive(Debug)]
        struct Loud;
        impl LltPolicy for Loud {
            fn policy_name(&self) -> &'static str {
                "loud"
            }
            fn uses_set_views(&self) -> bool {
                true
            }
            fn overrides_victim(&self) -> bool {
                true
            }
            fn shadow_lookup(&mut self, _vpn: Vpn) -> Option<Pfn> {
                Some(Pfn::new(7))
            }
            fn on_fill(&mut self, _vpn: Vpn, _pfn: Pfn, _pc: Pc) -> PageFillDecision {
                PageFillDecision::Bypass
            }
            fn refill_state(&mut self, _vpn: Vpn, _pc: Pc) -> u32 {
                42
            }
        }
        let mut boxed: DynLltPolicy = Box::new(Loud);
        assert_eq!(boxed.policy_name(), "loud");
        assert!(!boxed.is_null());
        assert!(boxed.uses_set_views());
        assert!(boxed.overrides_victim());
        assert_eq!(boxed.shadow_lookup(Vpn::new(1)), Some(Pfn::new(7)));
        assert_eq!(boxed.on_fill(Vpn::new(1), Pfn::new(2), Pc::new(3)), PageFillDecision::Bypass);
        assert_eq!(boxed.refill_state(Vpn::new(1), Pc::new(3)), 42);

        let mut block: DynLlcPolicy = Box::new(NullBlockPolicy);
        assert!(block.is_null());
        assert_eq!(block.on_fill(BlockAddr::new(1), Pc::new(3)), BlockFillDecision::ALLOCATE);
    }

    #[test]
    fn dyn_fallback_system_still_constructs() {
        let sys = System::new(SystemConfig::paper_baseline()).expect("valid config");
        assert_eq!(sys.llt_policy().policy_name(), "baseline");
        assert_eq!(sys.llc_policy().policy_name(), "baseline");
    }
}
