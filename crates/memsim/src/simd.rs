//! Runtime-dispatched SIMD kernels for the set-associative hot path.
//!
//! All `unsafe` SIMD code of this crate is confined to this module (the
//! dpc-lint `simd::confined-unsafe` rule enforces the confinement); the
//! rest of the crate calls the safe dispatch wrappers exported here.
//! Dispatch follows the process-wide [`dpc_types::simd::enabled`] gate:
//! AVX2 probed once at startup, `DPC_SIMD=off` escape hatch, scalar under
//! Miri and on non-x86 targets (DESIGN.md §12).

#![allow(unsafe_code)]

/// Way-match bitmask over a set's contiguous tag column: bit `w` of the
/// result is set iff `tags[w] == needle`. Validity intersection is the
/// caller's job ([`crate::soa::SoaColumns::match_mask`]), which keeps
/// this kernel a pure column compare.
///
/// First-match-wins order is the bit order, so `trailing_zeros` on the
/// result recovers the same way the original linear scan found.
#[inline]
pub fn match_mask(tags: &[u64], needle: u64) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if dpc_types::simd::enabled() {
        // SAFETY: `enabled()` returns true only after
        // `is_x86_feature_detected!("avx2")` confirmed AVX2 support.
        return unsafe { match_mask_avx2(tags, needle) };
    }
    match_mask_scalar(tags, needle)
}

/// Scalar twin of [`match_mask`] — the reference semantics the vector
/// kernel must reproduce bit for bit, and the `DPC_SIMD=off` path.
///
/// The paper-baseline associativities (4-way L1 TLB, 8-way L1D/L2/LLT,
/// 16-way LLC) are dispatched to fixed-width comparisons so the compiler
/// sees a compile-time trip count and can fully unroll; any other
/// geometry takes the generic loop.
#[inline]
pub fn match_mask_scalar(tags: &[u64], needle: u64) -> u64 {
    match tags.len() {
        4 => fixed_match::<4>(tags, needle),
        8 => fixed_match::<8>(tags, needle),
        16 => fixed_match::<16>(tags, needle),
        _ => generic_match(tags, needle),
    }
}

/// Tag compare with a compile-time way count: converting the slice to a
/// fixed-size array reference lets the compiler unroll the loop with no
/// per-iteration bounds checks. Falls back to [`generic_match`] if the
/// slice length does not match `N` (cannot happen for callers that
/// dispatch on `tags.len()`, but keeps the function total without
/// panicking).
#[inline]
fn fixed_match<const N: usize>(tags: &[u64], needle: u64) -> u64 {
    let Ok(tags) = <&[u64; N]>::try_from(tags) else {
        return generic_match(tags, needle);
    };
    let mut mask = 0u64;
    for (way, &t) in tags.iter().enumerate() {
        mask |= u64::from(t == needle) << way;
    }
    mask
}

/// Tag compare for arbitrary associativity.
#[inline]
fn generic_match(tags: &[u64], needle: u64) -> u64 {
    let mut mask = 0u64;
    for (way, &t) in tags.iter().enumerate() {
        mask |= u64::from(t == needle) << way;
    }
    mask
}

/// AVX2 [`match_mask`]: compares four ways per `_mm256_cmpeq_epi64` and
/// packs the lane results into the way bitmask via `movemask`. Covers
/// every paper-baseline associativity with whole vectors (4-way = 1,
/// 8-way = 2, 16-way = 4) and handles other geometries with a scalar
/// tail; the `SoaColumns` 64-way ceiling bounds every shift below 64.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn match_mask_avx2(tags: &[u64], needle: u64) -> u64 {
    use core::arch::x86_64::{
        _mm256_castsi256_pd, _mm256_cmpeq_epi64, _mm256_loadu_si256, _mm256_movemask_pd,
        _mm256_set1_epi64x,
    };

    let needle_v = _mm256_set1_epi64x(needle as i64);
    let mut mask = 0u64;
    let mut way = 0u32;
    let chunks = tags.chunks_exact(4);
    let tail = chunks.remainder();
    for chunk in chunks {
        // SAFETY: `chunk` is exactly 4 u64s = 32 bytes (chunks_exact), so
        // the unaligned 256-bit load stays inside the slice.
        let block = unsafe { _mm256_loadu_si256(chunk.as_ptr().cast()) };
        let eq = _mm256_cmpeq_epi64(block, needle_v);
        let lanes = _mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u64;
        mask |= (lanes & 0xF) << way;
        way += 4;
    }
    for &t in tail {
        mask |= u64::from(t == needle) << way;
        way += 1;
    }
    mask
}

/// Best-effort prefetch of the cache line holding `*ptr` into all cache
/// levels. A pure scheduling hint: `prefetch` never faults and never
/// changes architectural state, so issuing it for an approximate or even
/// wrong address is harmless. No-op when the SIMD gate is off (keeping
/// `DPC_SIMD=off` a complete vector-path kill switch) and on non-x86
/// targets.
#[inline]
pub fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    if dpc_types::simd::enabled() {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        // SAFETY: PREFETCHT0 is architecturally defined to be safe for
        // any address, mapped or not; it cannot fault and only hints the
        // cache subsystem.
        unsafe { _mm_prefetch::<_MM_HINT_T0>(ptr.cast::<i8>()) };
        return;
    }
    let _ = ptr;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic LCG so the differential sweep needs no external RNG.
    fn lcg(state: &mut u64) -> u64 {
        *state =
            state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        *state >> 33
    }

    #[test]
    fn scalar_matches_are_positional() {
        let tags = [7u64, 9, 7, 1];
        assert_eq!(match_mask_scalar(&tags, 7), 0b0101);
        assert_eq!(match_mask_scalar(&tags, 1), 0b1000);
        assert_eq!(match_mask_scalar(&tags, 2), 0);
        assert_eq!(match_mask_scalar(&[], 2), 0);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    #[cfg_attr(miri, ignore = "vendor intrinsics are outside Miri's subset")]
    fn avx2_matches_scalar_on_random_columns() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        let mut state = 0xFEED_u64;
        // Every width up to the 64-way bitmask ceiling, including the
        // fixed-dispatch widths and non-multiple-of-4 tails.
        for ways in 0..=64usize {
            for round in 0..50 {
                // Narrow tag range so collisions (multi-way matches) occur.
                let tags: Vec<u64> = (0..ways).map(|_| lcg(&mut state) % 8).collect();
                let needle = lcg(&mut state) % 8;
                let want = match_mask_scalar(&tags, needle);
                // SAFETY: guarded by the is_x86_feature_detected check above.
                let got = unsafe { match_mask_avx2(&tags, needle) };
                assert_eq!(got, want, "ways {ways}, round {round}, needle {needle}");
            }
        }
    }

    #[test]
    fn dispatch_wrapper_matches_scalar() {
        let tags: Vec<u64> = (0..16).map(|i| i % 4).collect();
        for needle in 0..5 {
            assert_eq!(match_mask(&tags, needle), match_mask_scalar(&tags, needle));
        }
    }

    #[test]
    fn prefetch_accepts_any_pointer() {
        let data = [1u64, 2, 3];
        prefetch_read(data.as_ptr());
        prefetch_read(std::ptr::null::<u64>());
        prefetch_read(usize::MAX as *const u64);
    }
}
