//! Behavior-preservation proof for the lazy replacement metadata
//! (DESIGN.md §16): [`SetAssoc`] defers hit-time column stores (lifetime
//! stats, LRU stamp, SRRIP promotion) into a one-entry coalescing buffer
//! and applies them only when a victim search, fill, invalidation, or
//! set-view pass actually reads the metadata. This suite pits the lazy
//! implementation against an *eager* reference model that performs every
//! store at hit time — the pre-lazy semantics, transliterated — and
//! asserts every observable after every operation:
//!
//! * the op's own result (hit way, evicted tag/payload/[`LineLife`]);
//! * `life_of` of **every valid line** (forces the `&self` merge path);
//! * the full `iter_valid` snapshot in storage order;
//! * `valid_count`.
//!
//! Three drivers:
//!
//! * **exhaustive**: every op sequence of a fixed depth over a per-tag
//!   alphabet that includes both hit flavors (`lookup` and
//!   `peek`+`commit_hit` — the replay fast path's entry point into the
//!   lazy buffer) for LRU, SRRIP and FIFO;
//! * **hit runs**: long same-line hit streaks — the case the buffer
//!   coalesces — cut by each metadata reader in turn (victim probe,
//!   fill, invalidate, `life_of`), so every flush point is crossed with
//!   a maximally stale buffer;
//! * **randomized**: LCG sequences biased toward repeating the previous
//!   tag (so the buffer stays populated across many ops) on pow2,
//!   non-pow2 and paper-LLC geometries.

use dpc_memsim::set_assoc::{Evicted, InsertPriority, LineLife, SetAssoc, RRPV_LONG, RRPV_MAX};
use dpc_types::ReplacementKind;

const KINDS: [ReplacementKind; 3] =
    [ReplacementKind::Lru, ReplacementKind::Srrip, ReplacementKind::Fifo];

/// One line of the eager reference: every replacement-state field inline,
/// updated at hit time exactly as the pre-lazy implementation did.
#[derive(Clone, Copy, Default)]
struct EagerLine {
    valid: bool,
    tag: u64,
    stamp: u64,
    rrpv: u8,
    life: LineLife,
    payload: u32,
}

/// The eager specification the lazy [`SetAssoc`] must be indistinguishable
/// from: naive nested `Vec`s, every hit stores its promotion immediately.
struct EagerModel {
    sets: usize,
    ways: usize,
    kind: ReplacementKind,
    lines: Vec<Vec<EagerLine>>,
    tick: u64,
    seq: u64,
}

impl EagerModel {
    fn new(sets: usize, ways: usize, kind: ReplacementKind) -> Self {
        EagerModel {
            sets,
            ways,
            kind,
            lines: vec![vec![EagerLine::default(); ways]; sets],
            tick: 0,
            seq: 0,
        }
    }

    fn set_of(&self, addr: u64) -> usize {
        (addr % self.sets as u64) as usize
    }

    fn peek(&self, addr: u64, tag: u64) -> Option<usize> {
        let set = self.set_of(addr);
        (0..self.ways).find(|&w| {
            let line = &self.lines[set][w];
            line.valid && line.tag == tag
        })
    }

    /// The eager hit bookkeeping both `lookup` and `commit_hit` share.
    fn apply_hit(&mut self, set: usize, way: usize) {
        self.tick += 1;
        let tick = self.tick;
        let seq = self.seq;
        let line = &mut self.lines[set][way];
        line.life.hits += 1;
        line.life.last_hit_seq = seq;
        match self.kind {
            ReplacementKind::Lru => line.stamp = tick,
            ReplacementKind::Srrip => line.rrpv = 0,
            ReplacementKind::Fifo => {}
        }
    }

    fn lookup(&mut self, addr: u64, tag: u64) -> Option<usize> {
        self.seq += 1;
        let way = self.peek(addr, tag)?;
        self.apply_hit(self.set_of(addr), way);
        Some(way)
    }

    fn commit_hit(&mut self, addr: u64, way: usize) {
        self.seq += 1;
        self.apply_hit(self.set_of(addr), way);
    }

    fn commit_miss(&mut self) {
        self.seq += 1;
    }

    fn victim_way(&mut self, addr: u64) -> usize {
        let set = self.set_of(addr);
        if let Some(way) = (0..self.ways).find(|&w| !self.lines[set][w].valid) {
            return way;
        }
        match self.kind {
            ReplacementKind::Lru | ReplacementKind::Fifo => {
                let mut best = 0;
                for way in 1..self.ways {
                    if self.lines[set][way].stamp < self.lines[set][best].stamp {
                        best = way;
                    }
                }
                best
            }
            ReplacementKind::Srrip => loop {
                if let Some(way) = (0..self.ways).find(|&w| self.lines[set][w].rrpv >= RRPV_MAX) {
                    return way;
                }
                for line in &mut self.lines[set] {
                    line.rrpv += 1;
                }
            },
        }
    }

    fn fill_way(
        &mut self,
        addr: u64,
        way: usize,
        tag: u64,
        payload: u32,
        priority: InsertPriority,
    ) -> Option<Evicted<u32>> {
        self.tick += 1;
        let tick = self.tick;
        let seq = self.seq;
        let set = self.set_of(addr);
        let line = &mut self.lines[set][way];
        let evicted =
            line.valid.then_some(Evicted { tag: line.tag, life: line.life, payload: line.payload });
        line.valid = true;
        line.tag = tag;
        line.payload = payload;
        line.life = LineLife { fill_seq: seq, last_hit_seq: seq, hits: 0 };
        match self.kind {
            ReplacementKind::Lru => {
                line.stamp = match priority {
                    InsertPriority::Normal | InsertPriority::High => tick,
                    InsertPriority::Distant => 0,
                };
            }
            ReplacementKind::Fifo => line.stamp = tick,
            ReplacementKind::Srrip => {
                line.rrpv = match priority {
                    InsertPriority::Normal => RRPV_LONG,
                    InsertPriority::Distant => RRPV_MAX,
                    InsertPriority::High => 0,
                };
            }
        }
        evicted
    }

    fn fill(
        &mut self,
        addr: u64,
        tag: u64,
        payload: u32,
        priority: InsertPriority,
    ) -> Option<Evicted<u32>> {
        let way = self.victim_way(addr);
        self.fill_way(addr, way, tag, payload, priority)
    }

    fn invalidate(&mut self, addr: u64, tag: u64) -> Option<Evicted<u32>> {
        let way = self.peek(addr, tag)?;
        let set = self.set_of(addr);
        let line = &mut self.lines[set][way];
        line.valid = false;
        Some(Evicted { tag: line.tag, life: line.life, payload: line.payload })
    }

    fn life_of(&self, addr: u64, way: usize) -> LineLife {
        self.lines[self.set_of(addr)][way].life
    }

    /// All valid lines in storage order: (tag, life, payload).
    fn snapshot(&self) -> Vec<(u64, LineLife, u32)> {
        self.lines
            .iter()
            .flatten()
            .filter(|line| line.valid)
            .map(|line| (line.tag, line.life, line.payload))
            .collect()
    }
}

#[derive(Clone, Copy, Debug)]
enum Op {
    /// Hit path #1: a full lookup.
    Lookup(u64),
    /// Hit path #2: peek + commit_hit / commit_miss — how the replay fast
    /// path feeds the lazy buffer.
    Commit(u64),
    Fill(u64, InsertPriority),
    Invalidate(u64),
    /// Bare victim probe: reads (and under SRRIP mutates) the metadata
    /// columns, forcing a flush of whatever is buffered.
    Victim(u64),
}

fn evicted_parts(e: &Option<Evicted<u32>>) -> Option<(u64, LineLife, u32)> {
    e.as_ref().map(|e| (e.tag, e.life, e.payload))
}

/// Applies `op` to the lazy array and the eager model and asserts every
/// observable matches, including `life_of` of each valid line (the merge
/// path a buffered promotion must survive).
fn step(sa: &mut SetAssoc<u32>, model: &mut EagerModel, op: Op, trace: &[Op]) {
    match op {
        Op::Lookup(tag) => {
            assert_eq!(sa.lookup(tag, tag), model.lookup(tag, tag), "lookup {tag} after {trace:?}");
        }
        Op::Commit(tag) => {
            let got = sa.peek(tag, tag);
            assert_eq!(got, model.peek(tag, tag), "peek {tag} after {trace:?}");
            match got {
                Some(way) => {
                    sa.commit_hit(tag, way);
                    model.commit_hit(tag, way);
                }
                None => {
                    sa.commit_miss();
                    model.commit_miss();
                }
            }
        }
        Op::Fill(tag, priority) => {
            let payload = (tag as u32) ^ ((model.seq as u32) << 8);
            let got = sa.fill(tag, tag, payload, priority);
            let want = model.fill(tag, tag, payload, priority);
            assert_eq!(
                evicted_parts(&got),
                evicted_parts(&want),
                "fill {tag} {priority:?} after {trace:?}"
            );
        }
        Op::Invalidate(tag) => {
            let got = sa.invalidate(tag, tag);
            let want = model.invalidate(tag, tag);
            assert_eq!(
                evicted_parts(&got),
                evicted_parts(&want),
                "invalidate {tag} after {trace:?}"
            );
        }
        Op::Victim(addr) => {
            assert_eq!(
                sa.victim_way(addr),
                model.victim_way(addr),
                "victim {addr} after {trace:?}"
            );
        }
    }
    // Per-line lifetime reads go through the merge path while the buffer
    // may still hold this op's promotion.
    for set in 0..model.sets {
        for way in 0..model.ways {
            if model.lines[set][way].valid {
                let addr = set as u64;
                assert_eq!(
                    sa.life_of(addr, way),
                    model.life_of(addr, way),
                    "life_of set {set} way {way} after {op:?} (history {trace:?})"
                );
            }
        }
    }
    let got: Vec<(u64, LineLife, u32)> =
        sa.iter_valid().map(|line| (line.tag(), line.life(), *line.payload)).collect();
    assert_eq!(got, model.snapshot(), "state diverged after {op:?} (history {trace:?})");
    assert_eq!(sa.valid_count(), model.snapshot().len());
}

/// Every sequence of `depth` operations drawn from the per-tag alphabet —
/// both hit flavors, two fill priorities, invalidate, victim probe.
fn exhaustive(sets: usize, ways: usize, kind: ReplacementKind, depth: u32) {
    let mut alphabet = Vec::new();
    // 2× oversubscription: every set sees twice as many tags as it has ways.
    for tag in 0..(2 * sets * ways) as u64 {
        alphabet.push(Op::Lookup(tag));
        alphabet.push(Op::Commit(tag));
        alphabet.push(Op::Fill(tag, InsertPriority::Normal));
        alphabet.push(Op::Fill(tag, InsertPriority::Distant));
        alphabet.push(Op::Invalidate(tag));
        alphabet.push(Op::Victim(tag));
    }
    let n = alphabet.len();
    let total = n.pow(depth);
    let mut trace = Vec::with_capacity(depth as usize);
    for mut code in 0..total {
        let mut sa: SetAssoc<u32> = SetAssoc::new(sets, ways, kind);
        let mut model = EagerModel::new(sets, ways, kind);
        trace.clear();
        for _ in 0..depth {
            let op = alphabet[code % n];
            code /= n;
            step(&mut sa, &mut model, op, &trace);
            trace.push(op);
        }
    }
}

#[test]
fn exhaustive_1x2_all_kinds() {
    for kind in KINDS {
        exhaustive(1, 2, kind, 4);
    }
}

#[test]
fn exhaustive_2x2_all_kinds() {
    for kind in KINDS {
        exhaustive(2, 2, kind, 3);
    }
}

/// Same-line hit streaks of every length up to twice the associativity,
/// each cut by every metadata reader in turn. This is the coalescing case:
/// the buffer accumulates the whole streak and must apply it exactly once,
/// with the last hit's clock values, whichever reader forces the flush.
#[test]
fn hit_runs_cut_by_every_reader() {
    #[derive(Clone, Copy)]
    enum Cut {
        Victim,
        Fill,
        Invalidate,
        Nothing,
    }
    for kind in KINDS {
        for ways in [2usize, 4] {
            for streak in 1..=(2 * ways) {
                for (hit_op, cut) in [
                    (0, Cut::Victim),
                    (0, Cut::Fill),
                    (0, Cut::Invalidate),
                    (0, Cut::Nothing),
                    (1, Cut::Victim),
                    (1, Cut::Fill),
                    (1, Cut::Invalidate),
                    (1, Cut::Nothing),
                ] {
                    let mut sa: SetAssoc<u32> = SetAssoc::new(2, ways, kind);
                    let mut model = EagerModel::new(2, ways, kind);
                    let mut trace = Vec::new();
                    // Fill both sets to capacity so victim searches and
                    // fills read real metadata, not the invalid-way
                    // shortcut.
                    for tag in 0..(2 * ways) as u64 {
                        let op = Op::Fill(tag, InsertPriority::Normal);
                        step(&mut sa, &mut model, op, &trace);
                        trace.push(op);
                    }
                    // The streak: repeated hits to one line, via lookup or
                    // the commit path.
                    for _ in 0..streak {
                        let op = if hit_op == 0 { Op::Lookup(2) } else { Op::Commit(2) };
                        step(&mut sa, &mut model, op, &trace);
                        trace.push(op);
                    }
                    // The cut: one reader observes the streak's effect.
                    let op = match cut {
                        Cut::Victim => Op::Victim(2),
                        Cut::Fill => Op::Fill(2 * ways as u64 + 2, InsertPriority::Normal),
                        Cut::Invalidate => Op::Invalidate(2),
                        // `step` itself reads life_of/iter_valid, so even
                        // "nothing" checks the merge path; follow with a
                        // miss so the buffer outlives unrelated clocks.
                        Cut::Nothing => Op::Lookup(1000),
                    };
                    step(&mut sa, &mut model, op, &trace);
                    trace.push(op);
                    // And one fill afterwards: replacement order must have
                    // absorbed the streak identically.
                    let op = Op::Fill(2 * ways as u64 + 7, InsertPriority::Normal);
                    step(&mut sa, &mut model, op, &trace);
                }
            }
        }
    }
}

/// LCG sequences biased toward repeating the previous tag, so the buffer
/// coalesces across many consecutive ops before each flush.
fn randomized(sets: usize, ways: usize, kind: ReplacementKind, ops: usize, seed: u64) {
    let mut sa: SetAssoc<u32> = SetAssoc::new(sets, ways, kind);
    let mut model = EagerModel::new(sets, ways, kind);
    let mut state = seed | 1;
    let mut next = || {
        // Numerical Recipes LCG: deterministic, dependency-free.
        state =
            state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        state >> 33
    };
    let tags = (3 * sets * ways) as u64;
    let mut prev_tag = 0u64;
    for _ in 0..ops {
        // Half the time, stay on the previous tag: long same-line hit
        // runs are exactly what the lazy buffer coalesces.
        let tag = if next() % 2 == 0 { prev_tag } else { next() % tags };
        prev_tag = tag;
        let op = match next() % 10 {
            0..=3 => Op::Lookup(tag),
            4..=5 => Op::Commit(tag),
            6 => Op::Fill(tag, InsertPriority::Normal),
            7 => Op::Fill(tag, InsertPriority::Distant),
            8 => Op::Invalidate(tag),
            _ => Op::Victim(tag),
        };
        step(&mut sa, &mut model, op, &[]);
    }
}

#[test]
fn randomized_small_geometries() {
    for kind in KINDS {
        randomized(2, 2, kind, 20_000, 0xFEED_FACE);
        randomized(4, 4, kind, 20_000, 0x0BAD_CAFE);
    }
}

#[test]
fn randomized_non_pow2_sets() {
    for kind in KINDS {
        randomized(3, 2, kind, 20_000, 271_828);
    }
}

#[test]
fn randomized_paper_llc_geometry() {
    // 16 ways is the paper's LLC associativity; 8 sets keeps the
    // per-op snapshot cheap.
    for kind in KINDS {
        randomized(8, 16, kind, 10_000, 31_337);
    }
}
