//! Equivalence proof for the SoA hot path: [`SetAssoc`] (struct-of-arrays
//! storage, bitmask match, fused bookkeeping) must behave observably
//! identically to a naive array-of-structs reference model that
//! transliterates the replacement-policy definitions line by line.
//!
//! Two drivers cross-check every observable after every operation —
//! returned way / evicted line (tag, payload, *and* [`LineLife`] stats),
//! plus the full valid-line contents in storage order:
//!
//! * **exhaustive**: every operation sequence of a fixed depth over a
//!   small alphabet (lookup / fill-normal / fill-distant / invalidate per
//!   tag) on the 2×2 and 4×4 geometries;
//! * **randomized**: long LCG-driven sequences that additionally exercise
//!   `InsertPriority::High`, bare `victim_way` probes (SRRIP aging is a
//!   side effect of the search, so probing must match too), and a
//!   non-power-of-two set count (modulo indexing).

use dpc_memsim::set_assoc::{Evicted, InsertPriority, LineLife, SetAssoc, RRPV_LONG, RRPV_MAX};
use dpc_types::ReplacementKind;

const KINDS: [ReplacementKind; 3] =
    [ReplacementKind::Lru, ReplacementKind::Srrip, ReplacementKind::Fifo];

/// One line of the reference model: the array-of-structs layout the SoA
/// refactor replaced, with every replacement-state field inline.
#[derive(Clone, Copy, Default)]
struct RefLine {
    valid: bool,
    tag: u64,
    stamp: u64,
    rrpv: u8,
    life: LineLife,
    payload: u32,
}

/// Naive set-associative array: nested `Vec`s, linear scans, no bitmasks,
/// no fused index arithmetic. Intentionally written for obviousness, not
/// speed — this is the specification the SoA implementation must match.
struct RefModel {
    sets: usize,
    ways: usize,
    kind: ReplacementKind,
    lines: Vec<Vec<RefLine>>,
    tick: u64,
    seq: u64,
}

impl RefModel {
    fn new(sets: usize, ways: usize, kind: ReplacementKind) -> Self {
        RefModel {
            sets,
            ways,
            kind,
            lines: vec![vec![RefLine::default(); ways]; sets],
            tick: 0,
            seq: 0,
        }
    }

    fn set_of(&self, addr: u64) -> usize {
        (addr % self.sets as u64) as usize
    }

    fn lookup(&mut self, addr: u64, tag: u64) -> Option<usize> {
        self.seq += 1;
        let set = self.set_of(addr);
        let way = (0..self.ways).find(|&w| {
            let line = &self.lines[set][w];
            line.valid && line.tag == tag
        })?;
        self.tick += 1;
        let line = &mut self.lines[set][way];
        line.life.hits += 1;
        line.life.last_hit_seq = self.seq;
        match self.kind {
            ReplacementKind::Lru => line.stamp = self.tick,
            ReplacementKind::Srrip => line.rrpv = 0,
            ReplacementKind::Fifo => {}
        }
        Some(way)
    }

    fn peek(&self, addr: u64, tag: u64) -> Option<usize> {
        let set = self.set_of(addr);
        (0..self.ways).find(|&w| {
            let line = &self.lines[set][w];
            line.valid && line.tag == tag
        })
    }

    fn victim_way(&mut self, addr: u64) -> usize {
        let set = self.set_of(addr);
        if let Some(way) = (0..self.ways).find(|&w| !self.lines[set][w].valid) {
            return way;
        }
        match self.kind {
            ReplacementKind::Lru | ReplacementKind::Fifo => {
                // First-encountered minimum stamp.
                let mut best = 0;
                for way in 1..self.ways {
                    if self.lines[set][way].stamp < self.lines[set][best].stamp {
                        best = way;
                    }
                }
                best
            }
            ReplacementKind::Srrip => loop {
                if let Some(way) = (0..self.ways).find(|&w| self.lines[set][w].rrpv >= RRPV_MAX) {
                    return way;
                }
                for line in &mut self.lines[set] {
                    line.rrpv += 1;
                }
            },
        }
    }

    fn fill_way(
        &mut self,
        addr: u64,
        way: usize,
        tag: u64,
        payload: u32,
        priority: InsertPriority,
    ) -> Option<Evicted<u32>> {
        self.tick += 1;
        let tick = self.tick;
        let seq = self.seq;
        let set = self.set_of(addr);
        let line = &mut self.lines[set][way];
        let evicted =
            line.valid.then_some(Evicted { tag: line.tag, life: line.life, payload: line.payload });
        line.valid = true;
        line.tag = tag;
        line.payload = payload;
        line.life = LineLife { fill_seq: seq, last_hit_seq: seq, hits: 0 };
        match self.kind {
            ReplacementKind::Lru => {
                line.stamp = match priority {
                    InsertPriority::Normal | InsertPriority::High => tick,
                    InsertPriority::Distant => 0,
                };
            }
            ReplacementKind::Fifo => line.stamp = tick,
            ReplacementKind::Srrip => {
                line.rrpv = match priority {
                    InsertPriority::Normal => RRPV_LONG,
                    InsertPriority::Distant => RRPV_MAX,
                    InsertPriority::High => 0,
                };
            }
        }
        evicted
    }

    fn fill(
        &mut self,
        addr: u64,
        tag: u64,
        payload: u32,
        priority: InsertPriority,
    ) -> Option<Evicted<u32>> {
        let way = self.victim_way(addr);
        self.fill_way(addr, way, tag, payload, priority)
    }

    fn invalidate(&mut self, addr: u64, tag: u64) -> Option<Evicted<u32>> {
        let way = self.peek(addr, tag)?;
        let set = self.set_of(addr);
        let line = &mut self.lines[set][way];
        line.valid = false;
        Some(Evicted { tag: line.tag, life: line.life, payload: line.payload })
    }

    /// All valid lines in storage order: (tag, life, payload).
    fn snapshot(&self) -> Vec<(u64, LineLife, u32)> {
        self.lines
            .iter()
            .flatten()
            .filter(|line| line.valid)
            .map(|line| (line.tag, line.life, line.payload))
            .collect()
    }
}

#[derive(Clone, Copy, Debug)]
enum Op {
    Lookup(u64),
    Fill(u64, InsertPriority),
    Invalidate(u64),
    Victim(u64),
}

fn evicted_parts(e: &Option<Evicted<u32>>) -> Option<(u64, LineLife, u32)> {
    e.as_ref().map(|e| (e.tag, e.life, e.payload))
}

/// Applies `op` to both implementations and asserts every observable
/// matches: the op's own result, then the complete valid-line state.
fn step(sa: &mut SetAssoc<u32>, model: &mut RefModel, op: Op, trace: &[Op]) {
    match op {
        Op::Lookup(tag) => {
            assert_eq!(sa.lookup(tag, tag), model.lookup(tag, tag), "lookup {tag} after {trace:?}");
        }
        Op::Fill(tag, priority) => {
            // Payload derived from the clocks so refills are distinguishable.
            let payload = (tag as u32) ^ ((model.seq as u32) << 8);
            let got = sa.fill(tag, tag, payload, priority);
            let want = model.fill(tag, tag, payload, priority);
            assert_eq!(
                evicted_parts(&got),
                evicted_parts(&want),
                "fill {tag} {priority:?} after {trace:?}"
            );
        }
        Op::Invalidate(tag) => {
            let got = sa.invalidate(tag, tag);
            let want = model.invalidate(tag, tag);
            assert_eq!(
                evicted_parts(&got),
                evicted_parts(&want),
                "invalidate {tag} after {trace:?}"
            );
        }
        Op::Victim(addr) => {
            assert_eq!(
                sa.victim_way(addr),
                model.victim_way(addr),
                "victim {addr} after {trace:?}"
            );
        }
    }
    let got: Vec<(u64, LineLife, u32)> =
        sa.iter_valid().map(|line| (line.tag(), line.life(), *line.payload)).collect();
    assert_eq!(got, model.snapshot(), "state diverged after {op:?} (history {trace:?})");
    assert_eq!(sa.valid_count(), model.snapshot().len());
}

/// Every sequence of `depth` operations drawn from the per-tag alphabet
/// {lookup, fill-normal, fill-distant, invalidate}.
fn exhaustive(sets: usize, ways: usize, kind: ReplacementKind, depth: u32) {
    let mut alphabet = Vec::new();
    // 2× oversubscription: every set sees twice as many tags as it has ways.
    for tag in 0..(2 * sets * ways) as u64 {
        alphabet.push(Op::Lookup(tag));
        alphabet.push(Op::Fill(tag, InsertPriority::Normal));
        alphabet.push(Op::Fill(tag, InsertPriority::Distant));
        alphabet.push(Op::Invalidate(tag));
    }
    let n = alphabet.len();
    let total = n.pow(depth);
    let mut trace = Vec::with_capacity(depth as usize);
    for mut code in 0..total {
        let mut sa: SetAssoc<u32> = SetAssoc::new(sets, ways, kind);
        let mut model = RefModel::new(sets, ways, kind);
        trace.clear();
        for _ in 0..depth {
            let op = alphabet[code % n];
            code /= n;
            step(&mut sa, &mut model, op, &trace);
            trace.push(op);
        }
    }
}

#[test]
fn exhaustive_2x2_all_kinds() {
    for kind in KINDS {
        exhaustive(2, 2, kind, 3);
    }
}

#[test]
fn exhaustive_2x2_lru_deeper() {
    exhaustive(2, 2, ReplacementKind::Lru, 4);
}

#[test]
fn exhaustive_4x4_all_kinds() {
    for kind in KINDS {
        exhaustive(4, 4, kind, 2);
    }
}

/// Long pseudo-random sequences over the full op set, including `High`
/// insertions and bare victim probes, on pow2 and non-pow2 geometries.
fn randomized(sets: usize, ways: usize, kind: ReplacementKind, ops: usize, seed: u64) {
    let mut sa: SetAssoc<u32> = SetAssoc::new(sets, ways, kind);
    let mut model = RefModel::new(sets, ways, kind);
    let mut state = seed | 1;
    let mut next = || {
        // Numerical Recipes LCG: deterministic, dependency-free.
        state =
            state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        state >> 33
    };
    let tags = (3 * sets * ways) as u64;
    for _ in 0..ops {
        let tag = next() % tags;
        let op = match next() % 8 {
            0..=2 => Op::Lookup(tag),
            3 => Op::Fill(tag, InsertPriority::Normal),
            4 => Op::Fill(tag, InsertPriority::Distant),
            5 => Op::Fill(tag, InsertPriority::High),
            6 => Op::Invalidate(tag),
            _ => Op::Victim(tag),
        };
        step(&mut sa, &mut model, op, &[]);
    }
}

#[test]
fn randomized_small_geometries() {
    for kind in KINDS {
        randomized(2, 2, kind, 20_000, 0xDEAD_BEEF);
        randomized(4, 4, kind, 20_000, 0x1234_5678);
    }
}

#[test]
fn randomized_non_pow2_sets() {
    for kind in KINDS {
        randomized(3, 2, kind, 20_000, 42);
    }
}

#[test]
fn randomized_paper_llc_geometry() {
    // 16 ways is the paper's LLC associativity — the widest fixed-width
    // match_mask specialization; 8 sets keeps the state snapshot cheap.
    for kind in KINDS {
        randomized(8, 16, kind, 10_000, 7);
    }
}
