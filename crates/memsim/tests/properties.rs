//! Property-based tests of the memsim substrate: set-associative
//! replacement invariants, page-table correctness, PWC consistency, and
//! timing-model monotonicity under arbitrary inputs.

use dpc_memsim::core_model::CoreModel;
use dpc_memsim::page_table::PageTable;
use dpc_memsim::pwc::PwcSet;
use dpc_memsim::set_assoc::{InsertPriority, SetAssoc};
use dpc_types::{ReplacementKind, SystemConfig, Vpn};
use proptest::prelude::*;

fn any_replacement() -> impl Strategy<Value = ReplacementKind> {
    prop_oneof![
        Just(ReplacementKind::Lru),
        Just(ReplacementKind::Srrip),
        Just(ReplacementKind::Fifo),
    ]
}

proptest! {
    /// Valid-line count never exceeds capacity, and a fill always makes
    /// the tag resident.
    #[test]
    fn set_assoc_capacity_and_residency(
        kind in any_replacement(),
        ops in proptest::collection::vec((any::<u16>(), any::<bool>()), 1..300),
    ) {
        let mut array: SetAssoc<u32> = SetAssoc::new(8, 4, kind);
        for (tag, write) in ops {
            let tag = u64::from(tag % 128);
            if write {
                array.fill(tag, tag, 0, InsertPriority::Normal);
                prop_assert!(array.peek(tag, tag).is_some(), "fill must leave tag resident");
            } else {
                let _ = array.lookup(tag, tag);
            }
            prop_assert!(array.valid_count() <= 32);
        }
    }

    /// A hit immediately after a fill is guaranteed under every policy
    /// (no policy evicts the just-inserted line before any other access).
    #[test]
    fn fill_then_lookup_hits(kind in any_replacement(), tags in proptest::collection::vec(any::<u8>(), 1..100)) {
        let mut array: SetAssoc<u32> = SetAssoc::new(4, 2, kind);
        for tag in tags {
            let tag = u64::from(tag);
            array.fill(tag, tag, 7, InsertPriority::Normal);
            prop_assert!(array.lookup(tag, tag).is_some());
        }
    }

    /// LRU never evicts the most recently used line of a set.
    #[test]
    fn lru_never_evicts_mru(tags in proptest::collection::vec(any::<u8>(), 2..200)) {
        let mut array: SetAssoc<u32> = SetAssoc::new(1, 4, ReplacementKind::Lru);
        let mut last: Option<u64> = None;
        for tag in tags {
            let tag = u64::from(tag);
            if array.lookup(0_u64, tag).is_none() {
                if let Some(evicted) = array.fill(0, tag, 0, InsertPriority::Normal) {
                    if let Some(mru) = last {
                        prop_assert_ne!(evicted.tag, mru, "evicted the MRU line");
                    }
                }
            }
            last = Some(tag);
        }
    }

    /// Page-table translation is a stable injection: same VPN → same PFN,
    /// different VPNs → different PFNs.
    #[test]
    fn page_table_is_stable_injection(vpns in proptest::collection::vec(0u64..(1 << 30), 1..100)) {
        let mut pt = PageTable::new();
        let mut seen = std::collections::HashMap::new();
        for &vpn in vpns.iter().chain(vpns.iter()) {
            let pfn = pt.translate(Vpn::new(vpn)).pfn;
            if let Some(&prev) = seen.get(&vpn) {
                prop_assert_eq!(pfn, prev, "translation changed for vpn {:#x}", vpn);
            } else {
                prop_assert!(
                    !seen.values().any(|&p| p == pfn),
                    "frame reused across pages"
                );
                seen.insert(vpn, pfn);
            }
        }
    }

    /// A PWC probe after a fill resumes from the correct node: the node
    /// the page table actually visits at that level.
    #[test]
    fn pwc_resume_nodes_are_correct(vpns in proptest::collection::vec(0u64..(1 << 27), 1..50)) {
        let config = SystemConfig::paper_baseline();
        let mut pwc = PwcSet::new(&config.pwc);
        let mut pt = PageTable::new();
        for &vpn in &vpns {
            let path = pt.translate(Vpn::new(vpn));
            pwc.fill(Vpn::new(vpn), &path.node_pfns);
            let probe = pwc.probe(Vpn::new(vpn));
            let level = probe.hit_level.expect("just-filled entry must hit");
            prop_assert_eq!(probe.resume_node, path.node_pfns[level]);
        }
    }

    /// Core-model cycles are monotone in added latency and bounded below
    /// by the width limit.
    #[test]
    fn core_model_bounds(latencies in proptest::collection::vec(1u64..400, 1..300)) {
        let mut core = CoreModel::new(4, 192, 10);
        for &lat in &latencies {
            core.issue(lat);
        }
        let n = latencies.len() as u64;
        prop_assert!(core.cycles() >= n / 4, "cannot beat the dispatch width");
        let serial: u64 = latencies.iter().sum();
        prop_assert!(core.cycles() <= serial + n, "cannot be slower than full serialization");
        prop_assert_eq!(core.instructions(), n);

        // Adding one instruction never reduces total cycles.
        let before = core.cycles();
        core.issue(1);
        prop_assert!(core.cycles() >= before);
    }

    /// SRRIP victim search terminates and returns a valid way for every
    /// mix of priorities.
    #[test]
    fn srrip_victim_always_valid(
        ops in proptest::collection::vec((any::<u8>(), 0u8..3), 4..200),
    ) {
        let mut array: SetAssoc<u32> = SetAssoc::new(2, 4, ReplacementKind::Srrip);
        for (tag, prio) in ops {
            let tag = u64::from(tag);
            let priority = match prio {
                0 => InsertPriority::Normal,
                1 => InsertPriority::Distant,
                _ => InsertPriority::High,
            };
            if array.lookup(tag, tag).is_none() {
                array.fill(tag, tag, 0, priority);
            }
            prop_assert!(array.peek(tag, tag).is_some());
        }
    }
}
