//! Single-run plumbing: policy selection, warm-up, and result capture.
//!
//! Policy selectors are resolved to *concrete* policy types through the
//! static dispatcher in [`crate::dispatch`], so every run executes a
//! simulator monomorphized for its policy pair; the boxed runtime path
//! lives in [`crate::fallback`].

use crate::dispatch::{dispatch, PolicyApply};
use dpc_memsim::policy::AccuracyReport;
use dpc_memsim::{LlcPolicy, LltPolicy, NullBlockPolicy, SimStats, System};
use dpc_predictors::{BeladyOracle, DpPredConfig, LookupRecorder, LookupTrace};
use dpc_types::SystemConfig;
use dpc_workloads::{EventSource, WorkloadFactory};
use std::time::Duration;

/// TLB-side policy selector. Selectors are plain values so experiment
/// configurations can be hashed and memoized.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum TlbPolicySel {
    /// Plain replacement, no predictor.
    #[default]
    Baseline,
    /// The paper's dpPred with default parameters (adapted to the LLT
    /// geometry).
    DpPred,
    /// dpPred with the shadow table disabled (paper's dpPred−SH).
    DpPredNoShadow,
    /// dpPred with explicit parameters (sensitivity studies).
    DpPredCustom(DpPredConfig),
    /// dpPred under DIP-style set-dueling bypass control (extension).
    DuelingDpPred,
    /// SHiP adapted to the LLT.
    ShipTlb,
    /// Counter-based AIP adapted to the LLT.
    AipTlb,
}

/// LLC-side policy selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum LlcPolicySel {
    /// Plain replacement, no predictor.
    #[default]
    Baseline,
    /// The paper's cbPred with default parameters.
    CbPred,
    /// cbPred without PFQ filtering (paper's cbPred−PF).
    CbPredNoPfq,
    /// cbPred with a custom PFQ capacity (Fig. 11d).
    CbPredPfq(usize),
    /// SHiP-LLC.
    ShipLlc,
    /// AIP-LLC.
    AipLlc,
}

/// One simulation run's configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RunConfig {
    /// Machine configuration.
    pub system: SystemConfig,
    /// TLB-side policy.
    pub tlb_policy: TlbPolicySel,
    /// LLC-side policy.
    pub llc_policy: LlcPolicySel,
    /// Memory operations simulated before statistics are reset.
    pub warmup_mem_ops: u64,
    /// Memory operations measured after warm-up.
    pub measure_mem_ops: u64,
}

impl RunConfig {
    /// Baseline machine with the given event budget.
    pub fn baseline(warmup_mem_ops: u64, measure_mem_ops: u64) -> Self {
        RunConfig {
            system: SystemConfig::paper_baseline(),
            tlb_policy: TlbPolicySel::Baseline,
            llc_policy: LlcPolicySel::Baseline,
            warmup_mem_ops,
            measure_mem_ops,
        }
    }

    /// Returns a copy with the given policies.
    pub fn with_policies(mut self, tlb: TlbPolicySel, llc: LlcPolicySel) -> Self {
        self.tlb_policy = tlb;
        self.llc_policy = llc;
        self
    }

    /// Returns a copy with a different machine configuration.
    pub fn with_system(mut self, system: SystemConfig) -> Self {
        self.system = system;
        self
    }
}

/// Captured output of one run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Full simulator statistics.
    pub stats: SimStats,
    /// TLB-side predictor accuracy, when the policy reports one.
    pub llt_accuracy: Option<AccuracyReport>,
    /// LLC-side predictor accuracy, when the policy reports one.
    pub llc_accuracy: Option<AccuracyReport>,
    /// Wall time spent *generating* the event stream, charged to exactly
    /// one run per captured stream: the run whose request performed the
    /// trace-store capture. Zero on store hits and on live (store-off)
    /// runs, where generation is interleaved with simulation and cannot
    /// be split out.
    pub gen_wall: Duration,
}

pub(crate) fn run_system<L: LltPolicy, C: LlcPolicy>(
    mut system: System<L, C>,
    factory: &WorkloadFactory,
    workload: &str,
    config: &RunConfig,
) -> RunResult {
    // One event source for the whole run: a zero-copy replay cursor from
    // the shared trace store when enabled (captured once per campaign,
    // covering exactly warmup + measure memory events), or a fresh live
    // generator under `DPC_TRACE_STORE=off`. Both yield bit-identical
    // events, so the simulation below cannot tell them apart; the replay
    // side is additionally consumed in decoded chunks
    // (`System::run_stream`), which is bit-identical to event-at-a-time
    // consumption by construction.
    let total_mem_ops = config.warmup_mem_ops + config.measure_mem_ops;
    let (source, capture) =
        factory.source(workload, total_mem_ops).expect("experiment uses known workload names");
    // Sample deadness ~200 times over the measured window.
    let approx_instructions = config.measure_mem_ops * 3;
    system.set_sample_interval((approx_instructions / 200).max(1000));
    let stats = match source {
        EventSource::Replay(mut cursor) => {
            let (stream, position) = cursor.replay_parts();
            if config.warmup_mem_ops > 0 {
                system.run_stream(stream, position, config.warmup_mem_ops);
                system.reset_stats();
            }
            system.run_stream(stream, position, config.measure_mem_ops)
        }
        EventSource::Live(mut generator) => {
            if config.warmup_mem_ops > 0 {
                system.run_until(generator.as_mut(), config.warmup_mem_ops);
                system.reset_stats();
            }
            system.run_until(generator.as_mut(), config.measure_mem_ops)
        }
    };
    RunResult {
        workload: workload.to_owned(),
        llt_accuracy: system.llt_policy().accuracy_report(),
        llc_accuracy: system.llc_policy().accuracy_report(),
        stats,
        gen_wall: capture.charged_wall(),
    }
}

/// The [`PolicyApply`] action behind [`run_workload`]: builds the
/// monomorphized system for the dispatched policy pair and runs it.
struct RunAction<'a> {
    factory: &'a WorkloadFactory,
    workload: &'a str,
    config: &'a RunConfig,
}

impl PolicyApply for RunAction<'_> {
    type Out = RunResult;

    fn apply<L: LltPolicy, C: LlcPolicy>(self, llt: L, llc: C) -> RunResult {
        let system = System::with_typed_policies(self.config.system, llt, llc)
            .expect("experiment configurations are valid");
        run_system(system, self.factory, self.workload, self.config)
    }
}

/// Runs `workload` under `config`, statically dispatched: the policy
/// selectors are resolved to concrete types and the whole simulation
/// loop is monomorphized around them (see [`crate::dispatch`]).
///
/// # Panics
///
/// Panics if the system configuration is invalid or the workload name is
/// unknown — experiment definitions control both.
pub fn run_workload(factory: &WorkloadFactory, workload: &str, config: &RunConfig) -> RunResult {
    dispatch(
        config.tlb_policy,
        config.llc_policy,
        &config.system,
        RunAction { factory, workload, config },
    )
}

/// Runs `workload` once under the policy-free baseline machine of `config`
/// while recording every page's LLT lookup times, returning both the run's
/// results and the frozen lookup trace.
///
/// The recorder changes no replacement decision, so the returned
/// [`RunResult`] is bit-identical to a plain baseline run of
/// `config.with_policies(TlbPolicySel::Baseline, LlcPolicySel::Baseline)` —
/// one recording pass can therefore double as the baseline entry of a
/// memo cache *and* feed [`run_oracle_from_trace`], eliminating the
/// redundant third simulation the old two-pass oracle paid per workload.
pub fn record_baseline(
    factory: &WorkloadFactory,
    workload: &str,
    config: &RunConfig,
) -> (RunResult, LookupTrace) {
    let (recorder, record) = LookupRecorder::new();
    let pass1 = System::with_typed_policies(config.system, recorder, NullBlockPolicy)
        .expect("experiment configurations are valid");
    let result = run_system(pass1, factory, workload, config);
    // `run_system` consumed (and dropped) the system holding the recorder,
    // so freezing moves the map instead of cloning it.
    (result, LookupRecorder::freeze(record))
}

/// Replays `workload` under Belady bypass/replacement, using the lookup
/// times recorded by [`record_baseline`] as perfect lookahead (pass 2 of
/// the paper's Table IV oracle). The LLT lookup stream is
/// policy-independent — the L1 TLBs filter it identically in both passes —
/// so pass-2 lookup indices align exactly with the recorded ones.
pub fn run_oracle_from_trace(
    trace: LookupTrace,
    factory: &WorkloadFactory,
    workload: &str,
    config: &RunConfig,
) -> RunResult {
    let oracle = BeladyOracle::new(
        trace,
        u64::from(config.system.l2_tlb.sets()),
        config.system.l2_tlb.ways as usize,
    );
    let pass2 = System::with_typed_policies(config.system, oracle, NullBlockPolicy)
        .expect("experiment configurations are valid");
    run_system(pass2, factory, workload, config)
}

/// Runs the two-pass approximate oracle (paper Table IV): pass 1 records
/// every page's LLT lookup times under the baseline ([`record_baseline`]);
/// pass 2 replays the workload under Belady bypass/replacement using those
/// times as perfect lookahead ([`run_oracle_from_trace`]).
pub fn run_oracle(factory: &WorkloadFactory, workload: &str, config: &RunConfig) -> RunResult {
    let (_, trace) = record_baseline(factory, workload, config);
    run_oracle_from_trace(trace, factory, workload, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_workloads::Scale;

    fn factory() -> WorkloadFactory {
        WorkloadFactory::new(Scale::Tiny, 42)
    }

    #[test]
    fn baseline_run_produces_stats() {
        let f = factory();
        let config = RunConfig::baseline(1000, 20_000);
        let result = run_workload(&f, "bfs", &config);
        assert_eq!(result.workload, "bfs");
        assert_eq!(result.stats.mem_ops, 20_000);
        assert!(result.llt_accuracy.is_none(), "baseline reports no accuracy");
    }

    #[test]
    fn dppred_run_reports_accuracy() {
        let f = factory();
        let config = RunConfig::baseline(1000, 20_000)
            .with_policies(TlbPolicySel::DpPred, LlcPolicySel::CbPred);
        let result = run_workload(&f, "canneal", &config);
        assert!(result.llt_accuracy.is_some());
        assert!(result.llc_accuracy.is_some());
    }

    #[test]
    fn oracle_two_pass_runs() {
        let f = factory();
        // Tiny-scale footprints fit in the paper's 1024-entry LLT; shrink
        // it so LLT stays actually end in evictions the recorder can log.
        let mut config = RunConfig::baseline(0, 60_000);
        config.system = config.system.with_l2_tlb_entries(64);
        let oracle = run_oracle(&f, "lbm", &config);
        let base = run_workload(&f, "lbm", &config);
        // lbm's LLT fills are almost all DOA: the oracle must bypass many
        // and not increase misses.
        assert!(oracle.stats.llt.bypasses > 0, "oracle must bypass recorded DOAs");
        assert!(
            oracle.stats.llt.misses <= base.stats.llt.misses * 101 / 100,
            "oracle must not increase LLT misses ({} vs {})",
            oracle.stats.llt.misses,
            base.stats.llt.misses
        );
    }

    #[test]
    fn recording_pass_is_bit_identical_to_baseline() {
        let f = factory();
        let mut config = RunConfig::baseline(1_000, 40_000);
        config.system = config.system.with_l2_tlb_entries(64);
        let plain = run_workload(&f, "mcf", &config);
        let (recorded, trace) = record_baseline(&f, "mcf", &config);
        assert_eq!(plain.stats.cycles, recorded.stats.cycles);
        assert_eq!(plain.stats.llt, recorded.stats.llt);
        assert_eq!(plain.stats.llc, recorded.stats.llc);
        assert_eq!(plain.stats.llt_deadness, recorded.stats.llt_deadness);
        assert!(plain.llt_accuracy.is_none() && recorded.llt_accuracy.is_none());
        assert!(!trace.is_empty(), "recording pass must log lookups");
    }

    #[test]
    fn trace_store_replay_matches_live_generation() {
        let on = factory().with_trace_store(true);
        let off = factory().with_trace_store(false);
        let config = RunConfig::baseline(1_000, 20_000)
            .with_policies(TlbPolicySel::DpPred, LlcPolicySel::CbPred);
        let replayed = run_workload(&on, "canneal", &config);
        let live = run_workload(&off, "canneal", &config);
        assert_eq!(replayed.stats.cycles, live.stats.cycles, "replay must match live run");
        assert_eq!(replayed.stats.llt, live.stats.llt);
        assert_eq!(replayed.stats.llc, live.stats.llc);
        assert_eq!(replayed.stats.llt_deadness, live.stats.llt_deadness);
        assert!(live.gen_wall.is_zero(), "live runs charge no capture time");
        // A second run of the same key replays the cached stream and
        // charges no further capture time.
        let again = run_workload(&on, "canneal", &config);
        assert!(again.gen_wall.is_zero());
        assert_eq!(again.stats.cycles, replayed.stats.cycles);
    }

    #[test]
    fn typed_dispatch_matches_dyn_fallback() {
        let f = factory();
        let config = RunConfig::baseline(500, 10_000)
            .with_policies(TlbPolicySel::DpPred, LlcPolicySel::CbPred);
        let typed = run_workload(&f, "canneal", &config);
        let boxed = crate::fallback::run_workload_dyn(&f, "canneal", &config);
        assert_eq!(typed.stats, boxed.stats, "monomorphized and dyn systems must agree");
        assert_eq!(typed.llt_accuracy, boxed.llt_accuracy);
        assert_eq!(typed.llc_accuracy, boxed.llc_accuracy);
    }
}
