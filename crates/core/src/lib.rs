//! # dpc — Dead Page and Dead Block Predictors
//!
//! A from-scratch Rust reproduction of *"Dead Page and Dead Block
//! Predictors: Cleaning TLBs and Caches Together"* (Mazumdar, Mitra &
//! Basu, HPCA 2021): the **dpPred** dead-page predictor for the last-level
//! TLB, the **cbPred** correlating dead-block predictor for the LLC, the
//! full simulation substrate they run on, the baselines they are compared
//! against (SHiP, AIP, iso-storage, approximate oracle, SRRIP), the 14
//! synthetic workloads of the evaluation, and a harness regenerating every
//! table and figure of the paper.
//!
//! This crate is the front door: it re-exports the building blocks and
//! hosts the experiment definitions. The layers underneath:
//!
//! * `dpc-types` — addresses, hashing, configuration;
//! * `dpc-memsim` — caches, TLBs, page walks, core timing model;
//! * `dpc-predictors` — dpPred, cbPred, SHiP, AIP, oracle, storage model;
//! * `dpc-workloads` — the 14 trace generators.
//!
//! # Quickstart
//!
//! ```
//! use dpc::prelude::*;
//!
//! // Build the paper's machine with dpPred + cbPred attached. Typed
//! // policies monomorphize the whole simulation loop around the pair.
//! let config = SystemConfig::paper_baseline();
//! let mut system = System::with_typed_policies(
//!     config,
//!     DpPred::paper_default(),
//!     CbPred::paper_default(&config.llc),
//! )?;
//!
//! // Run a workload for 50K memory operations.
//! let factory = WorkloadFactory::new(Scale::Tiny, 42);
//! let mut workload = factory.build("bfs").expect("bfs is a known workload");
//! let stats = system.run_until(workload.as_mut(), 50_000);
//!
//! println!("IPC {:.3}, LLT MPKI {:.2}, LLC MPKI {:.2}",
//!          stats.ipc(), stats.llt_mpki(), stats.llc_mpki());
//! # Ok::<(), dpc_memsim::SystemError>(())
//! ```
//!
//! # Regenerating the paper's results
//!
//! Each table and figure has an experiment function in [`experiments`];
//! the `paper` binary in `dpc-bench` drives them:
//!
//! ```text
//! cargo run --release -p dpc-bench --bin paper -- all
//! cargo run --release -p dpc-bench --bin paper -- fig9 table4
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod dispatch;
pub mod experiments;
pub mod fallback;
pub mod report;
pub mod runner;

pub use campaign::{CampaignStats, RunTiming, SimKind};
pub use dispatch::{dispatch, PolicyApply};
pub use experiments::{CampaignPlan, ExperimentContext, ExperimentOptions, RunKey};
pub use fallback::run_workload_dyn;
pub use report::{geomean, ExpTable, Summary};
pub use runner::{run_oracle, run_workload, LlcPolicySel, RunConfig, RunResult, TlbPolicySel};

/// Convenient re-exports for applications.
pub mod prelude {
    pub use crate::campaign::{self, CampaignStats};
    pub use crate::experiments::{self, CampaignPlan, ExperimentContext, ExperimentOptions};
    pub use crate::report::ExpTable;
    pub use crate::runner::{
        run_oracle, run_workload, LlcPolicySel, RunConfig, RunResult, TlbPolicySel,
    };
    pub use dpc_memsim::{LlcPolicy, LltPolicy, NullBlockPolicy, NullPagePolicy, SimStats, System};
    pub use dpc_predictors::{AipLlc, AipTlb, CbPred, DpPred, OracleBypass, ShipLlc, ShipTlb};
    pub use dpc_types::{
        AccessKind, AllocPolicy, Event, EventStream, PageSize, Pc, SystemConfig, VirtAddr, Workload,
    };
    pub use dpc_workloads::{
        CaptureReport, EventCursor, EventSource, Scale, TraceStore, WorkloadFactory, WORKLOAD_NAMES,
    };
}
