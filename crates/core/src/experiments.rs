//! Definitions of every experiment in the paper's evaluation: Figures 1–4
//! and 9–11, Tables III–VII, and the storage-overhead comparison.
//!
//! Each function regenerates one table or figure as an [`ExpTable`] whose
//! rows follow the paper's Table II workload order. Runs are memoized in
//! the [`ExperimentContext`] so, e.g., Table IV reuses Figure 9's runs.

use crate::report::{ExpTable, Summary};
use crate::runner::{
    record_baseline, run_oracle_from_trace, run_workload, LlcPolicySel, RunConfig, RunResult,
    TlbPolicySel,
};
use dpc_memsim::SimStats;
use dpc_predictors::storage;
use dpc_predictors::{DpPredConfig, LookupTrace};
use dpc_types::{AllocPolicy, ReplacementKind, SystemConfig, TlbFillPolicy};
use dpc_workloads::{Scale, WorkloadFactory, WORKLOAD_NAMES};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::sync::Arc;

/// Global options for an experiment campaign.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentOptions {
    /// Input scale for all workloads.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Warm-up memory operations per run.
    pub warmup_mem_ops: u64,
    /// Measured memory operations per run.
    pub measure_mem_ops: u64,
    /// Page-size policy applied to every machine in the campaign
    /// (baseline and predictor runs alike, so comparisons stay
    /// like-for-like). [`AllocPolicy::Base4K`] reproduces the paper's
    /// byte-identical output.
    pub page_policy: AllocPolicy,
}

impl ExperimentOptions {
    /// Defaults used by the `paper` harness: Small scale, 200K warm-up,
    /// 1M measured operations.
    pub fn quick() -> Self {
        ExperimentOptions {
            scale: Scale::Small,
            seed: 42,
            warmup_mem_ops: 200_000,
            measure_mem_ops: 1_000_000,
            page_policy: AllocPolicy::Base4K,
        }
    }

    /// Reads overrides from the environment: `DPC_SCALE`
    /// (`tiny`/`small`/`paper`), `DPC_WARMUP`, `DPC_MEASURE`, `DPC_SEED`,
    /// `DPC_PAGE_SIZE` (`4k`/`2m`/`1g`).
    pub fn from_env() -> Self {
        let mut opts = Self::quick();
        if let Ok(s) = std::env::var("DPC_SCALE") {
            opts.scale = match s.as_str() {
                "tiny" => Scale::Tiny,
                "paper" => Scale::Paper,
                _ => Scale::Small,
            };
        }
        if let Ok(v) = std::env::var("DPC_WARMUP") {
            if let Ok(n) = v.parse() {
                opts.warmup_mem_ops = n;
            }
        }
        if let Ok(v) = std::env::var("DPC_MEASURE") {
            if let Ok(n) = v.parse() {
                opts.measure_mem_ops = n;
            }
        }
        if let Ok(v) = std::env::var("DPC_SEED") {
            if let Ok(n) = v.parse() {
                opts.seed = n;
            }
        }
        if let Ok(v) = std::env::var("DPC_PAGE_SIZE") {
            if let Ok(size) = v.parse() {
                opts.page_policy = AllocPolicy::uniform(size);
            }
        }
        opts
    }

    /// The baseline machine of this campaign: the paper machine under the
    /// campaign's page policy. Every experiment derives its machine
    /// variants from this (never from a bare
    /// [`SystemConfig::paper_baseline`]) so sensitivity sweeps inherit the
    /// page-size axis.
    pub fn base_system(&self) -> SystemConfig {
        SystemConfig::paper_baseline().with_page_policy(self.page_policy)
    }

    /// The run configuration implied by these options (baseline machine).
    pub fn base_run(&self) -> RunConfig {
        RunConfig::baseline(self.warmup_mem_ops, self.measure_mem_ops)
            .with_system(self.base_system())
    }

    /// `title`, tagged with the page-size axis when it is not the paper
    /// default — so reports from different campaigns are unambiguous.
    pub fn titled(&self, title: &str) -> String {
        if self.page_policy.is_default() {
            title.to_owned()
        } else {
            format!("{title} [page={}]", self.page_policy)
        }
    }
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        Self::quick()
    }
}

/// Memo key: one distinct simulation.
pub type RunKey = (String, RunConfig);

/// The deduplicated set of simulations an experiment selection needs,
/// produced by replaying experiment functions against a planning context
/// ([`ExperimentContext::planner`]) and consumed by the parallel executor
/// in [`crate::campaign`].
#[derive(Clone, Debug, Default)]
pub struct CampaignPlan {
    /// Plain runs, in first-request order.
    pub plain: Vec<RunKey>,
    /// Oracle runs, in first-request order.
    pub oracle: Vec<RunKey>,
}

impl CampaignPlan {
    /// Total number of distinct memoized runs the plan will produce.
    pub fn distinct_runs(&self) -> usize {
        self.plain.len() + self.oracle.len()
    }

    /// The baseline key whose recording pass feeds an oracle run: the same
    /// machine and event budget with both policy selectors stripped.
    pub fn baseline_key_for(key: &RunKey) -> RunKey {
        (key.0.clone(), key.1.with_policies(TlbPolicySel::Baseline, LlcPolicySel::Baseline))
    }
}

#[derive(Debug, Default)]
struct PlanRecorder {
    plain: Vec<RunKey>,
    oracle: Vec<RunKey>,
    seen_plain: HashSet<RunKey>,
    seen_oracle: HashSet<RunKey>,
}

/// Memoizing run context shared by an experiment campaign.
///
/// Memo values are `Arc<RunResult>`, so recalling a run shares the stored
/// result instead of deep-cloning its full `SimStats`. A context operates
/// in one of two modes:
///
/// * **immediate** (the default, [`ExperimentContext::new`]): `run` /
///   `run_oracle` simulate on first request and memoize;
/// * **planning** ([`ExperimentContext::planner`]): requests are recorded
///   into a [`CampaignPlan`] and answered with zeroed placeholder results,
///   without simulating. Replaying the experiment functions against a
///   planning context enumerates exactly the distinct runs they need; the
///   campaign executor then simulates those runs concurrently and hands
///   back an immediate-mode context preloaded with every result.
#[derive(Debug)]
pub struct ExperimentContext {
    options: ExperimentOptions,
    factory: WorkloadFactory,
    cache: HashMap<RunKey, Arc<RunResult>>,
    oracle_cache: HashMap<RunKey, Arc<RunResult>>,
    /// Lookup traces recorded by oracle pass 1, keyed by the baseline key,
    /// so repeated oracle configs per workload re-record nothing.
    traces: HashMap<RunKey, LookupTrace>,
    plan: Option<PlanRecorder>,
}

impl ExperimentContext {
    /// Creates an immediate-mode context.
    pub fn new(options: ExperimentOptions) -> Self {
        ExperimentContext {
            factory: WorkloadFactory::new(options.scale, options.seed),
            options,
            cache: HashMap::new(),
            oracle_cache: HashMap::new(),
            traces: HashMap::new(),
            plan: None,
        }
    }

    /// Creates a planning context: `run` / `run_oracle` record the
    /// requested keys instead of simulating. Retrieve the result with
    /// [`ExperimentContext::into_plan`].
    pub fn planner(options: ExperimentOptions) -> Self {
        let mut ctx = Self::new(options);
        ctx.plan = Some(PlanRecorder::default());
        ctx
    }

    /// Creates an immediate-mode context preloaded with executed results
    /// (the campaign executor's output). The preloaded runs count as
    /// performed.
    pub(crate) fn with_results(
        options: ExperimentOptions,
        factory: WorkloadFactory,
        cache: HashMap<RunKey, Arc<RunResult>>,
        oracle_cache: HashMap<RunKey, Arc<RunResult>>,
    ) -> Self {
        ExperimentContext {
            options,
            factory,
            cache,
            oracle_cache,
            traces: HashMap::new(),
            plan: None,
        }
    }

    /// The campaign options.
    pub fn options(&self) -> &ExperimentOptions {
        &self.options
    }

    /// The plan accumulated by a planning context ([`Self::planner`]);
    /// empty for immediate-mode contexts.
    pub fn into_plan(self) -> CampaignPlan {
        match self.plan {
            Some(recorder) => CampaignPlan { plain: recorder.plain, oracle: recorder.oracle },
            None => CampaignPlan::default(),
        }
    }

    /// Zeroed stand-in returned while planning. Experiment functions only
    /// push derived `f64`s into tables, so zeroed counters are safe.
    fn placeholder(workload: &str) -> Arc<RunResult> {
        Arc::new(RunResult {
            workload: workload.to_owned(),
            stats: SimStats::default(),
            llt_accuracy: None,
            llc_accuracy: None,
            gen_wall: std::time::Duration::ZERO,
        })
    }

    /// Runs (or recalls) `workload` under `config`.
    pub fn run(&mut self, workload: &str, config: RunConfig) -> Arc<RunResult> {
        let key = (workload.to_owned(), config);
        if let Some(plan) = &mut self.plan {
            if plan.seen_plain.insert(key.clone()) {
                plan.plain.push(key);
            }
            return Self::placeholder(workload);
        }
        if let Some(hit) = self.cache.get(&key) {
            return Arc::clone(hit);
        }
        let result = Arc::new(run_workload(&self.factory, workload, &config));
        self.cache.insert(key, Arc::clone(&result));
        result
    }

    /// Runs (or recalls) the two-pass oracle. The recording pass doubles
    /// as the plain baseline run of the same machine: its result lands in
    /// the plain memo and its lookup trace is cached, so later baseline
    /// recalls and further oracle configs re-simulate nothing.
    pub fn run_oracle(&mut self, workload: &str, config: RunConfig) -> Arc<RunResult> {
        let key = (workload.to_owned(), config);
        if let Some(plan) = &mut self.plan {
            if plan.seen_oracle.insert(key.clone()) {
                plan.oracle.push(key);
            }
            return Self::placeholder(workload);
        }
        if let Some(hit) = self.oracle_cache.get(&key) {
            return Arc::clone(hit);
        }
        let baseline_key = CampaignPlan::baseline_key_for(&key);
        let trace = match self.traces.get(&baseline_key) {
            Some(trace) => Arc::clone(trace),
            None => {
                let (result, trace) = record_baseline(&self.factory, workload, &config);
                self.cache.entry(baseline_key.clone()).or_insert_with(|| Arc::new(result));
                self.traces.insert(baseline_key, Arc::clone(&trace));
                trace
            }
        };
        let result = Arc::new(run_oracle_from_trace(trace, &self.factory, workload, &config));
        self.oracle_cache.insert(key, Arc::clone(&result));
        result
    }

    /// Number of distinct simulations performed so far.
    pub fn runs_performed(&self) -> usize {
        self.cache.len() + self.oracle_cache.len()
    }
}

fn pct(fraction: f64) -> f64 {
    fraction * 100.0
}

/// Percentage reduction of `new` relative to `base` (positive = better).
fn reduction_pct(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (base - new) / base * 100.0
    }
}

// ---------------------------------------------------------------------
// Characterization (Figs. 1-4, Table III).
// ---------------------------------------------------------------------

/// Fig. 1: fraction of LLT entries dead / DOA at any time (sampled).
pub fn fig1_llt_deadness(ctx: &mut ExperimentContext) -> ExpTable {
    let config = ctx.options.base_run();
    let mut table = ExpTable::new(
        ctx.options.titled("Fig. 1: % of LLT entries dead / DOA at any time (sampled residents)"),
        vec!["dead %".into(), "DOA %".into()],
        Summary::Mean,
        1,
    );
    for name in WORKLOAD_NAMES {
        let r = ctx.run(name, config);
        let d = r.stats.llt_deadness;
        table.push(name, vec![pct(d.dead_fraction()), pct(d.doa_fraction())]);
    }
    table
}

/// Fig. 2: classification of LLT entries at eviction.
pub fn fig2_llt_eviction_classes(ctx: &mut ExperimentContext) -> ExpTable {
    let config = ctx.options.base_run();
    let mut table = ExpTable::new(
        ctx.options.titled("Fig. 2: classification of LLT entries at eviction (% of evictions)"),
        vec!["dead %".into(), "DOA %".into(), "mostly-dead %".into()],
        Summary::Mean,
        1,
    );
    for name in WORKLOAD_NAMES {
        let r = ctx.run(name, config);
        let e = r.stats.llt_evictions;
        table.push(
            name,
            vec![
                pct(e.dead_fraction()),
                pct(e.doa_fraction()),
                pct(e.dead_fraction() - e.doa_fraction()),
            ],
        );
    }
    table
}

/// Fig. 3: fraction of LLC blocks dead / DOA at any time (sampled).
pub fn fig3_llc_deadness(ctx: &mut ExperimentContext) -> ExpTable {
    let config = ctx.options.base_run();
    let mut table = ExpTable::new(
        ctx.options.titled("Fig. 3: % of LLC blocks dead / DOA at any time (sampled residents)"),
        vec!["dead %".into(), "DOA %".into()],
        Summary::Mean,
        1,
    );
    for name in WORKLOAD_NAMES {
        let r = ctx.run(name, config);
        let d = r.stats.llc_deadness;
        table.push(name, vec![pct(d.dead_fraction()), pct(d.doa_fraction())]);
    }
    table
}

/// Fig. 4: classification of LLC blocks at eviction.
pub fn fig4_llc_eviction_classes(ctx: &mut ExperimentContext) -> ExpTable {
    let config = ctx.options.base_run();
    let mut table = ExpTable::new(
        ctx.options.titled("Fig. 4: classification of LLC blocks at eviction (% of evictions)"),
        vec!["dead %".into(), "DOA %".into(), "mostly-dead %".into()],
        Summary::Mean,
        1,
    );
    for name in WORKLOAD_NAMES {
        let r = ctx.run(name, config);
        let e = r.stats.llc_evictions;
        table.push(
            name,
            vec![
                pct(e.dead_fraction()),
                pct(e.doa_fraction()),
                pct(e.dead_fraction() - e.doa_fraction()),
            ],
        );
    }
    table
}

/// Table III: % of LLC DOA blocks that map onto a DOA page in the LLT.
pub fn table3_doa_correlation(ctx: &mut ExperimentContext) -> ExpTable {
    let config = ctx.options.base_run();
    let mut table = ExpTable::new(
        ctx.options.titled("Table III: % of LLC DOA blocks that map onto a DOA page in the LLT"),
        vec!["LLC blocks %".into()],
        Summary::Mean,
        2,
    );
    for name in WORKLOAD_NAMES {
        let r = ctx.run(name, config);
        table.push(name, vec![pct(r.stats.doa_block_page_correlation())]);
    }
    table
}

// ---------------------------------------------------------------------
// Dead page predictor (Fig. 9, Table IV).
// ---------------------------------------------------------------------

fn iso_storage_system(options: &ExperimentOptions) -> SystemConfig {
    // dpPred adds ~11% storage to the 11.75 KB LLT; the nearest whole-way
    // growth is 8 → 9 ways (1152 entries).
    options.base_system().with_l2_tlb_ways(9)
}

/// Fig. 9: normalized IPC for the TLB dead-page predictors.
pub fn fig9_tlb_predictor_ipc(ctx: &mut ExperimentContext) -> ExpTable {
    let base = ctx.options.base_run();
    let mut table = ExpTable::new(
        ctx.options.titled("Fig. 9: normalized IPC for TLB dead page predictors (vs baseline)"),
        vec!["AIP-TLB".into(), "SHiP-TLB".into(), "dpPred".into(), "Iso-storage".into()],
        Summary::Geomean,
        3,
    );
    for name in WORKLOAD_NAMES {
        let baseline = ctx.run(name, base).stats.ipc();
        let aip = ctx.run(name, base.with_policies(TlbPolicySel::AipTlb, LlcPolicySel::Baseline));
        let ship = ctx.run(name, base.with_policies(TlbPolicySel::ShipTlb, LlcPolicySel::Baseline));
        let dp = ctx.run(name, base.with_policies(TlbPolicySel::DpPred, LlcPolicySel::Baseline));
        let iso = ctx.run(name, base.with_system(iso_storage_system(&ctx.options)));
        table.push(
            name,
            vec![
                aip.stats.ipc() / baseline,
                ship.stats.ipc() / baseline,
                dp.stats.ipc() / baseline,
                iso.stats.ipc() / baseline,
            ],
        );
    }
    table
}

/// Table IV: LLT MPKI reduction (%) by the dead-page predictors.
pub fn table4_llt_mpki(ctx: &mut ExperimentContext) -> ExpTable {
    let base = ctx.options.base_run();
    let mut table = ExpTable::new(
        ctx.options.titled("Table IV: LLT MPKI reduction (%)"),
        vec![
            "AIP-TLB".into(),
            "SHiP-TLB".into(),
            "dpPred".into(),
            "Iso-TLB".into(),
            "Oracle".into(),
        ],
        Summary::Mean,
        1,
    );
    for name in WORKLOAD_NAMES {
        let baseline = ctx.run(name, base).stats.llt_mpki();
        let aip = ctx.run(name, base.with_policies(TlbPolicySel::AipTlb, LlcPolicySel::Baseline));
        let ship = ctx.run(name, base.with_policies(TlbPolicySel::ShipTlb, LlcPolicySel::Baseline));
        let dp = ctx.run(name, base.with_policies(TlbPolicySel::DpPred, LlcPolicySel::Baseline));
        let iso = ctx.run(name, base.with_system(iso_storage_system(&ctx.options)));
        let oracle = ctx.run_oracle(name, base);
        table.push(
            name,
            vec![
                reduction_pct(baseline, aip.stats.llt_mpki()),
                reduction_pct(baseline, ship.stats.llt_mpki()),
                reduction_pct(baseline, dp.stats.llt_mpki()),
                reduction_pct(baseline, iso.stats.llt_mpki()),
                reduction_pct(baseline, oracle.stats.llt_mpki()),
            ],
        );
    }
    table
}

// ---------------------------------------------------------------------
// Correlating dead block predictor (Fig. 10, Table V).
// ---------------------------------------------------------------------

/// Fig. 10: normalized IPC for LLC dead-block predictors and combined
/// TLB+LLC configurations.
pub fn fig10_llc_predictor_ipc(ctx: &mut ExperimentContext) -> ExpTable {
    let base = ctx.options.base_run();
    let mut table = ExpTable::new(
        ctx.options.titled("Fig. 10: normalized IPC for LLC / combined predictors (vs baseline)"),
        vec![
            "AIP-LLC".into(),
            "SHiP-LLC".into(),
            "AIP-TLB+LLC".into(),
            "SHiP-TLB+LLC".into(),
            "cbPred".into(),
        ],
        Summary::Geomean,
        3,
    );
    for name in WORKLOAD_NAMES {
        let baseline = ctx.run(name, base).stats.ipc();
        let aip = ctx.run(name, base.with_policies(TlbPolicySel::Baseline, LlcPolicySel::AipLlc));
        let ship = ctx.run(name, base.with_policies(TlbPolicySel::Baseline, LlcPolicySel::ShipLlc));
        let aip2 = ctx.run(name, base.with_policies(TlbPolicySel::AipTlb, LlcPolicySel::AipLlc));
        let ship2 = ctx.run(name, base.with_policies(TlbPolicySel::ShipTlb, LlcPolicySel::ShipLlc));
        let cb = ctx.run(name, base.with_policies(TlbPolicySel::DpPred, LlcPolicySel::CbPred));
        table.push(
            name,
            vec![
                aip.stats.ipc() / baseline,
                ship.stats.ipc() / baseline,
                aip2.stats.ipc() / baseline,
                ship2.stats.ipc() / baseline,
                cb.stats.ipc() / baseline,
            ],
        );
    }
    table
}

/// Table V: LLC MPKI reduction (%) by dead-block predictors.
pub fn table5_llc_mpki(ctx: &mut ExperimentContext) -> ExpTable {
    let base = ctx.options.base_run();
    let mut table = ExpTable::new(
        ctx.options.titled("Table V: LLC MPKI reduction (%)"),
        vec!["AIP-LLC".into(), "SHiP-LLC".into(), "cbPred".into()],
        Summary::Mean,
        2,
    );
    for name in WORKLOAD_NAMES {
        let baseline = ctx.run(name, base).stats.llc_mpki();
        let aip = ctx.run(name, base.with_policies(TlbPolicySel::Baseline, LlcPolicySel::AipLlc));
        let ship = ctx.run(name, base.with_policies(TlbPolicySel::Baseline, LlcPolicySel::ShipLlc));
        let cb = ctx.run(name, base.with_policies(TlbPolicySel::DpPred, LlcPolicySel::CbPred));
        table.push(
            name,
            vec![
                reduction_pct(baseline, aip.stats.llc_mpki()),
                reduction_pct(baseline, ship.stats.llc_mpki()),
                reduction_pct(baseline, cb.stats.llc_mpki()),
            ],
        );
    }
    table
}

// ---------------------------------------------------------------------
// Accuracy and coverage (Tables VI, VII).
// ---------------------------------------------------------------------

/// Table VI: accuracy and coverage of the dead-page predictors.
pub fn table6_dp_accuracy(ctx: &mut ExperimentContext) -> ExpTable {
    let base = ctx.options.base_run();
    let mut table = ExpTable::new(
        ctx.options.titled("Table VI: accuracy / coverage of dead page predictors (%)"),
        vec![
            "dpPred Acc".into(),
            "dpPred Cov".into(),
            "dpPred-SH Acc".into(),
            "dpPred-SH Cov".into(),
            "SHiP Acc".into(),
            "SHiP Cov".into(),
        ],
        Summary::Mean,
        1,
    );
    for name in WORKLOAD_NAMES {
        let dp = ctx.run(name, base.with_policies(TlbPolicySel::DpPred, LlcPolicySel::Baseline));
        let dp_sh =
            ctx.run(name, base.with_policies(TlbPolicySel::DpPredNoShadow, LlcPolicySel::Baseline));
        let ship = ctx.run(name, base.with_policies(TlbPolicySel::ShipTlb, LlcPolicySel::Baseline));
        let a = dp.llt_accuracy.unwrap_or_default();
        let b = dp_sh.llt_accuracy.unwrap_or_default();
        let c = ship.llt_accuracy.unwrap_or_default();
        table.push(
            name,
            vec![
                pct(a.accuracy()),
                pct(a.coverage()),
                pct(b.accuracy()),
                pct(b.coverage()),
                pct(c.accuracy()),
                pct(c.coverage()),
            ],
        );
    }
    table
}

/// Table VII: accuracy and coverage of the dead-block predictors.
pub fn table7_cb_accuracy(ctx: &mut ExperimentContext) -> ExpTable {
    let base = ctx.options.base_run();
    let mut table = ExpTable::new(
        ctx.options.titled("Table VII: accuracy / coverage of dead block predictors (%)"),
        vec![
            "cbPred Acc".into(),
            "cbPred Cov".into(),
            "cbPred-PF Acc".into(),
            "cbPred-PF Cov".into(),
            "SHiP Acc".into(),
            "SHiP Cov".into(),
        ],
        Summary::Mean,
        1,
    );
    for name in WORKLOAD_NAMES {
        let cb = ctx.run(name, base.with_policies(TlbPolicySel::DpPred, LlcPolicySel::CbPred));
        let cb_pf =
            ctx.run(name, base.with_policies(TlbPolicySel::DpPred, LlcPolicySel::CbPredNoPfq));
        let ship = ctx.run(name, base.with_policies(TlbPolicySel::Baseline, LlcPolicySel::ShipLlc));
        let a = cb.llc_accuracy.unwrap_or_default();
        let b = cb_pf.llc_accuracy.unwrap_or_default();
        let c = ship.llc_accuracy.unwrap_or_default();
        table.push(
            name,
            vec![
                pct(a.accuracy()),
                pct(a.coverage()),
                pct(b.accuracy()),
                pct(b.coverage()),
                pct(c.accuracy()),
                pct(c.coverage()),
            ],
        );
    }
    table
}

// ---------------------------------------------------------------------
// Sensitivity studies (Fig. 11).
// ---------------------------------------------------------------------

/// Fig. 11a: dpPred's normalized IPC at 512/1024/1536-entry LLTs, each
/// normalized to the same-size baseline.
pub fn fig11a_llt_size(ctx: &mut ExperimentContext) -> ExpTable {
    let base = ctx.options.base_run();
    let mut table = ExpTable::new(
        ctx.options.titled("Fig. 11a: dpPred normalized IPC vs LLT size"),
        vec!["512 entries".into(), "1024 entries".into(), "1536 entries".into()],
        Summary::Geomean,
        3,
    );
    let sizes = [512u32, 1024, 1536];
    for name in WORKLOAD_NAMES {
        let mut values = Vec::new();
        for entries in sizes {
            let system = ctx.options.base_system().with_l2_tlb_entries(entries);
            let baseline = ctx.run(name, base.with_system(system)).stats.ipc();
            let dp = ctx.run(
                name,
                base.with_system(system)
                    .with_policies(TlbPolicySel::DpPred, LlcPolicySel::Baseline),
            );
            values.push(dp.stats.ipc() / baseline);
        }
        table.push(name, values);
    }
    table
}

/// Fig. 11b: pHIST indexing configurations, normalized IPC.
pub fn fig11b_phist_config(ctx: &mut ExperimentContext) -> ExpTable {
    let base = ctx.options.base_run();
    let mut table = ExpTable::new(
        ctx.options.titled("Fig. 11b: dpPred normalized IPC vs pHIST configuration"),
        vec!["6b PC + 5b VPN".into(), "6b PC + 4b VPN".into(), "10b PC".into()],
        Summary::Geomean,
        3,
    );
    let variants = [(6u32, 5u32), (6, 4), (10, 0)];
    for name in WORKLOAD_NAMES {
        let baseline = ctx.run(name, base).stats.ipc();
        let mut values = Vec::new();
        for (pc_bits, vpn_bits) in variants {
            let config = DpPredConfig { pc_bits, vpn_bits, ..DpPredConfig::paper_default() };
            let r = ctx.run(
                name,
                base.with_policies(TlbPolicySel::DpPredCustom(config), LlcPolicySel::Baseline),
            );
            values.push(r.stats.ipc() / baseline);
        }
        table.push(name, values);
    }
    table
}

/// Fig. 11c: shadow-table size (2 vs 4 entries), normalized IPC.
pub fn fig11c_shadow_size(ctx: &mut ExperimentContext) -> ExpTable {
    let base = ctx.options.base_run();
    let mut table = ExpTable::new(
        ctx.options.titled("Fig. 11c: dpPred normalized IPC vs shadow table size"),
        vec!["2-entry shadow".into(), "4-entry shadow".into()],
        Summary::Geomean,
        3,
    );
    for name in WORKLOAD_NAMES {
        let baseline = ctx.run(name, base).stats.ipc();
        let mut values = Vec::new();
        for shadow in [2usize, 4] {
            let config = DpPredConfig { shadow_entries: shadow, ..DpPredConfig::paper_default() };
            let r = ctx.run(
                name,
                base.with_policies(TlbPolicySel::DpPredCustom(config), LlcPolicySel::Baseline),
            );
            values.push(r.stats.ipc() / baseline);
        }
        table.push(name, values);
    }
    table
}

/// Fig. 11d: PFQ size (8 vs 64 entries), normalized IPC of dpPred+cbPred.
pub fn fig11d_pfq_size(ctx: &mut ExperimentContext) -> ExpTable {
    let base = ctx.options.base_run();
    let mut table = ExpTable::new(
        ctx.options.titled("Fig. 11d: dpPred+cbPred normalized IPC vs PFQ size"),
        vec!["8-entry PFQ".into(), "64-entry PFQ".into()],
        Summary::Geomean,
        3,
    );
    for name in WORKLOAD_NAMES {
        let baseline = ctx.run(name, base).stats.ipc();
        let mut values = Vec::new();
        for pfq in [8usize, 64] {
            let r = ctx
                .run(name, base.with_policies(TlbPolicySel::DpPred, LlcPolicySel::CbPredPfq(pfq)));
            values.push(r.stats.ipc() / baseline);
        }
        table.push(name, values);
    }
    table
}

/// Fig. 11e: LLC size (2 MB vs 3 MB), dpPred+cbPred normalized to the
/// same-size baseline.
pub fn fig11e_llc_size(ctx: &mut ExperimentContext) -> ExpTable {
    let base = ctx.options.base_run();
    let mut table = ExpTable::new(
        ctx.options.titled("Fig. 11e: dpPred+cbPred normalized IPC vs LLC size"),
        vec!["2 MB/core".into(), "3 MB/core".into()],
        Summary::Geomean,
        3,
    );
    for name in WORKLOAD_NAMES {
        let mut values = Vec::new();
        for bytes in [2u64 << 20, 3 << 20] {
            let system = ctx.options.base_system().with_llc_bytes(bytes);
            let baseline = ctx.run(name, base.with_system(system)).stats.ipc();
            let r = ctx.run(
                name,
                base.with_system(system).with_policies(TlbPolicySel::DpPred, LlcPolicySel::CbPred),
            );
            values.push(r.stats.ipc() / baseline);
        }
        table.push(name, values);
    }
    table
}

/// Fig. 11f: SRRIP replacement in LLT/LLC with and without the predictors,
/// all normalized to the LRU baseline.
pub fn fig11f_srrip(ctx: &mut ExperimentContext) -> ExpTable {
    let base = ctx.options.base_run();
    let mut table = ExpTable::new(
        ctx.options.titled("Fig. 11f: predictors under SRRIP (normalized to LRU baseline)"),
        vec![
            "SRRIP LLT".into(),
            "SRRIP dpPred".into(),
            "SRRIP LLT+LLC".into(),
            "SRRIP cbPred".into(),
        ],
        Summary::Geomean,
        3,
    );
    let srrip_llt = ctx.options.base_system().with_l2_tlb_replacement(ReplacementKind::Srrip);
    let srrip_both = srrip_llt.with_llc_replacement(ReplacementKind::Srrip);
    for name in WORKLOAD_NAMES {
        let baseline = ctx.run(name, base).stats.ipc();
        let a = ctx.run(name, base.with_system(srrip_llt));
        let b = ctx.run(
            name,
            base.with_system(srrip_llt).with_policies(TlbPolicySel::DpPred, LlcPolicySel::Baseline),
        );
        let c = ctx.run(name, base.with_system(srrip_both));
        let d = ctx.run(
            name,
            base.with_system(srrip_both).with_policies(TlbPolicySel::DpPred, LlcPolicySel::CbPred),
        );
        table.push(
            name,
            vec![
                a.stats.ipc() / baseline,
                b.stats.ipc() / baseline,
                c.stats.ipc() / baseline,
                d.stats.ipc() / baseline,
            ],
        );
    }
    table
}

// ---------------------------------------------------------------------
// Ablations beyond the paper's figures.
// ---------------------------------------------------------------------

/// Ablation A (paper Section III, prose): walk results filled into both
/// TLB levels vs into the L1 only with LLT fill on L1 eviction. The
/// paper reports no significant difference; this regenerates that check.
pub fn ablation_fill_policy(ctx: &mut ExperimentContext) -> ExpTable {
    let base = ctx.options.base_run();
    let mut table = ExpTable::new(
        ctx.options.titled("Ablation: walk-fill placement (normalized IPC vs fill-both baseline)"),
        vec!["fill-both".into(), "L1-then-victim".into()],
        Summary::Geomean,
        3,
    );
    let victim = ctx.options.base_system().with_tlb_fill(TlbFillPolicy::L1ThenVictim);
    for name in WORKLOAD_NAMES {
        let baseline = ctx.run(name, base).stats.ipc();
        let alt = ctx.run(name, base.with_system(victim)).stats.ipc();
        table.push(name, vec![1.0, alt / baseline]);
    }
    table
}

/// Ablation B: dpPred's prediction threshold (the paper fixes it at 6 of
/// a 3-bit counter; this sweeps the confidence/coverage trade-off).
pub fn ablation_threshold(ctx: &mut ExperimentContext) -> ExpTable {
    let base = ctx.options.base_run();
    let mut table = ExpTable::new(
        ctx.options.titled("Ablation: dpPred prediction threshold (normalized IPC)"),
        vec!["threshold 3".into(), "threshold 5".into(), "threshold 6 (paper)".into()],
        Summary::Geomean,
        3,
    );
    for name in WORKLOAD_NAMES {
        let baseline = ctx.run(name, base).stats.ipc();
        let mut values = Vec::new();
        for threshold in [3u8, 5, 6] {
            let config = DpPredConfig { threshold, ..DpPredConfig::paper_default() };
            let r = ctx.run(
                name,
                base.with_policies(TlbPolicySel::DpPredCustom(config), LlcPolicySel::Baseline),
            );
            values.push(r.stats.ipc() / baseline);
        }
        table.push(name, values);
    }
    table
}

/// Ablation C (extension): dpPred with and without DIP-style set-dueling
/// bypass control. Dueling bounds the worst case near the baseline while
/// keeping most of dpPred's wins.
pub fn ablation_dueling(ctx: &mut ExperimentContext) -> ExpTable {
    let base = ctx.options.base_run();
    let mut table = ExpTable::new(
        ctx.options.titled("Ablation: set-dueling bypass control (LLT MPKI reduction %)"),
        vec!["dpPred".into(), "dueling dpPred".into()],
        Summary::Mean,
        1,
    );
    for name in WORKLOAD_NAMES {
        let baseline = ctx.run(name, base).stats.llt_mpki();
        let plain = ctx.run(name, base.with_policies(TlbPolicySel::DpPred, LlcPolicySel::Baseline));
        let duel =
            ctx.run(name, base.with_policies(TlbPolicySel::DuelingDpPred, LlcPolicySel::Baseline));
        table.push(
            name,
            vec![
                reduction_pct(baseline, plain.stats.llt_mpki()),
                reduction_pct(baseline, duel.stats.llt_mpki()),
            ],
        );
    }
    table
}

// ---------------------------------------------------------------------
// Storage overheads (Sections V-D, VI-D).
// ---------------------------------------------------------------------

/// The storage-overhead comparison of Sections V-D / VI-D, rendered as
/// text.
pub fn storage_overhead_report() -> String {
    let config = SystemConfig::paper_baseline();
    let dp = storage::dppred_bytes(&config.l2_tlb, 6, 4, 3, 2);
    let cb = storage::cbpred_bytes(&config.llc, 4096, 3, 8);
    let ship_llc = storage::ship_llc_bytes(&config.llc, 14, 3);
    let ship_tlb = storage::ship_tlb_bytes(&config.l2_tlb, 8, 3);
    let aip_llc = storage::aip_llc_bytes(&config.llc);
    let aip_tlb = storage::aip_tlb_bytes(&config.l2_tlb);
    let mut out = String::new();
    let _ = writeln!(out, "Storage overheads (paper Sections V-D / VI-D)");
    let _ = writeln!(
        out,
        "{:<28}{:>12}{:>12}{:>12}{:>12}",
        "predictor", "entry B", "table B", "aux B", "total KiB"
    );
    let _ = writeln!(out, "{}", "-".repeat(76));
    for (name, b) in [
        ("dpPred (LLT)", dp),
        ("cbPred (LLC)", cb),
        ("SHiP-TLB", ship_tlb),
        ("SHiP-LLC", ship_llc),
        ("AIP-TLB", aip_tlb),
        ("AIP-LLC", aip_llc),
    ] {
        let _ = writeln!(
            out,
            "{:<28}{:>12}{:>12}{:>12}{:>12.2}",
            name,
            b.entry_metadata_bytes,
            b.table_bytes,
            b.aux_bytes,
            b.total_kib()
        );
    }
    let combined = dp.total() + cb.total();
    let _ = writeln!(out, "{}", "-".repeat(76));
    let _ = writeln!(
        out,
        "dpPred + cbPred combined: {} B = {:.2} KiB ({:.2}% of the {:.2} KiB LLT+LLC budget)",
        combined,
        combined as f64 / 1024.0,
        combined as f64 * 100.0
            / (storage::tlb_baseline_bytes(&config.l2_tlb) + config.llc.size_bytes) as f64,
        (storage::tlb_baseline_bytes(&config.l2_tlb) + config.llc.size_bytes) as f64 / 1024.0,
    );
    out
}

/// Every experiment in paper order, as `(id, rendered text)` pairs.
pub fn run_all(ctx: &mut ExperimentContext) -> Vec<(&'static str, String)> {
    vec![
        ("fig1", fig1_llt_deadness(ctx).render()),
        ("fig2", fig2_llt_eviction_classes(ctx).render()),
        ("fig3", fig3_llc_deadness(ctx).render()),
        ("fig4", fig4_llc_eviction_classes(ctx).render()),
        ("table3", table3_doa_correlation(ctx).render()),
        ("fig9", fig9_tlb_predictor_ipc(ctx).render()),
        ("table4", table4_llt_mpki(ctx).render()),
        ("fig10", fig10_llc_predictor_ipc(ctx).render()),
        ("table5", table5_llc_mpki(ctx).render()),
        ("table6", table6_dp_accuracy(ctx).render()),
        ("table7", table7_cb_accuracy(ctx).render()),
        ("fig11a", fig11a_llt_size(ctx).render()),
        ("fig11b", fig11b_phist_config(ctx).render()),
        ("fig11c", fig11c_shadow_size(ctx).render()),
        ("fig11d", fig11d_pfq_size(ctx).render()),
        ("fig11e", fig11e_llc_size(ctx).render()),
        ("fig11f", fig11f_srrip(ctx).render()),
        ("storage", storage_overhead_report()),
        ("ablation_fill", ablation_fill_policy(ctx).render()),
        ("ablation_threshold", ablation_threshold(ctx).render()),
        ("ablation_dueling", ablation_dueling(ctx).render()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> ExperimentContext {
        ExperimentContext::new(ExperimentOptions {
            scale: Scale::Tiny,
            seed: 42,
            warmup_mem_ops: 500,
            measure_mem_ops: 10_000,
            page_policy: dpc_types::AllocPolicy::Base4K,
        })
    }

    #[test]
    fn fig1_covers_all_workloads() {
        let mut ctx = tiny_ctx();
        let t = fig1_llt_deadness(&mut ctx);
        assert_eq!(t.rows.len(), 14);
        for (w, v) in &t.rows {
            assert!(v[0] >= v[1], "{w}: dead fraction must dominate DOA fraction");
            assert!(v[0] <= 100.0 && v[1] >= 0.0);
        }
    }

    #[test]
    fn runs_are_memoized() {
        let mut ctx = tiny_ctx();
        fig1_llt_deadness(&mut ctx);
        let after_fig1 = ctx.runs_performed();
        assert_eq!(after_fig1, 14);
        fig2_llt_eviction_classes(&mut ctx);
        assert_eq!(ctx.runs_performed(), 14, "fig2 must reuse fig1's runs");
    }

    #[test]
    fn storage_report_mentions_the_paper_numbers() {
        let s = storage_overhead_report();
        assert!(s.contains("dpPred"));
        assert!(s.contains("1306") || s.contains("10.8") || s.contains("0.5"), "{s}");
    }

    #[test]
    fn reduction_pct_signs() {
        assert!((reduction_pct(10.0, 9.0) - 10.0).abs() < 1e-12);
        assert!(reduction_pct(10.0, 11.0) < 0.0);
        assert_eq!(reduction_pct(0.0, 5.0), 0.0);
    }
}
