//! Plan/execute campaign engine: runs the deduplicated simulations of a
//! [`CampaignPlan`] across a pool of worker threads, with run-level
//! observability.
//!
//! The pipeline has three stages:
//!
//! 1. **Plan** — replay the experiment functions against
//!    [`ExperimentContext::planner`]; every `run` / `run_oracle` request is
//!    recorded (deduplicated) instead of simulated.
//! 2. **Execute** — [`execute`] fans the planned runs out over scoped
//!    worker threads. Each worker owns a clone of one [`WorkloadFactory`]
//!    (clones share the lazily-built graph inputs), and every simulation
//!    is independent, so results are bit-identical to serial execution
//!    regardless of thread count or scheduling order. An oracle run costs
//!    a single extra simulation: its recording pass doubles as the plain
//!    baseline run of the same machine.
//! 3. **Render** — the executor returns an [`ExperimentContext`] preloaded
//!    with every result; replaying the experiment functions against it
//!    renders the tables from the memo without re-simulating.
//!
//! Observability: every simulation's wall time and simulated-memory-op
//! throughput is captured as a [`RunTiming`]; [`CampaignStats`] aggregates
//! them with per-worker busy times and can render both a human summary
//! line and a machine-readable JSON dump (`--timing` in the `paper`
//! binary).

use crate::experiments::{CampaignPlan, ExperimentContext, ExperimentOptions, RunKey};
use crate::runner::{record_baseline, run_oracle_from_trace, run_workload, RunResult};
use dpc_workloads::WorkloadFactory;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default worker count: `DPC_THREADS` when set to a positive integer,
/// otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("DPC_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// What one simulation was for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimKind {
    /// A plain policy run.
    Plain,
    /// An oracle recording pass (doubles as the plain baseline run).
    Record,
    /// An oracle Belady replay pass.
    Oracle,
}

impl SimKind {
    fn as_str(self) -> &'static str {
        match self {
            SimKind::Plain => "plain",
            SimKind::Record => "record",
            SimKind::Oracle => "oracle",
        }
    }
}

/// Wall time and throughput of one simulation.
#[derive(Clone, Debug)]
pub struct RunTiming {
    /// Workload name.
    pub workload: String,
    /// TLB-side policy selector (Debug rendering).
    pub tlb_policy: String,
    /// LLC-side policy selector (Debug rendering).
    pub llc_policy: String,
    /// Page-size policy label of the machine ("4k", "2m", "1g",
    /// "promote2m").
    pub page: String,
    /// What the simulation was for.
    pub kind: SimKind,
    /// Total wall time of the run (stream generation + simulation).
    pub wall: Duration,
    /// Wall time spent generating the event stream — the trace-store
    /// capture cost, charged to the one run that performed the capture.
    /// Zero on store hits and on live (`DPC_TRACE_STORE=off`) runs, where
    /// generation is interleaved with simulation.
    pub gen_wall: Duration,
    /// Memory operations simulated (warm-up + measured).
    pub mem_ops: u64,
    /// Events the replay engine retired on the batched L1-hit fast path
    /// (tier 1: L1 D-TLB hit + L1D hit).
    pub fast_hits: u64,
    /// Events the replay engine retired on the second fast tier (an L1
    /// D-TLB miss absorbed by the L2 TLB and/or an L1D miss absorbed by
    /// the L2 cache).
    pub fast_l2_hits: u64,
    /// Events that went through the full `step` machinery.
    pub slow_steps: u64,
}

impl RunTiming {
    /// Wall time spent simulating: total minus the generation split.
    pub fn sim_wall(&self) -> Duration {
        self.wall.saturating_sub(self.gen_wall)
    }

    /// Simulated memory operations per wall-clock second.
    pub fn mem_ops_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.mem_ops as f64 / secs
        } else {
            0.0
        }
    }

    /// Total events processed by the replay engine, across all tiers.
    pub fn events(&self) -> u64 {
        self.fast_hits + self.fast_l2_hits + self.slow_steps
    }

    /// Fraction of this run's events retired on the tier-1 fast path.
    pub fn fast_hit_coverage(&self) -> f64 {
        coverage(self.fast_hits, self.events())
    }

    /// Fraction of this run's events retired on the second fast tier.
    pub fn fast_l2_coverage(&self) -> f64 {
        coverage(self.fast_l2_hits, self.events())
    }

    /// Simulation nanoseconds per processed event (all tiers).
    pub fn ns_per_event(&self) -> f64 {
        let events = self.events();
        if events == 0 {
            0.0
        } else {
            self.sim_wall().as_secs_f64() * 1e9 / events as f64
        }
    }
}

/// `part / total`, or 0 when no events were processed.
fn coverage(part: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        part as f64 / total as f64
    }
}

/// Aggregated observability for one executed campaign.
#[derive(Clone, Debug)]
pub struct CampaignStats {
    /// Wall time of the execute stage.
    pub wall: Duration,
    /// Worker threads used.
    pub threads: usize,
    /// Distinct memoized runs produced (plain + oracle).
    pub distinct_runs: usize,
    /// Per-simulation timings (≥ `distinct_runs` is never true: oracle
    /// recording passes are shared with the plain baseline entry, so this
    /// is exactly one entry per simulation actually performed).
    pub run_timings: Vec<RunTiming>,
    /// Per-worker busy time (sum of that worker's simulation wall times).
    pub worker_busy: Vec<Duration>,
}

impl CampaignStats {
    /// Total simulations performed.
    pub fn simulations(&self) -> usize {
        self.run_timings.len()
    }

    /// Total memory operations simulated across all runs.
    pub fn total_mem_ops(&self) -> u64 {
        self.run_timings.iter().map(|t| t.mem_ops).sum()
    }

    /// Total wall time spent generating event streams (trace-store
    /// captures) across all runs. Each captured stream is counted once.
    pub fn total_gen_wall(&self) -> Duration {
        self.run_timings.iter().map(|t| t.gen_wall).sum()
    }

    /// Total wall time spent simulating across all runs (run wall minus
    /// the generation split).
    pub fn total_sim_wall(&self) -> Duration {
        self.run_timings.iter().map(RunTiming::sim_wall).sum()
    }

    /// Aggregate simulated mem-ops per wall-clock second.
    pub fn mem_ops_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.total_mem_ops() as f64 / secs
        } else {
            0.0
        }
    }

    /// Total events retired on the batched tier-1 (L1-hit) fast path.
    pub fn total_fast_hits(&self) -> u64 {
        self.run_timings.iter().map(|t| t.fast_hits).sum()
    }

    /// Total events retired on the second fast tier (L2 TLB / L2 cache
    /// absorbed a first-level miss).
    pub fn total_fast_l2_hits(&self) -> u64 {
        self.run_timings.iter().map(|t| t.fast_l2_hits).sum()
    }

    /// Total events that went through the full `step` machinery.
    pub fn total_slow_steps(&self) -> u64 {
        self.run_timings.iter().map(|t| t.slow_steps).sum()
    }

    /// Total events processed by the replay engine, across all tiers.
    pub fn total_events(&self) -> u64 {
        self.run_timings.iter().map(RunTiming::events).sum()
    }

    /// Campaign-wide fraction of events retired on the tier-1 fast path
    /// (0 when `DPC_FASTPATH=off` or when every run is generated live —
    /// the fast path only engages on trace-store replay).
    pub fn fast_hit_coverage(&self) -> f64 {
        coverage(self.total_fast_hits(), self.total_events())
    }

    /// Campaign-wide fraction of events retired on the second fast tier.
    pub fn fast_l2_coverage(&self) -> f64 {
        coverage(self.total_fast_l2_hits(), self.total_events())
    }

    /// Campaign-wide simulation nanoseconds per processed event.
    pub fn ns_per_event(&self) -> f64 {
        let events = self.total_events();
        if events == 0 {
            0.0
        } else {
            self.total_sim_wall().as_secs_f64() * 1e9 / events as f64
        }
    }

    /// Mean worker utilization in `[0, 1]`: busy time over wall time.
    pub fn worker_utilization(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 || self.worker_busy.is_empty() {
            return 0.0;
        }
        let busy: f64 = self.worker_busy.iter().map(Duration::as_secs_f64).sum();
        (busy / (wall * self.worker_busy.len() as f64)).min(1.0)
    }

    /// One-line human summary for the end-of-campaign report.
    pub fn summary_line(&self) -> String {
        format!(
            "{} distinct runs ({} simulations) on {} worker{} in {:.1}s \
             ({:.1}s generating + {:.1}s simulating), \
             {:.2}M mem-ops/s, {:.0}% fast-path (+{:.0}% L2 tier), \
             {:.0}% worker utilization",
            self.distinct_runs,
            self.simulations(),
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            self.wall.as_secs_f64(),
            self.total_gen_wall().as_secs_f64(),
            self.total_sim_wall().as_secs_f64(),
            self.mem_ops_per_sec() / 1e6,
            self.fast_hit_coverage() * 100.0,
            self.fast_l2_coverage() * 100.0,
            self.worker_utilization() * 100.0,
        )
    }

    /// Machine-readable JSON dump for tracking campaign throughput across
    /// revisions (`paper --timing <file>`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        // Schema history: 2 added the gen/sim wall split; 3 added the
        // per-run "page" field (the machine's page-size policy label);
        // 4 added the fast-path telemetry (aggregate "total_fast_hits" /
        // "total_slow_steps" / "fast_hit_coverage" and per-run
        // "fast_hits" / "slow_steps"); 5 added the second-tier retire
        // counters ("total_fast_l2_hits" / "fast_l2_coverage" and per-run
        // "fast_l2_hits") and the per-event cost ("ns_per_event",
        // aggregate and per-run), and re-based every coverage fraction on
        // the all-tier event total.
        let _ = writeln!(out, "  \"schema\": 5,");
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"wall_secs\": {:.6},", self.wall.as_secs_f64());
        let _ = writeln!(out, "  \"distinct_runs\": {},", self.distinct_runs);
        let _ = writeln!(out, "  \"simulations\": {},", self.simulations());
        let _ = writeln!(out, "  \"total_mem_ops\": {},", self.total_mem_ops());
        let _ = writeln!(out, "  \"mem_ops_per_sec\": {:.1},", self.mem_ops_per_sec());
        let _ = writeln!(out, "  \"total_gen_secs\": {:.6},", self.total_gen_wall().as_secs_f64());
        let _ = writeln!(out, "  \"total_sim_secs\": {:.6},", self.total_sim_wall().as_secs_f64());
        let _ = writeln!(out, "  \"total_fast_hits\": {},", self.total_fast_hits());
        let _ = writeln!(out, "  \"total_fast_l2_hits\": {},", self.total_fast_l2_hits());
        let _ = writeln!(out, "  \"total_slow_steps\": {},", self.total_slow_steps());
        let _ = writeln!(out, "  \"fast_hit_coverage\": {:.4},", self.fast_hit_coverage());
        let _ = writeln!(out, "  \"fast_l2_coverage\": {:.4},", self.fast_l2_coverage());
        let _ = writeln!(out, "  \"ns_per_event\": {:.2},", self.ns_per_event());
        let _ = writeln!(out, "  \"worker_utilization\": {:.4},", self.worker_utilization());
        let _ = writeln!(
            out,
            "  \"worker_busy_secs\": [{}],",
            self.worker_busy
                .iter()
                .map(|d| format!("{:.6}", d.as_secs_f64()))
                .collect::<Vec<_>>()
                .join(", ")
        );
        out.push_str("  \"runs\": [\n");
        for (i, t) in self.run_timings.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"workload\": {}, \"kind\": \"{}\", \"tlb\": {}, \"llc\": {}, \
                 \"page\": {}, \
                 \"wall_secs\": {:.6}, \"gen_secs\": {:.6}, \"sim_secs\": {:.6}, \
                 \"mem_ops\": {}, \"mem_ops_per_sec\": {:.1}, \
                 \"fast_hits\": {}, \"fast_l2_hits\": {}, \"slow_steps\": {}, \
                 \"ns_per_event\": {:.2}}}",
                json_string(&t.workload),
                t.kind.as_str(),
                json_string(&t.tlb_policy),
                json_string(&t.llc_policy),
                json_string(&t.page),
                t.wall.as_secs_f64(),
                t.gen_wall.as_secs_f64(),
                t.sim_wall().as_secs_f64(),
                t.mem_ops,
                t.mem_ops_per_sec(),
                t.fast_hits,
                t.fast_l2_hits,
                t.slow_steps,
                t.ns_per_event(),
            );
            out.push_str(if i + 1 < self.run_timings.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One unit of worker work.
enum Job {
    /// Simulate a plain key.
    Plain(RunKey),
    /// Record the baseline of `baseline_key` (one simulation that also
    /// yields the lookup trace), then replay the oracle for `key` (a
    /// second simulation).
    Oracle { key: RunKey, baseline_key: Box<RunKey> },
}

/// One completed memo entry produced by a worker.
struct Completion {
    key: RunKey,
    oracle: bool,
    result: Arc<RunResult>,
}

fn time_one<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

fn timing(key: &RunKey, kind: SimKind, wall: Duration, result: &RunResult) -> RunTiming {
    RunTiming {
        workload: key.0.clone(),
        tlb_policy: format!("{:?}", key.1.tlb_policy),
        llc_policy: format!("{:?}", key.1.llc_policy),
        page: key.1.system.page_policy.label().to_owned(),
        kind,
        wall,
        gen_wall: result.gen_wall,
        mem_ops: key.1.warmup_mem_ops + key.1.measure_mem_ops,
        fast_hits: result.stats.fast_hits,
        fast_l2_hits: result.stats.fast_l2_hits,
        slow_steps: result.stats.slow_steps,
    }
}

/// Executes every planned run across `threads` workers and returns an
/// immediate-mode [`ExperimentContext`] preloaded with the results, plus
/// the campaign's observability stats.
///
/// Simulations are mutually independent and each worker clones the master
/// factory (sharing the deterministic graph inputs), so the preloaded
/// results — and therefore any tables rendered from them — are
/// bit-identical for every `threads` value. With `progress` set, a
/// `# campaign <done>/<total>` line is maintained on stderr.
///
/// # Panics
///
/// Propagates panics from worker threads (a simulation panicking is a
/// bug, not an expected failure mode).
pub fn execute(
    options: ExperimentOptions,
    plan: &CampaignPlan,
    threads: usize,
    progress: bool,
) -> (ExperimentContext, CampaignStats) {
    let threads = threads.max(1);
    let factory = WorkloadFactory::new(options.scale, options.seed);

    // Oracle jobs subsume the recorded baseline's plain run; drop those
    // plain keys so no simulation happens twice.
    let oracle_jobs: Vec<Job> = plan
        .oracle
        .iter()
        .map(|key| Job::Oracle {
            key: key.clone(),
            baseline_key: Box::new(CampaignPlan::baseline_key_for(key)),
        })
        .collect();
    let recorded_baselines: std::collections::HashSet<RunKey> =
        plan.oracle.iter().map(CampaignPlan::baseline_key_for).collect();
    let mut jobs: Vec<Job> = oracle_jobs;
    jobs.extend(
        plan.plain.iter().filter(|key| !recorded_baselines.contains(*key)).cloned().map(Job::Plain),
    );

    let total = jobs.len();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let started = Instant::now();

    let mut worker_outputs: Vec<(Vec<Completion>, Vec<RunTiming>, Duration)> =
        Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let worker_factory = factory.clone();
                let jobs = &jobs;
                let next = &next;
                let done = &done;
                scope.spawn(move || {
                    let mut completions = Vec::new();
                    let mut timings = Vec::new();
                    let mut busy = Duration::ZERO;
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(index) else { break };
                        match job {
                            Job::Plain(key) => {
                                let (result, wall) =
                                    time_one(|| run_workload(&worker_factory, &key.0, &key.1));
                                busy += wall;
                                timings.push(timing(key, SimKind::Plain, wall, &result));
                                completions.push(Completion {
                                    key: key.clone(),
                                    oracle: false,
                                    result: Arc::new(result),
                                });
                            }
                            Job::Oracle { key, baseline_key } => {
                                let ((baseline, trace), wall) =
                                    time_one(|| record_baseline(&worker_factory, &key.0, &key.1));
                                busy += wall;
                                timings.push(timing(
                                    baseline_key,
                                    SimKind::Record,
                                    wall,
                                    &baseline,
                                ));
                                completions.push(Completion {
                                    key: (**baseline_key).clone(),
                                    oracle: false,
                                    result: Arc::new(baseline),
                                });
                                let (oracle, wall) = time_one(|| {
                                    run_oracle_from_trace(trace, &worker_factory, &key.0, &key.1)
                                });
                                busy += wall;
                                timings.push(timing(key, SimKind::Oracle, wall, &oracle));
                                completions.push(Completion {
                                    key: key.clone(),
                                    oracle: true,
                                    result: Arc::new(oracle),
                                });
                            }
                        }
                        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                        if progress {
                            eprint!("\r# campaign {finished}/{total} runs");
                        }
                    }
                    (completions, timings, busy)
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(output) => worker_outputs.push(output),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    if progress && total > 0 {
        eprintln!();
    }
    let wall = started.elapsed();

    let mut cache: HashMap<RunKey, Arc<RunResult>> = HashMap::new();
    let mut oracle_cache: HashMap<RunKey, Arc<RunResult>> = HashMap::new();
    let mut run_timings = Vec::new();
    let mut worker_busy = Vec::with_capacity(threads);
    for (completions, timings, busy) in worker_outputs {
        for completion in completions {
            if completion.oracle {
                oracle_cache.insert(completion.key, completion.result);
            } else {
                cache.insert(completion.key, completion.result);
            }
        }
        run_timings.extend(timings);
        worker_busy.push(busy);
    }
    // Present timings deterministically regardless of worker scheduling.
    run_timings.sort_by(|a, b| {
        (&a.workload, &a.tlb_policy, &a.llc_policy, a.kind.as_str()).cmp(&(
            &b.workload,
            &b.tlb_policy,
            &b.llc_policy,
            b.kind.as_str(),
        ))
    });

    let stats = CampaignStats {
        wall,
        threads,
        distinct_runs: cache.len() + oracle_cache.len(),
        run_timings,
        worker_busy,
    };
    let ctx = ExperimentContext::with_results(options, factory, cache, oracle_cache);
    (ctx, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments;
    use dpc_workloads::Scale;

    fn tiny_options() -> ExperimentOptions {
        ExperimentOptions {
            scale: Scale::Tiny,
            seed: 42,
            warmup_mem_ops: 500,
            measure_mem_ops: 5_000,
            page_policy: dpc_types::AllocPolicy::Base4K,
        }
    }

    #[test]
    fn planner_dedupes_across_experiments() {
        let mut planner = ExperimentContext::planner(tiny_options());
        experiments::fig1_llt_deadness(&mut planner);
        experiments::fig2_llt_eviction_classes(&mut planner);
        let plan = planner.into_plan();
        assert_eq!(plan.plain.len(), 14, "fig2 must reuse fig1's runs");
        assert_eq!(plan.oracle.len(), 0);
        assert_eq!(plan.distinct_runs(), 14);
    }

    #[test]
    fn executed_campaign_matches_immediate_mode() {
        let options = tiny_options();
        let mut planner = ExperimentContext::planner(options);
        experiments::fig1_llt_deadness(&mut planner);
        let plan = planner.into_plan();

        let (mut executed, stats) = execute(options, &plan, 2, false);
        let mut immediate = ExperimentContext::new(options);
        assert_eq!(
            experiments::fig1_llt_deadness(&mut executed).render(),
            experiments::fig1_llt_deadness(&mut immediate).render(),
        );
        assert_eq!(stats.distinct_runs, 14);
        assert_eq!(stats.simulations(), 14);
        assert_eq!(executed.runs_performed(), immediate.runs_performed());
    }

    #[test]
    fn oracle_recording_pass_doubles_as_baseline() {
        let options = tiny_options();
        let base = options.base_run();
        let plan =
            CampaignPlan { plain: vec![("bfs".into(), base)], oracle: vec![("bfs".into(), base)] };
        let (ctx, stats) = execute(options, &plan, 1, false);
        // 2 distinct runs but also exactly 2 simulations: the recording
        // pass produced the plain baseline entry.
        assert_eq!(ctx.runs_performed(), 2);
        assert_eq!(stats.simulations(), 2);
        assert_eq!(stats.distinct_runs, 2);
        let kinds: Vec<SimKind> = stats.run_timings.iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&SimKind::Record) && kinds.contains(&SimKind::Oracle));
    }

    #[test]
    fn timing_json_is_well_formed_enough() {
        let stats = CampaignStats {
            wall: Duration::from_millis(1500),
            threads: 2,
            distinct_runs: 1,
            run_timings: vec![RunTiming {
                workload: "cg.B".into(),
                tlb_policy: "DpPred".into(),
                llc_policy: "Baseline".into(),
                page: "2m".into(),
                kind: SimKind::Plain,
                wall: Duration::from_millis(750),
                gen_wall: Duration::from_millis(250),
                mem_ops: 1_000,
                fast_hits: 900,
                fast_l2_hits: 50,
                slow_steps: 300,
            }],
            worker_busy: vec![Duration::from_millis(750), Duration::from_millis(600)],
        };
        let json = stats.to_json();
        assert!(json.contains("\"schema\": 5"));
        assert!(json.contains("\"threads\": 2"));
        assert!(json.contains("\"workload\": \"cg.B\""));
        assert!(json.contains("\"kind\": \"plain\""));
        assert!(json.contains("\"page\": \"2m\""));
        assert!(json.contains("\"gen_secs\": 0.250000"));
        assert!(json.contains("\"sim_secs\": 0.500000"));
        assert!(json.contains("\"total_gen_secs\": 0.250000"));
        assert!(json.contains("\"total_sim_secs\": 0.500000"));
        assert!(json.contains("\"total_fast_hits\": 900"));
        assert!(json.contains("\"total_fast_l2_hits\": 50"));
        assert!(json.contains("\"total_slow_steps\": 300"));
        assert!(json.contains("\"fast_hit_coverage\": 0.7200"));
        assert!(json.contains("\"fast_l2_coverage\": 0.0400"));
        // 0.5 s simulating over 1250 events = 400000 ns/event.
        assert!(json.contains("\"ns_per_event\": 400000.00"));
        assert!(json.contains("\"fast_hits\": 900, \"fast_l2_hits\": 50, \"slow_steps\": 300"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!((stats.worker_utilization() - 0.45).abs() < 1e-9);
        assert!((stats.fast_hit_coverage() - 0.72).abs() < 1e-12);
        assert!((stats.fast_l2_coverage() - 0.04).abs() < 1e-12);
        assert!((stats.run_timings[0].fast_hit_coverage() - 0.72).abs() < 1e-12);
        assert!((stats.run_timings[0].fast_l2_coverage() - 0.04).abs() < 1e-12);
        assert!((stats.run_timings[0].ns_per_event() - 400_000.0).abs() < 1e-6);
        assert!(stats.summary_line().contains("1 distinct runs"));
        assert!(stats.summary_line().contains("0.2s generating + 0.5s simulating"));
        assert!(stats.summary_line().contains("72% fast-path (+4% L2 tier)"));
        assert_eq!(stats.run_timings[0].sim_wall(), Duration::from_millis(500));
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
