//! Rendering of experiment results as fixed-width text tables, in the
//! format of the paper's tables and figure data series.

use std::fmt::Write as _;

/// A rendered experiment: one row per workload, one column per
/// configuration, plus summary rows.
#[derive(Clone, Debug)]
pub struct ExpTable {
    /// Table/figure title (e.g. `"Fig. 9: normalized IPC"`).
    pub title: String,
    /// Column headers (after the workload column).
    pub columns: Vec<String>,
    /// `(workload, values)` rows in Table II order.
    pub rows: Vec<(String, Vec<f64>)>,
    /// How the summary row aggregates each column.
    pub summary: Summary,
    /// Decimal places for values.
    pub precision: usize,
}

/// Summary-row aggregation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Summary {
    /// Geometric mean (for normalized IPC, as the paper reports).
    Geomean,
    /// Arithmetic mean (for percentages).
    Mean,
    /// No summary row.
    None,
}

impl ExpTable {
    /// Creates an empty table.
    pub fn new(
        title: impl Into<String>,
        columns: Vec<String>,
        summary: Summary,
        precision: usize,
    ) -> Self {
        ExpTable { title: title.into(), columns, rows: Vec::new(), summary, precision }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the column count.
    pub fn push(&mut self, workload: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width must match columns");
        self.rows.push((workload.into(), values));
    }

    /// Per-column summary values according to [`Summary`].
    pub fn summary_values(&self) -> Option<Vec<f64>> {
        if self.rows.is_empty() {
            return None;
        }
        match self.summary {
            Summary::None => None,
            Summary::Mean => Some(
                (0..self.columns.len())
                    .map(|c| {
                        self.rows.iter().map(|(_, v)| v[c]).sum::<f64>() / self.rows.len() as f64
                    })
                    .collect(),
            ),
            Summary::Geomean => Some(
                (0..self.columns.len())
                    .map(|c| geomean(self.rows.iter().map(|(_, v)| v[c])))
                    .collect(),
            ),
        }
    }

    /// Renders the table as CSV (header row, one row per workload, and a
    /// summary row when the table has one). Values use full precision so
    /// downstream plotting is lossless.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "workload");
        for c in &self.columns {
            let _ = write!(out, ",{}", csv_escape(c));
        }
        out.push('\n');
        for (workload, values) in &self.rows {
            let _ = write!(out, "{}", csv_escape(workload));
            for v in values {
                let _ = write!(out, ",{v}");
            }
            out.push('\n');
        }
        if let Some(summary) = self.summary_values() {
            let label = match self.summary {
                Summary::Geomean => "geomean",
                Summary::Mean => "mean",
                Summary::None => unreachable!("None yields no summary"),
            };
            let _ = write!(out, "{label}");
            for v in summary {
                let _ = write!(out, ",{v}");
            }
            out.push('\n');
        }
        out
    }

    /// Renders the table as fixed-width text.
    pub fn render(&self) -> String {
        let name_width = self
            .rows
            .iter()
            .map(|(w, _)| w.len())
            .chain(["workload".len(), "geomean".len()])
            .max()
            .unwrap_or(8)
            + 2;
        let col_width = self.columns.iter().map(|c| c.len()).max().unwrap_or(6).max(8) + 2;
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let _ = write!(out, "{:<name_width$}", "workload");
        for c in &self.columns {
            let _ = write!(out, "{c:>col_width$}");
        }
        out.push('\n');
        let _ = writeln!(out, "{}", "-".repeat(name_width + col_width * self.columns.len()));
        for (workload, values) in &self.rows {
            let _ = write!(out, "{workload:<name_width$}");
            for v in values {
                let _ = write!(out, "{:>col_width$.prec$}", v, prec = self.precision);
            }
            out.push('\n');
        }
        if let Some(summary) = self.summary_values() {
            let label = match self.summary {
                Summary::Geomean => "geomean",
                Summary::Mean => "mean",
                Summary::None => unreachable!("None yields no summary"),
            };
            let _ = writeln!(out, "{}", "-".repeat(name_width + col_width * self.columns.len()));
            let _ = write!(out, "{label:<name_width$}");
            for v in summary {
                let _ = write!(out, "{:>col_width$.prec$}", v, prec = self.precision);
            }
            out.push('\n');
        }
        out
    }
}

/// Quotes a CSV field when it contains a delimiter, quote, or newline.
fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Geometric mean of an iterator of positive values (zeroes contribute as
/// tiny values to avoid -inf).
pub fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v.max(1e-12).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0].into_iter()) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 0.0);
        // Zero doesn't produce NaN/-inf.
        assert!(geomean([0.0, 1.0].into_iter()).is_finite());
    }

    #[test]
    fn render_contains_rows_and_summary() {
        let mut t = ExpTable::new("Demo", vec!["a".into(), "b".into()], Summary::Geomean, 3);
        t.push("bfs", vec![1.0, 2.0]);
        t.push("pr", vec![4.0, 8.0]);
        let s = t.render();
        assert!(s.contains("Demo"));
        assert!(s.contains("bfs"));
        assert!(s.contains("geomean"));
        assert!(s.contains("2.000"), "geomean of 1 and 4 is 2: {s}");
    }

    #[test]
    fn mean_summary() {
        let mut t = ExpTable::new("M", vec!["x".into()], Summary::Mean, 1);
        t.push("a", vec![1.0]);
        t.push("b", vec![3.0]);
        assert_eq!(t.summary_values(), Some(vec![2.0]));
    }

    #[test]
    fn none_summary_is_absent() {
        let mut t = ExpTable::new("N", vec!["x".into()], Summary::None, 1);
        t.push("a", vec![1.0]);
        assert_eq!(t.summary_values(), None);
        assert!(!t.render().contains("mean"));
    }

    #[test]
    fn csv_has_header_rows_and_summary() {
        let mut t = ExpTable::new("Demo", vec!["a,b".into(), "c".into()], Summary::Mean, 3);
        t.push("bfs", vec![1.5, 2.0]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "workload,\"a,b\",c");
        assert_eq!(lines[1], "bfs,1.5,2");
        assert_eq!(lines[2], "mean,1.5,2");
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("q\"q"), "\"q\"\"q\"");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = ExpTable::new("P", vec!["x".into()], Summary::None, 1);
        t.push("a", vec![1.0, 2.0]);
    }
}
