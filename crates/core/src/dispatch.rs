//! Static dispatch over the paper's policy matrix.
//!
//! Every simulation the campaign runs is configured by a
//! ([`TlbPolicySel`], [`LlcPolicySel`]) pair. This module maps that pair
//! to *concrete policy types* and hands them to a caller-supplied
//! [`PolicyApply`] action, so the simulator underneath
//! (`System<L, C>`) is monomorphized per pair: the event loop, the SoA
//! set hooks and the pHIST/bHIST lookup+update paths all inline into one
//! straight-line loop per configuration, with no `dyn` indirection left
//! on the hot path (DESIGN.md §11).
//!
//! The selector space collapses onto five LLT policy types
//! (`NullPagePolicy`, `DpPred` — covering the default, no-shadow and
//! custom selectors — `DuelingDpPred`, `ShipTlb`, `AipTlb`) and four LLC
//! policy types (`NullBlockPolicy`, `CbPred` — covering the default,
//! no-PFQ and custom-PFQ selectors — `ShipLlc`, `AipLlc`), so the full
//! cross product costs 5 × 4 = 20 monomorphic instantiations of the
//! action.
//!
//! Policies *outside* the matrix (tests, exotica) use the boxed
//! constructors via [`crate::fallback`] instead.

use crate::runner::{LlcPolicySel, TlbPolicySel};
use dpc_memsim::{LlcPolicy, LltPolicy, NullBlockPolicy, NullPagePolicy};
use dpc_predictors::{
    AipLlc, AipTlb, CbPred, CbPredConfig, DpPred, DpPredConfig, DuelingDpPred, ShipLlc, ShipTlb,
};
use dpc_types::SystemConfig;

/// An action generic over the two policy types, applied by
/// [`dispatch`] with the concrete policies a selector pair names.
///
/// This is the visitor side of the double dispatch: Rust has no generic
/// closures, so the action is a struct carrying the call's context whose
/// [`PolicyApply::apply`] is instantiated once per policy-type pair.
pub trait PolicyApply {
    /// The action's result type.
    type Out;

    /// Runs the action with the constructed policy pair.
    fn apply<L: LltPolicy, C: LlcPolicy>(self, llt: L, llc: C) -> Self::Out;
}

/// Builds the concrete policies selected by `(tlb, llc)` for the machine
/// in `system` and applies `action` to them.
///
/// Construction mirrors the boxed builders in [`crate::fallback`]
/// exactly (same constructors, same parameters), so a dispatched system
/// and a fallback system given the same selectors are behaviorally
/// identical — pinned by the `dispatch_equivalence` integration test.
pub fn dispatch<A: PolicyApply>(
    tlb: TlbPolicySel,
    llc: LlcPolicySel,
    system: &SystemConfig,
    action: A,
) -> A::Out {
    match tlb {
        TlbPolicySel::Baseline => with_llc(NullPagePolicy, llc, system, action),
        TlbPolicySel::DpPred => {
            with_llc(DpPred::new(DpPredConfig::for_tlb(&system.l2_tlb)), llc, system, action)
        }
        TlbPolicySel::DpPredNoShadow => with_llc(
            DpPred::new(DpPredConfig {
                shadow_entries: 0,
                ..DpPredConfig::for_tlb(&system.l2_tlb)
            }),
            llc,
            system,
            action,
        ),
        TlbPolicySel::DpPredCustom(config) => with_llc(DpPred::new(config), llc, system, action),
        TlbPolicySel::DuelingDpPred => {
            with_llc(DuelingDpPred::new(DpPredConfig::for_tlb(&system.l2_tlb)), llc, system, action)
        }
        TlbPolicySel::ShipTlb => with_llc(ShipTlb::for_tlb(&system.l2_tlb), llc, system, action),
        TlbPolicySel::AipTlb => with_llc(AipTlb::paper_default(), llc, system, action),
    }
}

/// cbPred's base configuration for `system`: the paper defaults with the
/// PFQ matching grain set to the page policy's prediction unit. Must stay
/// identical to its twin in [`crate::fallback`].
fn cbpred_config(system: &SystemConfig) -> CbPredConfig {
    CbPredConfig {
        pfn_unit_shift: system.page_policy.prediction_unit_shift(),
        ..CbPredConfig::paper_default(&system.llc)
    }
}

/// Inner level of the double match: the LLT policy is already concrete;
/// pick the LLC policy type and run the action.
fn with_llc<A: PolicyApply, L: LltPolicy>(
    llt: L,
    llc: LlcPolicySel,
    system: &SystemConfig,
    action: A,
) -> A::Out {
    match llc {
        LlcPolicySel::Baseline => action.apply(llt, NullBlockPolicy),
        LlcPolicySel::CbPred => action.apply(llt, CbPred::new(cbpred_config(system))),
        LlcPolicySel::CbPredNoPfq => {
            action.apply(llt, CbPred::new(CbPredConfig { use_pfq: false, ..cbpred_config(system) }))
        }
        LlcPolicySel::CbPredPfq(entries) => action.apply(
            llt,
            CbPred::new(CbPredConfig { pfq_entries: entries, ..cbpred_config(system) }),
        ),
        LlcPolicySel::ShipLlc => action.apply(llt, ShipLlc::for_cache(&system.llc)),
        LlcPolicySel::AipLlc => action.apply(llt, AipLlc::paper_default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reports the `policy_name`s the dispatcher actually constructed.
    struct Names;
    impl PolicyApply for Names {
        type Out = (&'static str, &'static str);
        fn apply<L: LltPolicy, C: LlcPolicy>(self, llt: L, llc: C) -> Self::Out {
            (llt.policy_name(), llc.policy_name())
        }
    }

    #[test]
    fn every_selector_maps_to_its_policy() {
        let system = SystemConfig::paper_baseline();
        let cases: &[(TlbPolicySel, LlcPolicySel, &str, &str)] = &[
            (TlbPolicySel::Baseline, LlcPolicySel::Baseline, "baseline", "baseline"),
            (TlbPolicySel::DpPred, LlcPolicySel::CbPred, "dpPred", "cbPred"),
            (TlbPolicySel::DpPredNoShadow, LlcPolicySel::CbPredNoPfq, "dpPred", "cbPred"),
            (
                TlbPolicySel::DpPredCustom(DpPredConfig::for_tlb(&system.l2_tlb)),
                LlcPolicySel::CbPredPfq(32),
                "dpPred",
                "cbPred",
            ),
            (TlbPolicySel::DuelingDpPred, LlcPolicySel::ShipLlc, "dueling-dpPred", "SHiP-LLC"),
            (TlbPolicySel::ShipTlb, LlcPolicySel::AipLlc, "SHiP-TLB", "AIP-LLC"),
            (TlbPolicySel::AipTlb, LlcPolicySel::Baseline, "AIP-TLB", "baseline"),
        ];
        for &(tlb, llc, want_llt, want_llc) in cases {
            let (llt, llc_name) = dispatch(tlb, llc, &system, Names);
            assert_eq!((llt, llc_name), (want_llt, want_llc), "{tlb:?}/{llc:?}");
        }
    }
}
