//! Boxed (`dyn`-dispatch) policy construction — the runtime fallback of
//! [`crate::dispatch`].
//!
//! The campaign path runs every configuration through the static
//! dispatcher, which monomorphizes the simulator per policy pair. This
//! module keeps the old boxed builders alive for callers that genuinely
//! need runtime policy values (external tools composing policies
//! dynamically, and the `dispatch_equivalence` test that pins the two
//! paths to identical statistics). It is the designated fallback module
//! of the `dispatch::boxed-policy` dpc-lint rule: the only place in
//! `crates/core` allowed to name the boxed policy types.

use crate::runner::{run_system, LlcPolicySel, RunConfig, RunResult, TlbPolicySel};
use dpc_memsim::{DynLlcPolicy, DynLltPolicy, NullBlockPolicy, NullPagePolicy, System};
use dpc_predictors::{
    AipLlc, AipTlb, CbPred, CbPredConfig, DpPred, DpPredConfig, DuelingDpPred, ShipLlc, ShipTlb,
};
use dpc_types::SystemConfig;
use dpc_workloads::WorkloadFactory;

/// Builds the boxed LLT policy named by `sel`, constructed exactly like
/// the typed policies of [`crate::dispatch::dispatch`].
pub fn build_tlb_policy(sel: TlbPolicySel, system: &SystemConfig) -> DynLltPolicy {
    match sel {
        TlbPolicySel::Baseline => Box::new(NullPagePolicy),
        TlbPolicySel::DpPred => Box::new(DpPred::new(DpPredConfig::for_tlb(&system.l2_tlb))),
        TlbPolicySel::DpPredNoShadow => Box::new(DpPred::new(DpPredConfig {
            shadow_entries: 0,
            ..DpPredConfig::for_tlb(&system.l2_tlb)
        })),
        TlbPolicySel::DpPredCustom(config) => Box::new(DpPred::new(config)),
        TlbPolicySel::DuelingDpPred => {
            Box::new(DuelingDpPred::new(DpPredConfig::for_tlb(&system.l2_tlb)))
        }
        TlbPolicySel::ShipTlb => Box::new(ShipTlb::for_tlb(&system.l2_tlb)),
        TlbPolicySel::AipTlb => Box::new(AipTlb::paper_default()),
    }
}

/// cbPred's base configuration for `system`: the paper defaults with the
/// PFQ matching grain set to the page policy's prediction unit. Must stay
/// identical to its twin in [`crate::dispatch`].
fn cbpred_config(system: &SystemConfig) -> CbPredConfig {
    CbPredConfig {
        pfn_unit_shift: system.page_policy.prediction_unit_shift(),
        ..CbPredConfig::paper_default(&system.llc)
    }
}

/// Builds the boxed LLC policy named by `sel`, constructed exactly like
/// the typed policies of [`crate::dispatch::dispatch`].
pub fn build_llc_policy(sel: LlcPolicySel, system: &SystemConfig) -> DynLlcPolicy {
    match sel {
        LlcPolicySel::Baseline => Box::new(NullBlockPolicy),
        LlcPolicySel::CbPred => Box::new(CbPred::new(cbpred_config(system))),
        LlcPolicySel::CbPredNoPfq => {
            Box::new(CbPred::new(CbPredConfig { use_pfq: false, ..cbpred_config(system) }))
        }
        LlcPolicySel::CbPredPfq(entries) => {
            Box::new(CbPred::new(CbPredConfig { pfq_entries: entries, ..cbpred_config(system) }))
        }
        LlcPolicySel::ShipLlc => Box::new(ShipLlc::for_cache(&system.llc)),
        LlcPolicySel::AipLlc => Box::new(AipLlc::paper_default()),
    }
}

/// Runs `workload` under `config` through the boxed `dyn`-dispatch
/// fallback — behaviorally identical to [`crate::run_workload`], just
/// slower. Exists so the equivalence suite can pin monomorphized and
/// fallback systems to identical statistics, and as the escape hatch for
/// policies outside the paper matrix.
///
/// # Panics
///
/// Panics if the system configuration is invalid or the workload name is
/// unknown — experiment definitions control both.
pub fn run_workload_dyn(
    factory: &WorkloadFactory,
    workload: &str,
    config: &RunConfig,
) -> RunResult {
    let system = System::with_policies(
        config.system,
        build_tlb_policy(config.tlb_policy, &config.system),
        build_llc_policy(config.llc_policy, &config.system),
    )
    .expect("experiment configurations are valid");
    run_system(system, factory, workload, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_policy_selectors_construct() {
        let system = SystemConfig::paper_baseline();
        for sel in [
            TlbPolicySel::Baseline,
            TlbPolicySel::DpPred,
            TlbPolicySel::DpPredNoShadow,
            TlbPolicySel::DuelingDpPred,
            TlbPolicySel::ShipTlb,
            TlbPolicySel::AipTlb,
        ] {
            let _ = build_tlb_policy(sel, &system);
        }
        for sel in [
            LlcPolicySel::Baseline,
            LlcPolicySel::CbPred,
            LlcPolicySel::CbPredNoPfq,
            LlcPolicySel::CbPredPfq(64),
            LlcPolicySel::ShipLlc,
            LlcPolicySel::AipLlc,
        ] {
            let _ = build_llc_policy(sel, &system);
        }
    }
}
