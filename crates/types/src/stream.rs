//! Compact struct-of-arrays storage for [`Event`] streams.
//!
//! The simulator is trace-driven: a workload's event stream is
//! policy-independent, so one captured stream can feed every simulation
//! of that workload. [`EventStream`] is the canonical encoding of such a
//! stream, shared by the in-memory trace store (`dpc-workloads`) and the
//! on-disk trace format (`DPCTRC2`; see `dpc_workloads::trace`).
//!
//! # Encoding
//!
//! Events are split by payload into parallel arrays (struct-of-arrays):
//! one `tag` byte per event, one `(pc, vaddr)` pair per *memory* event,
//! and one `ops` word per *compute* event. A memory access therefore
//! costs 17 bytes and a compute batch 5, with no per-record padding or
//! enum discriminant overhead, and replay touches the arrays strictly
//! sequentially — the access pattern prefetchers like best.
//!
//! | tag | payload arrays | meaning |
//! |-----|----------------|---------|
//! | 0   | `pc, vaddr`    | independent load |
//! | 1   | `pc, vaddr`    | independent store |
//! | 2   | `pc, vaddr`    | dependent load |
//! | 3   | `ops`          | compute batch |
//! | 4   | `pc, vaddr`    | dependent store |
//!
//! Tags 0–3 match the legacy `DPCTRC1` record tags; tag 4 is new — the
//! v1 format collapsed dependent stores into plain stores, which made
//! replay lossy. The struct-of-arrays arrangement is lossless.
//!
//! # Example
//!
//! ```
//! use dpc_types::stream::EventStream;
//! use dpc_types::{Event, Pc, VirtAddr, Workload};
//!
//! let mut stream = EventStream::new();
//! stream.push(Event::load(Pc::new(0x400), VirtAddr::new(0x1000)));
//! stream.push(Event::Compute { ops: 3 });
//! assert_eq!(stream.len(), 2);
//! let events: Vec<Event> = stream.iter().collect();
//! assert_eq!(events[1], Event::Compute { ops: 3 });
//! ```

use crate::workload::{Event, Workload};
use crate::{AccessKind, Pc, VirtAddr};
use std::fmt;
use std::io::{self, Read, Write};

const TAG_LOAD: u8 = 0;
const TAG_STORE: u8 = 1;
const TAG_LOAD_DEP: u8 = 2;
const TAG_COMPUTE: u8 = 3;
const TAG_STORE_DEP: u8 = 4;

/// Largest valid tag value.
const TAG_MAX: u8 = TAG_STORE_DEP;

/// A recorded [`Event`] sequence in struct-of-arrays form.
///
/// Construct with [`EventStream::push`] or one of the capture helpers,
/// read back with [`EventStream::iter`] or a [`StreamCursor`], and
/// serialize with [`EventStream::write_to`] / [`EventStream::read_from`].
///
/// Internal invariant (upheld by every constructor, including the
/// validating deserializer): the number of memory tags equals
/// `pcs.len() == vaddrs.len()`, and the number of compute tags equals
/// `ops.len()`.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct EventStream {
    /// One tag per event, in stream order.
    tags: Vec<u8>,
    /// Program counter of each memory event, in stream order.
    pcs: Vec<u64>,
    /// Virtual address of each memory event, in stream order.
    vaddrs: Vec<u64>,
    /// Batch size of each compute event, in stream order.
    ops: Vec<u32>,
}

impl EventStream {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event.
    pub fn push(&mut self, event: Event) {
        match event {
            Event::Mem { pc, vaddr, kind, dependent } => {
                let tag = match (kind, dependent) {
                    (AccessKind::Read, false) => TAG_LOAD,
                    (AccessKind::Read, true) => TAG_LOAD_DEP,
                    (AccessKind::Write, false) => TAG_STORE,
                    (AccessKind::Write, true) => TAG_STORE_DEP,
                };
                self.tags.push(tag);
                self.pcs.push(pc.raw());
                self.vaddrs.push(vaddr.raw());
            }
            Event::Compute { ops } => {
                self.tags.push(TAG_COMPUTE);
                self.ops.push(ops);
            }
        }
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the stream holds no events.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Number of memory events.
    pub fn mem_events(&self) -> usize {
        self.pcs.len()
    }

    /// Number of compute events.
    pub fn compute_events(&self) -> usize {
        self.ops.len()
    }

    /// Approximate heap footprint of the encoded stream in bytes.
    pub fn encoded_bytes(&self) -> usize {
        self.tags.len() + 16 * self.pcs.len() + 4 * self.ops.len()
    }

    /// Decodes the event at `cursor` and advances the cursor, or returns
    /// `None` at end of stream.
    pub fn next_from(&self, cursor: &mut StreamCursor) -> Option<Event> {
        let tag = *self.tags.get(cursor.index)?;
        let event = if tag == TAG_COMPUTE {
            let ops = *self.ops.get(cursor.compute)?;
            cursor.compute += 1;
            Event::Compute { ops }
        } else {
            let pc = Pc::new(*self.pcs.get(cursor.mem)?);
            let vaddr = VirtAddr::new(*self.vaddrs.get(cursor.mem)?);
            cursor.mem += 1;
            let (kind, dependent) = match tag {
                TAG_LOAD => (AccessKind::Read, false),
                TAG_LOAD_DEP => (AccessKind::Read, true),
                TAG_STORE => (AccessKind::Write, false),
                // The constructors only ever store tags 0..=4; anything
                // else would have been rejected by `read_from`.
                _ => (AccessKind::Write, true),
            };
            Event::Mem { pc, vaddr, kind, dependent }
        };
        cursor.index += 1;
        Some(event)
    }

    /// Decodes up to `max_events` events at `cursor` into `batch`
    /// (clearing it first), stopping early when the stream ends or when
    /// the next event would exceed a budget of `max_mem` *memory* events.
    /// Returns the number of memory events decoded; the cursor is left on
    /// the first event not decoded.
    ///
    /// The budget gate is checked *before* each event, exactly like a
    /// simulator loop of the form `while mem_ops < budget { next() }`:
    /// compute events between in-budget memory events are decoded, but
    /// nothing after the budget-th memory event is — so chunked replay of
    /// a warm-up/measure split is bit-identical to event-at-a-time
    /// replay.
    pub fn decode_chunk(
        &self,
        cursor: &mut StreamCursor,
        batch: &mut EventBatch,
        max_events: usize,
        max_mem: u64,
    ) -> u64 {
        if crate::simd::enabled() {
            self.decode_chunk_prescan(cursor, batch, max_events, max_mem)
        } else {
            self.decode_chunk_serial(cursor, batch, max_events, max_mem)
        }
    }

    /// [`decode_chunk`](Self::decode_chunk) with a vectorized tag
    /// prescan: [`crate::simd::classify_tags`] finds the chunk boundary
    /// (window end or memory budget) column-wise, then the payload
    /// columns are decoded through pre-sliced windows with no per-event
    /// end-of-array checks. Selected when [`crate::simd::enabled`];
    /// bit-identical to the serial decoder (asserted by the differential
    /// tests below and by the pinned golden output).
    fn decode_chunk_prescan(
        &self,
        cursor: &mut StreamCursor,
        batch: &mut EventBatch,
        max_events: usize,
        max_mem: u64,
    ) -> u64 {
        batch.events.clear();
        let Some(tags) = self.tags.get(cursor.index..) else { return 0 };
        let window = tags.len().min(max_events);
        let (take, mem_take) = crate::simd::classify_tags(&tags[..window], TAG_COMPUTE, max_mem);
        debug_assert!(take <= window);
        let compute_take = take - mem_take as usize;
        // The struct invariant (mem tags ⇔ pcs/vaddrs entries, compute
        // tags ⇔ ops entries) guarantees these windows exist; `get`
        // keeps the decoder total and falls back to the per-event
        // checked loop rather than panicking if it were ever violated.
        let (Some(pcs), Some(vaddrs), Some(ops)) = (
            self.pcs.get(cursor.mem..cursor.mem + mem_take as usize),
            self.vaddrs.get(cursor.mem..cursor.mem + mem_take as usize),
            self.ops.get(cursor.compute..cursor.compute + compute_take),
        ) else {
            return self.decode_chunk_serial(cursor, batch, max_events, max_mem);
        };
        let mut mem = 0usize;
        let mut compute = 0usize;
        for &tag in &tags[..take] {
            let event = if tag == TAG_COMPUTE {
                debug_assert!(compute < ops.len());
                let ops = ops[compute];
                compute += 1;
                Event::Compute { ops }
            } else {
                debug_assert!(mem < pcs.len());
                let pc = Pc::new(pcs[mem]);
                let vaddr = VirtAddr::new(vaddrs[mem]);
                mem += 1;
                let (kind, dependent) = match tag {
                    TAG_LOAD => (AccessKind::Read, false),
                    TAG_LOAD_DEP => (AccessKind::Read, true),
                    TAG_STORE => (AccessKind::Write, false),
                    // The constructors only ever store tags 0..=4; anything
                    // else would have been rejected by `read_from`.
                    _ => (AccessKind::Write, true),
                };
                Event::Mem { pc, vaddr, kind, dependent }
            };
            batch.events.push(event);
        }
        cursor.index += take;
        cursor.mem += mem;
        cursor.compute += compute;
        mem_take
    }

    /// The event-at-a-time reference decoder behind
    /// [`decode_chunk`](Self::decode_chunk) — the `DPC_SIMD=off` path,
    /// and the semantics [`Self::decode_chunk_prescan`] must match.
    fn decode_chunk_serial(
        &self,
        cursor: &mut StreamCursor,
        batch: &mut EventBatch,
        max_events: usize,
        max_mem: u64,
    ) -> u64 {
        batch.events.clear();
        let mut mem_taken = 0u64;
        while batch.events.len() < max_events && mem_taken < max_mem {
            let Some(&tag) = self.tags.get(cursor.index) else { break };
            let event = if tag == TAG_COMPUTE {
                let Some(&ops) = self.ops.get(cursor.compute) else { break };
                cursor.compute += 1;
                Event::Compute { ops }
            } else {
                let Some(&pc) = self.pcs.get(cursor.mem) else { break };
                let Some(&vaddr) = self.vaddrs.get(cursor.mem) else { break };
                cursor.mem += 1;
                mem_taken += 1;
                let (kind, dependent) = match tag {
                    TAG_LOAD => (AccessKind::Read, false),
                    TAG_LOAD_DEP => (AccessKind::Read, true),
                    TAG_STORE => (AccessKind::Write, false),
                    // The constructors only ever store tags 0..=4; anything
                    // else would have been rejected by `read_from`.
                    _ => (AccessKind::Write, true),
                };
                Event::Mem { pc: Pc::new(pc), vaddr: VirtAddr::new(vaddr), kind, dependent }
            };
            batch.events.push(event);
            cursor.index += 1;
        }
        mem_taken
    }

    /// Iterates the stream from the beginning (borrowing, zero-copy).
    pub fn iter(&self) -> StreamIter<'_> {
        StreamIter { stream: self, cursor: StreamCursor::default() }
    }

    /// Captures up to `max_events` events of `workload`.
    pub fn capture(workload: &mut dyn Workload, max_events: u64) -> Self {
        let mut stream = Self::new();
        while (stream.len() as u64) < max_events {
            match workload.next_event() {
                Some(event) => stream.push(event),
                None => break,
            }
        }
        stream
    }

    /// Captures events of `workload` until `mem_ops` *memory* events have
    /// been recorded (compute events in between are kept), or the
    /// workload ends. The capture stops directly after the final memory
    /// event — exactly the prefix a simulator bounded by `mem_ops` memory
    /// operations consumes, so replaying the captured stream is
    /// bit-identical to generating it live.
    pub fn capture_mem_ops(workload: &mut dyn Workload, mem_ops: u64) -> Self {
        let mut stream = Self::new();
        let mut mem = 0u64;
        while mem < mem_ops {
            match workload.next_event() {
                Some(event) => {
                    if event.is_mem() {
                        mem += 1;
                    }
                    stream.push(event);
                }
                None => break,
            }
        }
        stream
    }

    /// Serializes the stream (counts followed by the raw arrays, all
    /// little-endian). This is the payload of the `DPCTRC2` trace format;
    /// framing (magic bytes) is the caller's concern.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `sink`.
    pub fn write_to<W: Write>(&self, sink: &mut W) -> io::Result<()> {
        sink.write_all(&(self.tags.len() as u64).to_le_bytes())?;
        sink.write_all(&(self.pcs.len() as u64).to_le_bytes())?;
        sink.write_all(&(self.ops.len() as u64).to_le_bytes())?;
        sink.write_all(&self.tags)?;
        for pc in &self.pcs {
            sink.write_all(&pc.to_le_bytes())?;
        }
        for vaddr in &self.vaddrs {
            sink.write_all(&vaddr.to_le_bytes())?;
        }
        for ops in &self.ops {
            sink.write_all(&ops.to_le_bytes())?;
        }
        Ok(())
    }

    /// Deserializes a stream written by [`EventStream::write_to`],
    /// validating every structural invariant.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::UnexpectedEof`] for truncated input and
    /// [`io::ErrorKind::InvalidData`] for inconsistent counts or unknown
    /// tags. Array storage is grown incrementally as bytes actually
    /// arrive, so a corrupt header claiming absurd counts fails with an
    /// error instead of attempting a giant allocation.
    pub fn read_from<R: Read>(source: &mut R) -> io::Result<Self> {
        let n_events = read_u64(source)?;
        let n_mem = read_u64(source)?;
        let n_compute = read_u64(source)?;
        if n_mem.checked_add(n_compute) != Some(n_events) {
            return Err(invalid("event counts are inconsistent"));
        }
        let tags = read_bytes(source, n_events)?;
        let mut seen_mem = 0u64;
        let mut seen_compute = 0u64;
        for &tag in &tags {
            match tag {
                TAG_COMPUTE => seen_compute += 1,
                t if t <= TAG_MAX => seen_mem += 1,
                t => return Err(invalid(&format!("unknown event tag {t}"))),
            }
        }
        if seen_mem != n_mem || seen_compute != n_compute {
            return Err(invalid("tag array does not match the declared counts"));
        }
        let pcs = read_u64_array(source, n_mem)?;
        let vaddrs = read_u64_array(source, n_mem)?;
        let ops = read_u32_array(source, n_compute)?;
        Ok(EventStream { tags, pcs, vaddrs, ops })
    }
}

impl fmt::Debug for EventStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventStream")
            .field("events", &self.len())
            .field("mem_events", &self.mem_events())
            .field("compute_events", &self.compute_events())
            .field("encoded_bytes", &self.encoded_bytes())
            .finish()
    }
}

impl FromIterator<Event> for EventStream {
    fn from_iter<I: IntoIterator<Item = Event>>(events: I) -> Self {
        let mut stream = Self::new();
        for event in events {
            stream.push(event);
        }
        stream
    }
}

impl<'a> IntoIterator for &'a EventStream {
    type Item = Event;
    type IntoIter = StreamIter<'a>;

    fn into_iter(self) -> StreamIter<'a> {
        self.iter()
    }
}

/// Replay position inside an [`EventStream`]: the next event index plus
/// the split payload-array positions. Plain data — clone it to fork a
/// replay, default it to start from the beginning.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamCursor {
    index: usize,
    mem: usize,
    compute: usize,
}

impl StreamCursor {
    /// Number of events already replayed.
    pub fn position(&self) -> usize {
        self.index
    }

    /// Number of memory events already replayed.
    pub fn mem_position(&self) -> usize {
        self.mem
    }
}

/// Reusable scratch buffer for [`EventStream::decode_chunk`]: a decoded
/// slice of the stream that a replay loop consumes in one pass.
///
/// The buffer is cleared and refilled by each `decode_chunk` call but
/// keeps its capacity, so a replay that decodes in fixed-size chunks
/// performs exactly one allocation over its whole lifetime.
#[derive(Clone, Debug, Default)]
pub struct EventBatch {
    events: Vec<Event>,
}

impl EventBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty batch with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventBatch { events: Vec::with_capacity(capacity) }
    }

    /// The decoded events, in stream order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of decoded events currently in the batch.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the batch holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Borrowing iterator over an [`EventStream`], created by
/// [`EventStream::iter`].
#[derive(Clone, Debug)]
pub struct StreamIter<'a> {
    stream: &'a EventStream,
    cursor: StreamCursor,
}

impl Iterator for StreamIter<'_> {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        self.stream.next_from(&mut self.cursor)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.stream.len() - self.cursor.index;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for StreamIter<'_> {}

fn invalid(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("dpc event stream: {message}"))
}

fn read_u64<R: Read>(source: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    source.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Reads exactly `len` bytes, growing the buffer chunk by chunk so a
/// corrupt length field cannot trigger a huge up-front allocation.
fn read_bytes<R: Read>(source: &mut R, len: u64) -> io::Result<Vec<u8>> {
    const CHUNK: u64 = 1 << 20;
    usize::try_from(len).map_err(|_| invalid("length field overflows this platform"))?;
    let mut out = Vec::new();
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(CHUNK) as usize;
        let start = out.len();
        out.resize(start + take, 0);
        source.read_exact(&mut out[start..])?;
        remaining -= take as u64;
    }
    Ok(out)
}

fn read_u64_array<R: Read>(source: &mut R, count: u64) -> io::Result<Vec<u64>> {
    let bytes = count.checked_mul(8).ok_or_else(|| invalid("count field overflows"))?;
    let raw = read_bytes(source, bytes)?;
    Ok(raw
        .chunks_exact(8)
        .map(|chunk| u64::from_le_bytes(chunk.try_into().unwrap_or([0; 8])))
        .collect())
}

fn read_u32_array<R: Read>(source: &mut R, count: u64) -> io::Result<Vec<u32>> {
    let bytes = count.checked_mul(4).ok_or_else(|| invalid("count field overflows"))?;
    let raw = read_bytes(source, bytes)?;
    Ok(raw
        .chunks_exact(4)
        .map(|chunk| u32::from_le_bytes(chunk.try_into().unwrap_or([0; 4])))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::load(Pc::new(0x400), VirtAddr::new(0x1000)),
            Event::Compute { ops: 7 },
            Event::store(Pc::new(0x404), VirtAddr::new(0x2000)),
            Event::load_dependent(Pc::new(0x408), VirtAddr::new(0x3000)),
            Event::Mem {
                pc: Pc::new(0x40c),
                vaddr: VirtAddr::new(0x4000),
                kind: AccessKind::Write,
                dependent: true,
            },
            Event::Compute { ops: 1 },
        ]
    }

    #[test]
    fn push_iter_roundtrip_preserves_every_variant() {
        let events = sample_events();
        let stream: EventStream = events.iter().copied().collect();
        assert_eq!(stream.len(), events.len());
        assert_eq!(stream.mem_events(), 4);
        assert_eq!(stream.compute_events(), 2);
        let replayed: Vec<Event> = stream.iter().collect();
        assert_eq!(replayed, events, "dependent stores must survive the roundtrip");
    }

    #[test]
    fn serialization_roundtrip() {
        let stream: EventStream = sample_events().into_iter().collect();
        let mut buf = Vec::new();
        stream.write_to(&mut buf).unwrap();
        let back = EventStream::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, stream);
    }

    #[test]
    fn truncated_payload_is_unexpected_eof() {
        let stream: EventStream = sample_events().into_iter().collect();
        let mut buf = Vec::new();
        stream.write_to(&mut buf).unwrap();
        for cut in [1, 10, buf.len() - 1] {
            let err = EventStream::read_from(&mut &buf[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn inconsistent_counts_rejected() {
        let mut buf = Vec::new();
        // 2 events claimed, but 2 mem + 2 compute = 4.
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&2u64.to_le_bytes());
        let err = EventStream::read_from(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.push(99); // not a valid tag
        let err = EventStream::read_from(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("99"), "{err}");
    }

    #[test]
    fn tag_count_mismatch_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&[TAG_LOAD, TAG_LOAD]); // two mem tags, zero compute
        let err = EventStream::read_from(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn absurd_header_fails_without_huge_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&(u64::MAX - 1).to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        // The tags array is "u64::MAX bytes long"; the chunked reader must
        // hit EOF after the header instead of reserving that much memory.
        let err = EventStream::read_from(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn capture_mem_ops_stops_after_final_mem_event() {
        struct Alternating(u64);
        impl Workload for Alternating {
            fn name(&self) -> &str {
                "alternating"
            }
            fn next_event(&mut self) -> Option<Event> {
                self.0 += 1;
                Some(if self.0.is_multiple_of(2) {
                    Event::Compute { ops: 1 }
                } else {
                    Event::load(Pc::new(0x400), VirtAddr::new(self.0 * 4096))
                })
            }
        }
        let stream = EventStream::capture_mem_ops(&mut Alternating(0), 3);
        assert_eq!(stream.mem_events(), 3);
        // mem, compute, mem, compute, mem — stops right after mem #3.
        assert_eq!(stream.len(), 5);
        assert!(stream.iter().last().is_some_and(|e| e.is_mem()));
    }

    #[test]
    fn cursor_positions_track_replay() {
        let stream: EventStream = sample_events().into_iter().collect();
        let mut cursor = StreamCursor::default();
        assert_eq!(cursor.position(), 0);
        stream.next_from(&mut cursor);
        stream.next_from(&mut cursor);
        assert_eq!(cursor.position(), 2);
        assert_eq!(cursor.mem_position(), 1);
        while stream.next_from(&mut cursor).is_some() {}
        assert_eq!(cursor.position(), stream.len());
        assert_eq!(stream.next_from(&mut cursor), None, "exhausted cursor stays exhausted");
    }

    #[test]
    fn decode_chunk_matches_event_at_a_time_replay() {
        let stream: EventStream = sample_events().into_iter().collect();
        // Chunked decode at every chunk size must reproduce the exact
        // event sequence of the one-at-a-time cursor.
        let expected: Vec<Event> = stream.iter().collect();
        for chunk in 1..=stream.len() + 1 {
            let mut cursor = StreamCursor::default();
            let mut batch = EventBatch::with_capacity(chunk);
            let mut decoded = Vec::new();
            let mut mem_total = 0;
            loop {
                mem_total += stream.decode_chunk(&mut cursor, &mut batch, chunk, u64::MAX);
                if batch.is_empty() {
                    break;
                }
                decoded.extend_from_slice(batch.events());
            }
            assert_eq!(decoded, expected, "chunk size {chunk}");
            assert_eq!(mem_total, stream.mem_events() as u64);
            assert_eq!(cursor.position(), stream.len());
        }
    }

    #[test]
    fn decode_chunk_respects_mem_budget_like_a_run_loop() {
        // mem, compute, mem, compute, mem, compute (ends on a compute).
        let stream: EventStream = vec![
            Event::load(Pc::new(1), VirtAddr::new(0x1000)),
            Event::Compute { ops: 1 },
            Event::load(Pc::new(2), VirtAddr::new(0x2000)),
            Event::Compute { ops: 2 },
            Event::load(Pc::new(3), VirtAddr::new(0x3000)),
            Event::Compute { ops: 3 },
        ]
        .into_iter()
        .collect();
        let mut cursor = StreamCursor::default();
        let mut batch = EventBatch::new();
        // Budget of 2 memory events: the trailing compute between mem #2
        // and mem #3 must NOT be decoded (the budget gate runs before
        // every event, exactly like `while mem_ops < budget`).
        let mem = stream.decode_chunk(&mut cursor, &mut batch, 256, 2);
        assert_eq!(mem, 2);
        assert_eq!(batch.len(), 3, "mem, compute, mem — stops before the next compute");
        assert_eq!(cursor.mem_position(), 2);
        // Resuming with the remaining budget picks up the compute first.
        let mem = stream.decode_chunk(&mut cursor, &mut batch, 256, 1);
        assert_eq!(mem, 1);
        assert_eq!(batch.events()[0], Event::Compute { ops: 2 });
        assert_eq!(batch.len(), 2, "compute then mem #3; trailing compute left");
        // Zero budget decodes nothing at all.
        let mem = stream.decode_chunk(&mut cursor, &mut batch, 256, 0);
        assert_eq!((mem, batch.len()), (0, 0));
    }

    /// Deterministic LCG-driven stream for the prescan/serial
    /// differential sweep: mixes all five tags with uneven frequencies.
    fn random_stream(events: usize, seed: u64) -> EventStream {
        let mut state = seed | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            state >> 33
        };
        (0..events)
            .map(|_| match next() % 8 {
                0..=2 => Event::load(Pc::new(next()), VirtAddr::new(next())),
                3 => Event::store(Pc::new(next()), VirtAddr::new(next())),
                4 => Event::load_dependent(Pc::new(next()), VirtAddr::new(next())),
                5 => Event::Mem {
                    pc: Pc::new(next()),
                    vaddr: VirtAddr::new(next()),
                    kind: AccessKind::Write,
                    dependent: true,
                },
                _ => Event::Compute { ops: next() as u32 },
            })
            .collect()
    }

    /// Runs both decoders over the same stream with the same chunk size
    /// and per-call budgets, asserting every observable (batch contents,
    /// returned mem count, cursor) matches call for call.
    fn assert_decoders_agree(stream: &EventStream, chunk: usize, budgets: &[u64]) {
        let mut serial_cursor = StreamCursor::default();
        let mut prescan_cursor = StreamCursor::default();
        let mut serial_batch = EventBatch::new();
        let mut prescan_batch = EventBatch::new();
        let mut budget_iter = budgets.iter().cycle();
        loop {
            let budget = *budget_iter.next().expect("cycle is infinite");
            let want =
                stream.decode_chunk_serial(&mut serial_cursor, &mut serial_batch, chunk, budget);
            let got =
                stream.decode_chunk_prescan(&mut prescan_cursor, &mut prescan_batch, chunk, budget);
            assert_eq!(got, want, "mem count at {serial_cursor:?} (chunk {chunk})");
            assert_eq!(
                prescan_batch.events(),
                serial_batch.events(),
                "batch at {serial_cursor:?} (chunk {chunk})"
            );
            assert_eq!(prescan_cursor, serial_cursor, "cursor (chunk {chunk})");
            if serial_batch.is_empty() && budget > 0 {
                break;
            }
        }
        assert_eq!(serial_cursor.position(), stream.len());
    }

    #[test]
    fn prescan_decoder_matches_serial_exhaustively_on_sample() {
        let stream: EventStream = sample_events().into_iter().collect();
        for chunk in 1..=stream.len() + 1 {
            for budget in 1..=5u64 {
                assert_decoders_agree(&stream, chunk, &[budget]);
            }
        }
    }

    #[test]
    fn prescan_decoder_matches_serial_on_random_streams() {
        for (seed, events) in [(1u64, 31), (2, 32), (3, 33), (4, 257), (5, 1000)] {
            let stream = random_stream(events, seed);
            for chunk in [1, 7, 32, 256, events + 1] {
                assert_decoders_agree(&stream, chunk, &[u64::MAX]);
                assert_decoders_agree(&stream, chunk, &[1, 3, 17, 2]);
            }
        }
    }

    #[test]
    fn prescan_decoder_handles_degenerate_inputs() {
        let empty = EventStream::new();
        let mut cursor = StreamCursor::default();
        let mut batch = EventBatch::new();
        assert_eq!(empty.decode_chunk_prescan(&mut cursor, &mut batch, 256, u64::MAX), 0);
        assert!(batch.is_empty());
        // All-compute stream: budget never binds, window does.
        let computes: EventStream = (0..100).map(|ops| Event::Compute { ops }).collect();
        assert_decoders_agree(&computes, 16, &[1]);
        // Zero budget decodes nothing on either path.
        let stream = random_stream(64, 9);
        let mut cursor = StreamCursor::default();
        assert_eq!(stream.decode_chunk_prescan(&mut cursor, &mut batch, 256, 0), 0);
        assert_eq!((batch.len(), cursor.position()), (0, 0));
    }

    #[test]
    fn iterator_is_exact_size() {
        let stream: EventStream = sample_events().into_iter().collect();
        let mut iter = stream.iter();
        assert_eq!(iter.len(), 6);
        iter.next();
        assert_eq!(iter.len(), 5);
    }
}
