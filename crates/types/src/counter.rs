//! Saturating confidence counters.
//!
//! Both pHIST and bHIST are tables of 3-bit saturating counters with a
//! prediction threshold (default 6). [`SatCounter`] is the shared
//! implementation; the width is a runtime parameter so sensitivity studies
//! can vary it.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An unsigned saturating counter of configurable bit width.
///
/// ```
/// use dpc_types::SatCounter;
///
/// let mut c = SatCounter::new(3);
/// for _ in 0..10 { c.increment(); }
/// assert_eq!(c.value(), 7); // saturates at 2^3 - 1
/// c.clear();
/// assert_eq!(c.value(), 0);
/// ```
/// Layout contract: `repr(C)` pins `value` at byte offset 0 and `max` at
/// byte offset 1, which the batched clear kernel in `dpc-predictors`
/// (`simd::clear_counters`) relies on to zero the value bytes of a
/// counter row while preserving the width bytes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(C)]
pub struct SatCounter {
    value: u8,
    max: u8,
}

impl SatCounter {
    /// Creates a counter of `bits` width, initialized to zero.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 8.
    pub fn new(bits: u32) -> Self {
        assert!(bits > 0 && bits <= 8, "SatCounter width must be 1..=8 bits");
        Self { value: 0, max: ((1u16 << bits) - 1) as u8 }
    }

    /// Current value.
    #[inline]
    pub const fn value(self) -> u8 {
        self.value
    }

    /// Maximum (saturated) value, `2^bits - 1`.
    #[inline]
    pub const fn max(self) -> u8 {
        self.max
    }

    /// Increments, saturating at [`max`](Self::max).
    #[inline]
    pub fn increment(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
        crate::invariant!(
            self.value <= self.max,
            "counter {} above ceiling {}",
            self.value,
            self.max
        );
    }

    /// Decrements, saturating at zero.
    #[inline]
    pub fn decrement(&mut self) {
        self.value = self.value.saturating_sub(1);
        crate::invariant!(
            self.value <= self.max,
            "counter {} above ceiling {}",
            self.value,
            self.max
        );
    }

    /// Resets the counter to zero (the paper's negative-feedback action).
    #[inline]
    pub fn clear(&mut self) {
        self.value = 0;
    }

    /// Whether the counter strictly exceeds `threshold` — the paper's
    /// prediction condition (*"if the counter value ... is more than a
    /// threshold value (here, 6 by default)"*).
    #[inline]
    pub const fn exceeds(self, threshold: u8) -> bool {
        self.value > threshold
    }
}

impl fmt::Debug for SatCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SatCounter({}/{})", self.value, self.max)
    }
}

impl fmt::Display for SatCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn increments_saturate() {
        let mut c = SatCounter::new(3);
        for _ in 0..100 {
            c.increment();
        }
        assert_eq!(c.value(), 7);
    }

    #[test]
    fn decrements_saturate() {
        let mut c = SatCounter::new(2);
        c.decrement();
        assert_eq!(c.value(), 0);
        c.increment();
        c.increment();
        c.decrement();
        assert_eq!(c.value(), 1);
    }

    #[test]
    fn threshold_is_strict() {
        let mut c = SatCounter::new(3);
        for _ in 0..6 {
            c.increment();
        }
        assert!(!c.exceeds(6), "counter == threshold must not predict");
        c.increment();
        assert!(c.exceeds(6));
    }

    #[test]
    fn clear_resets() {
        let mut c = SatCounter::new(4);
        c.increment();
        c.clear();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn width_one_toggles_between_zero_and_one() {
        let mut c = SatCounter::new(1);
        assert_eq!(c.max(), 1);
        c.increment();
        assert_eq!(c.value(), 1);
        c.increment();
        assert_eq!(c.value(), 1, "1-bit counter saturates at 1");
        c.decrement();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn width_eight_saturates_at_255() {
        let mut c = SatCounter::new(8);
        assert_eq!(c.max(), u8::MAX);
        for _ in 0..300 {
            c.increment();
        }
        assert_eq!(c.value(), u8::MAX, "the 2^8-1 ceiling must not wrap u8");
        c.increment();
        assert_eq!(c.value(), u8::MAX);
    }

    #[test]
    fn increment_at_saturation_holds() {
        let mut c = SatCounter::new(3);
        for _ in 0..7 {
            c.increment();
        }
        assert_eq!(c.value(), c.max());
        c.increment();
        assert_eq!(c.value(), c.max());
    }

    #[test]
    fn decrement_at_zero_holds() {
        let mut c = SatCounter::new(5);
        assert_eq!(c.value(), 0);
        c.decrement();
        c.decrement();
        assert_eq!(c.value(), 0);
    }

    #[test]
    #[should_panic(expected = "SatCounter")]
    fn zero_bits_rejected() {
        SatCounter::new(0);
    }

    #[test]
    #[should_panic(expected = "SatCounter")]
    fn nine_bits_rejected() {
        SatCounter::new(9);
    }

    proptest! {
        #[test]
        fn value_never_exceeds_max(bits in 1u32..=8, ops in proptest::collection::vec(any::<bool>(), 0..200)) {
            let mut c = SatCounter::new(bits);
            for up in ops {
                if up { c.increment() } else { c.decrement() }
                prop_assert!(c.value() <= c.max());
            }
        }
    }
}
