//! Foundational types for the `dpc` simulator workspace.
//!
//! This crate hosts the vocabulary shared by every other crate in the
//! reproduction of *"Dead Page and Dead Block Predictors: Cleaning TLBs and
//! Caches Together"* (HPCA 2021):
//!
//! * [`addr`] — strongly-typed virtual/physical addresses, page and cache
//!   block numbers ([`VirtAddr`], [`PhysAddr`], [`Vpn`], [`Pfn`],
//!   [`BlockAddr`], [`Pc`]);
//! * [`hash`] — the folded-XOR hash family the paper uses to index its
//!   history tables;
//! * [`counter`] — saturating confidence counters ([`SatCounter`]);
//! * [`simd`] — runtime-dispatched vector kernels (with scalar twins)
//!   shared by the event-replay hot path;
//! * [`config`] — the full simulated-machine configuration with builders
//!   mirroring Table I of the paper.
//!
//! # Example
//!
//! ```
//! use dpc_types::{VirtAddr, SystemConfig};
//!
//! let va = VirtAddr::new(0x7fff_dead_b000);
//! assert_eq!(va.vpn().raw(), 0x7fff_dead_b000 >> 12);
//!
//! let config = SystemConfig::paper_baseline();
//! assert_eq!(config.l2_tlb.entries, 1024);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod config;
pub mod counter;
pub mod hash;
mod invariant;
pub mod page;
pub mod simd;
pub mod stream;
pub mod workload;

pub use addr::{AccessKind, BlockAddr, Pc, Pfn, PhysAddr, VirtAddr, Vpn};
pub use config::{
    CacheConfig, ConfigError, CoreConfig, PwcConfig, ReplacementKind, SystemConfig, TlbConfig,
    TlbFillPolicy,
};
pub use counter::SatCounter;
pub use page::{AllocPolicy, PageSize};
pub use stream::{EventStream, StreamCursor};
pub use workload::{Event, Workload};

/// log2 of the page size: 4 KiB pages throughout, as in the paper.
pub const PAGE_SHIFT: u32 = 12;
/// Page size in bytes.
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;
/// log2 of the cache block size: 64-byte blocks throughout.
pub const BLOCK_SHIFT: u32 = 6;
/// Cache block size in bytes.
pub const BLOCK_SIZE: u64 = 1 << BLOCK_SHIFT;
/// Number of cache blocks per page.
pub const BLOCKS_PER_PAGE: u64 = PAGE_SIZE / BLOCK_SIZE;
/// Virtual address width (x86-64 canonical), as assumed by the paper.
pub const VA_BITS: u32 = 48;
/// Physical address width, as assumed by the paper's storage analysis.
pub const PA_BITS: u32 = 51;
