//! Simulated-machine configuration.
//!
//! [`SystemConfig::paper_baseline`] reproduces Table I of the paper exactly;
//! every sensitivity study in Section VI is expressed as a small mutation of
//! that baseline through the builder-style `with_*` methods.

use crate::page::AllocPolicy;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Replacement policy selector for TLBs and caches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ReplacementKind {
    /// Least-recently-used (the paper's baseline).
    #[default]
    Lru,
    /// Static re-reference interval prediction (Jaleel et al., ISCA'10),
    /// used by the Fig. 11f sensitivity study.
    Srrip,
    /// First-in first-out, used by small helper structures.
    Fifo,
}

impl fmt::Display for ReplacementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplacementKind::Lru => f.write_str("LRU"),
            ReplacementKind::Srrip => f.write_str("SRRIP"),
            ReplacementKind::Fifo => f.write_str("FIFO"),
        }
    }
}

/// Configuration of one set-associative cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Access (hit) latency in cycles.
    pub latency: u32,
    /// Replacement policy.
    pub replacement: ReplacementKind,
}

impl CacheConfig {
    /// Number of sets implied by the capacity, associativity and the global
    /// 64-byte block size.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is not validated (non-power-of-two set
    /// count); call [`SystemConfig::validate`] first.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (u64::from(self.ways) * crate::BLOCK_SIZE)
    }

    /// Total number of blocks.
    pub fn blocks(&self) -> u64 {
        self.size_bytes / crate::BLOCK_SIZE
    }
}

/// Configuration of one TLB level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Total number of entries.
    pub entries: u32,
    /// Associativity.
    pub ways: u32,
    /// Access latency in cycles.
    pub latency: u32,
    /// Replacement policy.
    pub replacement: ReplacementKind,
}

impl TlbConfig {
    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.entries / self.ways
    }
}

/// Configuration of the three-level page-walk cache hierarchy.
///
/// Level 0 caches pointers to leaf page-table pages (skips 3 of 4 walk
/// accesses), level 2 caches pointers to PDPT pages (skips 1 of 4). All
/// levels are fully associative, per Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PwcConfig {
    /// Entry counts for PWC L1/L2/L3 (paper: 4, 8, 16).
    pub entries: [u32; 3],
    /// Lookup latencies in cycles for PWC L1/L2/L3 (paper: 1, 1, 2).
    pub latency: [u32; 3],
}

/// Out-of-order core parameters for the timing model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Dispatch/retire width in instructions per cycle.
    pub width: u32,
    /// Reorder-buffer capacity in instructions; independent misses within
    /// one ROB window overlap.
    pub rob_size: u32,
    /// Maximum concurrently outstanding memory operations (line-fill
    /// buffer / MSHR count) — the memory-level-parallelism cap.
    pub mem_slots: u32,
}

/// Where a completed page walk places the translation.
///
/// Paper Section III: *"When a page walk completes, it places the
/// translation in both L1 and L2 TLB (LLT) in our design. Alternatively,
/// it is possible to place the translation into L1 TLB only. An entry can
/// then be placed in the LLT on its eviction from the L1. However, we did
/// not find any significant performance difference between these two
/// alternative designs."* Both designs are implemented; the ablation
/// harness compares them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TlbFillPolicy {
    /// Fill both the L1 TLB and the LLT at walk completion (the paper's
    /// default).
    #[default]
    Both,
    /// Fill only the L1 TLB; the LLT is filled when the entry is evicted
    /// from the L1 (a victim-TLB organization).
    L1ThenVictim,
}

/// Full simulated-system configuration (paper Table I).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Core parameters.
    pub core: CoreConfig,
    /// L1 instruction TLB (paper: 128 entries, 4-way, 1 cycle).
    pub l1_itlb: TlbConfig,
    /// L1 data TLB (paper: 64 entries, 4-way, 1 cycle).
    pub l1_dtlb: TlbConfig,
    /// L2 unified TLB — the last-level TLB (paper: 1024 entries, 8-way,
    /// 8 cycles).
    pub l2_tlb: TlbConfig,
    /// Page-walk caches.
    pub pwc: PwcConfig,
    /// L1 data cache (paper: 32 KB, 8-way, 5 cycles).
    pub l1d: CacheConfig,
    /// L2 cache (paper: 256 KB, 8-way, 11 cycles).
    pub l2: CacheConfig,
    /// L3 / last-level cache, inclusive (paper: 2 MB, 16-way, 40 cycles).
    pub llc: CacheConfig,
    /// Main-memory access latency in cycles (paper: 191).
    pub mem_latency: u32,
    /// Where walk results are placed (paper default: both TLB levels).
    pub tlb_fill: TlbFillPolicy,
    /// How the simulated OS maps the address space onto page sizes
    /// (default: 4 KB base pages everywhere, the paper's grain). Huge
    /// policies add per-size L1 TLB structures and shorter radix walks.
    pub page_policy: AllocPolicy,
}

impl SystemConfig {
    /// The exact baseline machine of the paper's Table I.
    ///
    /// ```
    /// use dpc_types::SystemConfig;
    /// let c = SystemConfig::paper_baseline();
    /// c.validate().expect("paper baseline must be valid");
    /// assert_eq!(c.llc.size_bytes, 2 * 1024 * 1024);
    /// assert_eq!(c.mem_latency, 191);
    /// ```
    pub fn paper_baseline() -> Self {
        use ReplacementKind::Lru;
        Self {
            core: CoreConfig { width: 4, rob_size: 192, mem_slots: 10 },
            l1_itlb: TlbConfig { entries: 128, ways: 4, latency: 1, replacement: Lru },
            l1_dtlb: TlbConfig { entries: 64, ways: 4, latency: 1, replacement: Lru },
            l2_tlb: TlbConfig { entries: 1024, ways: 8, latency: 8, replacement: Lru },
            pwc: PwcConfig { entries: [4, 8, 16], latency: [1, 1, 2] },
            l1d: CacheConfig { size_bytes: 32 << 10, ways: 8, latency: 5, replacement: Lru },
            l2: CacheConfig { size_bytes: 256 << 10, ways: 8, latency: 11, replacement: Lru },
            llc: CacheConfig { size_bytes: 2 << 20, ways: 16, latency: 40, replacement: Lru },
            mem_latency: 191,
            tlb_fill: TlbFillPolicy::Both,
            page_policy: AllocPolicy::Base4K,
        }
    }

    /// Returns a copy using the given walk-fill placement.
    pub fn with_tlb_fill(mut self, tlb_fill: TlbFillPolicy) -> Self {
        self.tlb_fill = tlb_fill;
        self
    }

    /// Returns a copy with a resized L2 TLB (Fig. 11a: 512/1024/1536
    /// entries). Associativity is kept at 8 ways.
    pub fn with_l2_tlb_entries(mut self, entries: u32) -> Self {
        self.l2_tlb.entries = entries;
        self
    }

    /// Returns a copy with a different L2 TLB associativity (the iso-storage
    /// comparison of Fig. 9 grows the LLT from 8 to 9 ways).
    pub fn with_l2_tlb_ways(mut self, ways: u32) -> Self {
        self.l2_tlb.entries = self.l2_tlb.entries / self.l2_tlb.ways * ways;
        self.l2_tlb.ways = ways;
        self
    }

    /// Returns a copy with a resized LLC (Fig. 11e: 2 MB vs 3 MB per core).
    /// A 3 MB LLC keeps 16 ways, giving 3072 sets.
    pub fn with_llc_bytes(mut self, size_bytes: u64) -> Self {
        self.llc.size_bytes = size_bytes;
        self
    }

    /// Returns a copy with the L2 TLB using the given replacement policy
    /// (Fig. 11f).
    pub fn with_l2_tlb_replacement(mut self, replacement: ReplacementKind) -> Self {
        self.l2_tlb.replacement = replacement;
        self
    }

    /// Returns a copy with the LLC using the given replacement policy
    /// (Fig. 11f).
    pub fn with_llc_replacement(mut self, replacement: ReplacementKind) -> Self {
        self.llc.replacement = replacement;
        self
    }

    /// Returns a copy using the given page-size allocation policy. The
    /// per-size L1 TLB geometries come from [`crate::PageSize::l1_dtlb`] /
    /// [`crate::PageSize::l1_itlb`]; the `l1_itlb`/`l1_dtlb` fields keep
    /// describing the 4 KB structures.
    pub fn with_page_policy(mut self, page_policy: AllocPolicy) -> Self {
        self.page_policy = page_policy;
        self
    }

    /// Checks structural invariants the simulator relies on.
    ///
    /// Set counts need not be powers of two (the 3 MB LLC of Fig. 11e has
    /// 3072 sets); the simulator indexes sets by modulo.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated invariant:
    /// zero sizes or associativities that do not divide entry counts.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (name, tlb) in
            [("l1_itlb", &self.l1_itlb), ("l1_dtlb", &self.l1_dtlb), ("l2_tlb", &self.l2_tlb)]
        {
            if tlb.entries == 0 || tlb.ways == 0 {
                return Err(ConfigError::Zero { structure: name });
            }
            if tlb.entries % tlb.ways != 0 {
                return Err(ConfigError::WaysDontDivide { structure: name });
            }
        }
        for (name, cache) in [("l1d", &self.l1d), ("l2", &self.l2), ("llc", &self.llc)] {
            if cache.size_bytes == 0 || cache.ways == 0 {
                return Err(ConfigError::Zero { structure: name });
            }
            let row = u64::from(cache.ways) * crate::BLOCK_SIZE;
            if cache.size_bytes % row != 0 {
                return Err(ConfigError::WaysDontDivide { structure: name });
            }
        }
        if self.core.width == 0 || self.core.rob_size == 0 || self.core.mem_slots == 0 {
            return Err(ConfigError::Zero { structure: "core" });
        }
        if self.pwc.entries.contains(&0) {
            return Err(ConfigError::Zero { structure: "pwc" });
        }
        if let AllocPolicy::Promote2M { threshold } = self.page_policy {
            // A region holds 512 base pages; a zero threshold would
            // promote before any touch, a larger one would never fire.
            if threshold == 0 {
                return Err(ConfigError::Zero { structure: "page_policy" });
            }
            if u64::from(threshold) > crate::PageSize::Size2M.frames() {
                return Err(ConfigError::PromotionThresholdTooLarge { threshold });
            }
        }
        for size in self.page_policy.page_sizes() {
            for tlb in [size.l1_dtlb(), size.l1_itlb()] {
                if tlb.entries == 0 || tlb.ways == 0 || tlb.entries % tlb.ways != 0 {
                    return Err(ConfigError::WaysDontDivide { structure: "page_policy" });
                }
            }
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

/// A structural problem in a [`SystemConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A size, entry count, way count or width was zero.
    Zero {
        /// Which structure was misconfigured.
        structure: &'static str,
    },
    /// Associativity does not divide the entry count / capacity.
    WaysDontDivide {
        /// Which structure was misconfigured.
        structure: &'static str,
    },
    /// A 2 MB promotion threshold beyond the 512 base pages of a region
    /// can never fire.
    PromotionThresholdTooLarge {
        /// The rejected threshold.
        threshold: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Zero { structure } => {
                write!(f, "{structure}: size, entries, ways and width must be nonzero")
            }
            ConfigError::WaysDontDivide { structure } => {
                write!(f, "{structure}: associativity must divide the capacity")
            }
            ConfigError::PromotionThresholdTooLarge { threshold } => {
                write!(f, "page_policy: promotion threshold {threshold} exceeds the 512 base pages of a 2 MB region")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_1() {
        let c = SystemConfig::paper_baseline();
        assert_eq!(c.l1_dtlb.entries, 64);
        assert_eq!(c.l1_itlb.entries, 128);
        assert_eq!(c.l2_tlb.entries, 1024);
        assert_eq!(c.l2_tlb.ways, 8);
        assert_eq!(c.l2_tlb.latency, 8);
        assert_eq!(c.pwc.entries, [4, 8, 16]);
        assert_eq!(c.pwc.latency, [1, 1, 2]);
        assert_eq!(c.l1d.size_bytes, 32 << 10);
        assert_eq!(c.l2.size_bytes, 256 << 10);
        assert_eq!(c.llc.size_bytes, 2 << 20);
        assert_eq!(c.llc.ways, 16);
        assert_eq!(c.llc.latency, 40);
        assert_eq!(c.mem_latency, 191);
        c.validate().unwrap();
    }

    #[test]
    fn set_counts() {
        let c = SystemConfig::paper_baseline();
        assert_eq!(c.l1d.sets(), 64);
        assert_eq!(c.l2.sets(), 512);
        assert_eq!(c.llc.sets(), 2048);
        assert_eq!(c.l2_tlb.sets(), 128);
        assert_eq!(c.llc.blocks(), 32768);
    }

    #[test]
    fn sensitivity_mutators() {
        let c = SystemConfig::paper_baseline().with_l2_tlb_entries(512);
        assert_eq!(c.l2_tlb.entries, 512);
        c.validate().unwrap();

        let iso = SystemConfig::paper_baseline().with_l2_tlb_ways(9);
        assert_eq!(iso.l2_tlb.entries, 1152);
        assert_eq!(iso.l2_tlb.ways, 9);
        iso.validate().unwrap();

        let big = SystemConfig::paper_baseline().with_llc_bytes(3 << 20);
        assert_eq!(big.llc.sets(), 3072);
        // 3072 sets is not a power of two; set indexing is by modulo, so
        // the Fig. 11e configuration validates.
        big.validate().unwrap();
    }

    #[test]
    fn srrip_selector() {
        let c = SystemConfig::paper_baseline()
            .with_l2_tlb_replacement(ReplacementKind::Srrip)
            .with_llc_replacement(ReplacementKind::Srrip);
        assert_eq!(c.l2_tlb.replacement, ReplacementKind::Srrip);
        assert_eq!(c.llc.replacement, ReplacementKind::Srrip);
        assert_eq!(ReplacementKind::Srrip.to_string(), "SRRIP");
    }

    #[test]
    fn page_policy_knob() {
        use crate::PageSize;
        let c = SystemConfig::paper_baseline();
        assert_eq!(c.page_policy, AllocPolicy::Base4K, "default stays the paper's 4 KB grain");

        let huge =
            SystemConfig::paper_baseline().with_page_policy(AllocPolicy::Uniform(PageSize::Size2M));
        assert_eq!(huge.page_policy.page_sizes(), &[PageSize::Size2M]);
        huge.validate().unwrap();
        SystemConfig::paper_baseline()
            .with_page_policy(AllocPolicy::Uniform(PageSize::Size1G))
            .validate()
            .unwrap();
        SystemConfig::paper_baseline()
            .with_page_policy(AllocPolicy::Promote2M { threshold: 64 })
            .validate()
            .unwrap();

        let zero = SystemConfig::paper_baseline()
            .with_page_policy(AllocPolicy::Promote2M { threshold: 0 });
        assert_eq!(zero.validate(), Err(ConfigError::Zero { structure: "page_policy" }));
        let huge_threshold = SystemConfig::paper_baseline()
            .with_page_policy(AllocPolicy::Promote2M { threshold: 513 });
        assert_eq!(
            huge_threshold.validate(),
            Err(ConfigError::PromotionThresholdTooLarge { threshold: 513 })
        );
        assert!(huge_threshold.validate().unwrap_err().to_string().contains("513"));
    }

    #[test]
    fn validation_errors() {
        let mut c = SystemConfig::paper_baseline();
        c.l2_tlb.ways = 0;
        assert_eq!(c.validate(), Err(ConfigError::Zero { structure: "l2_tlb" }));

        let mut c = SystemConfig::paper_baseline();
        c.l2_tlb.entries = 1001; // 1001 not divisible by 8 ways
        assert_eq!(c.validate(), Err(ConfigError::WaysDontDivide { structure: "l2_tlb" }));

        let err = ConfigError::WaysDontDivide { structure: "l1d" };
        assert!(err.to_string().contains("l1d"));
    }
}
