//! The page-size axis: 4 KB base pages plus the x86-64 huge-page sizes.
//!
//! The paper evaluates dpPred/cbPred at a single 4 KB translation grain.
//! [`PageSize`] makes the grain an explicit parameter so the same
//! translation stack can run with 2 MB (PDE-mapped) and 1 GB
//! (PDPTE-mapped) pages: shorter radix walks, per-size L1 TLB structures,
//! and prediction units that cover a whole huge page.
//!
//! Per-size L1 TLB geometries are sourced from real cpuid leaves
//! (Skylake-generation client parts): 64-entry/4-way for 4 KB data pages,
//! 32-entry/4-way for 2 MB, and an 8-entry fully-associative array for
//! 1 GB. Those numbers are pinned by dpc-lint (`budget::structure-size`)
//! through the `L1_DTLB_GEOM_*` constants below.
//!
//! Throughout the simulator, VPNs/PFNs stay at the **4 KB grain** on the
//! wire; a structure that tracks size-`s` units converts with
//! [`PageSize::vpn_unit`] / [`PageSize::pfn_unit`] at its boundary and
//! restores the low bits with [`PageSize::frame_offset`]. This keeps the
//! default 4 KB configuration bit-identical to the pre-refactor code
//! (every conversion is a shift by zero).

use crate::{ReplacementKind, TlbConfig, PAGE_SHIFT};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// L1 data-TLB geometry for 4 KB pages: (entries, ways). cpuid-sourced;
/// matches the paper's Table I.
pub const L1_DTLB_GEOM_4K: (u32, u32) = (64, 4);
/// L1 data-TLB geometry for 2 MB pages: (entries, ways). cpuid-sourced.
pub const L1_DTLB_GEOM_2M: (u32, u32) = (32, 4);
/// L1 data-TLB geometry for 1 GB pages: (entries, ways) — 8-entry fully
/// associative. cpuid-sourced.
pub const L1_DTLB_GEOM_1G: (u32, u32) = (8, 8);
/// L1 instruction-TLB geometry for 4 KB pages: (entries, ways); Table I.
pub const L1_ITLB_GEOM_4K: (u32, u32) = (128, 4);
/// L1 instruction-TLB geometry for huge (2 MB / 1 GB) code pages:
/// (entries, ways) — a small fully-associative array, as real parts
/// provide for large code pages.
pub const L1_ITLB_GEOM_HUGE: (u32, u32) = (8, 8);

/// A translation granularity of the x86-64 four-level radix page table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PageSize {
    /// 4 KiB base pages (PTE-mapped; the paper's only grain).
    Size4K,
    /// 2 MiB huge pages (PDE-mapped: the walk terminates one level early).
    Size2M,
    /// 1 GiB huge pages (PDPTE-mapped: the walk terminates two levels
    /// early).
    Size1G,
}

impl PageSize {
    /// All sizes, smallest first.
    pub const ALL: [PageSize; 3] = [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G];

    /// log2 of the page size in bytes (12 / 21 / 30).
    #[inline]
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Size4K => 12,
            PageSize::Size2M => 21,
            PageSize::Size1G => 30,
        }
    }

    /// Page size in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        1 << self.shift()
    }

    /// Shift from the global 4 KB grain up to this size's unit grain
    /// (0 / 9 / 18): a size-`s` unit VPN is `vpn4k >> unit_shift()`.
    #[inline]
    pub const fn unit_shift(self) -> u32 {
        self.shift() - PAGE_SHIFT
    }

    /// Number of 4 KB frames one page of this size spans (1 / 512 / 512²).
    #[inline]
    pub const fn frames(self) -> u64 {
        1 << self.unit_shift()
    }

    /// The radix level whose entry maps a page of this size: 0 (PTE) for
    /// 4 KB, 1 (PDE) for 2 MB, 2 (PDPTE) for 1 GB.
    #[inline]
    pub const fn terminal_level(self) -> usize {
        (self.unit_shift() / 9) as usize
    }

    /// PTE loads a cold hardware walk issues for this size (4 / 3 / 2):
    /// one per level from the root down to the terminal level.
    #[inline]
    pub const fn pte_loads(self) -> u32 {
        4 - self.terminal_level() as u32
    }

    /// Dense index of this size (0 / 1 / 2), for size-tagged keys.
    #[inline]
    pub const fn index(self) -> u64 {
        self.terminal_level() as u64
    }

    /// Converts a 4 KB-grain VPN to this size's unit number.
    #[inline]
    pub const fn vpn_unit(self, vpn: crate::Vpn) -> crate::Vpn {
        crate::Vpn::new(vpn.raw() >> self.unit_shift())
    }

    /// Converts a 4 KB-grain PFN to this size's unit frame number.
    #[inline]
    pub const fn pfn_unit(self, pfn: crate::Pfn) -> crate::Pfn {
        crate::Pfn::new(pfn.raw() >> self.unit_shift())
    }

    /// The 4 KB-frame offset of a 4 KB-grain page number within its
    /// enclosing page of this size (always 0 for 4 KB pages).
    #[inline]
    pub const fn frame_offset(self, vpn: crate::Vpn) -> u64 {
        vpn.raw() & (self.frames() - 1)
    }

    /// L1 data-TLB geometry for this size, from the pinned cpuid numbers.
    pub fn l1_dtlb(self) -> TlbConfig {
        let (entries, ways) = match self {
            PageSize::Size4K => L1_DTLB_GEOM_4K,
            PageSize::Size2M => L1_DTLB_GEOM_2M,
            PageSize::Size1G => L1_DTLB_GEOM_1G,
        };
        TlbConfig { entries, ways, latency: 1, replacement: ReplacementKind::Lru }
    }

    /// L1 instruction-TLB geometry for this size.
    pub fn l1_itlb(self) -> TlbConfig {
        let (entries, ways) =
            if self == PageSize::Size4K { L1_ITLB_GEOM_4K } else { L1_ITLB_GEOM_HUGE };
        TlbConfig { entries, ways, latency: 1, replacement: ReplacementKind::Lru }
    }

    /// Short lower-case label ("4k" / "2m" / "1g") used by CLI flags, run
    /// keys and report tables.
    #[inline]
    pub const fn label(self) -> &'static str {
        match self {
            PageSize::Size4K => "4k",
            PageSize::Size2M => "2m",
            PageSize::Size1G => "1g",
        }
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error from parsing a [`PageSize`] label.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePageSizeError(String);

impl fmt::Display for ParsePageSizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown page size {:?} (expected 4k, 2m or 1g)", self.0)
    }
}

impl std::error::Error for ParsePageSizeError {}

impl FromStr for PageSize {
    type Err = ParsePageSizeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "4k" | "4kb" | "4kib" => Ok(PageSize::Size4K),
            "2m" | "2mb" | "2mib" => Ok(PageSize::Size2M),
            "1g" | "1gb" | "1gib" => Ok(PageSize::Size1G),
            _ => Err(ParsePageSizeError(s.to_owned())),
        }
    }
}

/// How the simulated OS maps a workload's address space onto page sizes.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum AllocPolicy {
    /// Every mapping is a 4 KB base page — the paper's configuration and
    /// the byte-identical default.
    #[default]
    Base4K,
    /// Every mapping uses the given size (2 MB or 1 GB map whole aligned
    /// regions on first touch; `Uniform(Size4K)` behaves like `Base4K`
    /// but allocates frames from the partitioned allocator).
    Uniform(PageSize),
    /// Reservation-based 2 MB promotion (FreeBSD-style): the first touch
    /// in a 2 MB-aligned virtual region reserves a physically contiguous
    /// 2 MB frame range and maps 4 KB pages out of it; once `threshold`
    /// distinct 4 KB pages of the region have been touched, the PDE is
    /// flipped to a huge mapping (frames are preserved, so existing
    /// translations stay coherent).
    Promote2M {
        /// Distinct 4 KB touches within a region that trigger promotion.
        threshold: u32,
    },
}

impl AllocPolicy {
    /// The page sizes mappings under this policy can have, smallest first.
    pub const fn page_sizes(self) -> &'static [PageSize] {
        match self {
            AllocPolicy::Base4K => &[PageSize::Size4K],
            AllocPolicy::Uniform(PageSize::Size4K) => &[PageSize::Size4K],
            AllocPolicy::Uniform(PageSize::Size2M) => &[PageSize::Size2M],
            AllocPolicy::Uniform(PageSize::Size1G) => &[PageSize::Size1G],
            AllocPolicy::Promote2M { .. } => &[PageSize::Size4K, PageSize::Size2M],
        }
    }

    /// Shift from the 4 KB grain to the *prediction unit* the dead-page
    /// machinery keys on: the largest page size the policy can produce.
    /// dpPred's pHIST/shadow and cbPred's PFQ treat one such unit as one
    /// page (a huge page is one prediction unit, not 512 of them).
    pub const fn prediction_unit_shift(self) -> u32 {
        match self {
            AllocPolicy::Base4K => 0,
            AllocPolicy::Uniform(size) => size.unit_shift(),
            AllocPolicy::Promote2M { .. } => PageSize::Size2M.unit_shift(),
        }
    }

    /// The policy mapping everything at `size`, with 4 KB collapsed onto
    /// the byte-identical [`AllocPolicy::Base4K`] default — so a user
    /// asking for "4 KB pages" gets the paper machine, not the
    /// partitioned-allocator variant.
    pub const fn uniform(size: PageSize) -> Self {
        match size {
            PageSize::Size4K => AllocPolicy::Base4K,
            _ => AllocPolicy::Uniform(size),
        }
    }

    /// Label used in run keys, report tables and timing JSON ("4k", "2m",
    /// "1g", "promote2m").
    pub const fn label(self) -> &'static str {
        match self {
            AllocPolicy::Base4K => "4k",
            AllocPolicy::Uniform(size) => size.label(),
            AllocPolicy::Promote2M { .. } => "promote2m",
        }
    }

    /// Whether this is the paper's byte-identical default configuration.
    pub const fn is_default(self) -> bool {
        matches!(self, AllocPolicy::Base4K)
    }
}

impl fmt::Display for AllocPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pfn, Vpn};

    #[test]
    fn shifts_and_geometry() {
        assert_eq!(PageSize::Size4K.shift(), 12);
        assert_eq!(PageSize::Size2M.shift(), 21);
        assert_eq!(PageSize::Size1G.shift(), 30);
        assert_eq!(PageSize::Size4K.bytes(), 4 << 10);
        assert_eq!(PageSize::Size2M.bytes(), 2 << 20);
        assert_eq!(PageSize::Size1G.bytes(), 1 << 30);
        assert_eq!(PageSize::Size4K.frames(), 1);
        assert_eq!(PageSize::Size2M.frames(), 512);
        assert_eq!(PageSize::Size1G.frames(), 512 * 512);
    }

    #[test]
    fn terminal_levels_and_walk_depth() {
        assert_eq!(PageSize::Size4K.terminal_level(), 0);
        assert_eq!(PageSize::Size2M.terminal_level(), 1);
        assert_eq!(PageSize::Size1G.terminal_level(), 2);
        assert_eq!(PageSize::Size4K.pte_loads(), 4);
        assert_eq!(PageSize::Size2M.pte_loads(), 3);
        assert_eq!(PageSize::Size1G.pte_loads(), 2);
    }

    #[test]
    fn unit_conversions_roundtrip() {
        let vpn = Vpn::new(0x0012_3456_789a);
        for size in PageSize::ALL {
            let unit = size.vpn_unit(vpn);
            let offset = size.frame_offset(vpn);
            assert_eq!((unit.raw() << size.unit_shift()) | offset, vpn.raw(), "{size}");
            assert!(offset < size.frames());
        }
        // 4 KB units are the identity.
        assert_eq!(PageSize::Size4K.vpn_unit(vpn), vpn);
        assert_eq!(PageSize::Size4K.frame_offset(vpn), 0);
        assert_eq!(PageSize::Size2M.pfn_unit(Pfn::new(0x1FF + 512)).raw(), 1);
    }

    #[test]
    fn l1_geometries_match_cpuid_pins() {
        let d4 = PageSize::Size4K.l1_dtlb();
        assert_eq!((d4.entries, d4.ways), (64, 4));
        let d2 = PageSize::Size2M.l1_dtlb();
        assert_eq!((d2.entries, d2.ways), (32, 4));
        let d1 = PageSize::Size1G.l1_dtlb();
        assert_eq!((d1.entries, d1.ways), (8, 8), "1 GB D-TLB is fully associative");
        assert_eq!(d1.sets(), 1);
        let i4 = PageSize::Size4K.l1_itlb();
        assert_eq!((i4.entries, i4.ways), (128, 4));
        assert_eq!(PageSize::Size2M.l1_itlb().sets(), 1);
    }

    #[test]
    fn labels_parse_back() {
        for size in PageSize::ALL {
            assert_eq!(size.label().parse::<PageSize>().unwrap(), size);
            assert_eq!(size.to_string(), size.label());
        }
        assert_eq!("2MB".parse::<PageSize>().unwrap(), PageSize::Size2M);
        assert!("3m".parse::<PageSize>().is_err());
        assert!("3m".parse::<PageSize>().unwrap_err().to_string().contains("3m"));
    }

    #[test]
    fn alloc_policy_sizes_and_units() {
        assert_eq!(AllocPolicy::Base4K.page_sizes(), &[PageSize::Size4K]);
        assert_eq!(AllocPolicy::Uniform(PageSize::Size2M).page_sizes(), &[PageSize::Size2M]);
        assert_eq!(
            AllocPolicy::Promote2M { threshold: 64 }.page_sizes(),
            &[PageSize::Size4K, PageSize::Size2M]
        );
        assert_eq!(AllocPolicy::Base4K.prediction_unit_shift(), 0);
        assert_eq!(AllocPolicy::Uniform(PageSize::Size1G).prediction_unit_shift(), 18);
        assert_eq!(AllocPolicy::Promote2M { threshold: 8 }.prediction_unit_shift(), 9);
        assert_eq!(AllocPolicy::default(), AllocPolicy::Base4K);
        assert!(AllocPolicy::Base4K.is_default());
        assert!(!AllocPolicy::Uniform(PageSize::Size4K).is_default());
        assert_eq!(AllocPolicy::Uniform(PageSize::Size1G).label(), "1g");
        assert_eq!(AllocPolicy::Promote2M { threshold: 8 }.to_string(), "promote2m");
    }
}
