//! The workload abstraction: a stream of memory and compute events.
//!
//! The paper drives Sniper with Pin-instrumented x86 binaries. Here a
//! [`Workload`] is anything that yields [`Event`]s — the 14 synthetic
//! generators in `dpc-workloads`, or a user-provided trace.

use crate::{AccessKind, Pc, VirtAddr};

/// One unit of work observed by the simulated core.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Event {
    /// A memory access: the instruction at `pc` touches `vaddr`.
    Mem {
        /// Program counter of the accessing instruction (a static access
        /// site in the generator).
        pc: Pc,
        /// Virtual byte address accessed.
        vaddr: VirtAddr,
        /// Load or store.
        kind: AccessKind,
        /// Whether this access *depends on the previous memory access*
        /// (its address was produced by that access, as in pointer
        /// chasing or indexed gathers). Dependent accesses cannot begin
        /// execution before their producer completes, which bounds
        /// memory-level parallelism in the timing model.
        dependent: bool,
    },
    /// `ops` non-memory instructions (ALU/branch work between accesses).
    Compute {
        /// Number of single-cycle, non-memory instructions.
        ops: u32,
    },
}

impl Event {
    /// Convenience constructor for an independent load event.
    pub const fn load(pc: Pc, vaddr: VirtAddr) -> Self {
        Event::Mem { pc, vaddr, kind: AccessKind::Read, dependent: false }
    }

    /// Convenience constructor for a load whose address depends on the
    /// previous memory access (pointer chase / gather).
    pub const fn load_dependent(pc: Pc, vaddr: VirtAddr) -> Self {
        Event::Mem { pc, vaddr, kind: AccessKind::Read, dependent: true }
    }

    /// Convenience constructor for an independent store event.
    pub const fn store(pc: Pc, vaddr: VirtAddr) -> Self {
        Event::Mem { pc, vaddr, kind: AccessKind::Write, dependent: false }
    }

    /// Returns `true` if this is a memory event.
    pub const fn is_mem(&self) -> bool {
        matches!(self, Event::Mem { .. })
    }
}

/// A source of simulation events.
///
/// Implementations must be *deterministic*: constructing the same workload
/// twice (same parameters, same seed) must yield the same event stream.
///
/// # Example
///
/// A trivial pointer-chase workload:
///
/// ```
/// use dpc_types::workload::{Event, Workload};
/// use dpc_types::{Pc, VirtAddr};
///
/// struct Chase { next: u64, remaining: u64 }
///
/// impl Workload for Chase {
///     fn name(&self) -> &str { "chase" }
///     fn next_event(&mut self) -> Option<Event> {
///         if self.remaining == 0 { return None; }
///         self.remaining -= 1;
///         let va = VirtAddr::new(0x1000_0000 + (self.next % 4096) * 4096);
///         self.next = self.next.wrapping_mul(6364136223846793005).wrapping_add(1);
///         Some(Event::load(Pc::new(0x400000), va))
///     }
/// }
///
/// let mut w = Chase { next: 1, remaining: 10 };
/// assert_eq!(w.by_ref().take(100).count(), 10);
/// # fn main() {}
/// ```
pub trait Workload {
    /// Short, stable identifier (used in reports and tables).
    fn name(&self) -> &str;

    /// Produces the next event, or `None` when the workload has finished.
    fn next_event(&mut self) -> Option<Event>;

    /// Adapts the workload into an [`Iterator`] by mutable reference.
    fn by_ref(&mut self) -> EventIter<'_, Self>
    where
        Self: Sized,
    {
        EventIter { workload: self }
    }
}

/// Iterator over a workload's events, created by [`Workload::by_ref`].
#[derive(Debug)]
pub struct EventIter<'a, W: Workload> {
    workload: &'a mut W,
}

impl<W: Workload> Iterator for EventIter<'_, W> {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        self.workload.next_event()
    }
}

impl<W: Workload + ?Sized> Workload for Box<W> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn next_event(&mut self) -> Option<Event> {
        (**self).next_event()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Two(u8);
    impl Workload for Two {
        fn name(&self) -> &str {
            "two"
        }
        fn next_event(&mut self) -> Option<Event> {
            if self.0 == 0 {
                return None;
            }
            self.0 -= 1;
            Some(Event::Compute { ops: 1 })
        }
    }

    #[test]
    fn iterator_adapter_drains() {
        let mut w = Two(2);
        assert_eq!(w.by_ref().count(), 2);
        assert_eq!(w.next_event(), None);
    }

    #[test]
    fn boxed_workload_delegates() {
        let mut w: Box<dyn Workload> = Box::new(Two(1));
        assert_eq!(w.name(), "two");
        assert!(w.next_event().is_some());
        assert!(w.next_event().is_none());
    }

    #[test]
    fn event_constructors() {
        let e = Event::load(Pc::new(1), VirtAddr::new(2));
        assert!(e.is_mem());
        let s = Event::store(Pc::new(1), VirtAddr::new(2));
        assert!(matches!(s, Event::Mem { kind: AccessKind::Write, .. }));
        assert!(!Event::Compute { ops: 3 }.is_mem());
    }
}
