//! The folded-XOR hash family used to index predictor history tables.
//!
//! Section V-A of the paper: *"The hash is computed by dividing the PC into
//! subblocks and XOR-ing them."* The same construction is used for VPNs
//! (pHIST's second dimension) and for block addresses (bHIST's 12-bit
//! index). [`fold_xor`] implements it for any output width.

use crate::{BlockAddr, Pc, Vpn};

/// Folds `value` into `bits` bits by XOR-ing consecutive `bits`-wide
/// subblocks together, exactly as the paper's hardware hash does.
///
/// Returns a value in `0..(1 << bits)`.
///
/// ```
/// use dpc_types::hash::fold_xor;
/// assert_eq!(fold_xor(0xABCD, 4), 0xA ^ 0xB ^ 0xC ^ 0xD);
/// assert_eq!(fold_xor(0x12, 4), 0x3);
/// ```
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 32 (predictor indices are small).
#[inline]
pub fn fold_xor(value: u64, bits: u32) -> u32 {
    assert!(bits > 0 && bits <= 32, "fold_xor output width must be 1..=32 bits");
    let mask = (1u64 << bits) - 1;
    let mut v = value;
    let mut acc = 0u64;
    while v != 0 {
        acc ^= v & mask;
        v >>= bits;
    }
    acc as u32
}

/// Hash of a program counter into `bits` bits.
///
/// Instruction addresses on x86-64 have no alignment guarantee, so the PC is
/// folded as-is.
#[inline]
pub fn hash_pc(pc: Pc, bits: u32) -> u32 {
    fold_xor(pc.raw(), bits)
}

/// Hash of a virtual page number into `bits` bits.
#[inline]
pub fn hash_vpn(vpn: Vpn, bits: u32) -> u32 {
    fold_xor(vpn.raw(), bits)
}

/// Hash of a physical block address into `bits` bits (bHIST uses 12).
#[inline]
pub fn hash_block(block: BlockAddr, bits: u32) -> u32 {
    fold_xor(block.raw(), bits)
}

/// A fast multiply-rotate hasher for the simulator's *internal* hash
/// maps (page-table nodes, PFN↔VPN classification maps), whose keys are
/// small address-derived integers.
///
/// `std`'s default SipHash costs tens of cycles per lookup, which the
/// page walker pays four times per walk; this hasher is a couple of ALU
/// ops. It is deterministic (no per-process seed), so map *iteration*
/// order is stable across runs — but callers must still not depend on
/// that order, because the maps it serves are queried point-wise only.
/// Not DoS-resistant; never use it for attacker-controlled keys.
#[derive(Clone, Copy, Debug, Default)]
pub struct FastHasher(u64);

/// Odd multiplier with well-mixed bits (the 64-bit golden-ratio
/// constant), shared with the frame allocator's scatter map.
const FAST_HASH_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

impl std::hash::Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix(u64::from(b));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(FAST_HASH_MULT);
    }
}

/// `BuildHasher` plugging [`FastHasher`] into `std` collections:
/// `HashMap<K, V, FastBuildHasher>`.
pub type FastBuildHasher = std::hash::BuildHasherDefault<FastHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fold_known_values() {
        assert_eq!(fold_xor(0, 6), 0);
        assert_eq!(fold_xor(0b111111, 6), 0b111111);
        // two identical subblocks cancel
        assert_eq!(fold_xor(0b101010_101010, 6), 0);
        assert_eq!(fold_xor(0xABCD, 4), 0xA ^ 0xB ^ 0xC ^ 0xD);
    }

    #[test]
    fn fold_uses_all_input_bits() {
        // Flipping any single input bit must change the output (XOR fold is
        // linear, so each input bit maps to exactly one output bit).
        let base = fold_xor(0x0123_4567_89AB_CDEF, 10);
        for bit in 0..64 {
            let flipped = fold_xor(0x0123_4567_89AB_CDEF ^ (1 << bit), 10);
            assert_ne!(base, flipped, "input bit {bit} had no effect");
        }
    }

    #[test]
    #[should_panic(expected = "fold_xor")]
    fn zero_width_rejected() {
        fold_xor(1, 0);
    }

    #[test]
    #[should_panic(expected = "fold_xor")]
    fn oversize_width_rejected() {
        fold_xor(1, 33);
    }

    proptest! {
        #[test]
        fn output_in_range(value in any::<u64>(), bits in 1u32..=32) {
            let h = fold_xor(value, bits);
            prop_assert!(u64::from(h) < (1u64 << bits));
        }

        #[test]
        fn deterministic(value in any::<u64>(), bits in 1u32..=32) {
            prop_assert_eq!(fold_xor(value, bits), fold_xor(value, bits));
        }

        #[test]
        fn xor_homomorphism(a in any::<u64>(), b in any::<u64>(), bits in 1u32..=32) {
            // fold(a ^ b) == fold(a) ^ fold(b): the defining property of a
            // linear fold, which guarantees full input-bit coverage.
            prop_assert_eq!(fold_xor(a ^ b, bits), fold_xor(a, bits) ^ fold_xor(b, bits));
        }
    }
}
