//! The `invariant!` macro: structural checks compiled in by the
//! `check-invariants` cargo feature.
//!
//! The simulator's hot paths bank on structural invariants (a saturating
//! counter never exceeds its ceiling, the shadow buffer never holds more
//! than two entries, a folded-XOR index is always in table range). In
//! release builds those checks would cost real time per simulated memory
//! operation, so they compile to nothing unless the `check-invariants`
//! feature is on — CI runs the test suite once with it enabled.
//!
//! `invariant!` sites also serve as the visible bounds reasoning that the
//! `hot-path::index` rule of `cargo xtask lint` looks for: an index that
//! is asserted in range is an index a reviewer can trust.

/// Asserts a structural invariant when the `check-invariants` feature is
/// enabled; compiles to nothing otherwise.
///
/// Because `cfg!` is evaluated in the crate that *invokes* the macro,
/// every crate using `invariant!` must declare its own
/// `check-invariants` feature (forwarding to `dpc-types/check-invariants`
/// so `--features <crate>/check-invariants` switches the whole stack on).
/// A crate that forgets the feature declaration fails the build under
/// `unexpected_cfgs`, so the mistake cannot ship silently.
///
/// # Examples
///
/// ```
/// use dpc_types::invariant;
///
/// let idx = 3_usize;
/// let table = [0u8; 8];
/// invariant!(idx < table.len(), "index {idx} out of range");
/// ```
#[macro_export]
macro_rules! invariant {
    ($cond:expr $(, $($arg:tt)+)?) => {
        if cfg!(feature = "check-invariants") {
            assert!($cond $(, $($arg)+)?);
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn invariant_passes_when_true() {
        invariant!(1 + 1 == 2);
        invariant!(1 + 1 == 2, "math works: {}", 2);
    }

    #[test]
    #[cfg_attr(not(feature = "check-invariants"), ignore = "needs --features check-invariants")]
    #[should_panic(expected = "shadow occupancy")]
    fn invariant_fires_when_enabled() {
        invariant!(false, "shadow occupancy exceeded");
    }

    #[cfg(not(feature = "check-invariants"))]
    #[test]
    fn invariant_is_free_when_disabled() {
        // Must not panic: the check compiles to a constant-false branch.
        invariant!(false, "never evaluated");
    }
}
