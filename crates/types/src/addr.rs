//! Strongly-typed addresses.
//!
//! The simulator deals with four distinct 64-bit quantities that are all too
//! easy to confuse: virtual addresses, physical addresses, page numbers in
//! each space, and program counters. Each gets a newtype so the compiler
//! keeps them apart ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use crate::{PageSize, BLOCK_SHIFT, PAGE_SHIFT};
use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! addr_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw 64-bit value.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw 64-bit value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl fmt::Binary for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Binary::fmt(&self.0, f)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(value: $name) -> u64 {
                value.0
            }
        }
    };
}

addr_newtype! {
    /// A virtual (program-visible) byte address.
    VirtAddr
}
addr_newtype! {
    /// A physical byte address, produced by address translation.
    PhysAddr
}
addr_newtype! {
    /// A virtual page number: a [`VirtAddr`] shifted right by [`PAGE_SHIFT`].
    ///
    /// [`PAGE_SHIFT`]: crate::PAGE_SHIFT
    Vpn
}
addr_newtype! {
    /// A physical frame number: a [`PhysAddr`] shifted right by
    /// [`PAGE_SHIFT`] — the global page-size constant.
    ///
    /// [`PAGE_SHIFT`]: crate::PAGE_SHIFT
    Pfn
}
addr_newtype! {
    /// A program counter: the address of the instruction performing an
    /// access. In this trace-driven simulator PCs identify static access
    /// *sites* in a workload generator, which is exactly the property the
    /// paper's PC-indexed predictors rely on.
    Pc
}
addr_newtype! {
    /// A physical cache-block address: a [`PhysAddr`] shifted right by
    /// [`BLOCK_SHIFT`].
    ///
    /// [`BLOCK_SHIFT`]: crate::BLOCK_SHIFT
    BlockAddr
}

impl VirtAddr {
    /// Extracts the virtual page number.
    ///
    /// ```
    /// use dpc_types::VirtAddr;
    /// assert_eq!(VirtAddr::new(0x12345).vpn().raw(), 0x12);
    /// ```
    #[inline]
    pub const fn vpn(self) -> Vpn {
        Vpn::new(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset within the page.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 & ((1 << PAGE_SHIFT) - 1)
    }

    /// Byte offset of the address within its cache block.
    #[inline]
    pub const fn block_offset(self) -> u64 {
        self.0 & ((1 << BLOCK_SHIFT) - 1)
    }

    /// Page number of this address at the given page size (unit grain:
    /// the address shifted by `size.shift()`). `vpn_at(Size4K)` equals
    /// [`VirtAddr::vpn`].
    #[inline]
    pub const fn vpn_at(self, size: PageSize) -> Vpn {
        Vpn::new(self.0 >> size.shift())
    }

    /// Byte offset within the enclosing page of the given size.
    #[inline]
    pub const fn page_offset_at(self, size: PageSize) -> u64 {
        self.0 & (size.bytes() - 1)
    }
}

impl PhysAddr {
    /// Extracts the physical frame number.
    #[inline]
    pub const fn pfn(self) -> Pfn {
        Pfn::new(self.0 >> PAGE_SHIFT)
    }

    /// Extracts the physical cache-block address.
    ///
    /// ```
    /// use dpc_types::PhysAddr;
    /// assert_eq!(PhysAddr::new(0x1040).block().raw(), 0x41);
    /// ```
    #[inline]
    pub const fn block(self) -> BlockAddr {
        BlockAddr::new(self.0 >> BLOCK_SHIFT)
    }

    /// Byte offset within the page.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 & ((1 << PAGE_SHIFT) - 1)
    }

    /// Frame number of this address at the given page size (unit grain).
    #[inline]
    pub const fn pfn_at(self, size: PageSize) -> Pfn {
        Pfn::new(self.0 >> size.shift())
    }
}

impl Vpn {
    /// The first byte address of this virtual page.
    #[inline]
    pub const fn base(self) -> VirtAddr {
        VirtAddr::new(self.0 << PAGE_SHIFT)
    }

    /// Index into page-table level `level` (0 = leaf / PT, 3 = root / PML4)
    /// for a four-level x86-64 style radix tree with 9 bits per level.
    ///
    /// # Panics
    ///
    /// Panics if `level >= 4`.
    #[inline]
    pub fn radix_index(self, level: u32) -> usize {
        assert!(level < 4, "four-level radix tree has levels 0..=3");
        ((self.0 >> (9 * level)) & 0x1ff) as usize
    }

    /// The first byte address of this page number interpreted at the
    /// given page size (unit grain). `base_at(Size4K)` equals
    /// [`Vpn::base`].
    #[inline]
    pub const fn base_at(self, size: PageSize) -> VirtAddr {
        VirtAddr::new(self.0 << size.shift())
    }

    /// Radix-tree index at `level` for a *unit-grain* page number of the
    /// given size: a size-`s` unit VPN carries radix indices only for
    /// levels `s.terminal_level()..=3` (the walk terminates at the
    /// terminal level). For 4 KB units this equals
    /// [`Vpn::radix_index`].
    ///
    /// # Panics
    ///
    /// Panics if `level >= 4` or `level < size.terminal_level()` — there
    /// is no radix index below a huge mapping's terminal level.
    #[inline]
    pub fn pte_index(self, level: u32, size: PageSize) -> usize {
        assert!(level < 4, "four-level radix tree has levels 0..=3");
        let terminal = size.terminal_level() as u32;
        assert!(
            level >= terminal,
            "a {size} mapping terminates at level {terminal}; level {level} does not exist"
        );
        ((self.0 >> (9 * (level - terminal))) & 0x1ff) as usize
    }
}

impl Pfn {
    /// The first byte address of this physical frame.
    #[inline]
    pub const fn base(self) -> PhysAddr {
        PhysAddr::new(self.0 << PAGE_SHIFT)
    }

    /// The first byte address of this frame number interpreted at the
    /// given page size (unit grain).
    #[inline]
    pub const fn base_at(self, size: PageSize) -> PhysAddr {
        PhysAddr::new(self.0 << size.shift())
    }
}

impl BlockAddr {
    /// The first byte address of this cache block.
    #[inline]
    pub const fn base(self) -> PhysAddr {
        PhysAddr::new(self.0 << BLOCK_SHIFT)
    }

    /// The physical frame this block belongs to.
    ///
    /// ```
    /// use dpc_types::PhysAddr;
    /// let block = PhysAddr::new(0x2fc0).block();
    /// assert_eq!(block.pfn(), PhysAddr::new(0x2fc0).pfn());
    /// ```
    #[inline]
    pub const fn pfn(self) -> Pfn {
        Pfn::new(self.0 >> (PAGE_SHIFT - BLOCK_SHIFT))
    }

    /// The unit-grain frame of the given page size this block belongs to.
    /// `pfn_at(Size4K)` equals [`BlockAddr::pfn`].
    #[inline]
    pub const fn pfn_at(self, size: PageSize) -> Pfn {
        Pfn::new(self.0 >> (size.shift() - BLOCK_SHIFT))
    }
}

/// Whether an access reads or writes memory.
///
/// The simulated hierarchy is write-allocate/write-back, so loads and stores
/// take the same path; the distinction is kept for statistics and future
/// extensions (e.g. dirty-block modeling).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Write`].
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BLOCKS_PER_PAGE, PAGE_SIZE};

    #[test]
    fn vpn_roundtrip() {
        let va = VirtAddr::new(0xdead_beef_cafe);
        assert_eq!(va.vpn().base().raw() + va.page_offset(), va.raw());
    }

    #[test]
    fn block_roundtrip() {
        let pa = PhysAddr::new(0x1234_5678);
        assert_eq!(pa.block().base().raw() + (pa.raw() & 0x3f), pa.raw());
    }

    #[test]
    fn block_to_pfn_consistent() {
        for raw in [0u64, 63, 64, 4095, 4096, 0xffff_ffff] {
            let pa = PhysAddr::new(raw);
            assert_eq!(pa.block().pfn(), pa.pfn());
        }
    }

    #[test]
    fn radix_indices_cover_vpn() {
        // Reassembling the four 9-bit indices must reproduce the low 36 bits
        // of the VPN (48-bit VA = 36-bit VPN).
        let vpn = Vpn::new(0x0eba_9876_5432 & ((1 << 36) - 1));
        let mut rebuilt = 0u64;
        for level in (0..4).rev() {
            rebuilt = (rebuilt << 9) | vpn.radix_index(level) as u64;
        }
        assert_eq!(rebuilt, vpn.raw());
    }

    #[test]
    #[should_panic(expected = "four-level")]
    fn radix_index_rejects_level_4() {
        Vpn::new(0).radix_index(4);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(VirtAddr::new(0xff).to_string(), "0xff");
        assert_eq!(format!("{:x}", Pfn::new(0xab)), "ab");
        assert_eq!(format!("{:b}", Pc::new(0b101)), "101");
    }

    #[test]
    fn debug_is_nonempty_and_named() {
        let s = format!("{:?}", BlockAddr::new(0));
        assert!(s.starts_with("BlockAddr("));
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(PAGE_SIZE / crate::BLOCK_SIZE, BLOCKS_PER_PAGE);
        assert_eq!(BLOCKS_PER_PAGE, 64);
    }

    #[test]
    fn conversions() {
        let v: VirtAddr = 7u64.into();
        let raw: u64 = v.into();
        assert_eq!(raw, 7);
    }

    #[test]
    fn access_kind() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
        assert_eq!(AccessKind::Read.to_string(), "read");
    }

    /// Addresses that exercise every alignment class: page-aligned at each
    /// size, block-aligned, and arbitrary interior bytes up to 48 bits.
    const SAMPLE_ADDRS: [u64; 8] =
        [0, 0x3f, 0x1000, 0x1f_ffff, 0x20_0000, 0x4000_0000, 0xdead_beef_cafe, (1 << 48) - 1];

    #[test]
    fn sized_vpn_offset_roundtrip() {
        // vpn_at / page_offset_at / base_at are inverses at every size.
        for raw in SAMPLE_ADDRS {
            let va = VirtAddr::new(raw);
            for size in PageSize::ALL {
                let vpn = va.vpn_at(size);
                let offset = va.page_offset_at(size);
                assert!(offset < size.bytes());
                assert_eq!(vpn.base_at(size).raw() + offset, raw, "VA {raw:#x} at {size}");
            }
        }
    }

    #[test]
    fn sized_pfn_offset_roundtrip() {
        for raw in SAMPLE_ADDRS {
            let pa = PhysAddr::new(raw);
            for size in PageSize::ALL {
                let pfn = pa.pfn_at(size);
                assert_eq!(pfn.base_at(size).raw() + pa.raw() % size.bytes(), raw);
            }
        }
    }

    #[test]
    fn sized_accessors_reduce_to_legacy_at_4k() {
        for raw in SAMPLE_ADDRS {
            let va = VirtAddr::new(raw);
            assert_eq!(va.vpn_at(PageSize::Size4K), va.vpn());
            assert_eq!(va.page_offset_at(PageSize::Size4K), va.page_offset());
            let pa = PhysAddr::new(raw);
            assert_eq!(pa.pfn_at(PageSize::Size4K), pa.pfn());
            assert_eq!(pa.pfn().base_at(PageSize::Size4K), pa.pfn().base());
            assert_eq!(va.vpn().base_at(PageSize::Size4K), va.vpn().base());
            assert_eq!(pa.block().pfn_at(PageSize::Size4K), pa.block().pfn());
        }
    }

    #[test]
    fn block_to_sized_pfn_consistent() {
        // Bfn -> Pfn at size s must agree with PhysAddr -> Pfn at size s:
        // the shift is size.shift() - BLOCK_SHIFT.
        for raw in SAMPLE_ADDRS {
            let pa = PhysAddr::new(raw);
            for size in PageSize::ALL {
                assert_eq!(pa.block().pfn_at(size), pa.pfn_at(size), "PA {raw:#x} at {size}");
                assert_eq!(
                    pa.block().pfn_at(size).raw(),
                    pa.block().raw() >> (size.shift() - BLOCK_SHIFT)
                );
            }
        }
        // Huge sizes also relate through the unit shift from the 4 KB PFN.
        let pa = PhysAddr::new(0xdead_beef_cafe);
        for size in PageSize::ALL {
            assert_eq!(pa.block().pfn_at(size), size.pfn_unit(pa.pfn()));
        }
    }

    #[test]
    fn pte_indices_cover_unit_vpns_at_each_size() {
        // Reassembling the radix indices from the terminal level up must
        // reproduce the unit VPN, at every size.
        let va = VirtAddr::new(0x0eba_9876_5432 & ((1 << 48) - 1));
        for size in PageSize::ALL {
            let unit = va.vpn_at(size);
            let terminal = size.terminal_level() as u32;
            let mut rebuilt = 0u64;
            for level in (terminal..4).rev() {
                rebuilt = (rebuilt << 9) | unit.pte_index(level, size) as u64;
            }
            assert_eq!(rebuilt, unit.raw(), "{size}");
        }
    }

    #[test]
    fn pte_index_matches_radix_index_at_4k() {
        let vpn = Vpn::new(0x0eba_9876_5432 & ((1 << 36) - 1));
        for level in 0..4 {
            assert_eq!(vpn.pte_index(level, PageSize::Size4K), vpn.radix_index(level));
        }
    }

    #[test]
    fn pte_index_depth_shrinks_with_size() {
        // A 2 MB unit VPN's level-1 (terminal) index uses its low 9 bits;
        // a 1 GB unit VPN's level-2 (terminal) index likewise.
        let unit = Vpn::new(0b1_0000_0011); // 0x103
        assert_eq!(unit.pte_index(1, PageSize::Size2M), 0x103);
        assert_eq!(unit.pte_index(2, PageSize::Size2M), 0);
        assert_eq!(unit.pte_index(2, PageSize::Size1G), 0x103);
        assert_eq!(unit.pte_index(3, PageSize::Size1G), 0);
    }

    #[test]
    #[should_panic(expected = "terminates at level 1")]
    fn pte_index_rejects_levels_below_terminal_2m() {
        Vpn::new(0).pte_index(0, PageSize::Size2M);
    }

    #[test]
    #[should_panic(expected = "terminates at level 2")]
    fn pte_index_rejects_levels_below_terminal_1g() {
        Vpn::new(0).pte_index(1, PageSize::Size1G);
    }

    #[test]
    #[should_panic(expected = "four-level")]
    fn pte_index_rejects_level_4() {
        Vpn::new(0).pte_index(4, PageSize::Size2M);
    }
}
