//! Strongly-typed addresses.
//!
//! The simulator deals with four distinct 64-bit quantities that are all too
//! easy to confuse: virtual addresses, physical addresses, page numbers in
//! each space, and program counters. Each gets a newtype so the compiler
//! keeps them apart ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use crate::{BLOCK_SHIFT, PAGE_SHIFT};
use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! addr_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw 64-bit value.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw 64-bit value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl fmt::Binary for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Binary::fmt(&self.0, f)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(value: $name) -> u64 {
                value.0
            }
        }
    };
}

addr_newtype! {
    /// A virtual (program-visible) byte address.
    VirtAddr
}
addr_newtype! {
    /// A physical byte address, produced by address translation.
    PhysAddr
}
addr_newtype! {
    /// A virtual page number: a [`VirtAddr`] shifted right by [`PAGE_SHIFT`].
    ///
    /// [`PAGE_SHIFT`]: crate::PAGE_SHIFT
    Vpn
}
addr_newtype! {
    /// A physical frame number: a [`PhysAddr`] shifted right by
    /// [`PAGE_SHIFT`] — the global page-size constant.
    ///
    /// [`PAGE_SHIFT`]: crate::PAGE_SHIFT
    Pfn
}
addr_newtype! {
    /// A program counter: the address of the instruction performing an
    /// access. In this trace-driven simulator PCs identify static access
    /// *sites* in a workload generator, which is exactly the property the
    /// paper's PC-indexed predictors rely on.
    Pc
}
addr_newtype! {
    /// A physical cache-block address: a [`PhysAddr`] shifted right by
    /// [`BLOCK_SHIFT`].
    ///
    /// [`BLOCK_SHIFT`]: crate::BLOCK_SHIFT
    BlockAddr
}

impl VirtAddr {
    /// Extracts the virtual page number.
    ///
    /// ```
    /// use dpc_types::VirtAddr;
    /// assert_eq!(VirtAddr::new(0x12345).vpn().raw(), 0x12);
    /// ```
    #[inline]
    pub const fn vpn(self) -> Vpn {
        Vpn::new(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset within the page.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 & ((1 << PAGE_SHIFT) - 1)
    }

    /// Byte offset of the address within its cache block.
    #[inline]
    pub const fn block_offset(self) -> u64 {
        self.0 & ((1 << BLOCK_SHIFT) - 1)
    }
}

impl PhysAddr {
    /// Extracts the physical frame number.
    #[inline]
    pub const fn pfn(self) -> Pfn {
        Pfn::new(self.0 >> PAGE_SHIFT)
    }

    /// Extracts the physical cache-block address.
    ///
    /// ```
    /// use dpc_types::PhysAddr;
    /// assert_eq!(PhysAddr::new(0x1040).block().raw(), 0x41);
    /// ```
    #[inline]
    pub const fn block(self) -> BlockAddr {
        BlockAddr::new(self.0 >> BLOCK_SHIFT)
    }

    /// Byte offset within the page.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 & ((1 << PAGE_SHIFT) - 1)
    }
}

impl Vpn {
    /// The first byte address of this virtual page.
    #[inline]
    pub const fn base(self) -> VirtAddr {
        VirtAddr::new(self.0 << PAGE_SHIFT)
    }

    /// Index into page-table level `level` (0 = leaf / PT, 3 = root / PML4)
    /// for a four-level x86-64 style radix tree with 9 bits per level.
    ///
    /// # Panics
    ///
    /// Panics if `level >= 4`.
    #[inline]
    pub fn radix_index(self, level: u32) -> usize {
        assert!(level < 4, "four-level radix tree has levels 0..=3");
        ((self.0 >> (9 * level)) & 0x1ff) as usize
    }
}

impl Pfn {
    /// The first byte address of this physical frame.
    #[inline]
    pub const fn base(self) -> PhysAddr {
        PhysAddr::new(self.0 << PAGE_SHIFT)
    }
}

impl BlockAddr {
    /// The first byte address of this cache block.
    #[inline]
    pub const fn base(self) -> PhysAddr {
        PhysAddr::new(self.0 << BLOCK_SHIFT)
    }

    /// The physical frame this block belongs to.
    ///
    /// ```
    /// use dpc_types::PhysAddr;
    /// let block = PhysAddr::new(0x2fc0).block();
    /// assert_eq!(block.pfn(), PhysAddr::new(0x2fc0).pfn());
    /// ```
    #[inline]
    pub const fn pfn(self) -> Pfn {
        Pfn::new(self.0 >> (PAGE_SHIFT - BLOCK_SHIFT))
    }
}

/// Whether an access reads or writes memory.
///
/// The simulated hierarchy is write-allocate/write-back, so loads and stores
/// take the same path; the distinction is kept for statistics and future
/// extensions (e.g. dirty-block modeling).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Write`].
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BLOCKS_PER_PAGE, PAGE_SIZE};

    #[test]
    fn vpn_roundtrip() {
        let va = VirtAddr::new(0xdead_beef_cafe);
        assert_eq!(va.vpn().base().raw() + va.page_offset(), va.raw());
    }

    #[test]
    fn block_roundtrip() {
        let pa = PhysAddr::new(0x1234_5678);
        assert_eq!(pa.block().base().raw() + (pa.raw() & 0x3f), pa.raw());
    }

    #[test]
    fn block_to_pfn_consistent() {
        for raw in [0u64, 63, 64, 4095, 4096, 0xffff_ffff] {
            let pa = PhysAddr::new(raw);
            assert_eq!(pa.block().pfn(), pa.pfn());
        }
    }

    #[test]
    fn radix_indices_cover_vpn() {
        // Reassembling the four 9-bit indices must reproduce the low 36 bits
        // of the VPN (48-bit VA = 36-bit VPN).
        let vpn = Vpn::new(0x0eba_9876_5432 & ((1 << 36) - 1));
        let mut rebuilt = 0u64;
        for level in (0..4).rev() {
            rebuilt = (rebuilt << 9) | vpn.radix_index(level) as u64;
        }
        assert_eq!(rebuilt, vpn.raw());
    }

    #[test]
    #[should_panic(expected = "four-level")]
    fn radix_index_rejects_level_4() {
        Vpn::new(0).radix_index(4);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(VirtAddr::new(0xff).to_string(), "0xff");
        assert_eq!(format!("{:x}", Pfn::new(0xab)), "ab");
        assert_eq!(format!("{:b}", Pc::new(0b101)), "101");
    }

    #[test]
    fn debug_is_nonempty_and_named() {
        let s = format!("{:?}", BlockAddr::new(0));
        assert!(s.starts_with("BlockAddr("));
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(PAGE_SIZE / crate::BLOCK_SIZE, BLOCKS_PER_PAGE);
        assert_eq!(BLOCKS_PER_PAGE, 64);
    }

    #[test]
    fn conversions() {
        let v: VirtAddr = 7u64.into();
        let raw: u64 = v.into();
        assert_eq!(raw, 7);
    }

    #[test]
    fn access_kind() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
        assert_eq!(AccessKind::Read.to_string(), "read");
    }
}
