//! Runtime-dispatched SIMD kernels shared by the event-replay hot path.
//!
//! All `unsafe` SIMD code of this crate is confined to this module (the
//! dpc-lint `simd::confined-unsafe` rule enforces the confinement); the
//! rest of the crate calls the safe dispatch wrappers exported here.
//!
//! # Dispatch contract (DESIGN.md §12)
//!
//! Feature detection runs **once**, at the first call to [`enabled`], and
//! the result is cached for the life of the process:
//!
//! * `DPC_SIMD=off` (or `0` / `false`) forces the scalar fallback — the
//!   escape hatch CI uses to prove both paths render byte-identical
//!   output;
//! * under Miri the scalar path is always taken (vendor intrinsics are
//!   outside Miri's supported subset);
//! * otherwise AVX2 is probed with `is_x86_feature_detected!`; non-x86
//!   builds always take the scalar path.
//!
//! Every vector kernel has a scalar twin with identical semantics, and
//! the pinned golden output plus the differential tests in this module
//! hold the two bit-identical.

#![allow(unsafe_code)]

use std::sync::OnceLock;

/// Whether the vector kernels are active for this process.
///
/// Computed once (see the module docs for the decision order) and cached,
/// so the per-call cost on the hot path is one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(detect)
}

/// One-time feature probe backing [`enabled`].
fn detect() -> bool {
    if cfg!(miri) {
        return false;
    }
    if let Ok(value) = std::env::var("DPC_SIMD") {
        if matches!(value.as_str(), "off" | "0" | "false") {
            return false;
        }
    }
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the replay loop should issue software prefetch hints for
/// upcoming sets (`DPC_PREFETCH=on`/`1`/`true`, and [`enabled`]).
///
/// Off by default: on the machines this was tuned on, each simulated
/// event runs hundreds of instructions of cache/TLB/core modelling, so
/// the set arrays a hint touches are resident long before the event
/// eight slots later needs them, and the per-event hint overhead
/// measurably outweighs the misses it saves (see EXPERIMENTS.md). The
/// knob stays because the balance flips when per-event work shrinks or
/// the simulated footprint grows past the host LLC. Hints never change
/// simulated state, so the golden output is identical either way.
#[inline]
pub fn prefetch_enabled() -> bool {
    static PREFETCH: OnceLock<bool> = OnceLock::new();
    *PREFETCH.get_or_init(|| {
        enabled()
            && std::env::var("DPC_PREFETCH")
                .is_ok_and(|value| matches!(value.as_str(), "on" | "1" | "true"))
    })
}

/// Whether the replay engine's batched L1-hit fast path is active
/// (`DPC_FASTPATH`; on by default, `off` / `0` / `false` disables it).
///
/// The fast path is scalar code and bit-identical to event-at-a-time
/// replay by construction (DESIGN.md §15), so unlike [`prefetch_enabled`]
/// this gate is independent of the SIMD gate: it holds on every target
/// and under Miri. The knob exists as the escape hatch and the A/B lever
/// the golden CI legs use to prove the equivalence end to end.
#[inline]
pub fn fastpath_enabled() -> bool {
    static FASTPATH: OnceLock<bool> = OnceLock::new();
    *FASTPATH.get_or_init(|| {
        !std::env::var("DPC_FASTPATH")
            .is_ok_and(|value| matches!(value.as_str(), "off" | "0" | "false"))
    })
}

/// Scans a tag window and returns `(take, mem_take)`: how many leading
/// tags a replay chunk may consume without exceeding a budget of
/// `max_mem` tags that differ from `compute_tag` (i.e. memory events),
/// and how many such tags the prefix contains.
///
/// The cut lands directly *after* the budget-th memory tag, so trailing
/// compute tags beyond the last in-budget memory event are **not** taken
/// — exactly the gate-before-every-event semantics of a
/// `while mem_ops < budget` replay loop.
#[inline]
pub fn classify_tags(tags: &[u8], compute_tag: u8, max_mem: u64) -> (usize, u64) {
    #[cfg(target_arch = "x86_64")]
    if enabled() {
        // SAFETY: `enabled()` returns true only after
        // `is_x86_feature_detected!("avx2")` confirmed AVX2 support.
        return unsafe { classify_tags_avx2(tags, compute_tag, max_mem) };
    }
    classify_tags_scalar(tags, compute_tag, max_mem)
}

/// Scalar twin of [`classify_tags`] — the reference semantics the vector
/// kernel must reproduce bit for bit.
#[inline]
pub fn classify_tags_scalar(tags: &[u8], compute_tag: u8, max_mem: u64) -> (usize, u64) {
    if max_mem == 0 {
        return (0, 0);
    }
    let mut mem = 0u64;
    for (i, &tag) in tags.iter().enumerate() {
        if tag != compute_tag {
            mem += 1;
            if mem == max_mem {
                return (i + 1, mem);
            }
        }
    }
    (tags.len(), mem)
}

/// AVX2 [`classify_tags`]: classifies 32 tags per compare against a
/// splatted `compute_tag`, popcounts the memory lanes, and only descends
/// to bit arithmetic for the single block containing the budget boundary.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn classify_tags_avx2(tags: &[u8], compute_tag: u8, max_mem: u64) -> (usize, u64) {
    use core::arch::x86_64::{
        _mm256_cmpeq_epi8, _mm256_loadu_si256, _mm256_movemask_epi8, _mm256_set1_epi8,
    };

    if max_mem == 0 {
        return (0, 0);
    }
    let needle = _mm256_set1_epi8(compute_tag as i8);
    let mut taken = 0usize;
    let mut mem = 0u64;
    let chunks = tags.chunks_exact(32);
    let tail_start = tags.len() - chunks.remainder().len();
    for chunk in chunks {
        // SAFETY: `chunk` is exactly 32 bytes (chunks_exact), so the
        // unaligned 256-bit load stays inside the slice.
        let block = unsafe { _mm256_loadu_si256(chunk.as_ptr().cast()) };
        let compute_mask = _mm256_movemask_epi8(_mm256_cmpeq_epi8(block, needle)) as u32;
        let mem_mask = !compute_mask;
        let block_mem = u64::from(mem_mask.count_ones());
        if mem + block_mem < max_mem {
            mem += block_mem;
            taken += 32;
        } else {
            // The budget boundary falls inside this block: cut directly
            // after its (max_mem - mem)-th memory tag. The loop invariant
            // `mem < max_mem` makes `need` at least 1, and the branch
            // condition makes it at most `block_mem`.
            let need = (max_mem - mem) as u32;
            return (taken + cut_after_nth_set_bit(mem_mask, need), max_mem);
        }
    }
    let (tail_take, tail_mem) =
        classify_tags_scalar(&tags[tail_start..], compute_tag, max_mem - mem);
    (taken + tail_take, mem + tail_mem)
}

/// Position directly after the `n`-th (1-based) set bit of `mask`.
/// Requires `1 <= n <= mask.count_ones()`.
#[cfg(target_arch = "x86_64")]
#[inline]
fn cut_after_nth_set_bit(mut mask: u32, n: u32) -> usize {
    for _ in 1..n {
        mask &= mask - 1; // clear the lowest set bit
    }
    mask.trailing_zeros() as usize + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    const COMPUTE: u8 = 3;

    /// Deterministic LCG so the differential sweep needs no external RNG.
    fn lcg(state: &mut u64) -> u64 {
        *state =
            state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        *state >> 33
    }

    #[test]
    fn scalar_cuts_after_budget_mem_tag() {
        // mem compute mem compute mem compute
        let tags = [0u8, COMPUTE, 1, COMPUTE, 2, COMPUTE];
        assert_eq!(classify_tags_scalar(&tags, COMPUTE, 2), (3, 2));
        assert_eq!(classify_tags_scalar(&tags, COMPUTE, 3), (5, 3));
        assert_eq!(classify_tags_scalar(&tags, COMPUTE, 4), (6, 3));
        assert_eq!(classify_tags_scalar(&tags, COMPUTE, 0), (0, 0));
    }

    #[test]
    fn scalar_takes_everything_under_budget() {
        let tags = [COMPUTE; 100];
        assert_eq!(classify_tags_scalar(&tags, COMPUTE, 5), (100, 0));
        assert_eq!(classify_tags_scalar(&[], COMPUTE, 5), (0, 0));
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    #[cfg_attr(miri, ignore = "vendor intrinsics are outside Miri's subset")]
    fn avx2_matches_scalar_on_random_windows() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        let mut state = 0xD15EA5E_u64;
        for round in 0..500 {
            let len = (lcg(&mut state) % 300) as usize;
            let tags: Vec<u8> = (0..len)
                .map(|_| {
                    if lcg(&mut state).is_multiple_of(3) {
                        COMPUTE
                    } else {
                        (lcg(&mut state) % 5) as u8
                    }
                })
                .collect();
            for max_mem in [0u64, 1, 2, 31, 32, 33, 64, 100, u64::MAX] {
                let want = classify_tags_scalar(&tags, COMPUTE, max_mem);
                // SAFETY: guarded by the is_x86_feature_detected check above.
                let got = unsafe { classify_tags_avx2(&tags, COMPUTE, max_mem) };
                assert_eq!(got, want, "round {round}, len {len}, budget {max_mem}");
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    #[cfg_attr(miri, ignore = "vendor intrinsics are outside Miri's subset")]
    fn avx2_handles_boundary_inside_each_lane() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        // All-memory block: the boundary can land on every lane of the
        // first vector, and on the scalar tail beyond it.
        let tags = [0u8; 40];
        for budget in 1..=40u64 {
            // SAFETY: guarded by the is_x86_feature_detected check above.
            let got = unsafe { classify_tags_avx2(&tags, COMPUTE, budget) };
            assert_eq!(got, (budget as usize, budget));
        }
    }

    #[test]
    fn cut_after_nth_set_bit_selects_correct_position() {
        #[cfg(target_arch = "x86_64")]
        {
            assert_eq!(cut_after_nth_set_bit(0b1, 1), 1);
            assert_eq!(cut_after_nth_set_bit(0b1010_0110, 1), 2);
            assert_eq!(cut_after_nth_set_bit(0b1010_0110, 2), 3);
            assert_eq!(cut_after_nth_set_bit(0b1010_0110, 3), 6);
            assert_eq!(cut_after_nth_set_bit(0b1010_0110, 4), 8);
            assert_eq!(cut_after_nth_set_bit(u32::MAX, 32), 32);
        }
    }

    #[test]
    fn prefetch_requires_the_simd_gate() {
        // Whatever DPC_SIMD/DPC_PREFETCH this process runs under,
        // prefetch hints must never be on with the vector gate off.
        assert!(!prefetch_enabled() || enabled());
    }

    #[test]
    fn fastpath_gate_is_independent_of_the_simd_gate() {
        // The fast path is scalar; it may be on even when the vector gate
        // is off. All this process can check portably is that the cached
        // answer is stable and honors an explicit DPC_FASTPATH=off.
        assert_eq!(fastpath_enabled(), fastpath_enabled());
        if std::env::var("DPC_FASTPATH").is_ok_and(|v| matches!(v.as_str(), "off" | "0" | "false"))
        {
            assert!(!fastpath_enabled());
        }
    }

    #[test]
    fn dispatch_wrapper_is_total() {
        // Whatever path `enabled()` picked, the wrapper must agree with
        // the scalar reference.
        let tags = [0u8, COMPUTE, 1, 4, COMPUTE, 2];
        for max_mem in 0..6 {
            assert_eq!(
                classify_tags(&tags, COMPUTE, max_mem),
                classify_tags_scalar(&tags, COMPUTE, max_mem)
            );
        }
    }
}
