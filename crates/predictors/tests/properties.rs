//! Property-based tests of the predictors: structural bounds (table
//! sizes, shadow/PFQ capacities) and behavioural invariants (negative
//! feedback, training saturation) under arbitrary event sequences.

use dpc_memsim::policy::{
    BlockFillDecision, EvictedBlock, EvictedPage, LlcPolicy, LltPolicy, PageFillDecision,
};
use dpc_memsim::set_assoc::LineLife;
use dpc_predictors::{CbPred, DpPred, ShipTlb};
use dpc_types::{BlockAddr, Pc, Pfn, SystemConfig, Vpn};
use proptest::prelude::*;

fn life(hits: u64) -> LineLife {
    LineLife { fill_seq: 0, last_hit_seq: hits.min(1) * 10, hits }
}

/// One predictor-visible event.
#[derive(Clone, Debug)]
enum Ev {
    Lookup(u16),
    Fill(u16, u8),
    EvictDoa(u16, u8),
    EvictLive(u16, u8),
    Shadow(u16),
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (any::<u16>()).prop_map(Ev::Lookup),
        (any::<u16>(), any::<u8>()).prop_map(|(v, p)| Ev::Fill(v, p)),
        (any::<u16>(), any::<u8>()).prop_map(|(v, p)| Ev::EvictDoa(v, p)),
        (any::<u16>(), any::<u8>()).prop_map(|(v, p)| Ev::EvictLive(v, p)),
        (any::<u16>()).prop_map(Ev::Shadow),
    ]
}

proptest! {
    /// dpPred never panics, and its accuracy report stays internally
    /// consistent, under arbitrary (even ill-ordered) event sequences.
    #[test]
    fn dppred_is_robust(events in proptest::collection::vec(ev_strategy(), 1..500)) {
        let mut pred = DpPred::paper_default();
        for event in events {
            match event {
                Ev::Lookup(v) => pred.on_lookup(Vpn::new(v.into()), false),
                Ev::Fill(v, p) => {
                    let decision =
                        pred.on_fill(Vpn::new(v.into()), Pfn::new(1), Pc::new(u64::from(p) * 4));
                    if decision == PageFillDecision::Bypass {
                        pred.on_bypass(Vpn::new(v.into()), Pfn::new(1));
                    }
                }
                Ev::EvictDoa(v, p) => pred.on_evict(EvictedPage {
                    vpn: Vpn::new(v.into()),
                    pfn: Pfn::new(1),
                    state: u32::from(p) & 0x3f,
                    life: life(0),
                }),
                Ev::EvictLive(v, p) => pred.on_evict(EvictedPage {
                    vpn: Vpn::new(v.into()),
                    pfn: Pfn::new(1),
                    state: u32::from(p) & 0x3f,
                    life: life(3),
                }),
                Ev::Shadow(v) => {
                    let _ = pred.shadow_lookup(Vpn::new(v.into()));
                }
            }
        }
        let report = pred.accuracy_report().expect("dpPred reports accuracy");
        prop_assert!(report.correct <= report.true_doas || report.true_doas == 0);
        prop_assert!(report.accuracy() <= 1.0);
        prop_assert!(report.coverage() <= 1.0);
    }

    /// The shadow table never serves a translation that was not bypassed,
    /// and each bypassed translation is served at most once.
    #[test]
    fn shadow_serves_each_bypass_at_most_once(vpns in proptest::collection::vec(any::<u8>(), 1..100)) {
        let mut pred = DpPred::paper_default();
        let mut outstanding: Vec<u64> = Vec::new();
        for v in vpns {
            let vpn = Vpn::new(u64::from(v));
            // Without any bypass, the shadow must be empty.
            if !outstanding.contains(&vpn.raw()) {
                prop_assert_eq!(pred.shadow_lookup(vpn), None);
            }
            pred.on_bypass(vpn, Pfn::new(u64::from(v) + 100));
            // Mirror the shadow's semantics: a re-bypassed VPN refreshes
            // its entry; otherwise FIFO with capacity 2.
            if let Some(pos) = outstanding.iter().position(|&x| x == vpn.raw()) {
                outstanding.remove(pos);
            } else if outstanding.len() >= 2 {
                outstanding.remove(0);
            }
            outstanding.push(vpn.raw());
        }
        // Serving drains: two lookups of the same vpn cannot both hit.
        if let Some(&v) = outstanding.last() {
            let vpn = Vpn::new(v);
            if pred.shadow_lookup(vpn).is_some() {
                prop_assert_eq!(pred.shadow_lookup(vpn), None);
            }
        }
    }

    /// cbPred only ever bypasses blocks whose frame matched the PFQ, and
    /// the DP bit is set exactly for PFQ-matched allocations.
    #[test]
    fn cbpred_only_predicts_on_doa_pages(
        doa_frames in proptest::collection::vec(0u64..16, 0..12),
        blocks in proptest::collection::vec((0u64..32, 0u64..64), 1..300),
    ) {
        let config = SystemConfig::paper_baseline();
        let mut pred = CbPred::paper_default(&config.llc);
        for &f in &doa_frames {
            pred.note_doa_page(Pfn::new(f));
        }
        // The PFQ holds at most the last 8 distinct frames.
        let mut fifo: Vec<u64> = Vec::new();
        for &f in &doa_frames {
            if !fifo.contains(&f) {
                fifo.push(f);
                if fifo.len() > 8 {
                    fifo.remove(0);
                }
            }
        }
        for (frame, offset) in blocks {
            let block = BlockAddr::new(frame * 64 + offset);
            match pred.on_fill(block, Pc::new(0)) {
                BlockFillDecision::Bypass => {
                    prop_assert!(fifo.contains(&frame), "bypass off a DOA page");
                }
                BlockFillDecision::Allocate { state, .. } => {
                    prop_assert_eq!(state & 1 == 1, fifo.contains(&frame), "DP bit mismatch");
                }
            }
            // Feed DOA evictions back to train the bHIST.
            pred.on_evict(EvictedBlock {
                block,
                state: u32::from(fifo.contains(&frame)),
                life: life(0),
                by_invalidation: false,
            });
        }
    }

    /// SHiP never bypasses — it only modulates insertion priority.
    #[test]
    fn ship_never_bypasses(fills in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..200)) {
        let mut pred = ShipTlb::paper_default();
        for (v, p) in fills {
            let decision =
                pred.on_fill(Vpn::new(v.into()), Pfn::new(1), Pc::new(u64::from(p) * 4));
            let allocated = matches!(decision, PageFillDecision::Allocate { .. });
            prop_assert!(allocated, "SHiP must never bypass");
            pred.on_evict(EvictedPage {
                vpn: Vpn::new(v.into()),
                pfn: Pfn::new(1),
                state: match decision {
                    PageFillDecision::Allocate { state, .. } => state,
                    PageFillDecision::Bypass => unreachable!(),
                },
                life: life(u64::from(p % 2)),
            });
        }
    }
}
