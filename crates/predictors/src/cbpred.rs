//! **cbPred** — the paper's correlating dead-block predictor for the LLC
//! (Section V-B).
//!
//! cbPred piggybacks on dpPred: when the TLB-side predictor declares a page
//! DOA, the page's PFN is sent to the LLC and enqueued in the **PFN filter
//! queue (PFQ)** — an 8-entry FIFO. Only blocks whose frame matches the
//! PFQ at fill time participate in dead-block prediction:
//!
//! * on a PFQ match, a 12-bit folded-XOR hash of the block address indexes
//!   the 4096-entry **bHIST** of 3-bit saturating counters; a counter above
//!   the threshold (6) bypasses the fill, otherwise the block allocates
//!   with its **DP** (dead-page) bit set;
//! * only DP blocks train the bHIST at eviction: unaccessed → increment,
//!   accessed → clear.
//!
//! This pre-filtering is what gives cbPred its ≥98-99% accuracy at ~10 KB
//! of state. The `use_pfq = false` ablation reproduces the paper's
//! *cbPred−PF* row in Table VII (every block participates).

use crate::ghost::GhostTracker;
use dpc_memsim::policy::{
    AccuracyReport, BlockFillDecision, EvictedBlock, InsertPriority, LlcPolicy,
};
use dpc_types::hash::hash_block;
use dpc_types::{invariant, BlockAddr, CacheConfig, Pc, Pfn, SatCounter};
use std::collections::VecDeque;

/// DP (dead-page) bit position in the per-block policy state.
const DP_BIT: u32 = 1;

/// Configuration of [`CbPred`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CbPredConfig {
    /// bHIST entry count (paper: 4096 for a 2 MB LLC).
    pub bhist_entries: usize,
    /// Width of the block-address hash (paper: 12 bits).
    pub hash_bits: u32,
    /// Width of the bHIST saturating counters (paper: 3).
    pub counter_bits: u32,
    /// Prediction threshold (paper: 6).
    pub threshold: u8,
    /// PFQ capacity (paper: 8; Fig. 11d studies 64).
    pub pfq_entries: usize,
    /// `false` reproduces the cbPred−PF ablation: no PFQ filtering, every
    /// block trains and consults the bHIST.
    pub use_pfq: bool,
    /// Right-shift applied to a block's 4 KB-grain frame number before
    /// matching the PFQ — the prediction-unit shift of the system's page
    /// allocation policy. 0 (the paper default) matches whole 4 KB
    /// frames; 9 under a 2 MB policy makes the PFQ name 2 MB regions, so
    /// one dead huge page covers all of its blocks with a single entry.
    pub pfn_unit_shift: u32,
    /// LLC sets, for ghost-FIFO accuracy accounting.
    pub llc_sets: u64,
    /// LLC associativity.
    pub llc_ways: u64,
}

impl CbPredConfig {
    /// The paper's default configuration for the given LLC geometry.
    pub fn paper_default(llc: &CacheConfig) -> Self {
        CbPredConfig {
            bhist_entries: 4096,
            hash_bits: 12,
            counter_bits: 3,
            threshold: 6,
            pfq_entries: 8,
            use_pfq: true,
            pfn_unit_shift: 0,
            llc_sets: llc.sets(),
            llc_ways: u64::from(llc.ways),
        }
    }
}

/// The correlating dead-block predictor.
#[derive(Debug)]
pub struct CbPred {
    config: CbPredConfig,
    bhist: Vec<SatCounter>,
    pfq: VecDeque<Pfn>,
    ghost: GhostTracker,
    unpredicted_doas: u64,
    /// PFNs received from the TLB-side predictor (PFQ insertions).
    pub doa_pages_received: u64,
    /// Fills whose PFN matched the PFQ (prediction candidates).
    pub pfq_matches: u64,
}

impl CbPred {
    /// Builds a cbPred with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `bhist_entries` is zero or `pfq_entries` is zero while
    /// `use_pfq` is set.
    pub fn new(config: CbPredConfig) -> Self {
        assert!(config.bhist_entries > 0, "bHIST must have entries");
        assert!(!config.use_pfq || config.pfq_entries > 0, "PFQ filtering requires a nonzero PFQ");
        CbPred {
            bhist: vec![SatCounter::new(config.counter_bits); config.bhist_entries],
            pfq: VecDeque::with_capacity(config.pfq_entries),
            ghost: GhostTracker::new(config.llc_sets, config.llc_ways),
            unpredicted_doas: 0,
            doa_pages_received: 0,
            pfq_matches: 0,
            config,
        }
    }

    /// The paper's default cbPred for the given LLC.
    pub fn paper_default(llc: &CacheConfig) -> Self {
        Self::new(CbPredConfig::paper_default(llc))
    }

    /// The cbPred−PF ablation: PFQ filtering disabled.
    pub fn without_pfq(llc: &CacheConfig) -> Self {
        Self::new(CbPredConfig { use_pfq: false, ..CbPredConfig::paper_default(llc) })
    }

    /// The predictor's configuration.
    pub fn config(&self) -> &CbPredConfig {
        &self.config
    }

    #[inline]
    fn bhist_index(&self, block: BlockAddr) -> usize {
        let hash = hash_block(block, self.config.hash_bits) as usize;
        // Power-of-two bHIST geometries (the paper default) reduce by
        // mask; anything else falls back to modulo. Same result either
        // way — this just avoids a hardware divide on every fill/evict.
        let entries = self.config.bhist_entries;
        let idx = if entries.is_power_of_two() { hash & (entries - 1) } else { hash % entries };
        invariant!(idx < self.bhist.len(), "bHIST index {idx} out of range");
        idx
    }
}

impl LlcPolicy for CbPred {
    #[inline]
    fn policy_name(&self) -> &'static str {
        "cbPred"
    }

    #[inline]
    fn accuracy_report(&self) -> Option<AccuracyReport> {
        let correct = self.ghost.resolved_correct();
        Some(AccuracyReport {
            predictions: self.ghost.predictions,
            correct,
            mispredictions: self.ghost.mispredictions,
            true_doas: correct + self.unpredicted_doas,
        })
    }

    #[inline]
    fn note_doa_page(&mut self, pfn: Pfn) {
        self.doa_pages_received += 1;
        if self.pfq.contains(&pfn) {
            return;
        }
        if self.pfq.len() >= self.config.pfq_entries {
            self.pfq.pop_front();
        }
        self.pfq.push_back(pfn);
        invariant!(
            self.pfq.len() <= self.config.pfq_entries,
            "PFQ occupancy {} exceeds the paper's {}-entry budget",
            self.pfq.len(),
            self.config.pfq_entries
        );
    }

    #[inline]
    fn on_lookup(&mut self, block: BlockAddr, _hit: bool) {
        self.ghost.note_lookup(block.raw());
    }

    #[inline]
    fn on_fill(&mut self, block: BlockAddr, _pc: Pc) -> BlockFillDecision {
        // The PFQ holds prediction-unit frame names (see
        // `CbPredConfig::pfn_unit_shift`); `note_doa_page` receives them
        // already shifted, so only the block's frame needs reducing here.
        let on_doa_page = if self.config.use_pfq {
            self.pfq.contains(&Pfn::new(block.pfn().raw() >> self.config.pfn_unit_shift))
        } else {
            true
        };
        if !on_doa_page {
            self.ghost.note_fill(block.raw());
            return BlockFillDecision::Allocate { priority: InsertPriority::Normal, state: 0 };
        }
        self.pfq_matches += 1;
        let idx = self.bhist_index(block);
        if self.bhist[idx].exceeds(self.config.threshold) {
            self.ghost.note_bypass(block.raw());
            BlockFillDecision::Bypass
        } else {
            self.ghost.note_fill(block.raw());
            BlockFillDecision::Allocate { priority: InsertPriority::Normal, state: DP_BIT }
        }
    }

    #[inline]
    fn on_evict(&mut self, evicted: EvictedBlock) {
        let accessed = evicted.accessed();
        if !accessed {
            self.unpredicted_doas += 1;
        }
        // Only DP blocks (blocks that mapped onto a predicted DOA page at
        // fill time) train the bHIST (paper Fig. 8c).
        if evicted.state & DP_BIT == 0 {
            return;
        }
        let idx = self.bhist_index(evicted.block);
        if accessed {
            self.bhist[idx].clear();
        } else {
            self.bhist[idx].increment();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_memsim::set_assoc::LineLife;
    use dpc_types::SystemConfig;

    fn cb() -> CbPred {
        CbPred::paper_default(&SystemConfig::paper_baseline().llc)
    }

    fn doa_evict(pred: &mut CbPred, block: BlockAddr, dp: bool) {
        pred.on_evict(EvictedBlock {
            block,
            state: if dp { DP_BIT } else { 0 },
            life: LineLife { fill_seq: 0, last_hit_seq: 0, hits: 0 },
            by_invalidation: false,
        });
    }

    fn live_evict(pred: &mut CbPred, block: BlockAddr, dp: bool) {
        pred.on_evict(EvictedBlock {
            block,
            state: if dp { DP_BIT } else { 0 },
            life: LineLife { fill_seq: 0, last_hit_seq: 9, hits: 4 },
            by_invalidation: false,
        });
    }

    /// A block address inside frame 5.
    fn block_in_doa_page() -> BlockAddr {
        Pfn::new(5).base().block()
    }

    #[test]
    fn blocks_off_doa_pages_never_predicted() {
        let mut pred = cb();
        // No PFQ contents: every fill allocates without the DP bit.
        let decision = pred.on_fill(BlockAddr::new(123), Pc::new(0));
        assert_eq!(
            decision,
            BlockFillDecision::Allocate { priority: InsertPriority::Normal, state: 0 }
        );
        assert_eq!(pred.pfq_matches, 0);
    }

    #[test]
    fn pfq_match_sets_dp_bit_then_trains_to_bypass() {
        let mut pred = cb();
        pred.note_doa_page(Pfn::new(5));
        let block = block_in_doa_page();
        // Threshold 6: seven DOA evictions with DP set push the counter
        // past it.
        for _ in 0..7 {
            let decision = pred.on_fill(block, Pc::new(0));
            assert_eq!(
                decision,
                BlockFillDecision::Allocate { priority: InsertPriority::Normal, state: DP_BIT }
            );
            doa_evict(&mut pred, block, true);
        }
        assert_eq!(pred.on_fill(block, Pc::new(0)), BlockFillDecision::Bypass);
        assert_eq!(pred.pfq_matches, 8);
    }

    #[test]
    fn accessed_dp_block_clears_counter() {
        let mut pred = cb();
        pred.note_doa_page(Pfn::new(5));
        let block = block_in_doa_page();
        for _ in 0..7 {
            pred.on_fill(block, Pc::new(0));
            doa_evict(&mut pred, block, true);
        }
        live_evict(&mut pred, block, true);
        assert!(matches!(pred.on_fill(block, Pc::new(0)), BlockFillDecision::Allocate { .. }));
    }

    #[test]
    fn non_dp_evictions_do_not_train() {
        let mut pred = cb();
        let block = block_in_doa_page();
        for _ in 0..20 {
            doa_evict(&mut pred, block, false); // DP unset: no training
        }
        pred.note_doa_page(Pfn::new(5));
        assert!(
            matches!(pred.on_fill(block, Pc::new(0)), BlockFillDecision::Allocate { .. }),
            "bHIST must still be cold"
        );
    }

    #[test]
    fn pfq_is_bounded_fifo_with_dedup() {
        let mut pred = cb();
        for i in 0..10u64 {
            pred.note_doa_page(Pfn::new(i));
        }
        pred.note_doa_page(Pfn::new(9)); // duplicate: no effect
        assert_eq!(pred.doa_pages_received, 11);
        // Capacity 8: frames 0 and 1 were displaced.
        assert!(!matches!(
            pred.on_fill(Pfn::new(0).base().block(), Pc::new(0)),
            BlockFillDecision::Allocate { state: DP_BIT, .. }
        ));
        assert!(matches!(
            pred.on_fill(Pfn::new(9).base().block(), Pc::new(0)),
            BlockFillDecision::Allocate { state: DP_BIT, .. }
        ));
    }

    #[test]
    fn without_pfq_every_block_participates() {
        let mut pred = CbPred::without_pfq(&SystemConfig::paper_baseline().llc);
        let block = BlockAddr::new(0xABC);
        for _ in 0..7 {
            pred.on_fill(block, Pc::new(0));
            doa_evict(&mut pred, block, true);
        }
        assert_eq!(pred.on_fill(block, Pc::new(0)), BlockFillDecision::Bypass);
    }

    #[test]
    fn pfn_unit_shift_matches_whole_huge_pages() {
        // A 2 MB prediction unit: PFQ entries name pfn >> 9.
        let config = CbPredConfig {
            pfn_unit_shift: 9,
            ..CbPredConfig::paper_default(&SystemConfig::paper_baseline().llc)
        };
        let mut pred = CbPred::new(config);
        // The system reports the dead huge page as its unit frame number.
        pred.note_doa_page(Pfn::new(5));
        // Any block in any of the region's 512 frames matches.
        for frame in [5 << 9, (5 << 9) + 1, (5 << 9) + 511] {
            let block = Pfn::new(frame).base().block();
            assert!(
                matches!(
                    pred.on_fill(block, Pc::new(0)),
                    BlockFillDecision::Allocate { state: DP_BIT, .. }
                ),
                "frame {frame} lies on the dead 2 MB page"
            );
        }
        // A block one region over does not.
        let outside = Pfn::new(6 << 9).base().block();
        assert!(matches!(
            pred.on_fill(outside, Pc::new(0)),
            BlockFillDecision::Allocate { state: 0, .. }
        ));
        assert_eq!(pred.pfq_matches, 3);
    }

    #[test]
    fn accuracy_report_counts_unpredicted_doas() {
        let mut pred = cb();
        doa_evict(&mut pred, BlockAddr::new(1), false);
        doa_evict(&mut pred, BlockAddr::new(2), false);
        let report = pred.accuracy_report().unwrap();
        assert_eq!(report.true_doas, 2);
        assert_eq!(report.predictions, 0);
    }
}
