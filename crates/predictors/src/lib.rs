//! The paper's predictors and the baselines they are evaluated against.
//!
//! * [`dppred`] — **dpPred**, the dead-page (DOA) predictor for the
//!   last-level TLB: a two-dimensional pHIST indexed by hashed PC × hashed
//!   VPN, a bypass decision at fill, and a tiny shadow table providing
//!   negative feedback (paper Section V-A).
//! * [`cbpred`] — **cbPred**, the correlating dead-block predictor for the
//!   LLC: a PFN filter queue fed by dpPred's DOA-page predictions gates a
//!   small bHIST (paper Section V-B).
//! * [`ship`] — SHiP (Wu et al., MICRO'11) adapted to the LLC and, as in
//!   the paper's comparison, to the LLT.
//! * [`aip`] — the counter-based access-interval predictor (Kharbutli &
//!   Solihin) for LLC and LLT.
//! * [`dueling`] — an extension beyond the paper: dpPred under DIP-style
//!   set-dueling bypass control.
//! * [`oracle`] — two oracles: a Belady lookahead oracle (used for the
//!   paper's Table IV upper bound) and a two-pass DOA replay.
//! * [`ghost`] — the ghost-FIFO machinery that measures the accuracy and
//!   coverage of *bypass* predictions (a bypassed entry has no stay to
//!   observe, so its fate is tracked in a shadow structure).
//! * [`storage`] — the storage-overhead model reproducing the byte budgets
//!   of paper Sections V-D and VI-D.
//! * [`simd`] — runtime-dispatched vector kernels (with scalar twins) for
//!   the history tables, e.g. dpPred's negative-feedback row flush.
//!
//! All predictors implement the [`LltPolicy`](dpc_memsim::LltPolicy) /
//! [`LlcPolicy`](dpc_memsim::LlcPolicy) hook traits and plug into
//! [`System::with_policies`](dpc_memsim::System::with_policies).
//!
//! # Example
//!
//! ```
//! use dpc_memsim::System;
//! use dpc_predictors::{CbPred, DpPred};
//! use dpc_types::SystemConfig;
//!
//! let config = SystemConfig::paper_baseline();
//! let system = System::with_policies(
//!     config,
//!     Box::new(DpPred::paper_default()),
//!     Box::new(CbPred::paper_default(&config.llc)),
//! )?;
//! # let _ = system;
//! # Ok::<(), dpc_memsim::SystemError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aip;
pub mod cbpred;
pub mod dppred;
pub mod dueling;
pub mod ghost;
pub mod oracle;
pub mod ship;
pub mod simd;
pub mod storage;

pub use aip::{AipLlc, AipTlb};
pub use cbpred::{CbPred, CbPredConfig};
pub use dppred::{DpPred, DpPredConfig};
pub use dueling::DuelingDpPred;
pub use ghost::GhostTracker;
pub use oracle::{BeladyOracle, DoaRecorder, LookupRecorder, LookupTrace, OracleBypass};
pub use ship::{ShipLlc, ShipTlb};
