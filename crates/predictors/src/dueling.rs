//! Set-dueling adaptive bypass — an extension beyond the paper.
//!
//! dpPred's fixed threshold can over-bypass on workloads whose DOA pages
//! are not predictable (the paper's mcf/mis rows) and under-bypass on
//! thrash. [`DuelingDpPred`] applies the DIP/set-dueling idea (Qureshi et
//! al., ISCA'07 — reference 5 of the paper) to the bypass decision
//! itself:
//!
//! * a few *leader sets* always honour dpPred's bypass predictions;
//! * an equal number of leader sets never bypass (plain LRU);
//! * a saturating policy-selector counter (PSEL) is trained by misses in
//!   the two leader groups, and *follower sets* obey whichever leader
//!   group is currently missing less.
//!
//! The result keeps dpPred's wins and bounds its worst case at (almost)
//! the baseline — for the cost of one 10-bit counter.

use crate::dppred::{DpPred, DpPredConfig};
use dpc_memsim::policy::{
    AccuracyReport, EvictedPage, LltPolicy, PageFillDecision, PolicyLineView,
};
use dpc_types::{Pc, Pfn, Vpn};

/// Leader sets per policy (out of the LLT's set count).
const LEADERS_PER_POLICY: u64 = 16;
/// PSEL width: 10-bit saturating counter, initialized mid-range.
const PSEL_MAX: u32 = 1 << 10;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SetRole {
    /// Always follow dpPred's decision.
    BypassLeader,
    /// Never bypass.
    BaselineLeader,
    /// Follow the PSEL winner.
    Follower,
}

/// dpPred wrapped in set-dueling bypass control.
#[derive(Debug)]
pub struct DuelingDpPred {
    inner: DpPred,
    sets: u64,
    psel: u32,
}

impl DuelingDpPred {
    /// Wraps a dpPred configured for an LLT with `config.llt_sets` sets.
    pub fn new(config: DpPredConfig) -> Self {
        let sets = config.llt_sets;
        DuelingDpPred { inner: DpPred::new(config), sets, psel: PSEL_MAX / 2 }
    }

    /// The paper-default dpPred under dueling control.
    pub fn paper_default() -> Self {
        Self::new(DpPredConfig::paper_default())
    }

    /// Current policy-selector value (high = bypassing is winning).
    pub fn psel(&self) -> u32 {
        self.psel
    }

    /// Whether follower sets currently bypass.
    pub fn bypass_enabled(&self) -> bool {
        // PSEL counts baseline-leader misses up, bypass-leader misses
        // down; above the midpoint the bypass leaders are missing less.
        self.psel >= PSEL_MAX / 2
    }

    fn role_of(&self, vpn: Vpn) -> SetRole {
        let set = vpn.raw() % self.sets;
        // Spread the leader sets across the index space.
        let stride = (self.sets / LEADERS_PER_POLICY).max(1);
        if set.is_multiple_of(stride) {
            SetRole::BypassLeader
        } else if set % stride == 1 {
            SetRole::BaselineLeader
        } else {
            SetRole::Follower
        }
    }
}

impl LltPolicy for DuelingDpPred {
    #[inline]
    fn policy_name(&self) -> &'static str {
        "dueling-dpPred"
    }

    #[inline]
    fn accuracy_report(&self) -> Option<AccuracyReport> {
        self.inner.accuracy_report()
    }

    #[inline]
    fn on_lookup(&mut self, vpn: Vpn, hit: bool) {
        if !hit {
            // Train PSEL on leader-set misses.
            match self.role_of(vpn) {
                SetRole::BypassLeader => self.psel = self.psel.saturating_sub(1),
                SetRole::BaselineLeader => self.psel = (self.psel + 1).min(PSEL_MAX),
                SetRole::Follower => {}
            }
        }
        self.inner.on_lookup(vpn, hit);
    }

    #[inline]
    fn shadow_lookup(&mut self, vpn: Vpn) -> Option<Pfn> {
        self.inner.shadow_lookup(vpn)
    }

    #[inline]
    fn on_fill(&mut self, vpn: Vpn, pfn: Pfn, pc: Pc) -> PageFillDecision {
        // Always consult dpPred so it keeps training and its ghost
        // accounting stays consistent...
        let decision = self.inner.on_fill(vpn, pfn, pc);
        let honour_bypass = match self.role_of(vpn) {
            SetRole::BypassLeader => true,
            SetRole::BaselineLeader => false,
            SetRole::Follower => self.bypass_enabled(),
        };
        match decision {
            PageFillDecision::Bypass if honour_bypass => PageFillDecision::Bypass,
            PageFillDecision::Bypass => {
                // ...but override the decision where the duel says no:
                // allocate with dpPred's freshly computed entry state.
                let state = self.inner.refill_state(vpn, pc);
                PageFillDecision::Allocate { priority: dpc_memsim::InsertPriority::Normal, state }
            }
            allocate => allocate,
        }
    }

    #[inline]
    fn on_bypass(&mut self, vpn: Vpn, pfn: Pfn) {
        self.inner.on_bypass(vpn, pfn);
    }

    #[inline]
    fn refill_state(&mut self, vpn: Vpn, pc: Pc) -> u32 {
        self.inner.refill_state(vpn, pc)
    }

    #[inline]
    fn on_hit(&mut self, vpn: Vpn, state: &mut u32) {
        self.inner.on_hit(vpn, state);
    }

    #[inline]
    fn uses_set_views(&self) -> bool {
        self.inner.uses_set_views()
    }

    #[inline]
    fn overrides_victim(&self) -> bool {
        self.inner.overrides_victim()
    }

    #[inline]
    fn on_set_access(&mut self, lines: &mut [PolicyLineView]) {
        self.inner.on_set_access(lines);
    }

    #[inline]
    fn pick_victim(&mut self, lines: &mut [PolicyLineView]) -> Option<usize> {
        self.inner.pick_victim(lines)
    }

    #[inline]
    fn on_evict(&mut self, evicted: EvictedPage) {
        self.inner.on_evict(evicted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_with_bypass_enabled() {
        let d = DuelingDpPred::paper_default();
        assert!(d.bypass_enabled(), "mid-range PSEL favours bypassing");
        assert_eq!(d.policy_name(), "dueling-dpPred");
    }

    #[test]
    fn baseline_leader_misses_disable_bypass() {
        let mut d = DuelingDpPred::paper_default();
        // Find a baseline-leader vpn (set % stride == 1 → vpn 1 with
        // 128 sets and stride 8).
        let baseline_vpn = Vpn::new(1);
        assert_eq!(d.role_of(baseline_vpn), SetRole::BaselineLeader);
        for _ in 0..PSEL_MAX {
            d.on_lookup(baseline_vpn, false);
        }
        assert!(d.bypass_enabled(), "baseline-leader misses vote FOR bypassing");
        // Misses in the bypass leaders vote against.
        let bypass_vpn = Vpn::new(0);
        assert_eq!(d.role_of(bypass_vpn), SetRole::BypassLeader);
        for _ in 0..PSEL_MAX {
            d.on_lookup(bypass_vpn, false);
        }
        assert!(!d.bypass_enabled(), "bypass-leader misses vote AGAINST bypassing");
    }

    #[test]
    fn followers_obey_the_duel() {
        let mut d = DuelingDpPred::paper_default();
        // Train the inner dpPred to predict DOA for one (pc, vpn) pair.
        let pc = Pc::new(0x400);
        let follower_vpn = Vpn::new(2); // set 2 → follower under stride 8
        assert_eq!(d.role_of(follower_vpn), SetRole::Follower);
        for _ in 0..8 {
            d.on_fill(follower_vpn, Pfn::new(1), pc);
            d.on_evict(EvictedPage {
                vpn: follower_vpn,
                pfn: Pfn::new(1),
                state: dpc_types::hash::hash_pc(pc, 6),
                life: dpc_memsim::set_assoc::LineLife { fill_seq: 0, last_hit_seq: 0, hits: 0 },
            });
        }
        // Duel says bypass: the prediction goes through.
        assert_eq!(d.on_fill(follower_vpn, Pfn::new(1), pc), PageFillDecision::Bypass);
        // Flip the duel: the same prediction is overridden to allocate.
        for _ in 0..PSEL_MAX {
            d.on_lookup(Vpn::new(0), false);
        }
        assert!(!d.bypass_enabled());
        assert!(matches!(
            d.on_fill(follower_vpn, Pfn::new(1), pc),
            PageFillDecision::Allocate { .. }
        ));
    }

    #[test]
    fn leaders_ignore_the_duel() {
        let mut d = DuelingDpPred::paper_default();
        let pc = Pc::new(0x400);
        let leader_vpn = Vpn::new(0);
        for _ in 0..8 {
            d.on_fill(leader_vpn, Pfn::new(1), pc);
            d.on_evict(EvictedPage {
                vpn: leader_vpn,
                pfn: Pfn::new(1),
                state: dpc_types::hash::hash_pc(pc, 6),
                life: dpc_memsim::set_assoc::LineLife { fill_seq: 0, last_hit_seq: 0, hits: 0 },
            });
        }
        // Disable bypassing globally; the bypass leader still bypasses.
        for _ in 0..PSEL_MAX {
            d.on_lookup(Vpn::new(0), false);
        }
        assert!(!d.bypass_enabled());
        assert_eq!(d.on_fill(leader_vpn, Pfn::new(1), pc), PageFillDecision::Bypass);
    }
}
