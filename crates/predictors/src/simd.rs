//! Runtime-dispatched SIMD kernels for the predictor history tables.
//!
//! All `unsafe` SIMD code of this crate is confined to this module (the
//! dpc-lint `simd::confined-unsafe` rule enforces the confinement); the
//! predictors call the safe dispatch wrappers exported here. Dispatch
//! follows the process-wide [`dpc_types::simd::enabled`] gate: AVX2
//! probed once at startup, `DPC_SIMD=off` escape hatch, scalar under Miri
//! and on non-x86 targets (DESIGN.md §12).

#![allow(unsafe_code)]

use dpc_types::SatCounter;

/// Clears every counter in `row` to zero — the batched form of calling
/// [`SatCounter::clear`] on each element, used by dpPred's
/// negative-feedback row flush (2^pc_bits = 64 counters per shadow hit
/// with the paper configuration).
///
/// The vector kernel zeroes the `value` byte of each counter while
/// preserving the `max` (width) byte, relying on the `repr(C)` layout
/// contract documented on [`SatCounter`].
#[inline]
pub fn clear_counters(row: &mut [SatCounter]) {
    #[cfg(target_arch = "x86_64")]
    if dpc_types::simd::enabled() {
        // SAFETY: `enabled()` returns true only after
        // `is_x86_feature_detected!("avx2")` confirmed AVX2 support.
        unsafe { clear_counters_avx2(row) };
        return;
    }
    clear_counters_scalar(row);
}

/// Scalar twin of [`clear_counters`] — the reference semantics the
/// vector kernel must reproduce bit for bit, and the `DPC_SIMD=off`
/// path.
#[inline]
pub fn clear_counters_scalar(row: &mut [SatCounter]) {
    for counter in row {
        counter.clear();
    }
}

/// AVX2 [`clear_counters`]: masks out the value bytes of 16 counters per
/// 256-bit store. `SatCounter` is `repr(C) { value: u8, max: u8 }`, so a
/// counter row is an alternating `value, max, value, max, ...` byte
/// sequence; ANDing with the splatted 16-bit mask `0xFF00` zeroes every
/// value byte (offset 0, little-endian low byte) and keeps every width
/// byte.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn clear_counters_avx2(row: &mut [SatCounter]) {
    use core::arch::x86_64::{
        __m256i, _mm256_and_si256, _mm256_loadu_si256, _mm256_set1_epi16, _mm256_storeu_si256,
    };

    const LANES: usize = 16; // counters per 256-bit vector (2 bytes each)
                             // 0xFF00 per 16-bit lane: little-endian low byte (value) is zeroed,
                             // high byte (max) is kept.
    let keep = _mm256_set1_epi16(!0xFF_i16);
    let mut chunks = row.chunks_exact_mut(LANES);
    for chunk in &mut chunks {
        let ptr = chunk.as_mut_ptr().cast::<__m256i>();
        // SAFETY: `chunk` is exactly 16 `SatCounter`s = 32 bytes
        // (chunks_exact_mut) and `SatCounter` is a plain repr(C) pair of
        // u8s, so the unaligned 256-bit load/store stay inside the slice
        // and every resulting byte pattern is a valid `SatCounter`.
        unsafe {
            let values = _mm256_loadu_si256(ptr);
            _mm256_storeu_si256(ptr, _mm256_and_si256(values, keep));
        }
    }
    clear_counters_scalar(chunks.into_remainder());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a row of `len` counters of `bits` width, pre-trained to
    /// staggered values including both saturation boundaries.
    fn trained_row(len: usize, bits: u32) -> Vec<SatCounter> {
        (0..len)
            .map(|i| {
                let mut c = SatCounter::new(bits);
                for _ in 0..(i % (c.max() as usize + 2)) {
                    c.increment();
                }
                c
            })
            .collect()
    }

    #[test]
    fn scalar_clear_zeroes_values_and_keeps_width() {
        let mut row = trained_row(7, 3);
        clear_counters_scalar(&mut row);
        for c in &row {
            assert_eq!(c.value(), 0);
            assert_eq!(c.max(), 7);
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    #[cfg_attr(miri, ignore = "vendor intrinsics are outside Miri's subset")]
    fn avx2_clear_matches_scalar_at_all_lengths_and_widths() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        // Lengths straddling the 16-counter vector width (tails of every
        // size) and every counter width, so saturated (value == max) and
        // zero counters both cross the kernel.
        for bits in 1..=8u32 {
            for len in 0..=40usize {
                let mut want = trained_row(len, bits);
                let mut got = want.clone();
                clear_counters_scalar(&mut want);
                // SAFETY: guarded by the is_x86_feature_detected check above.
                unsafe { clear_counters_avx2(&mut got) };
                assert_eq!(got, want, "bits {bits}, len {len}");
            }
        }
    }

    #[test]
    fn dispatch_wrapper_clears_saturated_row() {
        let mut row = trained_row(64, 3);
        clear_counters(&mut row);
        assert!(row.iter().all(|c| c.value() == 0 && c.max() == 7));
        // Cleared counters must still increment/saturate normally.
        for _ in 0..10 {
            row[0].increment();
        }
        assert_eq!(row[0].value(), 7);
    }
}
